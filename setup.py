"""Build script with an *optional* native extension.

The package is pure python; ``repro.core._native_sweep`` (the fused C bucket
sweep behind the ``native`` engine) is a best-effort accelerator:

* a working C toolchain builds it automatically;
* any compile or link failure degrades to a pure-python install with a
  warning — never a failed install (``repro.core.native`` detects the
  missing module and the ``native`` engine simply is not registered);
* OpenMP is probed the same way: if ``-fopenmp`` fails, the extension is
  rebuilt without it (single-threaded native sweep).

Environment knobs:

``REPRO_BUILD_NATIVE=0``
    Skip the extension entirely (CI uses this to pin the pure-python
    fallback path).
``REPRO_NATIVE_REQUIRE=1``
    Make build failures fatal (the ``native-smoke`` CI job uses this so a
    broken extension fails loudly instead of silently falling back).
``REPRO_NATIVE_MARCH``
    Target microarchitecture for gcc/clang (default ``native`` — lets the
    compiler auto-vectorize the index phase with whatever SIMD the build
    host has; div/sqrt/round/convert are IEEE-correctly-rounded in SIMD
    form, so this cannot change a bit of output).  Set to an explicit arch
    for a portable binary, or empty to drop the flag entirely.  A build
    that fails with the flag is retried without it.
"""

import os

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


def _truthy(value):
    return str(value).strip().lower() not in ("", "0", "false", "no")


BUILD_NATIVE = _truthy(os.environ.get("REPRO_BUILD_NATIVE", "1"))
REQUIRE_NATIVE = _truthy(os.environ.get("REPRO_NATIVE_REQUIRE", "0"))

# -ffp-contract=off is load-bearing: the engine's bit-identity contract
# (docs/native.md) forbids the compiler from fusing a*b+c into FMA, which
# rounds once instead of twice.  MSVC does not contract by default.
_UNIX_ARGS = ["-O3", "-ffp-contract=off", "-fno-math-errno"]
_OPENMP_UNIX = ["-fopenmp"]
_MSVC_ARGS = ["/O2", "/fp:strict"]
_OPENMP_MSVC = ["/openmp"]

_MARCH = os.environ.get("REPRO_NATIVE_MARCH", "native").strip()
_MARCH_UNIX = [f"-march={_MARCH}"] if _MARCH else []

NATIVE_EXT = Extension(
    "repro.core._native_sweep",
    sources=["src/repro/core/_native_sweep.c"],
)


class optional_build_ext(build_ext):
    """Build the extension if we can; degrade gracefully if we cannot.

    Attempts the OpenMP build first, retries without OpenMP on failure, and
    only then gives up on the extension (unless ``REPRO_NATIVE_REQUIRE=1``).
    """

    def run(self):
        try:
            super().run()
        except Exception as exc:
            self._handle_failure(exc)

    def build_extension(self, ext):
        if self.compiler.compiler_type == "msvc":
            base, omp, march = list(_MSVC_ARGS), list(_OPENMP_MSVC), []
            omp_link = []
        else:
            base, omp, march = (
                list(_UNIX_ARGS), list(_OPENMP_UNIX), list(_MARCH_UNIX)
            )
            omp_link = list(_OPENMP_UNIX)
        # Most capable first; each retry drops one optional flag group.
        attempts = [
            (base + march + omp, omp_link),
            (base + march, []),
            (base + omp, omp_link),
            (base, []),
        ]
        last = len(attempts) - 1
        for i, (compile_args, link_args) in enumerate(attempts):
            ext.extra_compile_args = compile_args
            ext.extra_link_args = link_args
            try:
                super().build_extension(ext)
                return
            except Exception as exc:
                if i == last:
                    self._handle_failure(exc)
                else:
                    self.warn(
                        f"building {ext.name} with {compile_args} failed; "
                        "retrying with fewer optional flags"
                    )

    def _handle_failure(self, exc):
        if REQUIRE_NATIVE:
            raise exc
        self.warn(
            "could not build the optional native sweep extension "
            f"({type(exc).__name__}: {exc}); installing pure python — the "
            "'native' engine will be unavailable (see docs/native.md)"
        )


setup(
    ext_modules=[NATIVE_EXT] if BUILD_NATIVE else [],
    cmdclass={"build_ext": optional_build_ext},
)
