"""Tests for progressive rendering and multi-bandwidth batches."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Region, compute_kdv, load_dataset, scott_bandwidth
from repro.extensions.multiband import compute_multiband
from repro.extensions.progressive import progressive_kdv, upsample_preview


@pytest.fixture(scope="module")
def city():
    return load_dataset("seattle", scale=0.001)


class TestProgressive:
    def test_level_sizes_double(self, city):
        levels = list(progressive_kdv(city, size=(64, 48), levels=4, bandwidth=800.0))
        assert [lvl.shape for lvl in levels] == [
            (6, 8),
            (12, 16),
            (24, 32),
            (48, 64),
        ]

    def test_final_level_is_exact_full_resolution(self, city):
        levels = list(progressive_kdv(city, size=(32, 24), levels=3, bandwidth=800.0))
        direct = compute_kdv(city, size=(32, 24), bandwidth=800.0)
        np.testing.assert_allclose(levels[-1].grid, direct.grid, rtol=1e-12)

    def test_every_level_exact_at_its_resolution(self, city):
        for lvl in progressive_kdv(city, size=(32, 24), levels=3, bandwidth=800.0):
            direct = compute_kdv(
                city,
                region=lvl.raster.region,
                size=(lvl.raster.width, lvl.raster.height),
                bandwidth=800.0,
            )
            np.testing.assert_allclose(lvl.grid, direct.grid, rtol=1e-12)

    def test_scott_resolved_once(self, city):
        levels = list(progressive_kdv(city, size=(16, 12), levels=2))
        assert levels[0].bandwidth == levels[1].bandwidth
        assert levels[0].bandwidth == pytest.approx(scott_bandwidth(city.xy))

    def test_single_level(self, city):
        levels = list(progressive_kdv(city, size=(16, 12), levels=1, bandwidth=800.0))
        assert len(levels) == 1
        assert levels[0].shape == (12, 16)

    def test_tiny_size_clamped(self, city):
        levels = list(progressive_kdv(city, size=(2, 2), levels=4, bandwidth=800.0))
        assert all(lvl.raster.width >= 1 and lvl.raster.height >= 1 for lvl in levels)

    def test_validation(self, city):
        with pytest.raises(ValueError):
            list(progressive_kdv(city, size=(8, 8), levels=0))
        with pytest.raises(ValueError):
            list(progressive_kdv(city, size=(0, 8), levels=1))

    def test_upsample_preview(self, city):
        lvl = next(iter(progressive_kdv(city, size=(32, 24), levels=3, bandwidth=800.0)))
        up = upsample_preview(lvl, (32, 24))
        assert up.shape == (24, 32)
        # nearest-neighbor: every upsampled value exists in the source grid
        assert set(np.unique(up)) <= set(np.unique(lvl.grid))

    def test_upsample_validation(self, city):
        lvl = next(iter(progressive_kdv(city, size=(8, 8), levels=1, bandwidth=800.0)))
        with pytest.raises(ValueError):
            upsample_preview(lvl, (0, 4))


class TestMultiband:
    BANDS = [300.0, 900.0, 2700.0]

    def test_matches_individual_computes(self, city):
        results = compute_multiband(city, self.BANDS, size=(24, 18))
        for res in results:
            direct = compute_kdv(city, size=(24, 18), bandwidth=res.bandwidth)
            np.testing.assert_allclose(res.grid, direct.grid, rtol=1e-10)

    def test_order_preserved(self, city):
        results = compute_multiband(city, self.BANDS, size=(16, 12))
        assert [r.bandwidth for r in results] == self.BANDS

    def test_portrait_raster_uses_rao(self, city):
        """A tall raster exercises the transposed shared-index path."""
        results = compute_multiband(city, self.BANDS, size=(12, 40))
        for res in results:
            direct = compute_kdv(city, size=(12, 40), bandwidth=res.bandwidth)
            np.testing.assert_allclose(res.grid, direct.grid, rtol=1e-9, atol=1e-12)
            assert res.grid.shape == (40, 12)

    def test_rao_disabled(self, city):
        results = compute_multiband(city, [900.0], size=(12, 40), rao=False)
        direct = compute_kdv(
            city, size=(12, 40), bandwidth=900.0, method="slam_bucket"
        )
        np.testing.assert_allclose(results[0].grid, direct.grid, rtol=1e-10)

    def test_sort_variant(self, city):
        results = compute_multiband(city, [900.0], size=(16, 12), variant="slam_sort")
        direct = compute_kdv(city, size=(16, 12), bandwidth=900.0, method="slam_sort")
        np.testing.assert_allclose(results[0].grid, direct.grid, rtol=1e-10)

    def test_weighted_pointset(self, rng):
        from repro import PointSet

        xy = rng.uniform((0, 0), (100, 80), (200, 2))
        w = rng.uniform(0, 2, 200)
        ps = PointSet(xy, w=w)
        results = compute_multiband(ps, [10.0, 20.0], size=(16, 12))
        for res in results:
            direct = compute_kdv(
                xy, region=Region.from_points(xy), size=(16, 12),
                bandwidth=res.bandwidth, weights=w,
            )
            np.testing.assert_allclose(res.grid, direct.grid, rtol=1e-10)

    def test_normalization_none(self, city):
        raw = compute_multiband(city, [900.0], size=(8, 6), normalization="none")[0]
        counted = compute_multiband(city, [900.0], size=(8, 6))[0]
        np.testing.assert_allclose(counted.grid * len(city), raw.grid, rtol=1e-12)

    def test_validation(self, city):
        with pytest.raises(ValueError, match="unknown variant"):
            compute_multiband(city, [900.0], variant="fft")
        with pytest.raises(ValueError, match="at least one"):
            compute_multiband(city, [])
        with pytest.raises(ValueError, match="positive"):
            compute_multiband(city, [0.0])
        with pytest.raises(ValueError, match="normalization"):
            compute_multiband(city, [900.0], normalization="density")

    def test_shared_index_faster_than_separate(self, rng):
        """The point of multiband: shared preprocessing beats re-sorting.
        Compared loosely (2x margin) to stay robust on noisy CI timers."""
        import time

        xy = rng.uniform((0, 0), (1000, 800), (200_000, 2))
        bands = [5.0, 10.0, 20.0, 40.0]
        t0 = time.perf_counter()
        compute_multiband(xy, bands, size=(64, 48))
        shared = time.perf_counter() - t0
        t0 = time.perf_counter()
        for b in bands:
            compute_kdv(xy, size=(64, 48), bandwidth=b, method="slam_bucket")
        separate = time.perf_counter() - t0
        assert shared < separate * 1.5
