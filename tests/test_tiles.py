"""Tests for the slippy-map tile renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Region, compute_kdv
from repro.viz.tiles import TileRenderer, TileScheme, render_tile


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(17)
    return np.vstack(
        [
            rng.normal((300.0, 300.0), 40.0, (500, 2)),
            rng.uniform((0, 0), (1000, 1000), (500, 2)),
        ]
    )


@pytest.fixture(scope="module")
def scheme():
    return TileScheme(Region(0.0, 0.0, 1000.0, 1000.0))


class TestTileScheme:
    def test_level0_is_world(self, scheme):
        assert scheme.tile_region(0, 0, 0) == scheme.world

    def test_children_tile_the_world(self, scheme):
        regions = [scheme.tile_region(1, tx, ty) for tx in (0, 1) for ty in (0, 1)]
        total_area = sum(r.width * r.height for r in regions)
        assert total_area == pytest.approx(1000.0 * 1000.0)
        # adjacency: tile (1,0) starts where (0,0) ends
        assert scheme.tile_region(1, 1, 0).xmin == scheme.tile_region(1, 0, 0).xmax

    def test_tile_of_point(self, scheme):
        assert scheme.tile_of_point(1, 250.0, 250.0) == (0, 0)
        assert scheme.tile_of_point(1, 750.0, 250.0) == (1, 0)
        assert scheme.tile_of_point(1, 250.0, 750.0) == (0, 1)
        # clamping outside the world
        assert scheme.tile_of_point(1, -50.0, 2000.0) == (0, 1)

    def test_out_of_range_tile(self, scheme):
        with pytest.raises(ValueError):
            scheme.tile_region(1, 2, 0)
        with pytest.raises(ValueError):
            scheme.tiles_per_axis(-1)

    def test_for_points_square(self, points):
        scheme = TileScheme.for_points(points)
        assert scheme.world.width == pytest.approx(scheme.world.height)
        assert scheme.world.contains(points[:, 0], points[:, 1]).all()


class TestRenderTile:
    def test_tile_matches_direct_compute(self, points, scheme):
        grid = render_tile(points, scheme, 1, 0, 0, tile_size=32, bandwidth=60.0)
        direct = compute_kdv(
            points,
            region=scheme.tile_region(1, 0, 0),
            size=(32, 32),
            bandwidth=60.0,
            normalization="none",
        ).grid
        np.testing.assert_allclose(grid, direct, rtol=1e-12)

    def test_seamless_across_tile_edges(self, points, scheme):
        """Adjacent tiles stitched together equal one double-size render:
        the proof that outside-tile points contribute correctly."""
        size = 32
        left = render_tile(points, scheme, 1, 0, 0, tile_size=size, bandwidth=60.0)
        right = render_tile(points, scheme, 1, 1, 0, tile_size=size, bandwidth=60.0)
        stitched = np.concatenate([left, right], axis=1)
        whole = compute_kdv(
            points,
            region=Region(0.0, 0.0, 1000.0, 500.0),
            size=(2 * size, size),
            bandwidth=60.0,
            normalization="none",
        ).grid
        np.testing.assert_allclose(stitched, whole, rtol=1e-9, atol=1e-12)

    def test_pyramid_mass_consistency(self, points, scheme):
        """Level-1 tiles cover the same world as level 0: their total mass
        (density * pixel area) matches the overview's, up to resolution."""
        def mass(grid, region, size):
            gx = region.width / size
            gy = region.height / size
            return grid.sum() * gx * gy

        overview = render_tile(points, scheme, 0, 0, 0, tile_size=64, bandwidth=60.0)
        m0 = mass(overview, scheme.world, 64)
        m1 = 0.0
        for tx in (0, 1):
            for ty in (0, 1):
                tile = render_tile(points, scheme, 1, tx, ty, tile_size=64, bandwidth=60.0)
                m1 += mass(tile, scheme.tile_region(1, tx, ty), 64)
        assert m1 == pytest.approx(m0, rel=0.02)

    def test_validation(self, points, scheme):
        with pytest.raises(ValueError):
            render_tile(points, scheme, 0, 0, 0, tile_size=0)


class TestTileRenderer:
    def test_cache_behavior(self, points):
        renderer = TileRenderer(points, tile_size=16, bandwidth=60.0, cache_tiles=4)
        renderer.tile(1, 0, 0)
        misses_before = renderer.cache_misses
        renderer.tile(1, 0, 0)
        assert renderer.cache_misses == misses_before
        assert renderer.cache_hits >= 1

    def test_cache_eviction(self, points):
        renderer = TileRenderer(points, tile_size=8, bandwidth=60.0, cache_tiles=2)
        renderer.tile(1, 0, 0)
        renderer.tile(1, 1, 0)
        renderer.tile(1, 0, 1)  # evicts (1, 0, 0)
        misses = renderer.cache_misses
        renderer.tile(1, 0, 0)
        assert renderer.cache_misses == misses + 1

    def test_tile_image(self, points):
        renderer = TileRenderer(points, tile_size=16, bandwidth=60.0)
        img = renderer.tile_image(1, 0, 0)
        assert img.shape == (16, 16, 3)
        assert img.dtype == np.uint8

    def test_consistent_color_scale(self, points):
        """The hottest zoomed tile cannot be dimmer than its overview pixel:
        colors share the pyramid-wide peak."""
        renderer = TileRenderer(points, tile_size=16, bandwidth=60.0)
        hot_tile = renderer.scheme.tile_of_point(1, 300.0, 300.0)
        zoomed = renderer.tile(1, *hot_tile)
        overview = renderer.tile(0, 0, 0)
        assert zoomed.max() >= overview.max() * 0.5

    def test_unknown_colormap(self, points):
        renderer = TileRenderer(points, tile_size=8, bandwidth=60.0)
        with pytest.raises(ValueError):
            renderer.tile_image(0, 0, 0, colormap="jet")

    def test_validation(self, points):
        with pytest.raises(ValueError):
            TileRenderer(np.empty((0, 2)))
        with pytest.raises(ValueError):
            TileRenderer(points, cache_tiles=0)

    def test_pointset_input(self, points):
        from repro import PointSet

        renderer = TileRenderer(PointSet(points), tile_size=8, bandwidth=60.0)
        assert renderer.tile(0, 0, 0).shape == (8, 8)

    def test_recorder_counts_cache_traffic(self, points):
        from repro.obs import Recorder

        rec = Recorder()
        renderer = TileRenderer(
            points, tile_size=8, bandwidth=60.0, cache_tiles=2, recorder=rec
        )
        # __init__ renders the (0, 0, 0) overview for the color scale: miss 1
        renderer.tile(1, 0, 0)  # miss 2
        renderer.tile(1, 0, 0)  # hit 1
        renderer.tile(1, 1, 0)  # miss 3 + eviction of the overview
        renderer.tile(1, 0, 1)  # miss 4 + eviction of (1, 0, 0)
        assert rec.counter_value("tiles.cache.misses") == 4
        assert rec.counter_value("tiles.cache.hits") == 1
        assert rec.counter_value("tiles.cache.evictions") == 2
        assert renderer.cache_evictions == 2
        # counters agree with the renderer's own attributes
        assert rec.counter_value("tiles.cache.misses") == renderer.cache_misses
        assert rec.counter_value("tiles.cache.hits") == renderer.cache_hits
        # every miss timed one render span
        assert rec.timer("tiles.render").calls == 4
        assert rec.phase_seconds("tiles.render") > 0.0

    def test_one_ysorted_build_for_all_tiles(self, points):
        """Every tile render shares one y-sorted index: exactly one
        ``tiles.ysorted_builds`` however many distinct tiles are rendered,
        and the grids match index-free renders bit for bit."""
        from repro.obs import Recorder

        rec = Recorder()
        renderer = TileRenderer(
            points, tile_size=8, bandwidth=60.0, cache_tiles=16, recorder=rec
        )
        keys = [(1, 0, 0), (1, 1, 0), (1, 0, 1), (2, 2, 2), (2, 3, 1)]
        for key in keys:
            renderer.tile(*key)
        assert rec.counter_value("tiles.ysorted_builds") == 1
        for key in keys:
            direct = render_tile(
                points, renderer.scheme, *key, tile_size=8, bandwidth=60.0
            )
            assert np.array_equal(renderer.tile(*key), direct)

    def test_non_slam_method_skips_index(self, points):
        from repro.obs import Recorder

        rec = Recorder()
        renderer = TileRenderer(
            points[:80], tile_size=8, bandwidth=200.0, method="scan",
            recorder=rec,
        )
        renderer.tile(1, 0, 0)
        assert rec.counter_value("tiles.ysorted_builds") == 0

    def test_service_rebuilds_index_once_per_ingest_generation(self, points):
        """Acceptance: the serving render path performs exactly one
        YSortedIndex build per ingest generation."""
        from repro.obs import Recorder
        from repro.serve import TileService

        rec = Recorder()
        with TileService(
            points, tile_size=8, bandwidth=60.0, workers=2, max_zoom=3,
            recorder=rec,
        ) as service:
            for key in ((0, 0, 0), (1, 0, 0), (1, 1, 1), (2, 3, 3)):
                service.get_tile(*key)
            assert rec.counter_value("tiles.ysorted_builds") == 1
            service.ingest(np.array([[500.0, 500.0], [100.0, 900.0]]))
            for key in ((1, 0, 0), (2, 1, 1), (0, 0, 0)):
                service.get_tile(*key)
            assert rec.counter_value("tiles.ysorted_builds") == 2
            # ingest of nothing is not a new generation
            service.ingest(np.zeros((0, 2)))
            service.get_tile(2, 0, 0)
            assert rec.counter_value("tiles.ysorted_builds") == 2

    def test_no_recorder_still_tracks_attributes(self, points):
        renderer = TileRenderer(points, tile_size=8, bandwidth=60.0, cache_tiles=2)
        renderer.tile(1, 0, 0)
        renderer.tile(1, 1, 0)
        renderer.tile(1, 0, 1)
        assert renderer.cache_evictions == 2

    def test_concurrent_same_key_renders_once(self, points):
        """Regression: unsynchronized tile() used to double-render a key and
        corrupt the LRU under threads.  Hammering one cold key from many
        threads must produce exactly one render (one miss, the rest hits)."""
        import threading

        from repro.obs import Recorder

        rec = Recorder()
        renderer = TileRenderer(
            points, tile_size=8, bandwidth=60.0, cache_tiles=8, recorder=rec
        )
        renders_after_init = rec.timer("tiles.render").calls
        n_threads = 12
        barrier = threading.Barrier(n_threads)
        grids = [None] * n_threads

        def hammer(i):
            barrier.wait(timeout=10.0)
            grids[i] = renderer.tile(2, 1, 1)

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30.0)
        assert rec.timer("tiles.render").calls == renders_after_init + 1
        assert renderer.cache_misses == renders_after_init + 1
        assert renderer.cache_hits == n_threads - 1
        for grid in grids[1:]:
            assert grid is grids[0]  # everyone got the cached array

    def test_concurrent_distinct_keys_consistent_counters(self, points):
        import threading

        renderer = TileRenderer(points, tile_size=8, bandwidth=60.0, cache_tiles=16)
        keys = [(2, tx, ty) for tx in range(3) for ty in range(2)]
        misses_after_init = renderer.cache_misses

        def worker():
            for key in keys:
                renderer.tile(*key)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60.0)
        assert renderer.cache_misses == misses_after_init + len(keys)
        assert renderer.cache_hits >= 5 * len(keys)

    def test_invalidate_and_clear(self, points):
        renderer = TileRenderer(points, tile_size=8, bandwidth=60.0, cache_tiles=8)
        renderer.tile(1, 0, 0)
        renderer.tile(1, 1, 0)
        assert renderer.invalidate([(1, 0, 0), (1, 7, 7)]) == 1
        misses = renderer.cache_misses
        renderer.tile(1, 1, 0)  # untouched key still cached
        assert renderer.cache_misses == misses
        renderer.tile(1, 0, 0)  # invalidated key re-renders
        assert renderer.cache_misses == misses + 1
        renderer.clear()
        renderer.tile(1, 1, 0)
        assert renderer.cache_misses == misses + 2


class TestDegenerateWorld:
    """A zero-extent or non-finite world must fail loudly at construction
    (and in tile_of_point, which divides by the extents) instead of
    surfacing as ZeroDivisionError or silent NaN tiles downstream."""

    class _FlatWorld:
        # Region itself refuses degenerate rectangles, so the guard can only
        # be probed with a duck-typed stand-in
        def __init__(self, width, height):
            self.xmin = 0.0
            self.ymin = 0.0
            self.width = width
            self.height = height

    @pytest.mark.parametrize(
        "width,height",
        [(0.0, 10.0), (10.0, 0.0), (-5.0, 10.0), (float("nan"), 10.0),
         (float("inf"), 10.0)],
    )
    def test_constructor_rejects_degenerate_world(self, width, height):
        with pytest.raises(ValueError, match="degenerate world region"):
            TileScheme(self._FlatWorld(width, height))

    def test_tile_of_point_rechecks_the_world(self):
        # a scheme whose world degenerated after construction (e.g. a
        # mutated duck-typed region) fails with the same clear error
        scheme = TileScheme.__new__(TileScheme)
        scheme.world = self._FlatWorld(0.0, 10.0)
        with pytest.raises(ValueError, match="degenerate world region"):
            scheme.tile_of_point(1, 5.0, 5.0)

    def test_valid_world_unaffected(self, scheme):
        assert scheme.tile_of_point(0, 1.0, 1.0) == (0, 0)
