"""Tests for the incremental streaming KDV engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Region, compute_kdv
from repro.extensions.streaming import StreamingKDV

REGION = Region(0.0, 0.0, 1000.0, 800.0)


@pytest.fixture
def engine() -> StreamingKDV:
    return StreamingKDV(REGION, size=(24, 18), bandwidth=80.0)


def fresh_grid(xy):
    return compute_kdv(
        xy, region=REGION, size=(24, 18), bandwidth=80.0, normalization="none"
    ).grid


class TestInsert:
    def test_empty_engine(self, engine):
        assert len(engine) == 0
        assert np.all(engine.grid == 0)

    def test_insert_matches_batch_compute(self, engine, rng):
        xy = rng.uniform((0, 0), (1000, 800), (300, 2))
        engine.insert(xy)
        np.testing.assert_allclose(engine.grid, fresh_grid(xy), rtol=1e-12)
        assert len(engine) == 300

    def test_incremental_equals_batch(self, engine, rng):
        batches = [rng.uniform((0, 0), (1000, 800), (100, 2)) for _ in range(5)]
        for batch in batches:
            engine.insert(batch)
        np.testing.assert_allclose(
            engine.grid, fresh_grid(np.vstack(batches)), rtol=1e-10, atol=1e-12
        )

    def test_empty_batch_noop(self, engine):
        engine.insert(np.empty((0, 2)))
        assert len(engine) == 0

    def test_bad_shapes(self, engine):
        with pytest.raises(ValueError):
            engine.insert(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            engine.insert(np.zeros((3, 2)), t=np.zeros(2))

    def test_points_roundtrip(self, engine, rng):
        a = rng.uniform((0, 0), (1000, 800), (40, 2))
        b = rng.uniform((0, 0), (1000, 800), (60, 2))
        engine.insert(a)
        engine.insert(b)
        np.testing.assert_array_equal(engine.points(), np.vstack([a, b]))


class TestDelete:
    def test_delete_oldest(self, engine, rng):
        a = rng.uniform((0, 0), (1000, 800), (100, 2))
        b = rng.uniform((0, 0), (1000, 800), (100, 2))
        engine.insert(a)
        engine.insert(b)
        removed = engine.delete_oldest()
        assert removed == 100
        assert len(engine) == 100
        np.testing.assert_allclose(engine.grid, fresh_grid(b), rtol=1e-9, atol=1e-10)

    def test_delete_everything(self, engine, rng):
        engine.insert(rng.uniform((0, 0), (1000, 800), (50, 2)))
        engine.delete_oldest(batches=10)
        assert len(engine) == 0
        assert np.abs(engine.grid).max() < 1e-9

    def test_expire_before(self, engine, rng):
        for hour in range(5):
            xy = rng.uniform((0, 0), (1000, 800), (50, 2))
            engine.insert(xy, t=np.full(50, float(hour)))
        removed = engine.expire_before(2.5)
        assert removed == 150  # hours 0, 1, 2 expired (max t < 2.5)
        assert len(engine) == 100

    def test_expire_without_timestamps_stops(self, engine, rng):
        engine.insert(rng.uniform((0, 0), (1000, 800), (50, 2)))  # no t
        assert engine.expire_before(1e9) == 0

    def test_expire_splits_straddling_batch(self, engine, rng):
        """Expiry is per event: a batch straddling the cutoff loses exactly
        its old events, and the grid matches a fresh compute of what stays."""
        xy = rng.uniform((0, 0), (1000, 800), (10, 2))
        engine.insert(xy, t=np.arange(10.0))
        assert engine.expire_before(6.0) == 6
        assert len(engine) == 4
        np.testing.assert_array_equal(engine.points(), xy[6:])
        np.testing.assert_allclose(
            engine.grid, fresh_grid(xy[6:]), rtol=1e-9, atol=1e-10
        )

    def test_expire_scans_past_untimestamped_batches(self, engine, rng):
        """An untimestamped batch mid-feed must not shield older timestamped
        batches behind it, and the returned count stays honest."""
        old = rng.uniform((0, 0), (1000, 800), (30, 2))
        untimed = rng.uniform((0, 0), (1000, 800), (20, 2))
        older = rng.uniform((0, 0), (1000, 800), (40, 2))
        engine.insert(old, t=np.full(30, 1.0))
        engine.insert(untimed)  # no timestamps: never expires
        engine.insert(older, t=np.full(40, 2.0))
        assert engine.expire_before(10.0) == 70
        assert len(engine) == 20
        np.testing.assert_array_equal(engine.points(), untimed)

    def test_expire_collect_returns_expired_batches(self, engine, rng):
        a = rng.uniform((0, 0), (1000, 800), (5, 2))
        b = rng.uniform((0, 0), (1000, 800), (7, 2))
        engine.insert(a, t=np.full(5, 0.0))
        engine.insert(b, t=np.full(7, 1.0))
        removed, batches = engine.expire_before(0.5, collect=True)
        assert removed == 5
        assert len(batches) == 1
        np.testing.assert_array_equal(batches[0], a)

    def test_require_timestamps_rejects_bare_inserts(self, rng):
        engine = StreamingKDV(REGION, size=(8, 6), bandwidth=80.0,
                              require_timestamps=True)
        with pytest.raises(ValueError, match="timestamps"):
            engine.insert(rng.uniform((0, 0), (1000, 800), (5, 2)))
        xy = rng.uniform((0, 0), (1000, 800), (5, 2))
        engine.insert(xy, t=np.arange(5.0))  # timestamped inserts still work
        assert len(engine) == 5

    def test_batches_and_latest_time(self, engine, rng):
        assert engine.latest_time is None
        a = rng.uniform((0, 0), (1000, 800), (4, 2))
        engine.insert(a, t=np.array([3.0, 9.0, 1.0, 2.0]))
        engine.insert(rng.uniform((0, 0), (1000, 800), (2, 2)), t=np.full(2, 5.0))
        assert engine.latest_time == 9.0  # the watermark never regresses
        batches = engine.batches()
        assert len(batches) == 2
        np.testing.assert_array_equal(batches[0][0], a)

    def test_sliding_window_matches_batch(self, engine, rng):
        """After a window slide the grid equals computing the window fresh."""
        kept = []
        for hour in range(8):
            xy = rng.uniform((0, 0), (1000, 800), (40, 2))
            engine.insert(xy, t=np.full(40, float(hour)))
            if hour >= 4:
                kept.append(xy)
        engine.expire_before(4.0)
        np.testing.assert_allclose(
            engine.grid, fresh_grid(np.vstack(kept)), rtol=1e-9, atol=1e-10
        )


class TestDriftAndRebuild:
    def test_drift_small_after_churn(self, rng):
        engine = StreamingKDV(REGION, size=(16, 12), bandwidth=80.0,
                              rebuild_every=None)
        for _ in range(30):
            engine.insert(rng.uniform((0, 0), (1000, 800), (30, 2)))
            engine.delete_oldest()
        # float cancellation exists but stays at epsilon scale
        assert engine.drift() < 1e-8

    def test_rebuild_resets_drift(self, rng):
        engine = StreamingKDV(REGION, size=(16, 12), bandwidth=80.0,
                              rebuild_every=None)
        engine.insert(rng.uniform((0, 0), (1000, 800), (100, 2)))
        engine.delete_oldest()
        engine.insert(rng.uniform((0, 0), (1000, 800), (100, 2)))
        engine.rebuild()
        assert engine.drift() == 0.0

    def test_rebuild_reports_the_drift_it_erased(self, rng):
        engine = StreamingKDV(REGION, size=(16, 12), bandwidth=80.0,
                              rebuild_every=None)
        for _ in range(10):
            engine.insert(rng.uniform((0, 0), (1000, 800), (20, 2)))
            engine.delete_oldest()
        engine.insert(rng.uniform((0, 0), (1000, 800), (20, 2)))
        carried = engine.drift()
        erased = engine.rebuild()
        assert erased == carried  # same deterministic recomputation
        assert engine.rebuilds == 1
        assert engine.last_rebuild_drift == erased
        assert engine.drift() == 0.0

    def test_auto_rebuild_counter(self, rng):
        engine = StreamingKDV(REGION, size=(8, 6), bandwidth=80.0, rebuild_every=3)
        for _ in range(4):
            engine.insert(rng.uniform((0, 0), (1000, 800), (10, 2)))
        for _ in range(3):
            engine.delete_oldest()
        assert engine._deletes_since_rebuild == 0  # rebuild fired


class TestAPI:
    def test_density_normalizations(self, engine, rng):
        xy = rng.uniform((0, 0), (1000, 800), (200, 2))
        engine.insert(xy)
        np.testing.assert_allclose(
            engine.density("count") * 200, engine.density("none"), rtol=1e-12
        )
        with pytest.raises(ValueError):
            engine.density("softmax")

    def test_requires_exact_method(self):
        with pytest.raises(ValueError, match="exact method"):
            StreamingKDV(REGION, method="zorder")

    def test_validation(self):
        with pytest.raises(ValueError):
            StreamingKDV(REGION, bandwidth=0.0)
        with pytest.raises(ValueError):
            StreamingKDV(REGION, rebuild_every=0)

    def test_insert_cost_independent_of_history(self, rng):
        """The real-time claim: tick cost ~ batch size, not history size.

        Compared against rebuilding the same engine from its full history
        (the same raster and method), with a loose factor for timer noise.
        """
        import time

        engine = StreamingKDV(REGION, size=(160, 120), bandwidth=30.0)
        engine.insert(rng.uniform((0, 0), (1000, 800), (200_000, 2)))
        tick = rng.uniform((0, 0), (1000, 800), (100, 2))
        start = time.perf_counter()
        engine.insert(tick)
        tick_time = time.perf_counter() - start
        start = time.perf_counter()
        engine.rebuild()
        full_time = time.perf_counter() - start
        assert tick_time < full_time / 3


class TestAffectedTiles:
    def test_delegates_to_serve_invalidate(self, engine, rng):
        from repro.serve import affected_tiles
        from repro.viz.tiles import TileScheme

        engine.insert(rng.uniform((0, 0), (1000, 800), (50, 2)))
        scheme = TileScheme.for_points(engine.points())
        batch = np.array([[120.0, 340.0], [150.0, 360.0]])
        keys = engine.affected_tiles(scheme, 2, batch)
        assert keys == affected_tiles(scheme, 2, batch, engine.bandwidth)
        assert keys  # an in-world batch touches at least one tile
        for key in keys:
            assert key[0] == 2

    def test_empty_batch_affects_nothing(self, engine):
        from repro.viz.tiles import TileScheme

        engine.insert(np.array([[1.0, 1.0], [999.0, 799.0]]))
        scheme = TileScheme.for_points(engine.points())
        assert engine.affected_tiles(scheme, 1, np.empty((0, 2))) == set()
