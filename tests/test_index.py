"""Tests for the spatial index substrates (kd-tree, ball tree, Z-order)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import channel_values
from repro.index.balltree import BallTree
from repro.index.kdtree import KDTree
from repro.index.zorder_curve import interleave_bits, morton_codes, zorder_argsort

TREES = (KDTree, BallTree)


def brute_radius(xy: np.ndarray, qx: float, qy: float, r: float) -> set[int]:
    d_sq = (xy[:, 0] - qx) ** 2 + (xy[:, 1] - qy) ** 2
    return set(np.nonzero(d_sq <= r * r)[0])


@pytest.mark.parametrize("tree_cls", TREES)
class TestTreeStructure:
    def test_perm_is_permutation(self, tree_cls, small_xy):
        tree = tree_cls(small_xy, leaf_size=8)
        assert sorted(tree.perm) == list(range(len(small_xy)))

    def test_points_reordered(self, tree_cls, small_xy):
        tree = tree_cls(small_xy, leaf_size=8)
        np.testing.assert_array_equal(tree.points, small_xy[tree.perm])

    def test_leaf_sizes_respected(self, tree_cls, small_xy):
        tree = tree_cls(small_xy, leaf_size=8)
        for node in range(tree.num_nodes):
            if tree.is_leaf(node):
                assert tree.node_size(node) <= 8

    def test_children_partition_parent(self, tree_cls, small_xy):
        tree = tree_cls(small_xy, leaf_size=8)
        for node in range(tree.num_nodes):
            if not tree.is_leaf(node):
                left, right = int(tree.node_left[node]), int(tree.node_right[node])
                assert tree.node_start[node] == tree.node_start[left]
                assert tree.node_end[left] == tree.node_start[right]
                assert tree.node_end[right] == tree.node_end[node]

    def test_invalid_inputs(self, tree_cls):
        with pytest.raises(ValueError):
            tree_cls(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            tree_cls(np.zeros((3, 2)), leaf_size=0)

    def test_empty_tree(self, tree_cls):
        tree = tree_cls(np.empty((0, 2)))
        assert tree.query_radius(0.0, 0.0, 10.0).size == 0

    def test_single_point(self, tree_cls):
        tree = tree_cls(np.array([[3.0, 4.0]]))
        assert set(tree.query_radius(0.0, 0.0, 5.0)) == {0}
        assert set(tree.query_radius(0.0, 0.0, 4.9)) == set()


@pytest.mark.parametrize("tree_cls", TREES)
class TestRangeQueries:
    def test_matches_brute_force(self, tree_cls, small_xy, rng):
        tree = tree_cls(small_xy, leaf_size=8)
        for _ in range(20):
            qx, qy = rng.uniform(0, 100), rng.uniform(0, 80)
            r = rng.uniform(1, 40)
            assert set(tree.query_radius(qx, qy, r)) == brute_radius(
                small_xy, qx, qy, r
            )

    def test_boundary_inclusive(self, tree_cls):
        tree = tree_cls(np.array([[3.0, 0.0]]))
        assert set(tree.query_radius(0.0, 0.0, 3.0)) == {0}

    def test_radius_covers_everything(self, tree_cls, small_xy):
        tree = tree_cls(small_xy, leaf_size=4)
        assert len(tree.query_radius(50.0, 40.0, 1e6)) == len(small_xy)

    def test_count_radius(self, tree_cls, small_xy):
        tree = tree_cls(small_xy, leaf_size=16)
        assert tree.count_radius(50.0, 40.0, 25.0) == len(
            brute_radius(small_xy, 50.0, 40.0, 25.0)
        )

    def test_duplicates(self, tree_cls):
        xy = np.tile([[5.0, 5.0]], (20, 1))
        tree = tree_cls(xy, leaf_size=4)
        assert len(tree.query_radius(5.0, 5.0, 0.1)) == 20

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(0, 120),
        leaf_size=st.integers(1, 32),
        r=st.floats(0.01, 30.0),
    )
    def test_query_property(self, tree_cls, seed, n, leaf_size, r):
        gen = np.random.default_rng(seed)
        xy = gen.integers(-8, 8, (n, 2)).astype(float)  # heavy duplicates/ties
        tree = tree_cls(xy, leaf_size=leaf_size)
        qx, qy = gen.uniform(-10, 10, 2)
        assert set(tree.query_radius(qx, qy, r)) == brute_radius(xy, qx, qy, r)


@pytest.mark.parametrize("tree_cls", TREES)
class TestDistanceBounds:
    def test_min_max_bracket_true_distances(self, tree_cls, small_xy, rng):
        tree = tree_cls(small_xy, leaf_size=8)
        for _ in range(10):
            qx, qy = rng.uniform(-20, 120), rng.uniform(-20, 100)
            for node in range(0, tree.num_nodes, 7):
                start, end = tree.node_start[node], tree.node_end[node]
                if end == start:
                    continue
                pts = tree.points[start:end]
                d_sq = (pts[:, 0] - qx) ** 2 + (pts[:, 1] - qy) ** 2
                assert tree.min_dist_sq(node, qx, qy) <= d_sq.min() + 1e-9
                assert tree.max_dist_sq(node, qx, qy) >= d_sq.max() - 1e-9


class TestNodeAggregates:
    @pytest.mark.parametrize("tree_cls", TREES)
    @pytest.mark.parametrize("nch", [1, 4, 10])
    def test_aggregates_equal_subtree_sums(self, tree_cls, nch, small_xy):
        tree = tree_cls(small_xy, leaf_size=8, num_channels=nch)
        chans = channel_values(small_xy, nch)
        for node in range(0, tree.num_nodes, 5):
            idx = tree.perm[tree.node_start[node] : tree.node_end[node]]
            np.testing.assert_allclose(
                tree.node_agg[node], chans[idx].sum(axis=0), rtol=1e-12, atol=1e-9
            )

    @pytest.mark.parametrize("tree_cls", TREES)
    def test_no_aggregates_by_default(self, tree_cls, small_xy):
        assert tree_cls(small_xy).node_agg is None


class TestZOrderCurve:
    def test_interleave_known_values(self):
        # 0b11 -> 0b0101, 0b10 -> 0b0100
        np.testing.assert_array_equal(
            interleave_bits(np.array([0b11, 0b10])), [0b0101, 0b0100]
        )

    def test_interleave_range(self):
        v = np.arange(1024)
        out = interleave_bits(v)
        # dilated bits only occupy even positions
        assert np.all(out & np.uint64(0xAAAAAAAAAAAAAAAA) == 0)

    def test_interleave_injective(self):
        out = interleave_bits(np.arange(4096))
        assert len(np.unique(out)) == 4096

    def test_interleave_bits_validation(self):
        with pytest.raises(ValueError):
            interleave_bits(np.array([1]), bits=0)
        with pytest.raises(ValueError):
            interleave_bits(np.array([1]), bits=33)

    def test_morton_known_grid(self):
        # unit square corners: z-order is (0,0) < (1,0) < (0,1) < (1,1)
        xy = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0], [1.0, 1.0]])
        codes = morton_codes(xy, bits=1)
        np.testing.assert_array_equal(codes, [0, 1, 2, 3])

    def test_morton_shape_validation(self):
        with pytest.raises(ValueError):
            morton_codes(np.zeros((2, 3)))

    def test_morton_empty(self):
        assert morton_codes(np.empty((0, 2))).size == 0

    def test_argsort_is_permutation(self, small_xy):
        order = zorder_argsort(small_xy)
        assert sorted(order) == list(range(len(small_xy)))

    def test_zorder_locality(self, rng):
        """Consecutive points along the curve are near each other on average —
        the property that makes Z-order sampling spatially stratified."""
        xy = rng.uniform(0, 1, (2000, 2))
        order = zorder_argsort(xy)
        sorted_pts = xy[order]
        consecutive = np.linalg.norm(np.diff(sorted_pts, axis=0), axis=1).mean()
        shuffled = xy[rng.permutation(2000)]
        random_pairs = np.linalg.norm(np.diff(shuffled, axis=0), axis=1).mean()
        assert consecutive < random_pairs / 3
