"""Tests for geographic projections (data.projection)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.projection import (
    EARTH_RADIUS_M,
    LocalEquirectangular,
    WebMercator,
)


class TestLocalEquirectangular:
    def test_origin_maps_to_zero(self):
        proj = LocalEquirectangular(-122.3, 47.6)
        np.testing.assert_allclose(
            proj.forward(np.array([-122.3]), np.array([47.6])), [[0.0, 0.0]]
        )

    def test_one_degree_latitude_is_111km(self):
        proj = LocalEquirectangular(0.0, 0.0)
        xy = proj.forward(np.array([0.0]), np.array([1.0]))
        assert xy[0, 1] == pytest.approx(EARTH_RADIUS_M * math.pi / 180, rel=1e-9)
        assert xy[0, 1] == pytest.approx(111_195.0, rel=1e-3)

    def test_longitude_shrinks_with_latitude(self):
        equator = LocalEquirectangular(0.0, 0.0)
        nordic = LocalEquirectangular(0.0, 60.0)
        dx_eq = equator.forward(np.array([1.0]), np.array([0.0]))[0, 0]
        dx_no = nordic.forward(np.array([1.0]), np.array([60.0]))[0, 0]
        assert dx_no == pytest.approx(dx_eq * math.cos(math.radians(60.0)), rel=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        lon0=st.floats(-179, 179),
        lat0=st.floats(-80, 80),
        dlon=st.floats(-0.4, 0.4),
        dlat=st.floats(-0.4, 0.4),
    )
    def test_roundtrip_property(self, lon0, lat0, dlon, dlat):
        proj = LocalEquirectangular(lon0, lat0)
        lon = np.array([lon0 + dlon])
        lat = np.array([np.clip(lat0 + dlat, -89.0, 89.0)])
        back_lon, back_lat = proj.inverse(proj.forward(lon, lat))
        assert back_lon[0] == pytest.approx(lon[0], abs=1e-9)
        assert back_lat[0] == pytest.approx(lat[0], abs=1e-9)

    def test_distance_accuracy_city_scale(self):
        """Projected distances within a city match haversine to <0.1%."""
        proj = LocalEquirectangular(-122.33, 47.61)  # Seattle
        lon = np.array([-122.33, -122.28])
        lat = np.array([47.61, 47.66])
        xy = proj.forward(lon, lat)
        projected = float(np.hypot(*(xy[1] - xy[0])))
        # haversine reference
        phi1, phi2 = map(math.radians, lat)
        dphi = phi2 - phi1
        dlmb = math.radians(lon[1] - lon[0])
        h = math.sin(dphi / 2) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlmb / 2) ** 2
        true = 2 * EARTH_RADIUS_M * math.asin(math.sqrt(h))
        assert projected == pytest.approx(true, rel=1e-3)

    def test_for_points(self):
        lon = np.array([-1.0, 1.0])
        lat = np.array([10.0, 12.0])
        proj = LocalEquirectangular.for_points(lon, lat)
        assert proj.origin_lon == 0.0
        assert proj.origin_lat == 11.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LocalEquirectangular(0.0, 89.5)
        with pytest.raises(ValueError, match="latitude"):
            LocalEquirectangular(0.0, 0.0).forward(np.array([0.0]), np.array([95.0]))
        with pytest.raises(ValueError, match="longitude"):
            LocalEquirectangular(0.0, 0.0).forward(np.array([200.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            LocalEquirectangular(0.0, 0.0).inverse(np.zeros((2, 3)))
        with pytest.raises(ValueError):
            LocalEquirectangular.for_points(np.array([]), np.array([]))


class TestWebMercator:
    def test_equator_longitude_scaling(self):
        xy = WebMercator.forward(np.array([1.0]), np.array([0.0]))
        assert xy[0, 0] == pytest.approx(EARTH_RADIUS_M * math.pi / 180, rel=1e-9)
        assert xy[0, 1] == pytest.approx(0.0, abs=1e-6)

    @settings(max_examples=40, deadline=None)
    @given(lon=st.floats(-180, 180), lat=st.floats(-84, 84))
    def test_roundtrip_property(self, lon, lat):
        back_lon, back_lat = WebMercator.inverse(
            WebMercator.forward(np.array([lon]), np.array([lat]))
        )
        assert back_lon[0] == pytest.approx(lon, abs=1e-9)
        assert back_lat[0] == pytest.approx(lat, abs=1e-9)

    def test_latitude_clamped(self):
        high = WebMercator.forward(np.array([0.0]), np.array([89.9]))
        top = WebMercator.forward(np.array([0.0]), np.array([85.05112878]))
        assert high[0, 1] == pytest.approx(top[0, 1])

    def test_scale_factor(self):
        assert WebMercator.scale_factor(0.0) == pytest.approx(1.0)
        assert WebMercator.scale_factor(60.0) == pytest.approx(2.0, rel=1e-9)
        arr = WebMercator.scale_factor(np.array([0.0, 60.0]))
        np.testing.assert_allclose(arr, [1.0, 2.0], rtol=1e-9)

    def test_square_world(self):
        """EPSG:3857's defining property: the world square is 2*pi*R wide
        and equally tall at the latitude cutoff."""
        corner = WebMercator.forward(np.array([180.0]), np.array([85.05112878]))
        assert corner[0, 0] == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-9)
        assert corner[0, 1] == pytest.approx(math.pi * EARTH_RADIUS_M, rel=1e-4)

    def test_kdv_pipeline_from_lonlat(self, rng):
        """End to end: lon/lat events -> projection -> KDV."""
        from repro import compute_kdv

        lon = -122.3 + rng.normal(0, 0.01, 300)
        lat = 47.6 + rng.normal(0, 0.01, 300)
        proj = LocalEquirectangular.for_points(lon, lat)
        xy = proj.forward(lon, lat)
        res = compute_kdv(xy, size=(32, 24), bandwidth=500.0)
        assert res.max_density() > 0
