"""Tests for the ``native`` engine and the shared-memory shard transport.

Two availability regimes, both first-class:

* **Fallback checkout** (no compiled extension): the package imports
  cleanly, ``native`` is absent from the engine tables, requesting it fails
  with the standard unknown-engine error naming the engines that *are*
  available, and the CLI adds a build hint.  These tests always run.
* **Compiled checkout**: the parity suite pins the engine bit-identical to
  ``numpy_batch`` (and hence to the per-row numpy engine) across kernels,
  weights, thread counts, and RAO orientations; skip-marked when the
  extension is absent.

The shm transport tests exercise the tentpole's second layer end to end:
<1 KB of TCP per shard, bit-identical grids, pickle parity, runtime
demotion, and clean ``/dev/shm`` teardown after a SIGKILL'd worker.
"""

from __future__ import annotations

import glob
import threading
import types

import numpy as np
import pytest

from repro import PointSet, Raster, Region, compute_kdv, save_csv
from repro.cli import build_parser, main as cli_main
from repro.core.batch import NumpyBatchEngine
from repro.core.envelope import YSortedIndex
from repro.core.kernels import get_kernel
from repro.core.native import NATIVE_AVAILABLE, native_max_threads
from repro.dist import shm
from repro.dist.coordinator import Coordinator
from repro.dist.errors import DistError
from repro.dist.worker import (
    WorkerServer,
    compute_shard,
    engine_spec,
    resolve_row_engine,
)
from repro.obs import Recorder

needs_native = pytest.mark.skipif(
    not NATIVE_AVAILABLE, reason="native sweep extension not compiled"
)

KERNEL_NAMES = ("uniform", "epanechnikov", "quartic")


@pytest.fixture(scope="module")
def cluster_xy() -> np.ndarray:
    rng = np.random.default_rng(20220613)
    centers = rng.uniform([0.0, 0.0], [100.0, 80.0], size=(8, 2))
    return centers[rng.integers(0, 8, 3000)] + rng.normal(0.0, 6.0, (3000, 2))


@pytest.fixture(scope="module")
def cluster_weights(cluster_xy) -> np.ndarray:
    return np.random.default_rng(99).uniform(0.5, 2.0, len(cluster_xy))


def _sweep_args(xy, bandwidth=9.0, width=64, height=48, region=(100.0, 80.0)):
    ysorted = YSortedIndex(xy)
    raster = Raster(Region(0.0, 0.0, *region), width, height)
    cx = (raster.region.xmin + raster.region.xmax) / 2.0
    xs_scaled = (raster.x_centers() - cx) / bandwidth
    return ysorted, raster.y_centers(), xs_scaled, cx


# ---------------------------------------------------------------------------
# Availability matrix (always runs; the fallback half is what CI's
# pure-python jobs exercise)
# ---------------------------------------------------------------------------


class TestAvailability:
    def test_module_imports_without_extension(self):
        """repro.core.native must import on a wheel-less checkout."""
        import repro.core.native as native_mod

        assert isinstance(native_mod.NATIVE_AVAILABLE, bool)
        assert native_max_threads() >= 1

    def test_engine_tables_match_availability(self):
        from repro.core.slam_bucket import slam_bucket_grid
        from repro.core.slam_sort import slam_sort_grid

        assert ("native" in slam_bucket_grid) == NATIVE_AVAILABLE
        assert ("native" in slam_sort_grid) == NATIVE_AVAILABLE

    @pytest.mark.skipif(NATIVE_AVAILABLE, reason="extension is compiled here")
    def test_unknown_engine_error_names_available(self, cluster_xy):
        with pytest.raises(ValueError, match="unknown engine 'native'") as exc:
            compute_kdv(
                cluster_xy, size=(16, 12), bandwidth=9.0,
                method="slam_bucket", engine="native",
            )
        assert "numpy_batch" in str(exc.value)

    @pytest.mark.skipif(NATIVE_AVAILABLE, reason="extension is compiled here")
    def test_engine_constructor_raises_clean_error(self):
        from repro.core.native import NativeEngine

        with pytest.raises(RuntimeError, match="docs/native.md"):
            NativeEngine()

    def test_cli_accepts_native_choice(self):
        # ``native`` stays in the CLI choices even on a fallback checkout
        # so the error is ours (naming the build fix), not argparse's.
        args = build_parser().parse_args(
            ["compute", "x.csv", "--engine", "native"]
        )
        assert args.engine == "native"

    @pytest.mark.skipif(NATIVE_AVAILABLE, reason="extension is compiled here")
    def test_cli_error_message_names_available_engines(
        self, cluster_xy, tmp_path, capsys
    ):
        """`repro compute --engine native` on a fallback checkout: exit 2
        plus an error naming the registered engines and a build hint."""
        csv = tmp_path / "pts.csv"
        save_csv(PointSet(cluster_xy), csv)
        code = cli_main([
            "compute", str(csv), "-o", str(tmp_path / "o.ppm"),
            "--size", "16x12", "--engine", "native",
        ])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown engine 'native'" in err
        assert "numpy_batch" in err
        assert "docs/native.md" in err


# ---------------------------------------------------------------------------
# Parity suite (compiled checkouts only)
# ---------------------------------------------------------------------------


@needs_native
class TestNativeParity:
    """native == numpy_batch == per-row numpy, bit for bit."""

    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    @pytest.mark.parametrize("weighted", (False, True))
    @pytest.mark.parametrize("threads", (1, 3))
    def test_kernels_weights_threads(
        self, kernel_name, weighted, threads, cluster_xy, cluster_weights
    ):
        from repro.core.native import NativeEngine

        ysorted, y_centers, xs_scaled, cx = _sweep_args(cluster_xy)
        kernel = get_kernel(kernel_name)
        sw = cluster_weights[ysorted.order] if weighted else None
        ref = NumpyBatchEngine().sweep_block(
            0, len(y_centers), y_centers, xs_scaled, ysorted, cx, 9.0,
            kernel, sorted_weights=sw,
        )
        got = NativeEngine(threads=threads).sweep_block(
            0, len(y_centers), y_centers, xs_scaled, ysorted, cx, 9.0,
            kernel, sorted_weights=sw,
        )
        assert np.array_equal(ref, got)

    @pytest.mark.parametrize("size", ((48, 36), (36, 48)))
    def test_rao_both_orientations(self, size, cluster_xy):
        kw = dict(
            region=Region(0.0, 0.0, 100.0, 80.0), size=size, bandwidth=9.0,
            method="slam_bucket_rao", normalization="none",
        )
        a = compute_kdv(cluster_xy, engine="numpy", **kw).grid
        b = compute_kdv(cluster_xy, engine="native", **kw).grid
        assert np.array_equal(a, b)

    def test_workers_kwarg_is_thread_count(self, cluster_xy):
        """``workers`` maps to OpenMP threads; any count is bit-identical,
        and the stats report the realized parallelism."""
        kw = dict(
            region=Region(0.0, 0.0, 100.0, 80.0), size=(40, 30),
            bandwidth=9.0, method="slam_bucket", normalization="none",
            collect_stats=True,
        )
        a = compute_kdv(cluster_xy, engine="native", workers=1, **kw)
        b = compute_kdv(cluster_xy, engine="native", workers=4, **kw)
        assert np.array_equal(a.grid, b.grid)
        assert a.stats.backend == "serial"
        assert b.stats.workers == 4
        assert b.stats.backend == "openmp"

    def test_empty_and_degenerate(self):
        from repro.core.native import NativeEngine

        for n, width, height in ((0, 8, 6), (1, 1, 5), (7, 5, 1)):
            xy = np.random.default_rng(n).uniform((0, 0), (50, 40), (n, 2))
            ysorted, y_centers, xs_scaled, cx = _sweep_args(
                xy, bandwidth=3.0, width=width, height=height,
                region=(50.0, 40.0),
            )
            kernel = get_kernel("epanechnikov")
            ref = NumpyBatchEngine().sweep_block(
                0, height, y_centers, xs_scaled, ysorted, cx, 3.0, kernel
            )
            got = NativeEngine().sweep_block(
                0, height, y_centers, xs_scaled, ysorted, cx, 3.0, kernel
            )
            assert np.array_equal(ref, got)

    def test_recorder_counters_match_batch(self, cluster_xy):
        from repro.core.native import NativeEngine

        ysorted, y_centers, xs_scaled, cx = _sweep_args(cluster_xy)
        kernel = get_kernel("epanechnikov")
        snaps = []
        for engine in (NumpyBatchEngine(), NativeEngine()):
            rec = Recorder()
            engine.sweep_block(
                0, len(y_centers), y_centers, xs_scaled, ysorted, cx, 9.0,
                kernel, recorder=rec,
            )
            snaps.append(rec.snapshot()["counters"])
        for key in ("sweep.rows", "sweep.empty_rows", "sweep.envelope_points"):
            assert snaps[0][key] == snaps[1][key]

    def test_dist_engine_spec_round_trip(self):
        from repro.core.native import NativeEngine

        spec = engine_spec(NativeEngine(threads=3))
        assert spec == {"kind": "native", "threads": 3}
        engine = resolve_row_engine(spec)
        assert isinstance(engine, NativeEngine)
        assert engine.threads == 3

    def test_unknown_kernel_rejected(self, cluster_xy):
        from repro.core.native import NativeEngine

        ysorted, y_centers, xs_scaled, cx = _sweep_args(cluster_xy)
        fake = types.SimpleNamespace(name="triangular", num_channels=1)
        with pytest.raises(ValueError, match="triangular"):
            NativeEngine().sweep_block(
                0, 4, y_centers, xs_scaled, ysorted, cx, 9.0, fake
            )


def test_native_spec_falls_back_to_batch_when_absent(monkeypatch):
    """A worker without the extension resolves a native spec to the
    bit-identical numpy_batch engine instead of erroring the shard."""
    import repro.dist.worker as worker_mod

    monkeypatch.setattr(worker_mod, "NATIVE_AVAILABLE", False)
    engine = worker_mod.resolve_row_engine({"kind": "native", "threads": 2})
    assert isinstance(engine, NumpyBatchEngine)


# ---------------------------------------------------------------------------
# Shared-memory transport
# ---------------------------------------------------------------------------


def _leftover_segments() -> "list[str]":
    return glob.glob("/dev/shm/rkdv-*")


def _render(coord, xy, *, weights=None, shards=4, height=120, width=160):
    ysorted, y_centers, xs_scaled, cx = _sweep_args(
        xy, width=width, height=height
    )
    sw = None if weights is None else weights[ysorted.order]
    return coord.render_sweep(
        ysorted=ysorted,
        y_centers=y_centers,
        xs_scaled=xs_scaled,
        cx=cx,
        bandwidth=9.0,
        kernel=get_kernel("epanechnikov"),
        engine=engine_spec(NumpyBatchEngine()),
        sorted_weights=sw,
        shards=shards,
    )


@pytest.mark.skipif(not shm.SHM_AVAILABLE, reason="no shared memory here")
class TestShmTransport:
    def test_round_trip_bit_identical_and_tiny_frames(
        self, cluster_xy, cluster_weights
    ):
        """Acceptance criterion: a local pool ships < 1 KB of TCP per shard
        for a 160x120 grid, with grids bit-identical to the pickle path."""
        srv = WorkerServer(port=0)
        srv.start_in_thread()
        try:
            rec = Recorder()
            with Coordinator([("127.0.0.1", srv.port)], recorder=rec) as coord:
                _, grid, _ = _render(
                    coord, cluster_xy, weights=cluster_weights, shards=4
                )
            with Coordinator([]) as local:
                _, ref, _ = _render(
                    local, cluster_xy, weights=cluster_weights, shards=4
                )
            assert np.array_equal(grid, ref)
            shards = rec.counter_value("dist.shards")
            tx = rec.counter_value("dist.bytes_tx")
            assert shards >= 4
            assert tx > 0 and tx / shards < 1024
            # Inputs were published once plus each band written back.
            assert rec.counter_value("dist.shm_bytes") > grid.nbytes
            assert rec.counter_value("dist.local_shards") == 0
            assert not _leftover_segments()
        finally:
            srv.stop()

    def test_shm_disabled_knob_uses_pickle(self, cluster_xy):
        srv = WorkerServer(port=0)
        srv.start_in_thread()
        try:
            rec = Recorder()
            with Coordinator(
                [("127.0.0.1", srv.port)], shm=False, recorder=rec
            ) as coord:
                _, grid, _ = _render(coord, cluster_xy, shards=2)
            with Coordinator([]) as local:
                _, ref, _ = _render(local, cluster_xy, shards=2)
            assert np.array_equal(grid, ref)
            assert rec.counter_value("dist.shm_bytes") == 0
            # Pickle frames carry the halo arrays: far over 1 KB per shard.
            assert rec.counter_value("dist.bytes_tx") > 10 * 1024
            assert not _leftover_segments()
        finally:
            srv.stop()

    def test_worker_shm_failure_demotes_to_pickle(self, cluster_xy, monkeypatch):
        """A worker that cannot map the segments is demoted, the shard is
        resubmitted over pickle, and the render still completes."""
        def broken_attach(name):
            raise shm.ShmError(f"injected mapping failure for {name!r}")

        monkeypatch.setattr(shm, "attach", broken_attach)
        srv = WorkerServer(port=0)
        srv.start_in_thread()
        try:
            rec = Recorder()
            with Coordinator([("127.0.0.1", srv.port)], recorder=rec) as coord:
                _, grid, _ = _render(coord, cluster_xy, shards=2)
            monkeypatch.undo()
            with Coordinator([]) as local:
                _, ref, _ = _render(local, cluster_xy, shards=2)
            assert np.array_equal(grid, ref)
            assert rec.counter_value("dist.shm_demotions") >= 1
            assert not _leftover_segments()
        finally:
            srv.stop()

    def test_hello_advertises_caps_and_node(self):
        from repro.dist import proto

        hello = proto.hello_payload()
        assert hello["caps"]["shm"] == shm.SHM_AVAILABLE
        assert hello["node"] == proto.node_id()

    def test_segments_unlinked_after_failed_render(self, cluster_xy):
        """try/finally: a poisoned shard (bad engine spec) must not leak
        segments."""
        srv = WorkerServer(port=0)
        srv.start_in_thread()
        try:
            with Coordinator([("127.0.0.1", srv.port)]) as coord:
                ysorted, y_centers, xs_scaled, cx = _sweep_args(cluster_xy)
                with pytest.raises(DistError):
                    coord.render_sweep(
                        ysorted=ysorted, y_centers=y_centers,
                        xs_scaled=xs_scaled, cx=cx, bandwidth=9.0,
                        kernel=get_kernel("epanechnikov"),
                        engine={"kind": "no-such-engine"}, shards=2,
                    )
            assert not _leftover_segments()
        finally:
            srv.stop()

    def test_compute_shard_materializes_shm_task(self, cluster_xy):
        """The worker-side zero-copy materialization equals the inline-array
        task bit for bit."""
        ysorted, y_centers, xs_scaled, cx = _sweep_args(cluster_xy)
        req = shm.RequestSegment(ysorted.sorted_xy, None, y_centers, xs_scaled)
        try:
            base = {
                "shard_id": 0, "row_start": 10, "row_stop": 30,
                "cx": cx, "bandwidth": 9.0, "kernel": "epanechnikov",
                "engine": engine_spec(NumpyBatchEngine()),
                "collect": False,
            }
            shm_task = dict(base)
            shm_task.update({
                "halo_start": 0, "halo_stop": len(ysorted.sorted_xy),
                "shm": {"req": req.descr, "resp": None},
            })
            pickle_task = dict(base)
            pickle_task.update({
                "halo_xy": ysorted.sorted_xy,
                "halo_weights": None,
                "y_centers": y_centers[10:30],
                "xs_scaled": xs_scaled,
            })
            a, _ = compute_shard(shm_task)
            b, _ = compute_shard(pickle_task)
            assert np.array_equal(a, b)
        finally:
            req.unlink()
        assert not _leftover_segments()


@pytest.mark.skipif(not shm.SHM_AVAILABLE, reason="no shared memory here")
def test_sigkill_mid_shard_recovers_and_cleans_up(cluster_xy):
    """The CI smoke scenario in-process: SIGKILL a real worker process
    mid-shard; the render completes bit-identically on the survivor and no
    segment survives in /dev/shm."""
    from repro.dist.launch import launch_local_workers

    pool = launch_local_workers(2, delay_s=0.5)
    rec = Recorder()
    try:
        with Coordinator(pool.addrs, recorder=rec) as coord:
            assert coord.connect() == 2
            victim = pool[0]
            killer = threading.Timer(0.25, victim.kill)
            killer.start()
            try:
                _, grid, _ = _render(coord, cluster_xy, shards=4)
            finally:
                killer.cancel()
            assert not victim.alive()
    finally:
        pool.shutdown()
    with Coordinator([]) as local:
        _, ref, _ = _render(local, cluster_xy, shards=4)
    assert np.array_equal(grid, ref)
    assert rec.counter_value("dist.worker_deaths") >= 1
    assert not _leftover_segments()
