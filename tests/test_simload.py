"""repro.simload: event loop, arrival/session statistics, determinism.

The headline contract under test: one (scenario, seed) pair reproduces
byte-for-byte — identical request traces, identical metric blocks — across
repeated runs, including through the ``repro simload`` CLI.  Statistical
properties of the generators (Poisson counts, Zipf skew, flash-crowd bias)
are pinned with tolerance bands on seeded draws, so they are exact-repeat
stable while still checking the distributions mean something.
"""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.simload import (
    ArrivalSpec,
    EventLoop,
    SCENARIOS,
    SessionSpec,
    SimClock,
    arrival_times,
    find_knee,
    get_scenario,
    peak_rate,
    rate_at,
    run_scenario,
    sweep,
    trace_digest,
)
from repro.simload.metrics import OK, RequestRecord, trace_lines
from repro.simload.sessions import SessionWalk, TilePopularity
from repro.viz.region import Region
from repro.viz.tiles import TileScheme


def _short(name: str, **overrides):
    """A scenario trimmed for unit-test speed."""
    return dataclasses.replace(
        get_scenario(name), duration_s=10.0, n_points=800, **overrides
    )


class TestEventLoop:
    def test_clock_never_runs_backwards(self):
        clock = SimClock()
        clock.advance_to(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)
        assert clock.now == clock() == 5.0

    def test_events_fire_in_time_then_schedule_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(2.0, lambda: fired.append("late"))
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(1.0, lambda: fired.append("b"))  # same instant: FIFO
        assert loop.run() == 3
        assert fired == ["a", "b", "late"]
        assert loop.clock.now == 2.0

    def test_actions_may_schedule_followups(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: loop.schedule(3.0, lambda: fired.append(3)))
        loop.schedule(2.0, lambda: fired.append(2))
        loop.run()
        assert fired == [2, 3]

    def test_cannot_schedule_into_the_past(self):
        loop = EventLoop()
        loop.schedule(1.0, lambda: None)
        loop.run()
        with pytest.raises(ValueError):
            loop.schedule(0.5, lambda: None)

    def test_run_until_stops_before_later_events(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run(until=2.0)
        assert fired == [1] and len(loop) == 1


class TestArrivals:
    def test_spec_validation(self):
        with pytest.raises(ValueError):
            ArrivalSpec(shape="bogus")
        with pytest.raises(ValueError):
            ArrivalSpec(rate=0.0)
        with pytest.raises(ValueError):
            ArrivalSpec(shape="flash", spike_start_s=5.0, spike_end_s=5.0)

    def test_rate_shapes(self):
        steady = ArrivalSpec(shape="steady", rate=10.0)
        assert rate_at(steady, 3.0) == 10.0 == peak_rate(steady)
        diurnal = ArrivalSpec(
            shape="diurnal", rate=10.0, amplitude=0.5, period_s=40.0
        )
        assert rate_at(diurnal, 10.0) == pytest.approx(15.0)  # sin peak
        assert rate_at(diurnal, 30.0) == pytest.approx(5.0)  # trough
        assert peak_rate(diurnal) == pytest.approx(15.0)
        flash = ArrivalSpec(
            shape="flash", rate=10.0, spike_start_s=5.0, spike_end_s=8.0,
            spike_factor=4.0,
        )
        assert rate_at(flash, 6.0) == 40.0 and rate_at(flash, 9.0) == 10.0
        assert peak_rate(flash) == 40.0

    def test_steady_count_within_poisson_band(self):
        spec = ArrivalSpec(shape="steady", rate=50.0)
        times = arrival_times(spec, 40.0, np.random.default_rng(3))
        expected = 50.0 * 40.0
        # 5 sigma on a Poisson(2000): generous but meaningful
        assert abs(len(times) - expected) < 5 * np.sqrt(expected)
        assert np.all(np.diff(times) >= 0) and times[-1] < 40.0

    def test_flash_density_ratio(self):
        spec = ArrivalSpec(
            shape="flash", rate=30.0, spike_start_s=10.0, spike_end_s=20.0,
            spike_factor=6.0,
        )
        times = arrival_times(spec, 30.0, np.random.default_rng(4))
        inside = np.sum((times >= 10.0) & (times < 20.0)) / 10.0
        outside = np.sum((times < 10.0) | (times >= 20.0)) / 20.0
        assert 4.0 < inside / outside < 8.0  # nominal 6x

    def test_scaled_preserves_shape(self):
        spec = ArrivalSpec(shape="diurnal", rate=10.0).scaled(3.0)
        assert spec.rate == 30.0 and spec.shape == "diurnal"


class TestSessions:
    def _scheme(self):
        return TileScheme(Region(0.0, 0.0, 1.0, 1.0))

    def test_zipf_probabilities_are_ranked(self):
        pop = TilePopularity(2, 1.2, np.random.default_rng(0))
        assert len(pop.tiles) == 1 + 4 + 16
        assert pop.probs.sum() == pytest.approx(1.0)
        assert np.all(np.diff(pop.probs) < 0)  # strictly decreasing by rank

    def test_zipf_sampling_matches_weights(self):
        rng = np.random.default_rng(1)
        pop = TilePopularity(2, 1.2, rng)
        draws = [pop.sample(rng) for _ in range(4000)]
        top_frac = sum(1 for d in draws if d == pop.tiles[0]) / len(draws)
        # chi-square-ish tolerance band around the rank-1 probability
        assert abs(top_frac - pop.probs[0]) < 0.04

    def test_walk_stays_inside_the_pyramid(self):
        spec = SessionSpec(max_zoom=3)
        walk = SessionWalk(spec, self._scheme(), np.random.default_rng(2))
        for _ in range(500):
            z, tx, ty = walk.next_tile()
            per_axis = 1 << z
            assert 0 <= z <= 3
            assert 0 <= tx < per_axis and 0 <= ty < per_axis

    def test_walk_is_seed_deterministic(self):
        spec = SessionSpec(max_zoom=3)
        a = SessionWalk(spec, self._scheme(), np.random.default_rng(7))
        b = SessionWalk(spec, self._scheme(), np.random.default_rng(7))
        assert [a.next_tile() for _ in range(200)] == [
            b.next_tile() for _ in range(200)
        ]

    def test_flash_bias_hits_the_hotspot(self):
        spec = SessionSpec(max_zoom=3, hotspot_tiles=3, hotspot_bias=0.9)
        walk = SessionWalk(spec, self._scheme(), np.random.default_rng(5))
        hot = set(walk.hotspot)
        assert hot and all(z == 3 for z, _, _ in hot)
        draws = [walk.next_tile(in_flash=True) for _ in range(600)]
        frac = sum(1 for d in draws if d in hot) / len(draws)
        assert 0.85 < frac <= 1.0  # nominal 0.9 plus walk spillover

    def test_operation_mix_must_be_a_distribution(self):
        with pytest.raises(ValueError):
            SessionSpec(p_zoom_in=0.6, p_zoom_out=0.3, p_pan=0.3)


class TestScenarios:
    def test_registry_is_complete(self):
        assert set(SCENARIOS) == {"default", "flashcrowd", "diurnal", "ingest"}

    def test_unknown_scenario_raises(self):
        with pytest.raises(ValueError, match="unknown scenario"):
            get_scenario("bogus")

    def test_at_rate_scales_offered_load(self):
        sc = get_scenario("default").at_rate(80.0)
        assert sc.arrivals.rate == pytest.approx(80.0)
        assert sc.name == "default"  # same workload, new level

    def test_window_requests_require_a_window(self):
        with pytest.raises(ValueError, match="window_s"):
            dataclasses.replace(
                get_scenario("default"), window_request_fraction=0.5
            )


class TestMetrics:
    def _record(self, seq, **overrides):
        base = dict(
            seq=seq, t=0.5 * seq, zoom=1, tx=0, ty=1, window=None,
            outcome=OK, tier="exact", latency_s=0.01,
        )
        base.update(overrides)
        return RequestRecord(**base)

    def test_trace_is_canonical_and_digest_sensitive(self):
        records = [self._record(i) for i in range(5)]
        assert trace_digest(records) == trace_digest(list(reversed(records)))
        changed = [self._record(i) for i in range(5)]
        changed[2].latency_s = 0.5
        assert trace_digest(changed) != trace_digest(records)
        assert len(trace_lines(records)) == 5

    def test_find_knee_crossing(self):
        levels = [
            (5.0, {"shed_fraction": 0.0, "achieved_rps": 5.0}),
            (10.0, {"shed_fraction": 0.004, "achieved_rps": 9.9}),
            (20.0, {"shed_fraction": 0.08, "achieved_rps": 15.0}),
        ]
        knee = find_knee(levels)
        assert knee["max_sustainable_qps"] == 10.0
        assert knee["first_unsustainable_qps"] == 20.0

    def test_find_knee_none_sustainable(self):
        assert find_knee([(5.0, {"shed_fraction": 0.5, "achieved_rps": 2.0})]) is None

    def test_find_knee_all_sustainable(self):
        knee = find_knee([(5.0, {"shed_fraction": 0.0, "achieved_rps": 5.0})])
        assert knee["max_sustainable_qps"] == 5.0
        assert "first_unsustainable_qps" not in knee


class TestDeterminism:
    def test_same_seed_reproduces_trace_and_metrics(self):
        sc = _short("default")
        a = run_scenario(sc, seed=11)
        b = run_scenario(sc, seed=11)
        assert a.trace == b.trace
        assert a.metrics == b.metrics
        assert a.digest == b.digest

    def test_different_seeds_differ(self):
        sc = _short("default")
        assert run_scenario(sc, seed=1).digest != run_scenario(sc, seed=2).digest

    def test_flashcrowd_repeats_through_quality_ladder(self):
        sc = _short("flashcrowd")
        a = run_scenario(sc, seed=11)
        b = run_scenario(sc, seed=11)
        assert a.trace == b.trace and a.metrics == b.metrics

    def test_sweep_reports_a_knee_on_the_default_scenario(self):
        summary = sweep(_short("default"), seed=7, factors=(0.5, 1.0, 4.0))
        rates = [rate for rate, _ in summary["levels"]]
        assert rates == sorted(rates)
        knee = summary["knee"]
        assert knee is not None
        assert knee["max_sustainable_qps"] in rates
        # the top level must genuinely shed: that's what the knee knees on
        assert summary["levels"][-1][1]["shed_fraction"] > 0.01

    def test_cli_double_run_is_byte_identical(self, tmp_path):
        repo = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(repo / "src")
        outs = []
        for sub in ("a", "b"):
            out = tmp_path / sub
            proc = subprocess.run(
                [sys.executable, "-m", "repro", "simload",
                 "--scenario", "flashcrowd", "--seed", "7",
                 "--json", str(out)],
                capture_output=True, text=True, timeout=300, env=env,
                cwd=str(tmp_path),
            )
            assert proc.returncode == 0, proc.stderr
            outs.append((out / "simload_flashcrowd_seed7.json").read_bytes())
        assert outs[0] == outs[1]
        payload = json.loads(outs[0])
        assert payload["metrics"]["requests"] == len(payload["trace"])
        assert payload["metrics"]["errors"] == 0
