"""Tests for the benchmark harness and workload configuration."""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.bench.harness import (
    TIMEOUT,
    MethodTimer,
    format_series,
    format_table,
    measure_peak_memory,
    time_call,
)
from repro.bench.workloads import (
    BANDWIDTH_RATIOS,
    SIZE_FRACTIONS,
    ZOOM_RATIOS,
    base_resolution,
    bench_dataset,
    bench_raster,
    bench_scale,
    default_bandwidth,
    grid_callable,
    resolution_ladder,
)


class TestTimeCall:
    def test_returns_time_and_result(self):
        seconds, result = time_call(lambda: 41 + 1)
        assert result == 42
        assert seconds >= 0.0

    def test_measures_sleep(self):
        seconds, _ = time_call(lambda: time.sleep(0.05))
        assert seconds >= 0.045


class TestMethodTimer:
    def test_records_times(self):
        timer = MethodTimer("fast", soft_budget_s=10.0)
        timer.run(lambda: None)
        timer.run(lambda: None)
        assert len(timer.times) == 2
        assert all(t != TIMEOUT for t in timer.times)

    def test_budget_exhaustion_skips_later_cells(self):
        timer = MethodTimer("slow", soft_budget_s=0.01)
        timer.run(lambda: time.sleep(0.05))
        ran = []
        out = timer.run(lambda: ran.append(1))
        assert out == TIMEOUT
        assert ran == []  # the second cell never executed
        assert timer.times[1] == TIMEOUT

    def test_under_budget_keeps_running(self):
        timer = MethodTimer("ok", soft_budget_s=5.0)
        timer.run(lambda: None)
        assert timer.run(lambda: 1) != TIMEOUT


class TestMemoryMeasurement:
    def test_detects_allocation(self):
        def allocate():
            return np.zeros(2_000_000)

        peak, result = measure_peak_memory(allocate)
        assert peak >= 16_000_000
        assert result.shape == (2_000_000,)

    def test_small_function_small_peak(self):
        peak, _ = measure_peak_memory(lambda: 1 + 1)
        assert peak < 1_000_000


class TestFormatting:
    def test_table_alignment(self):
        text = format_table(
            ["method", "seattle"], [["scan", 1.25], ["slam", 0.031]], title="T"
        )
        lines = text.split("\n")
        assert lines[0] == "T"
        assert "method" in lines[1] and "seattle" in lines[1]
        assert "1.250" in text and "0.031" in text

    def test_table_timeout_cell(self):
        text = format_table(["m", "t"], [["scan", TIMEOUT]])
        assert "timeout" in text

    def test_series(self):
        text = format_series("X", [320, 640], {"slam": [0.1, 0.2]})
        assert "320" in text and "640" in text and "slam" in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestWorkloads:
    def test_sweep_constants_match_paper(self):
        assert SIZE_FRACTIONS == (0.25, 0.5, 0.75, 1.0)
        assert BANDWIDTH_RATIOS == (0.25, 0.5, 1.0, 2.0, 4.0)
        assert ZOOM_RATIOS == (0.25, 0.5, 0.75, 1.0)

    def test_scale_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_scale() == 0.5

    def test_base_resolution_aspect(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_RESOLUTION", "1280")
        assert base_resolution() == (1280, 960)

    def test_resolution_ladder_quadruples_pixels(self):
        ladder = resolution_ladder()
        assert len(ladder) == 4
        pixel_counts = [x * y for x, y in ladder]
        for small, big in zip(pixel_counts, pixel_counts[1:]):
            assert big == pytest.approx(4 * small, rel=0.1)

    def test_bench_dataset_scaled(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        ps = bench_dataset("seattle")
        assert len(ps) == round(862_873 * 0.001)

    def test_bench_raster(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        ps = bench_dataset("seattle")
        raster = bench_raster(ps, (40, 30))
        assert raster.shape == (30, 40)

    def test_default_bandwidth_positive(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.001")
        ps = bench_dataset("seattle")
        assert default_bandwidth(ps) > 0

    def test_grid_callable_runs(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0005")
        ps = bench_dataset("seattle")
        raster = bench_raster(ps, (16, 12))
        call = grid_callable(
            "slam_bucket_rao", ps, raster, "epanechnikov", default_bandwidth(ps)
        )
        grid = call()
        assert grid.shape == (12, 16)
        assert grid.max() > 0
