"""Tests for the machine-readable benchmark report writer (repro.bench.report).

Contracts under test, mirroring docs/benchmarks.md:

* ``BenchReport.write`` emits strict JSON that ``load_report`` round-trips;
* the TIMEOUT infinity sentinel encodes as ``{"value": null, "timeout": true}``;
* ``validate_report`` rejects malformed payloads with a message naming the
  first violation;
* provenance fields (git SHA, host, env knobs) are populated.
"""

from __future__ import annotations

import json

import pytest

from repro.bench.harness import TIMEOUT
from repro.bench.report import (
    BENCH_REPORT_SCHEMA,
    BENCH_REPORT_VERSION,
    BenchReport,
    bench_env,
    git_revision,
    host_info,
    load_report,
    validate_report,
)
from repro.obs import Recorder


def _small_report() -> BenchReport:
    report = BenchReport(
        "unit_test", title="unit test", key_fields=["method", "dataset"]
    )
    report.add_cell(("slam_sort", "seattle"), 0.5, peak_memory_bytes=1024)
    report.add_cell(("akde", "seattle"), TIMEOUT)
    return report


class TestBenchReport:
    def test_write_and_load_round_trip(self, tmp_path):
        report = _small_report()
        rec = Recorder()
        rec.count("sweep.rows", 10)
        with rec.span("sweep"):
            pass
        report.attach_recorder(rec)
        report.meta["resolution"] = [160, 120]

        path = report.write(tmp_path)
        assert path == tmp_path / "BENCH_unit_test.json"

        loaded = load_report(path)
        assert loaded["schema"] == BENCH_REPORT_SCHEMA
        assert loaded["version"] == BENCH_REPORT_VERSION
        assert loaded["name"] == "unit_test"
        assert loaded["key_fields"] == ["method", "dataset"]
        assert loaded["meta"] == {"resolution": [160, 120]}
        assert loaded["recorder"]["counters"] == {"sweep.rows": 10}
        assert "sweep" in loaded["recorder"]["phases"]
        assert loaded["wall_clock_s"] >= 0.0

    def test_timeout_encoding(self, tmp_path):
        path = _small_report().write(tmp_path)
        text = path.read_text()
        assert "Infinity" not in text  # strict JSON, no IEEE spellings
        cells = {tuple(c["key"]): c for c in json.loads(text)["cells"]}
        timed_out = cells[("akde", "seattle")]
        assert timed_out["value"] is None and timed_out["timeout"] is True
        measured = cells[("slam_sort", "seattle")]
        assert measured["value"] == 0.5 and measured["timeout"] is False
        assert measured["peak_memory_bytes"] == 1024

    def test_scalar_key_is_wrapped(self):
        report = BenchReport("x")
        report.add_cell("solo", 1.0)
        assert report.cells[0]["key"] == ["solo"]

    def test_add_cells_sorted_deterministically(self):
        report = BenchReport("x")
        report.add_cells({("b", 2): 1.0, ("a", 10): 2.0, ("a", 2): 3.0})
        assert [c["key"] for c in report.cells] == [
            ["a", 10], ["a", 2], ["b", 2]
        ]

    def test_timeout_in_extra_field_also_encoded(self):
        report = BenchReport("x")
        report.add_cell(("m",), 1.0, baseline=TIMEOUT)
        assert report.cells[0]["baseline"] is None

    def test_git_provenance(self, tmp_path):
        loaded = load_report(_small_report().write(tmp_path))
        # the test suite runs inside the repo checkout
        assert loaded["git"]["sha"] and len(loaded["git"]["sha"]) == 40
        assert isinstance(loaded["git"]["dirty"], bool)

    def test_git_revision_outside_checkout(self, tmp_path):
        assert git_revision(tmp_path) == {"sha": None, "dirty": None}

    def test_host_info_fields(self):
        info = host_info()
        assert info["python"] and info["machine"]
        assert info["cpu_count"] >= 1

    def test_bench_env_records_only_set_knobs(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert "REPRO_BENCH_SCALE" not in bench_env()
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.5")
        assert bench_env()["REPRO_BENCH_SCALE"] == "0.5"


class TestValidateReport:
    def test_accepts_own_output(self):
        validate_report(_small_report().to_dict())

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d.update(schema="other"), "schema"),
            (lambda d: d.update(version="1"), "version"),
            (lambda d: d.update(version=BENCH_REPORT_VERSION + 1), "newer"),
            (lambda d: d.update(name=""), "name"),
            (lambda d: d.update(cells="nope"), "cells"),
            (lambda d: d.pop("git"), "git"),
            (lambda d: d["cells"].append({"key": [], "value": 1, "timeout": False}),
             "key"),
            (lambda d: d["cells"].append({"key": ["a"], "value": "fast",
                                          "timeout": False}), "value"),
            (lambda d: d["cells"].append({"key": ["a"], "value": 1.0,
                                          "timeout": "no"}), "timeout"),
            (lambda d: d["cells"].append({"key": ["a"], "value": None,
                                          "timeout": False}), "not a timeout"),
            (lambda d: d.update(recorder={"counters": {}}), "recorder"),
        ],
    )
    def test_rejects_malformed(self, mutate, message):
        payload = _small_report().to_dict()
        mutate(payload)
        with pytest.raises(ValueError, match=message):
            validate_report(payload)

    def test_rejects_non_dict(self):
        with pytest.raises(ValueError, match="object"):
            validate_report([1, 2])

    def test_write_refuses_invalid_payload(self, tmp_path):
        """A report that fails its own schema check is never written."""
        report = BenchReport("bad")
        report.cells.append({"key": [], "value": 1.0, "timeout": False})
        with pytest.raises(ValueError):
            report.write(tmp_path)
        assert not (tmp_path / "BENCH_bad.json").exists()


class TestServingBench:
    def test_emits_valid_report(self, tmp_path):
        """benchmarks/bench_serving.py end to end, tiny knobs: the emitted
        BENCH_serving.json passes validate_report and carries the serving
        metrics as cells."""
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parents[1]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(repo / "src"), str(repo / "benchmarks")]
        )
        proc = subprocess.run(
            [
                sys.executable, str(repo / "benchmarks" / "bench_serving.py"),
                "--points", "400", "--requests", "60", "--clients", "4",
                "--tile-size", "8", "--workers", "2",
                "--json", str(tmp_path),
            ],
            capture_output=True, text=True, timeout=300, cwd=str(tmp_path),
            env=env,
        )
        assert proc.returncode == 0, proc.stderr
        report = load_report(tmp_path / "BENCH_serving.json")
        assert report["name"] == "serving"
        assert report["key_fields"] == ["metric"]
        cells = {tuple(c["key"]): c["value"] for c in report["cells"]}
        for metric in (
            "offered_rps", "achieved_rps", "latency_p50_ms",
            "latency_p99_ms", "coalescing_ratio", "cache_hit_rate",
            "requests", "renders",
        ):
            assert (metric,) in cells, metric
        assert cells[("requests",)] == 60
        assert cells[("offered_rps",)] > 0
        assert cells[("achieved_rps",)] <= cells[("offered_rps",)]
        assert 0.0 <= cells[("coalescing_ratio",)] < 1.0
        assert 0.0 <= cells[("cache_hit_rate",)] <= 1.0
        # every request was answered: renders bounded by distinct tiles (85)
        assert cells[("renders",)] <= 85
        assert report["meta"]["clients"] == 4
        assert report["recorder"] is not None
