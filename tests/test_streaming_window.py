"""Soundness of sliding-window serving: O(Δ) ticks must be invisible.

The windowed path earns its speedup by *never* recomputing: ticks apply
signed grid updates and drop only provably-affected tiles.  These tests pin
the three claims that make that safe:

* after **any** interleaving of inserts and expiries, the maintained grid
  matches a fresh recompute of the live points to <= 1e-9 (hypothesis
  drives the interleavings);
* a rebuild reports and resets the accumulated drift;
* a tick leaves every tile outside the expired batches' inflated MBRs
  byte-identical and cached, while windowed tiles always equal a
  from-scratch render of exactly the live window.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Region
from repro.data.points import PointSet
from repro.extensions.streaming import StreamingKDV
from repro.obs import Recorder
from repro.serve import TileService, WindowError
from repro.viz.tiles import TileScheme, render_tile

REGION = Region(0.0, 0.0, 1000.0, 1000.0)
TILE = 8
BANDWIDTH = 60.0


def make_engine(**kwargs) -> StreamingKDV:
    kwargs.setdefault("size", (16, 12))
    kwargs.setdefault("bandwidth", 80.0)
    kwargs.setdefault("rebuild_every", None)
    kwargs.setdefault("require_timestamps", True)
    return StreamingKDV(Region(0.0, 0.0, 1000.0, 800.0), **kwargs)


def make_service(points, **kwargs):
    kwargs.setdefault("tile_size", TILE)
    kwargs.setdefault("bandwidth", BANDWIDTH)
    kwargs.setdefault("max_zoom", 3)
    kwargs.setdefault("recorder", Recorder())
    kwargs.setdefault("scheme", TileScheme(REGION))
    return TileService(points, **kwargs)


def timestamped_seed(n=200, seed=7, t0=0.0):
    rng = np.random.default_rng(seed)
    xy = rng.uniform((0.0, 0.0), (1000.0, 1000.0), (n, 2))
    return PointSet(xy, t=t0 + np.arange(n, dtype=np.float64))


def fresh_render(points, scheme, zoom, tx, ty):
    return render_tile(
        points, scheme, zoom, tx, ty, tile_size=TILE, bandwidth=BANDWIDTH
    )


# -- engine soundness under arbitrary op sequences -------------------------

op = st.one_of(
    st.tuples(st.just("insert"), st.integers(min_value=0, max_value=40)),
    st.tuples(st.just("expire"), st.floats(min_value=0.0, max_value=1.2)),
)


class TestOpSequenceSoundness:
    @settings(max_examples=30, deadline=None)
    @given(ops=st.lists(op, min_size=1, max_size=12), seed=st.integers(0, 2**32 - 1))
    def test_grid_matches_fresh_recompute(self, ops, seed):
        """Whatever the insert/expire interleaving, the maintained grid stays
        within 1e-9 of recomputing the live points from scratch, and the
        point count stays honest against a plain-python mirror."""
        rng = np.random.default_rng(seed)
        engine = make_engine()
        mirror: list[tuple[np.ndarray, np.ndarray]] = []
        next_t = 0.0
        for kind, arg in ops:
            if kind == "insert":
                xy = rng.uniform((0.0, 0.0), (1000.0, 800.0), (arg, 2))
                t = next_t + np.arange(arg, dtype=np.float64)
                next_t += arg
                engine.insert(xy, t)
                if arg:
                    mirror.append((xy, t))
            else:
                cutoff = arg * next_t
                removed = engine.expire_before(cutoff)
                kept = []
                dropped = 0
                for xy, t in mirror:
                    keep = t >= cutoff
                    dropped += int((~keep).sum())
                    if keep.any():
                        kept.append((xy[keep], t[keep]))
                mirror = kept
                assert removed == dropped
            assert len(engine) == sum(len(xy) for xy, _t in mirror)
        live = (
            np.concatenate([xy for xy, _t in mirror])
            if mirror
            else np.empty((0, 2))
        )
        np.testing.assert_array_equal(engine.points(), live)
        assert engine.drift() <= 1e-9

    @settings(max_examples=15, deadline=None)
    @given(rounds=st.integers(min_value=1, max_value=8), seed=st.integers(0, 2**16))
    def test_rebuild_always_resets_drift(self, rounds, seed):
        rng = np.random.default_rng(seed)
        engine = make_engine()
        next_t = 0.0
        for _ in range(rounds):
            xy = rng.uniform((0.0, 0.0), (1000.0, 800.0), (25, 2))
            engine.insert(xy, next_t + np.arange(25.0))
            next_t += 25.0
            engine.expire_before(next_t - 25.0)
        carried = engine.drift()
        erased = engine.rebuild()
        assert erased == carried
        assert engine.drift() == 0.0


# -- windowed tiles vs from-scratch renders --------------------------------

class TestWindowedTiles:
    def test_windowed_tile_bit_identical_to_fresh_window_render(self):
        """A windowed tile equals a from-scratch render of exactly the live
        window, bit for bit — before and after an ingest + tick slide."""
        seed = timestamped_seed(300)
        service = make_service(seed, window_s=100.0)
        with service:
            cutoff = float(seed.t.max()) - 100.0
            live = seed.xy[seed.t >= cutoff]
            for zoom, tx, ty in [(0, 0, 0), (1, 1, 0), (2, 2, 3)]:
                got = service.get_tile(zoom, tx, ty, window=100.0)
                want = fresh_render(live, service.scheme, zoom, tx, ty)
                assert got.tobytes() == want.tobytes()

            rng = np.random.default_rng(11)
            xy = rng.uniform((0.0, 0.0), (1000.0, 1000.0), (50, 2))
            t = 400.0 + np.arange(50.0)
            service.ingest(xy, t)
            summary = service.tick()
            assert summary["expired"] > 0
            now = float(t.max())
            feed_xy = np.vstack([seed.xy, xy])
            feed_t = np.concatenate([seed.t, t])
            live = feed_xy[feed_t >= now - 100.0]
            for zoom, tx, ty in [(0, 0, 0), (2, 2, 3)]:
                got = service.get_tile(zoom, tx, ty, window=100.0)
                want = fresh_render(live, service.scheme, zoom, tx, ty)
                assert got.tobytes() == want.tobytes()

    def test_lazy_window_equals_eager_window(self):
        seed = timestamped_seed(250)
        eager = make_service(seed, window_s=80.0)
        lazy = make_service(seed)
        with eager, lazy:
            assert lazy.windows == []
            for zoom, tx, ty in [(0, 0, 0), (1, 0, 1)]:
                a = eager.get_tile(zoom, tx, ty, window=80.0)
                b = lazy.get_tile(zoom, tx, ty, window="80")
                assert a.tobytes() == b.tobytes()
            assert lazy.windows == [80.0]

    def test_tick_keeps_unaffected_tiles_cached_byte_identical(self):
        """Expiring a spatially-clustered batch invalidates only the tiles
        its inflated MBR touches; every other windowed tile survives in
        cache, byte-identical."""
        rng = np.random.default_rng(3)
        # old events clustered in the bottom-left corner, young ones far away
        old = rng.uniform((10.0, 10.0), (60.0, 60.0), (80, 2))
        young = rng.uniform((600.0, 600.0), (990.0, 990.0), (120, 2))
        xy = np.vstack([old, young])
        t = np.concatenate([np.full(80, 0.0), np.full(120, 500.0)])
        service = make_service(PointSet(xy, t=t), window_s=500.0, max_zoom=2)
        with service:
            zoom = 2
            before = {
                (tx, ty): service.get_tile(zoom, tx, ty, window=500.0)
                for tx in range(4)
                for ty in range(4)
            }
            hits0 = service._cache.hits
            summary = service.tick(now=600.0)  # cutoff 100: expires the corner
            assert summary["expired"] == 80
            assert 0 < summary["invalidated"] < 16
            live = young  # the corner is gone
            for (tx, ty), cached in before.items():
                got = service.get_tile(zoom, tx, ty, window=500.0)
                want = fresh_render(live, service.scheme, zoom, tx, ty)
                assert got.tobytes() == want.tobytes()
                if (tx, ty) not in self._corner_tiles():
                    # untouched by the expiry: served from cache, unchanged
                    assert got.tobytes() == cached.tobytes()
            assert service._cache.hits > hits0  # some tiles never re-rendered

    @staticmethod
    def _corner_tiles():
        # the expired corner cluster (10..60 m) inflated by one bandwidth
        # (60 m) reaches at most 120 m; zoom-2 tiles are 250 m, so only
        # tile (0, 0) can change
        return {(0, 0)}


# -- window lifecycle, counters, and rejection paths -----------------------

class TestWindowLifecycle:
    def test_window_counters_and_rebuild_gauge(self):
        seed = timestamped_seed(200)
        service = make_service(seed, window_s=50.0, window_rebuild_every=1)
        with service:
            service.ingest(
                np.array([[500.0, 500.0]]), t=np.array([300.0])
            )
            summary = service.tick()
            assert summary["ticks"] == 1
            assert summary["expired"] > 0
            stats = service.stats()
            counters = stats["recorder"]["counters"]
            assert counters["window.ticks"] == 1
            assert counters["window.expired_points"] == summary["expired"]
            assert counters["window.rebuilds"] >= 1  # rebuild_every=1 fired
            assert "window.drift" in stats["recorder"]["gauges"]
            assert stats["window"]["ticks"] == 1
            (view,) = stats["window"]["views"]
            assert view["seconds"] == 50.0
            assert view["rebuilds"] >= 1

    def test_tick_without_windows_is_a_noop(self):
        service = make_service(timestamped_seed(50))
        with service:
            summary = service.tick()
            assert summary["windows"] == [] and summary["expired"] == 0
            assert service.stats()["recorder"]["counters"].get("window.ticks", 0) == 0

    def test_auto_tick_on_request_traffic(self):
        now = [0.0]
        seed = timestamped_seed(150)
        service = make_service(
            seed, window_s=60.0, tick_s=5.0, clock=lambda: now[0]
        )
        with service:
            service.get_tile(0, 0, 0, window=60.0)
            assert service.stats()["window"]["ticks"] == 0
            now[0] = 5.0
            service.get_tile(0, 0, 0, window=60.0)  # schedule elapsed: ticks
            assert service.stats()["window"]["ticks"] == 1
            service.get_tile(0, 0, 0, window=60.0)  # within the next period
            assert service.stats()["window"]["ticks"] == 1

    def test_untimestamped_ingest_rejected_while_windows_live(self):
        service = make_service(timestamped_seed(100), window_s=40.0)
        with service:
            n0 = service.points_count
            with pytest.raises(ValueError, match="timestamps"):
                service.ingest(np.array([[1.0, 2.0]]))
            assert service.points_count == n0  # rejected before any mutation

    def test_window_on_untimestamped_history_is_a_window_error(self):
        rng = np.random.default_rng(5)
        service = make_service(rng.uniform(0, 1000, (100, 2)))
        with service:
            with pytest.raises(WindowError, match="timestamp"):
                service.get_tile(0, 0, 0, window=10.0)

    def test_eager_window_needs_timestamped_seed(self):
        rng = np.random.default_rng(5)
        with pytest.raises(ValueError, match="timestamped seed"):
            make_service(rng.uniform(0, 1000, (100, 2)), window_s=10.0)

    @pytest.mark.parametrize("bad", ["soon", "", -5.0, 0.0, float("nan"), float("inf")])
    def test_malformed_window_values(self, bad):
        service = make_service(timestamped_seed(60))
        with service:
            with pytest.raises(WindowError, match="positive number"):
                service.get_tile(0, 0, 0, window=bad)

    def test_max_windows_cap(self):
        service = make_service(timestamped_seed(60), max_windows=2)
        with service:
            service.get_tile(0, 0, 0, window=10.0)
            service.get_tile(0, 0, 0, window=20.0)
            with pytest.raises(WindowError, match="max_windows"):
                service.get_tile(0, 0, 0, window=30.0)
            # existing windows keep serving
            service.get_tile(0, 0, 0, window=10.0)
            assert service.windows == [10.0, 20.0]
