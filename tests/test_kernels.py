"""Unit and property tests for kernel functions and their decompositions."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import (
    KERNELS,
    NUM_CHANNELS,
    EpanechnikovKernel,
    GaussianKernel,
    QuarticKernel,
    UniformKernel,
    channel_values,
    get_kernel,
)

DECOMPOSABLE = ("uniform", "epanechnikov", "quartic")


class TestRegistry:
    def test_all_kernels_registered(self):
        assert set(KERNELS) == {"uniform", "epanechnikov", "quartic", "gaussian"}

    def test_get_kernel_by_name(self):
        assert isinstance(get_kernel("quartic"), QuarticKernel)

    def test_get_kernel_passthrough(self):
        k = EpanechnikovKernel()
        assert get_kernel(k) is k

    def test_get_kernel_unknown_raises(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            get_kernel("triweight")

    def test_channel_counts(self):
        assert UniformKernel().num_channels == 1
        assert EpanechnikovKernel().num_channels == 4
        assert QuarticKernel().num_channels == 10
        assert GaussianKernel().num_channels is None


class TestEvaluate:
    """Pointwise kernel values against hand-computed numbers (Table 2)."""

    def test_uniform_inside(self):
        assert UniformKernel().evaluate(np.array(4.0), 3.0) == pytest.approx(1 / 3)

    def test_uniform_on_boundary_counts(self):
        # dist == b is inside per Table 2's "if dist <= b"
        assert UniformKernel().evaluate(np.array(9.0), 3.0) == pytest.approx(1 / 3)

    def test_uniform_outside_zero(self):
        assert UniformKernel().evaluate(np.array(9.0001), 3.0) == 0.0

    def test_epanechnikov_values(self):
        k = EpanechnikovKernel()
        assert k.evaluate(np.array(0.0), 2.0) == pytest.approx(1.0)
        assert k.evaluate(np.array(1.0), 2.0) == pytest.approx(1 - 1 / 4)
        assert k.evaluate(np.array(4.0), 2.0) == pytest.approx(0.0)
        assert k.evaluate(np.array(4.0001), 2.0) == 0.0

    def test_quartic_values(self):
        k = QuarticKernel()
        assert k.evaluate(np.array(0.0), 2.0) == pytest.approx(1.0)
        assert k.evaluate(np.array(1.0), 2.0) == pytest.approx((1 - 1 / 4) ** 2)
        assert k.evaluate(np.array(4.0), 2.0) == pytest.approx(0.0)

    def test_gaussian_values(self):
        k = GaussianKernel()
        assert k.evaluate(np.array(0.0), 2.0) == pytest.approx(1.0)
        assert k.evaluate(np.array(8.0), 2.0) == pytest.approx(math.exp(-1.0))

    def test_gaussian_infinite_support(self):
        assert GaussianKernel().support_radius(5.0) == math.inf
        # well past any finite-support kernel's radius, still positive
        assert GaussianKernel().evaluate(np.array(100.0), 2.0) > 0.0

    def test_finite_support_radius(self):
        for name in DECOMPOSABLE:
            assert get_kernel(name).support_radius(7.5) == 7.5

    def test_evaluate_vectorized_shape(self):
        d = np.linspace(0, 10, 50).reshape(5, 10)
        for name in KERNELS:
            out = get_kernel(name).evaluate(d, 2.0)
            assert out.shape == d.shape

    def test_kernels_monotone_in_distance(self):
        d = np.linspace(0, 9, 200)
        for name in KERNELS:
            vals = get_kernel(name).evaluate(d**2, 3.0)
            assert np.all(np.diff(vals) <= 1e-15), name

    def test_kernels_nonnegative(self):
        d_sq = np.linspace(0, 100, 500)
        for name in KERNELS:
            assert np.all(get_kernel(name).evaluate(d_sq, 3.0) >= 0.0), name


class TestChannelValues:
    def test_channel_definitions(self):
        xy = np.array([[2.0, 3.0]])
        ch = channel_values(xy, NUM_CHANNELS)[0]
        s = 4.0 + 9.0
        expected = [1.0, 2.0, 3.0, s, s * 2, s * 3, s * s, 4.0, 6.0, 9.0]
        np.testing.assert_allclose(ch, expected)

    def test_partial_channels(self):
        xy = np.array([[1.0, -1.0], [0.5, 2.0]])
        full = channel_values(xy, NUM_CHANNELS)
        for nch in (1, 4, 10):
            np.testing.assert_allclose(channel_values(xy, nch), full[:, :nch])

    def test_invalid_channel_count(self):
        with pytest.raises(ValueError):
            channel_values(np.zeros((2, 2)), 0)
        with pytest.raises(ValueError):
            channel_values(np.zeros((2, 2)), NUM_CHANNELS + 1)

    def test_empty_input(self):
        assert channel_values(np.empty((0, 2)), 4).shape == (0, 4)


class TestDecomposition:
    """density_from_aggregates must equal the direct kernel sum (Table 4)."""

    @pytest.mark.parametrize("name", DECOMPOSABLE)
    def test_matches_direct_sum(self, name, rng):
        kernel = get_kernel(name)
        pts = rng.uniform(-3, 3, (200, 2))
        q = np.array([0.4, -0.7])
        b = 1.8
        d_sq = ((pts - q) ** 2).sum(axis=1)
        inside = d_sq <= b * b
        direct = kernel.evaluate(d_sq, b).sum()
        # aggregates over R(q) only, in a b-scaled frame as the sweeps use
        scaled = pts[inside] / b
        agg = channel_values(scaled, kernel.num_channels).sum(axis=0)
        via_agg = kernel.density_from_aggregates(
            q[0] / b, q[1] / b, agg, 1.0
        ) * kernel.rescale_factor(b)
        assert via_agg == pytest.approx(direct, rel=1e-10, abs=1e-12)

    @pytest.mark.parametrize("name", DECOMPOSABLE)
    def test_empty_aggregates_give_zero(self, name):
        kernel = get_kernel(name)
        agg = np.zeros(kernel.num_channels)
        assert kernel.density_from_aggregates(0.3, 0.1, agg, 1.0) == 0.0

    def test_gaussian_has_no_decomposition(self):
        with pytest.raises(NotImplementedError):
            GaussianKernel().density_from_aggregates(0.0, 0.0, np.zeros(1), 1.0)

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        b=st.floats(0.3, 5.0),
        name=st.sampled_from(DECOMPOSABLE),
    )
    def test_decomposition_property(self, seed, b, name):
        kernel = get_kernel(name)
        r = np.random.default_rng(seed)
        pts = r.uniform(-4, 4, (50, 2))
        q = r.uniform(-4, 4, 2)
        d_sq = ((pts - q) ** 2).sum(axis=1)
        direct = kernel.evaluate(d_sq, b).sum()
        inside = d_sq <= b * b
        agg = channel_values(pts[inside] / b, kernel.num_channels).sum(axis=0)
        via_agg = kernel.density_from_aggregates(
            q[0] / b, q[1] / b, agg, 1.0
        ) * kernel.rescale_factor(b)
        assert via_agg == pytest.approx(direct, rel=1e-9, abs=1e-10)


class TestNormalizers:
    """Kernel normalizers make the 2-D kernel integrate to 1 over the plane."""

    @pytest.mark.parametrize(
        "name", ("uniform", "epanechnikov", "quartic", "gaussian")
    )
    def test_normalizer_integral(self, name):
        kernel = get_kernel(name)
        b = 1.7
        # polar integration: integral = 2 pi int_0^R k(r) r dr
        radius = min(kernel.support_radius(b), 12 * b)
        r = np.linspace(0, radius, 200_001)
        vals = kernel.evaluate(r * r, b) * r
        integral = 2 * math.pi * np.trapezoid(vals, r)
        assert integral * kernel.normalizer(b) == pytest.approx(1.0, rel=1e-4)

    def test_rescale_factors(self):
        assert UniformKernel().rescale_factor(4.0) == pytest.approx(0.25)
        for name in ("epanechnikov", "quartic", "gaussian"):
            assert get_kernel(name).rescale_factor(4.0) == 1.0

    @pytest.mark.parametrize("name", list(KERNELS))
    def test_scale_invariance_with_rescale(self, name):
        """K_b(d) == rescale_factor(b) * K_1(d / b) for every kernel."""
        kernel = get_kernel(name)
        b = 3.3
        d = np.linspace(0, 2 * b, 97)
        lhs = kernel.evaluate(d * d, b)
        rhs = kernel.rescale_factor(b) * kernel.evaluate((d / b) ** 2, 1.0)
        np.testing.assert_allclose(lhs, rhs, rtol=1e-12, atol=1e-15)
