"""Tests for the framed wire protocol (repro.dist.proto).

All tests run over ``socket.socketpair()`` — real sockets, no network, no
subprocesses — so corruption and truncation can be injected byte-by-byte.
"""

from __future__ import annotations

import socket
import struct
import threading
import zlib

import numpy as np
import pytest

from repro.dist import proto
from repro.dist.errors import ConnectionClosed, ProtocolError


@pytest.fixture()
def pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def _frame(msg_type: int, body: bytes, *, magic=proto.MAGIC,
           version=proto.PROTO_VERSION, crc=None, length=None) -> bytes:
    """Hand-build a frame, optionally with deliberate defects."""
    if crc is None:
        crc = zlib.crc32(body)
    if length is None:
        length = len(body)
    return proto.HEADER.pack(magic, version, msg_type, length, crc) + body


class TestFraming:
    @pytest.mark.parametrize(
        "payload",
        [
            None,
            {"proto": 1, "pid": 42},
            "text",
            list(range(100)),
            b"\x00" * 4096,
        ],
    )
    def test_roundtrip(self, pair, payload):
        a, b = pair
        sent = proto.send_msg(a, proto.MSG_TASK, payload)
        msg_type, received, read = proto.recv_msg(b, timeout=5.0)
        assert msg_type == proto.MSG_TASK
        assert received == payload
        assert sent == read  # both sides account the same bytes

    def test_roundtrip_numpy_payload(self, pair):
        a, b = pair
        rng = np.random.default_rng(7)
        payload = {
            "block": rng.standard_normal((13, 17)),
            "xy": rng.uniform(0, 100, (50, 2)),
        }
        proto.send_msg(a, proto.MSG_RESULT, payload)
        _, received, _ = proto.recv_msg(b, timeout=5.0)
        assert np.array_equal(received["block"], payload["block"])
        assert np.array_equal(received["xy"], payload["xy"])

    def test_bytes_include_header(self, pair):
        a, b = pair
        sent = proto.send_msg(a, proto.MSG_PING)
        assert sent >= proto.HEADER.size
        _, _, read = proto.recv_msg(b, timeout=5.0)
        assert read == sent

    def test_back_to_back_frames_keep_boundaries(self, pair):
        a, b = pair
        for i in range(5):
            proto.send_msg(a, proto.MSG_HEARTBEAT, {"seq": i})
        for i in range(5):
            msg_type, payload, _ = proto.recv_msg(b, timeout=5.0)
            assert msg_type == proto.MSG_HEARTBEAT
            assert payload == {"seq": i}

    def test_shared_lock_serializes_writers(self, pair):
        a, b = pair
        lock = threading.Lock()
        n_frames = 40

        def spam(tag):
            for _ in range(n_frames):
                proto.send_msg(a, proto.MSG_HEARTBEAT, tag, lock=lock)

        threads = [threading.Thread(target=spam, args=(t,)) for t in ("x", "y")]
        for t in threads:
            t.start()
        seen = []
        for _ in range(2 * n_frames):
            msg_type, payload, _ = proto.recv_msg(b, timeout=5.0)
            assert msg_type == proto.MSG_HEARTBEAT
            seen.append(payload)
        for t in threads:
            t.join()
        assert sorted(seen) == ["x"] * n_frames + ["y"] * n_frames


class TestCorruption:
    def test_bad_magic(self, pair):
        a, b = pair
        a.sendall(_frame(proto.MSG_PING, b"", magic=b"XXXX"))
        with pytest.raises(ProtocolError, match="magic"):
            proto.recv_msg(b, timeout=5.0)

    def test_version_mismatch(self, pair):
        a, b = pair
        a.sendall(_frame(proto.MSG_PING, b"", version=proto.PROTO_VERSION + 1))
        with pytest.raises(ProtocolError, match="version mismatch"):
            proto.recv_msg(b, timeout=5.0)

    def test_checksum_mismatch(self, pair):
        a, b = pair
        import pickle

        body = pickle.dumps({"shard_id": 0})
        a.sendall(_frame(proto.MSG_RESULT, body, crc=zlib.crc32(body) ^ 0xFF))
        with pytest.raises(ProtocolError, match="checksum"):
            proto.recv_msg(b, timeout=5.0)

    def test_oversize_length_rejected_before_alloc(self, pair):
        a, b = pair
        a.sendall(_frame(proto.MSG_TASK, b"", length=proto.MAX_PAYLOAD_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            proto.recv_msg(b, timeout=5.0)

    def test_eof_before_header(self, pair):
        a, b = pair
        a.close()
        with pytest.raises(ConnectionClosed):
            proto.recv_msg(b, timeout=5.0)

    def test_eof_mid_header(self, pair):
        a, b = pair
        a.sendall(proto.HEADER.pack(
            proto.MAGIC, proto.PROTO_VERSION, proto.MSG_PING, 0, 0)[:7])
        a.close()
        with pytest.raises(ConnectionClosed):
            proto.recv_msg(b, timeout=5.0)

    def test_eof_mid_payload(self, pair):
        a, b = pair
        import pickle

        body = pickle.dumps(list(range(1000)))
        a.sendall(_frame(proto.MSG_TASK, body)[: proto.HEADER.size + 10])
        a.close()
        with pytest.raises(ConnectionClosed):
            proto.recv_msg(b, timeout=5.0)

    def test_timeout_propagates(self, pair):
        _, b = pair
        with pytest.raises(socket.timeout):
            proto.recv_msg(b, timeout=0.05)


class TestHandshake:
    def test_handshake_exchanges_pids(self, pair):
        a, b = pair
        results = {}

        def server():
            results["server"] = proto.server_handshake(b, timeout=5.0)

        t = threading.Thread(target=server)
        t.start()
        results["client"] = proto.client_handshake(a, timeout=5.0)
        t.join()
        import os

        assert results["client"]["proto"] == proto.PROTO_VERSION
        assert results["server"]["proto"] == proto.PROTO_VERSION
        assert results["client"]["pid"] == os.getpid()
        assert results["server"]["pid"] == os.getpid()

    def test_client_rejects_non_hello(self, pair):
        a, b = pair
        proto.send_msg(b, proto.MSG_PONG)
        with pytest.raises(ProtocolError, match="HELLO"):
            proto.client_handshake(a, timeout=5.0)

    def test_server_rejects_version_skew(self, pair):
        a, b = pair
        import pickle

        body = pickle.dumps({"proto": proto.PROTO_VERSION + 1, "pid": 1})
        # header speaks the current version so the skew is caught by the
        # HELLO payload check, not the per-frame header check
        a.sendall(_frame(proto.MSG_HELLO, body))
        with pytest.raises(ProtocolError, match="version mismatch"):
            proto.server_handshake(b, timeout=5.0)

    def test_server_rejects_malformed_hello(self, pair):
        a, b = pair
        proto.send_msg(a, proto.MSG_HELLO, {"pid": 3})
        with pytest.raises(ProtocolError, match="malformed"):
            proto.server_handshake(b, timeout=5.0)

    def test_header_struct_is_sixteen_bytes(self):
        assert proto.HEADER.size == 16
        assert proto.HEADER.format == ">4sHHII"
        with pytest.raises(struct.error):
            proto.HEADER.unpack(b"short")
