"""Shared fixtures and reference implementations for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PointSet, Raster, Region
from repro.core.kernels import get_kernel


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture
def region() -> Region:
    return Region(0.0, 0.0, 100.0, 80.0)


@pytest.fixture
def raster(region: Region) -> Raster:
    return Raster(region, 37, 23)


@pytest.fixture
def small_xy(rng: np.random.Generator) -> np.ndarray:
    return rng.uniform((0.0, 0.0), (100.0, 80.0), (300, 2))


@pytest.fixture
def small_points(rng: np.random.Generator) -> PointSet:
    n = 400
    xy = rng.uniform((0.0, 0.0), (100.0, 80.0), (n, 2))
    t = rng.uniform(0.0, 1000.0, n)
    category = rng.integers(0, 5, n)
    return PointSet(xy, t=t, category=category, name="fixture")


def reference_grid(
    xy: np.ndarray, raster: Raster, kernel_name: str, bandwidth: float
) -> np.ndarray:
    """Independent O(XYn) reference: direct kernel evaluation, no chunking,
    no shared code path with the methods under test beyond the kernel's
    ``evaluate`` (which is itself verified against hand values)."""
    kernel = get_kernel(kernel_name)
    xs = raster.x_centers()
    ys = raster.y_centers()
    xy = np.asarray(xy, dtype=np.float64)
    grid = np.zeros(raster.shape)
    for j, k in enumerate(ys):
        for i, qx in enumerate(xs):
            d_sq = (xy[:, 0] - qx) ** 2 + (xy[:, 1] - k) ** 2
            grid[j, i] = kernel.evaluate(d_sq, bandwidth).sum()
    return grid
