"""Tests for the shared sweep driver internals (core.sweep)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Raster, Region
from repro.core.envelope import YSortedIndex
from repro.core.kernels import get_kernel
from repro.core.slam_bucket import slam_bucket_row_numpy
from repro.core.slam_sort import slam_sort_row_numpy
from repro.core.sweep import make_grid_function, sweep_kdv

from .conftest import reference_grid


@pytest.fixture
def raster():
    return Raster(Region(0, 0, 100, 80), 21, 13)


class TestSweepKDV:
    def test_validation(self, small_xy, raster):
        kernel = get_kernel("epanechnikov")
        with pytest.raises(ValueError, match="bandwidth"):
            sweep_kdv(small_xy, raster, kernel, -1.0, slam_sort_row_numpy)
        with pytest.raises(ValueError, match="aggregate decomposition"):
            sweep_kdv(small_xy, raster, get_kernel("gaussian"), 5.0, slam_sort_row_numpy)
        with pytest.raises(ValueError, match="weights must have shape"):
            sweep_kdv(
                small_xy, raster, kernel, 5.0, slam_sort_row_numpy,
                weights=np.ones(3),
            )

    def test_prebuilt_ysorted_reused(self, small_xy, raster):
        """Passing a pre-built index gives identical results (the
        exploratory-session fast path)."""
        kernel = get_kernel("epanechnikov")
        index = YSortedIndex(small_xy)
        with_index = sweep_kdv(
            small_xy, raster, kernel, 9.0, slam_bucket_row_numpy, ysorted=index
        )
        without = sweep_kdv(small_xy, raster, kernel, 9.0, slam_bucket_row_numpy)
        np.testing.assert_allclose(with_index, without, rtol=1e-12)

    def test_row_engines_interchangeable(self, small_xy, raster):
        kernel = get_kernel("quartic")
        a = sweep_kdv(small_xy, raster, kernel, 9.0, slam_sort_row_numpy)
        b = sweep_kdv(small_xy, raster, kernel, 9.0, slam_bucket_row_numpy)
        np.testing.assert_allclose(a, b, rtol=1e-10, atol=1e-12)

    def test_make_grid_function_binds_engine(self, small_xy, raster):
        fn = make_grid_function(slam_sort_row_numpy)
        kernel = get_kernel("epanechnikov")
        got = fn(small_xy, raster, kernel, 9.0)
        expected = reference_grid(small_xy, raster, "epanechnikov", 9.0)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)

    def test_grid_always_full_shape(self, raster):
        """Rows with empty envelopes still produce zero rows, not a ragged
        result."""
        xy = np.array([[50.0, 1.0]])  # only the bottom rows are touched
        kernel = get_kernel("epanechnikov")
        grid = sweep_kdv(xy, raster, kernel, 3.0, slam_bucket_row_numpy)
        assert grid.shape == raster.shape
        assert np.all(grid[-1] == 0.0)
        assert grid[0].max() > 0.0

    def test_extreme_coordinates_conditioning(self):
        """Raw UTM-scale coordinates (1e6 m) with the quartic kernel: the
        local-frame conditioning must keep the sweep accurate."""
        rng = np.random.default_rng(8)
        base = np.array([500_000.0, 4_000_000.0])
        xy = base + rng.uniform(0, 1000, (200, 2))
        region = Region(base[0], base[1], base[0] + 1000, base[1] + 1000)
        raster = Raster(region, 15, 11)
        kernel = get_kernel("quartic")
        got = sweep_kdv(xy, raster, kernel, 120.0, slam_bucket_row_numpy)
        expected = reference_grid(xy, raster, "quartic", 120.0)
        scale = max(expected.max(), 1.0)
        np.testing.assert_allclose(got / scale, expected / scale, atol=1e-9)


class TestEngineParity:
    """The python/numpy engine tables expose matching keys everywhere."""

    def test_slam_tables(self):
        from repro.core.native import NATIVE_AVAILABLE
        from repro.core.slam_bucket import slam_bucket_grid
        from repro.core.slam_sort import slam_sort_grid

        expected = {"python", "numpy", "numpy_batch"}
        if NATIVE_AVAILABLE:
            # The compiled engine registers conditionally (docs/native.md).
            expected.add("native")
        assert set(slam_sort_grid) == expected
        assert set(slam_bucket_grid) == expected

    def test_unknown_engine_raises_valueerror_via_api(self, small_xy):
        from repro import compute_kdv

        with pytest.raises(ValueError, match="unknown engine 'cython'.*slam_sort"):
            compute_kdv(small_xy, size=(8, 8), bandwidth=5.0,
                        method="slam_sort", engine="cython")
