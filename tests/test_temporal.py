"""Tests for spatio-temporal KDV (extensions.temporal)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PointSet, Region, compute_kdv
from repro.extensions.temporal import STKDVResult, compute_stkdv, temporal_kernels


@pytest.fixture
def timed_points(rng) -> PointSet:
    n = 500
    xy = rng.uniform((0, 0), (100, 80), (n, 2))
    t = rng.uniform(0.0, 100.0, n)
    return PointSet(xy, t=t)


class TestTemporalKernels:
    def test_registry(self):
        assert set(temporal_kernels) == {"box", "triangular", "epanechnikov", "gaussian"}

    @pytest.mark.parametrize("name", ["box", "triangular", "epanechnikov"])
    def test_finite_support(self, name):
        fn, finite = temporal_kernels[name]
        assert finite
        dt = np.array([-1.5, -1.0, 0.0, 1.0, 1.5])
        vals = fn(dt, 1.0)
        assert vals[0] == 0.0 and vals[-1] == 0.0
        assert vals[2] == 1.0

    def test_gaussian_infinite(self):
        fn, finite = temporal_kernels["gaussian"]
        assert not finite
        assert fn(np.array([5.0]), 1.0)[0] > 0.0

    @pytest.mark.parametrize("name", list(temporal_kernels))
    def test_symmetric_and_monotone(self, name):
        fn, _ = temporal_kernels[name]
        dt = np.linspace(0, 2, 50)
        vals = fn(dt, 1.0)
        np.testing.assert_allclose(fn(-dt, 1.0), vals)
        assert np.all(np.diff(vals) <= 1e-12)


class TestComputeSTKDV:
    def test_frame_count_and_shapes(self, timed_points):
        st = compute_stkdv(timed_points, times=6, size=(16, 12))
        assert len(st) == 6
        assert st.grids().shape == (6, 12, 16)
        assert len(st.times) == 6

    def test_explicit_times(self, timed_points):
        st = compute_stkdv(timed_points, times=np.array([10.0, 50.0]), size=(8, 6))
        np.testing.assert_array_equal(st.times, [10.0, 50.0])

    def test_frame_equals_direct_weighted_kdv(self, timed_points):
        st = compute_stkdv(
            timed_points, times=np.array([40.0]), temporal_bandwidth=20.0,
            size=(16, 12), bandwidth=15.0,
        )
        fn, _ = temporal_kernels["epanechnikov"]
        w = fn(timed_points.t - 40.0, 20.0)
        mask = w > 0
        direct = compute_kdv(
            timed_points.xy[mask],
            region=Region.from_points(timed_points.xy),
            size=(16, 12),
            bandwidth=15.0,
            weights=w[mask],
            normalization="none",
        )
        np.testing.assert_allclose(st.frames[0].grid, direct.grid, rtol=1e-10)

    def test_temporal_locality(self, rng):
        """Events at t=0 must not contribute to a frame at t=100 when the
        temporal bandwidth is small."""
        xy = np.tile([[50.0, 40.0]], (100, 1))
        t = np.zeros(100)
        ps = PointSet(xy, t=t)
        st = compute_stkdv(
            ps, times=np.array([0.0, 100.0]), temporal_bandwidth=5.0,
            size=(8, 6), bandwidth=30.0,
        )
        assert st.frames[0].grid.max() > 0
        assert st.frames[1].grid.max() == 0.0

    def test_gaussian_temporal_kernel_reaches_everywhere(self):
        xy = np.tile([[50.0, 40.0]], (10, 1))
        ps = PointSet(xy, t=np.zeros(10))
        st = compute_stkdv(
            ps, times=np.array([100.0]), temporal_kernel="gaussian",
            temporal_bandwidth=50.0, size=(8, 6), bandwidth=30.0,
        )
        assert st.frames[0].grid.max() > 0

    def test_existing_weights_multiply(self, rng):
        xy = rng.uniform((0, 0), (50, 50), (50, 2))
        t = np.full(50, 10.0)
        w = rng.uniform(1, 2, 50)
        with_w = compute_stkdv(
            PointSet(xy, t=t, w=w), times=np.array([10.0]),
            temporal_bandwidth=5.0, size=(8, 6), bandwidth=10.0,
        ).frames[0].grid
        without_w = compute_stkdv(
            PointSet(xy, t=t), times=np.array([10.0]),
            temporal_bandwidth=5.0, size=(8, 6), bandwidth=10.0,
        ).frames[0].grid
        assert with_w.sum() > without_w.sum()  # weights > 1 increase density

    def test_peak_frame(self, rng):
        """A burst of events mid-series makes the middle frame the peak."""
        n = 300
        xy = rng.uniform((0, 0), (100, 80), (n, 2))
        t = np.concatenate([rng.uniform(0, 100, n - 150), np.full(150, 50.0)])
        ps = PointSet(xy, t=t)
        st = compute_stkdv(ps, times=np.array([0.0, 50.0, 100.0]),
                           temporal_bandwidth=10.0, size=(16, 12))
        assert st.peak_frame() == 1

    def test_save_ppm_sequence(self, timed_points, tmp_path):
        st = compute_stkdv(timed_points, times=3, size=(8, 6))
        paths = st.save_ppm_sequence(str(tmp_path / "frame"))
        assert len(paths) == 3
        for p in paths:
            assert (tmp_path / p.split("/")[-1]).read_bytes().startswith(b"P6\n8 6")

    def test_requires_timestamps(self, rng):
        ps = PointSet(rng.uniform(0, 1, (10, 2)))
        with pytest.raises(ValueError, match="timestamps"):
            compute_stkdv(ps)

    def test_validation(self, timed_points):
        with pytest.raises(ValueError, match="unknown temporal kernel"):
            compute_stkdv(timed_points, temporal_kernel="cosine")
        with pytest.raises(ValueError, match="frame count"):
            compute_stkdv(timed_points, times=0)
        with pytest.raises(ValueError, match="temporal_bandwidth"):
            compute_stkdv(timed_points, temporal_bandwidth=-1.0)
        with pytest.raises(ValueError, match="non-empty"):
            compute_stkdv(PointSet(np.empty((0, 2)), t=np.empty(0)))

    def test_result_type(self, timed_points):
        st = compute_stkdv(timed_points, times=2, size=(8, 6))
        assert isinstance(st, STKDVResult)
        assert st.temporal_kernel == "epanechnikov"
        assert st.temporal_bandwidth > 0
