"""Tests for the competitor methods of Table 6 (SCAN, RQS, Z-order, aKDE, QUAD)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Raster, Region
from repro.baselines.akde import akde_error_bound, akde_grid
from repro.baselines.quad import quad_grid
from repro.baselines.rqs import rqs_ball_grid, rqs_grid, rqs_kd_grid
from repro.baselines.scan import scan_grid
from repro.baselines.zorder import default_sample_size, zorder_grid, zorder_sample
from repro.core.kernels import get_kernel

from .conftest import reference_grid

KERNEL_NAMES = ("uniform", "epanechnikov", "quartic")


class TestScan:
    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES + ("gaussian",))
    def test_matches_reference(self, kernel_name, small_xy, raster):
        expected = reference_grid(small_xy, raster, kernel_name, 9.0)
        got = scan_grid(small_xy, raster, get_kernel(kernel_name), 9.0)
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_chunking_boundary(self, raster, rng, monkeypatch):
        """Result must be independent of the chunk size."""
        import repro.baselines.scan as scan_mod

        xy = rng.uniform((0, 0), (100, 80), (500, 2))
        full = scan_grid(xy, raster, get_kernel("epanechnikov"), 9.0)
        monkeypatch.setattr(scan_mod, "_CHUNK_BUDGET", 100)
        chunked = scan_grid(xy, raster, get_kernel("epanechnikov"), 9.0)
        np.testing.assert_allclose(chunked, full, rtol=1e-12)

    def test_empty(self, raster):
        grid = scan_grid(np.empty((0, 2)), raster, get_kernel("epanechnikov"), 5.0)
        assert np.all(grid == 0)

    def test_invalid_bandwidth(self, small_xy, raster):
        with pytest.raises(ValueError, match="bandwidth"):
            scan_grid(small_xy, raster, get_kernel("epanechnikov"), -1.0)


class TestRQS:
    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    @pytest.mark.parametrize("index", ["kd", "ball"])
    def test_matches_reference(self, kernel_name, index, small_xy, raster):
        expected = reference_grid(small_xy, raster, kernel_name, 9.0)
        got = rqs_grid(small_xy, raster, get_kernel(kernel_name), 9.0, index=index)
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_named_wrappers(self, small_xy, raster):
        kernel = get_kernel("epanechnikov")
        a = rqs_kd_grid(small_xy, raster, kernel, 9.0)
        b = rqs_ball_grid(small_xy, raster, kernel, 9.0)
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_gaussian_rejected(self, small_xy, raster):
        with pytest.raises(ValueError, match="infinite support"):
            rqs_grid(small_xy, raster, get_kernel("gaussian"), 9.0)

    def test_unknown_index(self, small_xy, raster):
        with pytest.raises(ValueError, match="unknown index"):
            rqs_grid(small_xy, raster, get_kernel("epanechnikov"), 9.0, index="grid")

    def test_empty(self, raster):
        grid = rqs_kd_grid(np.empty((0, 2)), raster, get_kernel("epanechnikov"), 5.0)
        assert np.all(grid == 0)


class TestQuad:
    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    @pytest.mark.parametrize("engine", ["numpy", "python"])
    def test_exact(self, kernel_name, engine, small_xy, raster):
        expected = reference_grid(small_xy, raster, kernel_name, 9.0)
        got = quad_grid(small_xy, raster, get_kernel(kernel_name), 9.0, engine=engine)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)

    def test_engines_agree(self, small_xy, raster):
        kernel = get_kernel("quartic")
        a = quad_grid(small_xy, raster, kernel, 11.0, engine="numpy")
        b = quad_grid(small_xy, raster, kernel, 11.0, engine="python")
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-11)

    def test_leaf_size_independence(self, small_xy, raster):
        kernel = get_kernel("epanechnikov")
        a = quad_grid(small_xy, raster, kernel, 9.0, leaf_size=2)
        b = quad_grid(small_xy, raster, kernel, 9.0, leaf_size=128)
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-11)

    def test_gaussian_rejected(self, small_xy, raster):
        with pytest.raises(ValueError, match="aggregate decomposition"):
            quad_grid(small_xy, raster, get_kernel("gaussian"), 9.0)

    def test_unknown_engine(self, small_xy, raster):
        with pytest.raises(ValueError, match="unknown engine"):
            quad_grid(small_xy, raster, get_kernel("epanechnikov"), 9.0, engine="c")

    def test_empty(self, raster):
        grid = quad_grid(np.empty((0, 2)), raster, get_kernel("epanechnikov"), 5.0)
        assert np.all(grid == 0)

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), b=st.floats(0.5, 30.0))
    def test_exactness_property(self, seed, b):
        gen = np.random.default_rng(seed)
        xy = gen.uniform((0, 0), (20, 15), (60, 2))
        raster = Raster(Region(0, 0, 20, 15), 9, 7)
        expected = reference_grid(xy, raster, "epanechnikov", b)
        got = quad_grid(xy, raster, get_kernel("epanechnikov"), b)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-9)


class TestAKDE:
    @pytest.mark.parametrize("engine", ["numpy", "python"])
    def test_error_within_bound(self, engine, small_xy, raster):
        tol = 1e-3
        expected = reference_grid(small_xy, raster, "epanechnikov", 9.0)
        got = akde_grid(
            small_xy, raster, get_kernel("epanechnikov"), 9.0,
            tolerance=tol, engine=engine,
        )
        bound = akde_error_bound(len(small_xy), tol)
        assert np.abs(got - expected).max() <= bound + 1e-9

    def test_zero_tolerance_is_exact(self, small_xy, raster):
        expected = reference_grid(small_xy, raster, "epanechnikov", 9.0)
        got = akde_grid(
            small_xy, raster, get_kernel("epanechnikov"), 9.0, tolerance=0.0
        )
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-10)

    def test_engines_agree(self, small_xy, raster):
        kernel = get_kernel("quartic")
        a = akde_grid(small_xy, raster, kernel, 9.0, tolerance=1e-3, engine="numpy")
        b = akde_grid(small_xy, raster, kernel, 9.0, tolerance=1e-3, engine="python")
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-11)

    def test_supports_gaussian(self, small_xy, raster):
        expected = reference_grid(small_xy, raster, "gaussian", 9.0)
        got = akde_grid(
            small_xy, raster, get_kernel("gaussian"), 9.0, tolerance=1e-4
        )
        bound = akde_error_bound(len(small_xy), 1e-4)
        assert np.abs(got - expected).max() <= bound + 1e-9

    def test_looser_tolerance_not_slower_quality(self, small_xy, raster):
        """Tighter tolerance must reduce (or keep) the max error."""
        expected = reference_grid(small_xy, raster, "epanechnikov", 9.0)
        errs = []
        for tol in (1e-1, 1e-3, 0.0):
            got = akde_grid(
                small_xy, raster, get_kernel("epanechnikov"), 9.0, tolerance=tol
            )
            errs.append(np.abs(got - expected).max())
        assert errs[0] >= errs[1] >= errs[2] - 1e-12

    def test_invalid_args(self, small_xy, raster):
        with pytest.raises(ValueError):
            akde_grid(small_xy, raster, get_kernel("epanechnikov"), 9.0, tolerance=-1)
        with pytest.raises(ValueError):
            akde_grid(small_xy, raster, get_kernel("epanechnikov"), 0.0)
        with pytest.raises(ValueError, match="unknown engine"):
            akde_grid(small_xy, raster, get_kernel("epanechnikov"), 9.0, engine="c")

    def test_empty(self, raster):
        grid = akde_grid(np.empty((0, 2)), raster, get_kernel("epanechnikov"), 5.0)
        assert np.all(grid == 0)


class TestZOrderBaseline:
    def test_sample_size_and_uniqueness(self, small_xy):
        idx = zorder_sample(small_xy, 50)
        assert len(idx) == 50
        assert len(set(idx.tolist())) == 50

    def test_sample_all_when_m_ge_n(self, small_xy):
        idx = zorder_sample(small_xy, len(small_xy) + 10)
        assert len(idx) == len(small_xy)

    def test_sample_invalid(self, small_xy):
        with pytest.raises(ValueError):
            zorder_sample(small_xy, 0)

    def test_default_sample_size(self):
        assert default_sample_size(10**6, epsilon=0.05) == 400
        assert default_sample_size(100, epsilon=0.05) == 100
        with pytest.raises(ValueError):
            default_sample_size(100, epsilon=0.0)

    def test_full_sample_equals_scan(self, small_xy, raster):
        kernel = get_kernel("epanechnikov")
        got = zorder_grid(small_xy, raster, kernel, 9.0, sample_size=len(small_xy))
        expected = scan_grid(small_xy, raster, kernel, 9.0)
        np.testing.assert_allclose(got, expected, rtol=1e-12)

    def test_approximation_improves_with_sample_size(self, rng, raster):
        xy = rng.uniform((0, 0), (100, 80), (3000, 2))
        kernel = get_kernel("epanechnikov")
        expected = scan_grid(xy, raster, kernel, 15.0)
        err_small = np.abs(
            zorder_grid(xy, raster, kernel, 15.0, sample_size=30) - expected
        ).max()
        err_large = np.abs(
            zorder_grid(xy, raster, kernel, 15.0, sample_size=1500) - expected
        ).max()
        assert err_large < err_small

    def test_scaling_preserves_total_mass(self, small_xy, raster):
        """Weighted sample keeps the grid on the exact method's scale."""
        kernel = get_kernel("epanechnikov")
        exact = scan_grid(small_xy, raster, kernel, 25.0)
        approx = zorder_grid(small_xy, raster, kernel, 25.0, sample_size=100)
        assert approx.sum() == pytest.approx(exact.sum(), rel=0.2)

    def test_empty(self, raster):
        grid = zorder_grid(np.empty((0, 2)), raster, get_kernel("epanechnikov"), 5.0)
        assert np.all(grid == 0)
