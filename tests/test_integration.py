"""End-to-end integration tests across modules.

These run the same pipelines the examples and benchmarks use, at a small
scale: generate a city, compute KDV with several methods, compare methods,
explore, and render output artifacts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    ExplorationSession,
    Region,
    compute_kdv,
    load_dataset,
    random_pan_regions,
    scott_bandwidth,
)
from repro.viz.image import ascii_preview


@pytest.fixture(scope="module")
def city():
    return load_dataset("seattle", scale=0.002)  # ~1.7k points


class TestEndToEnd:
    def test_dataset_to_heatmap_file(self, city, tmp_path):
        res = compute_kdv(city, size=(64, 48))
        assert res.grid.shape == (48, 64)
        assert res.max_density() > 0
        out = tmp_path / "seattle.ppm"
        res.save_ppm(str(out))
        assert out.stat().st_size > 64 * 48 * 3

    def test_exact_methods_agree_on_real_shaped_data(self, city):
        b = scott_bandwidth(city.xy)
        grids = {
            m: compute_kdv(city, size=(32, 24), bandwidth=b, method=m).grid
            for m in ("scan", "quad", "slam_sort", "slam_bucket_rao")
        }
        ref = grids["scan"]
        for name, grid in grids.items():
            np.testing.assert_allclose(
                grid, ref, rtol=1e-8, atol=1e-10 * max(ref.max(), 1), err_msg=name
            )

    def test_hotspots_land_on_data_concentations(self, city):
        """The identified hotspot pixels must contain more points than
        average pixels — KDV's whole purpose (paper Figure 1)."""
        res = compute_kdv(city, size=(40, 30))
        mask = res.hotspot_pixels(quantile=0.95)
        raster = res.raster
        # count points per pixel
        ix = np.clip(
            ((city.x - raster.region.xmin) / raster.gx).astype(int), 0, raster.width - 1
        )
        iy = np.clip(
            ((city.y - raster.region.ymin) / raster.gy).astype(int),
            0,
            raster.height - 1,
        )
        counts = np.zeros(raster.shape)
        np.add.at(counts, (iy, ix), 1.0)
        assert counts[mask].mean() > counts.mean()

    def test_exploratory_session_full_loop(self, city):
        session = ExplorationSession(city, size=(32, 24))
        session.render()
        session.zoom(0.5)
        session.pan(0.1, 0.1)
        session.filter_category(0)
        session.clear_filters()
        year = 365.25 * 24 * 3600
        session.filter_time(0.0, year)
        session.set_bandwidth(session.bandwidth * 2)
        session.reset_view()
        assert session.latency_summary()["frames"] == 8
        assert session.total_seconds() > 0

    def test_pan_workload_matches_paper_shape(self, city):
        base = Region.from_points(city.xy)
        session = ExplorationSession(city, size=(32, 24))
        for region in random_pan_regions(base, count=5, size_ratio=0.5, seed=2):
            res = session.pan_to(region)
            assert res.grid.shape == (24, 32)
        assert len(session.frames) == 5

    def test_zoom_increases_peak_density(self, city):
        """Zooming into the densest area concentrates density per pixel
        (the paper's explanation for zoom frames being slower)."""
        full = compute_kdv(city, size=(32, 24), normalization="none")
        hot_region = Region.from_points(city.xy).scaled(0.25)
        zoomed = compute_kdv(
            city, region=hot_region, size=(32, 24), normalization="none",
            bandwidth=full.bandwidth,
        )
        # envelope per row grows as rows pack together; density values rise
        assert zoomed.grid.mean() >= full.grid.mean() * 0.5

    def test_ascii_preview_of_result(self, city):
        res = compute_kdv(city, size=(64, 48))
        text = ascii_preview(res.grid_image(), width=32, height=12)
        assert len(text.split("\n")) == 12
        assert any(c != " " for c in text.replace("\n", ""))

    def test_csv_roundtrip_preserves_kdv(self, city, tmp_path):
        from repro import load_csv, save_csv

        path = tmp_path / "city.csv"
        save_csv(city, path)
        back = load_csv(path)
        a = compute_kdv(city, size=(16, 12), bandwidth=500.0).grid
        b = compute_kdv(back, size=(16, 12), bandwidth=500.0).grid
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_two_datasets_different_hotspots(self):
        a = load_dataset("seattle", scale=0.001)
        b = load_dataset("san_francisco", scale=0.0002)
        res_a = compute_kdv(a, size=(16, 12))
        res_b = compute_kdv(b, size=(16, 12))
        assert res_a.raster.region != res_b.raster.region
