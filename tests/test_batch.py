"""Tests for the block-vectorized ``numpy_batch`` sweep engine.

The engine's contract (repro.core.batch) has two halves:

* **bit-identity** — under the bucket methods it returns grids that are
  ``np.array_equal`` to the per-row ``numpy`` engine, for every kernel,
  weighting, worker count, backend, RAO orientation, and ``max_block_bytes``
  setting (the python engine agrees to float tolerance, as it already does
  with per-row numpy under slam_sort);
* **serial-equal observability** — recorder counters and phase-timer call
  counts match the per-row serial sweep exactly, so dashboards cannot tell
  the engines apart except by the seconds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Raster, Region, compute_kdv
from repro.core.batch import (
    DEFAULT_MAX_BLOCK_BYTES,
    NumpyBatchEngine,
    numpy_batch_grid,
)
from repro.core.bounds import bucket_indices
from repro.core.envelope import YSortedIndex
from repro.core.kernels import get_kernel
from repro.core.native import NATIVE_AVAILABLE, native_grid
from repro.core.slam_bucket import slam_bucket_row_numpy
from repro.core.sweep import sweep_kdv
from repro.obs import Recorder

KERNEL_NAMES = ("uniform", "epanechnikov", "quartic")


@pytest.fixture(scope="module")
def cluster_xy() -> np.ndarray:
    rng = np.random.default_rng(20220613)
    centers = rng.uniform([0.0, 0.0], [100.0, 80.0], size=(8, 2))
    return centers[rng.integers(0, 8, 3000)] + rng.normal(0.0, 6.0, (3000, 2))


@pytest.fixture(scope="module")
def cluster_weights(cluster_xy) -> np.ndarray:
    return np.random.default_rng(99).uniform(0.5, 2.0, len(cluster_xy))


def _grids(xy, raster, kernel_name, bandwidth, engine, **kwargs):
    table = {"numpy": slam_bucket_row_numpy}
    kernel = get_kernel(kernel_name)
    if engine == "numpy_batch":
        return numpy_batch_grid(xy, raster, kernel, bandwidth, **kwargs)
    return sweep_kdv(xy, raster, kernel, bandwidth, table[engine], **kwargs)


class TestBitIdentity:
    """numpy_batch == per-row numpy, bit for bit (acceptance criterion c)."""

    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    @pytest.mark.parametrize("weighted", (False, True))
    def test_kernels_and_weights(
        self, kernel_name, weighted, cluster_xy, cluster_weights
    ):
        raster = Raster(Region(0.0, 0.0, 100.0, 80.0), 64, 48)
        w = cluster_weights if weighted else None
        a = _grids(cluster_xy, raster, kernel_name, 9.0, "numpy", weights=w)
        b = _grids(cluster_xy, raster, kernel_name, 9.0, "numpy_batch", weights=w)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("backend", ("thread", "process"))
    def test_parallel_workers(self, backend, cluster_xy):
        raster = Raster(Region(0.0, 0.0, 100.0, 80.0), 48, 40)
        serial = _grids(cluster_xy, raster, "epanechnikov", 9.0, "numpy_batch")
        parallel = _grids(
            cluster_xy, raster, "epanechnikov", 9.0, "numpy_batch",
            workers=3, backend=backend,
        )
        assert np.array_equal(serial, parallel)

    @pytest.mark.parametrize("size", ((48, 36), (36, 48)))
    def test_rao_both_orientations(self, size, cluster_xy):
        """Through the public API, under RAO, for both sweep orientations."""
        kw = dict(
            region=Region(0.0, 0.0, 100.0, 80.0), size=size, bandwidth=9.0,
            method="slam_bucket_rao", normalization="none",
        )
        a = compute_kdv(cluster_xy, engine="numpy", **kw).grid
        b = compute_kdv(cluster_xy, engine="numpy_batch", **kw).grid
        assert np.array_equal(a, b)

    @pytest.mark.parametrize(
        "max_block_bytes",
        (1, 4096, 64 * 1024, DEFAULT_MAX_BLOCK_BYTES, 1 << 30),
    )
    def test_chunking_invariance(self, max_block_bytes, cluster_xy):
        """Every chunk boundary placement — from one row per chunk to the
        whole block in one chunk — produces the same bits."""
        raster = Raster(Region(0.0, 0.0, 100.0, 80.0), 40, 30)
        reference = _grids(cluster_xy, raster, "quartic", 9.0, "numpy")
        got = _grids(
            cluster_xy, raster, "quartic", 9.0, "numpy_batch",
            max_block_bytes=max_block_bytes,
        )
        assert np.array_equal(reference, got)

    def test_python_engine_close(self, cluster_xy):
        from repro.core.slam_bucket import slam_bucket_row_python

        raster = Raster(Region(0.0, 0.0, 100.0, 80.0), 24, 18)
        kernel = get_kernel("epanechnikov")
        a = sweep_kdv(cluster_xy, raster, kernel, 9.0, slam_bucket_row_python)
        b = numpy_batch_grid(cluster_xy, raster, kernel, 9.0)
        scale = max(a.max(), 1.0)
        np.testing.assert_allclose(b / scale, a / scale, atol=1e-12)


class TestScratchReuse:
    """The chunk loop runs in per-block scratch: more chunks must not mean
    more allocation (the hoisted-buffer contract in the chunking comment)."""

    @staticmethod
    def _sweep_peak(xy, weights, height: int, max_block_bytes: int) -> int:
        """tracemalloc peak (bytes) of one warmed sweep_block call."""
        import tracemalloc

        raster = Raster(Region(0.0, 0.0, 100.0, 80.0), 64, height)
        kernel = get_kernel("quartic")  # most channels -> most scratch
        idx = YSortedIndex(xy)
        sw = weights[idx.order]
        engine = NumpyBatchEngine(max_block_bytes=max_block_bytes)
        args = (
            0, height, raster.y_centers(),
            (raster.x_centers() - 50.0) / 9.0, idx, 50.0, 9.0, kernel,
        )
        engine.sweep_block(*args, sorted_weights=sw)  # warm caches/imports
        tracemalloc.start()
        try:
            engine.sweep_block(*args, sorted_weights=sw)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        return peak

    def test_chunking_adds_no_allocation_growth(
        self, cluster_xy, cluster_weights
    ):
        """Doubling the row count (and therefore the chunk count, at a fixed
        ``max_block_bytes``) may grow the peak by the extra output rows and
        envelope bookkeeping — never by per-chunk scratch accumulation."""
        few = self._sweep_peak(cluster_xy, cluster_weights, 48, 16 * 1024)
        many = self._sweep_peak(cluster_xy, cluster_weights, 96, 16 * 1024)
        # Outputs are (height, 64) float64; row-proportional bookkeeping
        # (envelope bounds, cumsums) gets a generous 64 KiB of slack.
        out_delta = (96 - 48) * 64 * 8
        assert many <= few + out_delta + 64 * 1024

    def test_small_chunks_bound_the_working_set(
        self, cluster_xy, cluster_weights
    ):
        """A chunked sweep must peak well below the single-chunk sweep: the
        whole point of ``max_block_bytes`` is a bounded working set, and the
        hoisted scratch is sized to the largest chunk, not the block."""
        chunked = self._sweep_peak(cluster_xy, cluster_weights, 96, 16 * 1024)
        single = self._sweep_peak(cluster_xy, cluster_weights, 96, 1 << 30)
        assert chunked < single


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(0, 120),
    b=st.floats(0.5, 40.0, allow_nan=False),
    width=st.integers(1, 24),
    height=st.integers(1, 24),
    kernel_name=st.sampled_from(KERNEL_NAMES),
    weighted=st.booleans(),
    threads=st.integers(1, 4),
)
def test_batch_parity_property(
    seed, n, b, width, height, kernel_name, weighted, threads
):
    """Hypothesis sweep of the bit-identity contract, including degenerate
    rasters (1-pixel rows/columns) and empty/tiny datasets.  When the
    compiled ``native`` engine is present it joins the matrix: same bits as
    the per-row numpy engine for every drawn case and OpenMP thread count."""
    rng = np.random.default_rng(seed)
    xy = rng.uniform((0.0, 0.0), (50.0, 40.0), (n, 2))
    weights = rng.uniform(0.1, 3.0, n) if weighted else None
    raster = Raster(Region(0.0, 0.0, 50.0, 40.0), width, height)
    kernel = get_kernel(kernel_name)
    a = sweep_kdv(xy, raster, kernel, b, slam_bucket_row_numpy, weights=weights)
    c = numpy_batch_grid(xy, raster, kernel, b, weights=weights)
    assert np.array_equal(a, c)
    if NATIVE_AVAILABLE:
        d = native_grid(xy, raster, kernel, b, weights=weights, workers=threads)
        assert np.array_equal(a, d)


class TestBatchEdgeCases:
    def test_single_pixel_rows(self):
        """X = 1 exercises the bucket grid's gx -> 1.0 fallback inside the
        batched scatter (num_pixels == 1 has no pixel spacing)."""
        xy = np.array([[5.0, 5.0], [5.0, 6.0], [4.0, 5.5]])
        raster = Raster(Region(0.0, 0.0, 10.0, 10.0), 1, 8)
        kernel = get_kernel("epanechnikov")
        a = sweep_kdv(xy, raster, kernel, 4.0, slam_bucket_row_numpy)
        b = numpy_batch_grid(xy, raster, kernel, 4.0)
        assert np.array_equal(a, b)
        assert b.shape == (8, 1)

    def test_all_rows_empty(self):
        """Every envelope empty (points far above the raster): the batch
        driver's zero-pair early path must return the all-zeros block."""
        xy = np.full((10, 2), 1000.0)
        raster = Raster(Region(0.0, 0.0, 10.0, 10.0), 6, 5)
        grid = numpy_batch_grid(xy, raster, get_kernel("quartic"), 2.0)
        assert grid.shape == (5, 6)
        assert not grid.any()

    def test_some_rows_empty_scatter_back(self):
        """A band of points leaves leading/trailing rows empty; the
        compressed scatter must place non-empty rows correctly."""
        rng = np.random.default_rng(3)
        xy = np.column_stack(
            [rng.uniform(0, 10, 40), rng.uniform(4.8, 5.2, 40)]
        )
        raster = Raster(Region(0.0, 0.0, 10.0, 10.0), 12, 20)
        kernel = get_kernel("epanechnikov")
        a = sweep_kdv(xy, raster, kernel, 0.4, slam_bucket_row_numpy)
        b = numpy_batch_grid(xy, raster, kernel, 0.4)
        assert np.array_equal(a, b)
        assert not b[0].any() and not b[-1].any() and b.any()

    def test_endpoints_exactly_on_pixel_centers(self):
        """Integer coordinates + integer bandwidth put interval endpoints
        exactly on pixel centers; the closed-interval tie rule must survive
        batching (same correction arithmetic, just vectorized over pairs)."""
        xs = np.arange(11, dtype=np.float64)  # pixel centers 0..10
        lb = np.array([2.0, 0.0, 10.0, -1.0])
        ub = np.array([5.0, 0.0, 12.0, -0.5])
        enter, leave = bucket_indices(xs, lb, ub)
        np.testing.assert_array_equal(enter, np.searchsorted(xs, lb, "left"))
        np.testing.assert_array_equal(leave, np.searchsorted(xs, ub, "right"))
        # and end-to-end: a crafted dataset whose lb/ub land on centers
        xy = np.array([[3.0, 2.0], [7.0, 2.0], [5.0, 2.0]])
        raster = Raster(Region(-0.5, -0.5, 10.5, 4.5), 11, 5)
        kernel = get_kernel("uniform")
        a = sweep_kdv(xy, raster, kernel, 2.0, slam_bucket_row_numpy)
        b = numpy_batch_grid(xy, raster, kernel, 2.0)
        assert np.array_equal(a, b)

    def test_zero_pixel_intervals(self):
        """Intervals entirely between two pixel centers (enter == leave)
        contribute nothing — but their pairs still flow through the scatter
        (dropping them would reorder bincount sums for other pairs)."""
        xs = np.arange(5, dtype=np.float64)
        enter, leave = bucket_indices(
            xs, np.array([1.25, 3.1]), np.array([1.75, 3.9])
        )
        np.testing.assert_array_equal(enter, leave)
        xy = np.array([[1.5, 1.0], [1.5, 1.2]])
        raster = Raster(Region(-0.5, -0.5, 4.5, 2.5), 5, 3)
        kernel = get_kernel("epanechnikov")
        a = sweep_kdv(xy, raster, kernel, 0.4, slam_bucket_row_numpy)
        b = numpy_batch_grid(xy, raster, kernel, 0.4)
        assert np.array_equal(a, b)

    def test_empty_block_request(self):
        engine = NumpyBatchEngine()
        out = engine.sweep_block(
            3, 3, np.arange(5.0), np.arange(4.0), YSortedIndex(np.zeros((0, 2))),
            0.0, 1.0, get_kernel("uniform"),
        )
        assert out.shape == (0, 4)

    def test_unknown_kernel_rejected(self, cluster_xy):
        class FakeKernel:
            name = "gaussianish"
            num_channels = 4

        raster = Raster(Region(0.0, 0.0, 100.0, 80.0), 8, 8)
        with pytest.raises(ValueError, match="numpy_batch.*gaussianish"):
            numpy_batch_grid(cluster_xy, raster, FakeKernel(), 5.0)

    def test_bad_max_block_bytes_rejected(self):
        with pytest.raises(ValueError, match="max_block_bytes"):
            NumpyBatchEngine(max_block_bytes=0)


class TestRecorderParity:
    """Counters and timer call counts are serial-equal (batch phases merge
    to the per-row loop's accounting; docs/observability.md)."""

    def _snapshot(self, engine, cluster_xy, **kwargs):
        raster = Raster(Region(0.0, 0.0, 100.0, 80.0), 32, 40)
        rec = Recorder()
        _grids(
            cluster_xy, raster, "epanechnikov", 6.0, engine,
            recorder=rec, **kwargs,
        )
        return rec.snapshot()

    def test_counters_and_calls_match_serial_rowwise(self, cluster_xy):
        serial = self._snapshot("numpy", cluster_xy)
        batch = self._snapshot("numpy_batch", cluster_xy)
        assert batch["counters"] == serial["counters"]
        for phase in ("sweep.envelope_update", "sweep.endpoint_bucket",
                      "sweep.prefix_sweep"):
            assert batch["phases"][phase]["calls"] == \
                serial["phases"][phase]["calls"], phase

    def test_parallel_merge_equals_serial(self, cluster_xy):
        serial = self._snapshot("numpy_batch", cluster_xy)
        merged = self._snapshot(
            "numpy_batch", cluster_xy, workers=3, backend="thread"
        )
        # sweep.blocks legitimately reflects the partitioning; every
        # row/envelope count must still merge to the serial totals.
        drop = "sweep.blocks"
        assert {k: v for k, v in merged["counters"].items() if k != drop} == \
            {k: v for k, v in serial["counters"].items() if k != drop}
        for phase, data in serial["phases"].items():
            assert merged["phases"][phase]["calls"] == data["calls"], phase


class TestYSortedReuse:
    def test_transposed_twin_cached_and_backlinked(self, cluster_xy):
        idx = YSortedIndex(cluster_xy)
        twin = idx.transposed()
        assert twin is idx.transposed()  # cached
        assert twin.transposed() is idx  # back-linked
        fresh = YSortedIndex(cluster_xy[:, ::-1])
        np.testing.assert_array_equal(twin.order, fresh.order)
        np.testing.assert_array_equal(twin.sorted_xy, fresh.sorted_xy)

    @pytest.mark.parametrize("size", ((40, 30), (30, 40)))
    def test_caller_index_honored_under_rao(self, size, cluster_xy):
        """compute_kdv(ysorted=...) returns the same bits in both RAO
        orientations — the column sweep consumes the cached transposed twin
        instead of dropping the index."""
        kw = dict(
            region=Region(0.0, 0.0, 100.0, 80.0), size=size, bandwidth=9.0,
            method="slam_bucket_rao", normalization="none",
        )
        idx = YSortedIndex(cluster_xy)
        without = compute_kdv(cluster_xy, engine="numpy_batch", **kw).grid
        with_idx = compute_kdv(
            cluster_xy, engine="numpy_batch", ysorted=idx, **kw
        ).grid
        assert np.array_equal(without, with_idx)
        if size[0] < size[1]:  # columns orientation ran: twin was built
            assert idx._transposed is not None

    def test_index_skips_rebuild(self, cluster_xy):
        """With a caller index, no ``index_build`` span is recorded."""
        raster = Raster(Region(0.0, 0.0, 100.0, 80.0), 24, 18)
        kernel = get_kernel("epanechnikov")
        idx = YSortedIndex(cluster_xy)
        rec = Recorder()
        numpy_batch_grid(cluster_xy, raster, kernel, 9.0, ysorted=idx,
                         recorder=rec)
        assert "index_build" not in rec.snapshot()["phases"]

    def test_api_rejects_mismatched_index(self, cluster_xy):
        idx = YSortedIndex(cluster_xy[:10])
        with pytest.raises(ValueError, match="10 points"):
            compute_kdv(cluster_xy, size=(8, 8), bandwidth=5.0,
                        method="slam_bucket", ysorted=idx)

    def test_api_rejects_index_for_non_slam_method(self, cluster_xy):
        idx = YSortedIndex(cluster_xy)
        with pytest.raises(ValueError, match="SLAM methods"):
            compute_kdv(cluster_xy, size=(8, 8), bandwidth=5.0,
                        method="scan", ysorted=idx)
