"""Tests for hotspot extraction and tracking (analysis.hotspots)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PointSet, Region, compute_kdv
from repro.analysis import extract_hotspots, label_regions, track_hotspots


class TestLabelRegions:
    def test_empty_mask(self):
        labels, count = label_regions(np.zeros((4, 5), bool))
        assert count == 0
        assert np.all(labels == 0)

    def test_full_mask_single_region(self):
        labels, count = label_regions(np.ones((4, 5), bool))
        assert count == 1
        assert np.all(labels == 1)

    def test_two_separate_regions(self):
        mask = np.zeros((5, 5), bool)
        mask[0, 0:2] = True
        mask[4, 3:5] = True
        labels, count = label_regions(mask)
        assert count == 2
        assert labels[0, 0] == labels[0, 1] != labels[4, 3]

    def test_diagonal_4_vs_8_connectivity(self):
        mask = np.zeros((2, 2), bool)
        mask[0, 0] = mask[1, 1] = True
        _labels4, count4 = label_regions(mask, connectivity=4)
        _labels8, count8 = label_regions(mask, connectivity=8)
        assert count4 == 2
        assert count8 == 1

    def test_u_shape_merges(self):
        """A U shape forces a label equivalence the second pass must merge."""
        mask = np.array(
            [
                [1, 0, 1],
                [1, 0, 1],
                [1, 1, 1],
            ],
            dtype=bool,
        )
        labels, count = label_regions(mask)
        assert count == 1
        assert set(np.unique(labels)) == {0, 1}

    def test_spiral_merges(self):
        mask = np.array(
            [
                [1, 1, 1, 1, 1],
                [0, 0, 0, 0, 1],
                [1, 1, 1, 0, 1],
                [1, 0, 0, 0, 1],
                [1, 1, 1, 1, 1],
            ],
            dtype=bool,
        )
        labels, count = label_regions(mask)
        assert count == 1

    def test_labels_consecutive(self):
        rng = np.random.default_rng(3)
        mask = rng.random((20, 20)) < 0.3
        labels, count = label_regions(mask)
        assert set(np.unique(labels)) == set(range(count + 1))

    def test_matches_bfs_reference(self):
        """Cross-check against a simple BFS flood fill."""
        rng = np.random.default_rng(9)
        mask = rng.random((15, 18)) < 0.4
        labels, count = label_regions(mask, connectivity=4)

        # reference BFS labeling
        ref = np.zeros_like(labels)
        next_label = 0
        for j in range(mask.shape[0]):
            for i in range(mask.shape[1]):
                if mask[j, i] and ref[j, i] == 0:
                    next_label += 1
                    stack = [(j, i)]
                    ref[j, i] = next_label
                    while stack:
                        cj, ci = stack.pop()
                        for dj, di in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                            nj, ni = cj + dj, ci + di
                            if (
                                0 <= nj < mask.shape[0]
                                and 0 <= ni < mask.shape[1]
                                and mask[nj, ni]
                                and ref[nj, ni] == 0
                            ):
                                ref[nj, ni] = next_label
                                stack.append((nj, ni))
        assert count == next_label
        # same partition (label values may differ): compare co-membership
        for lbl in range(1, count + 1):
            cells = labels == lbl
            ref_values = np.unique(ref[cells])
            assert len(ref_values) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            label_regions(np.zeros(5, bool))
        with pytest.raises(ValueError):
            label_regions(np.zeros((2, 2), bool), connectivity=6)


class TestExtractHotspots:
    @pytest.fixture
    def two_cluster_result(self, rng):
        xy = np.vstack(
            [
                rng.normal((20.0, 20.0), 2.0, (300, 2)),
                rng.normal((80.0, 60.0), 2.0, (150, 2)),
            ]
        )
        return compute_kdv(
            xy, region=Region(0, 0, 100, 80), size=(50, 40), bandwidth=6.0
        )

    def test_finds_both_clusters(self, two_cluster_result):
        spots = extract_hotspots(two_cluster_result, quantile=0.85)
        assert len(spots) >= 2
        centroids = np.array([s.centroid_xy for s in spots[:2]])
        targets = np.array([[20.0, 20.0], [80.0, 60.0]])
        for target in targets:
            assert np.min(np.hypot(*(centroids - target).T)) < 8.0

    def test_sorted_by_peak(self, two_cluster_result):
        spots = extract_hotspots(two_cluster_result, quantile=0.85)
        peaks = [s.peak_density for s in spots]
        assert peaks == sorted(peaks, reverse=True)
        # the 300-point cluster is denser than the 150-point one
        assert np.hypot(*(np.array(spots[0].centroid_xy) - (20.0, 20.0))) < 8.0

    def test_stats_consistency(self, two_cluster_result):
        for spot in extract_hotspots(two_cluster_result, quantile=0.9):
            assert spot.pixel_area == int(spot.mask.sum())
            raster = two_cluster_result.raster
            assert spot.world_area == pytest.approx(
                spot.pixel_area * raster.gx * raster.gy
            )
            assert spot.peak_density <= two_cluster_result.max_density()
            assert spot.mass > 0

    def test_min_pixels_filter(self, two_cluster_result):
        all_spots = extract_hotspots(two_cluster_result, quantile=0.85, min_pixels=1)
        big_spots = extract_hotspots(two_cluster_result, quantile=0.85, min_pixels=10)
        assert len(big_spots) <= len(all_spots)
        assert all(s.pixel_area >= 10 for s in big_spots)

    def test_empty_grid(self):
        res = compute_kdv(
            np.empty((0, 2)), region=Region(0, 0, 1, 1), size=(8, 8),
            bandwidth=0.1, method="scan",
        )
        assert extract_hotspots(res) == []

    def test_validation(self, two_cluster_result):
        with pytest.raises(ValueError):
            extract_hotspots(two_cluster_result, min_pixels=0)


class TestTrackHotspots:
    def _frame(self, center, rng, n=200):
        xy = rng.normal(center, 2.0, (n, 2))
        res = compute_kdv(
            xy, region=Region(0, 0, 100, 80), size=(50, 40), bandwidth=6.0
        )
        return extract_hotspots(res, quantile=0.5, min_pixels=2)

    def test_moving_hotspot_single_track(self, rng):
        """A slowly drifting cluster yields one multi-frame track."""
        frames = [self._frame((20.0 + 3 * k, 20.0), rng) for k in range(4)]
        tracks = track_hotspots(frames)
        longest = max(tracks, key=len)
        assert len(longest) == 4
        xs = [h.centroid_xy[0] for _f, h in longest]
        assert xs == sorted(xs)  # drifting east

    def test_jump_creates_new_track(self, rng):
        """A hotspot teleporting across the map cannot be the same track."""
        frames = [self._frame((20.0, 20.0), rng), self._frame((80.0, 60.0), rng)]
        tracks = track_hotspots(frames)
        assert all(len(t) == 1 for t in tracks)
        assert len(tracks) >= 2

    def test_birth_and_death(self, rng):
        frames = [
            self._frame((20.0, 20.0), rng),
            self._frame((20.0, 20.0), rng),
            [],  # hotspot disappears
            self._frame((20.0, 20.0), rng),  # reappears -> new track
        ]
        tracks = track_hotspots(frames)
        lengths = sorted(len(t) for t in tracks)
        assert 2 in lengths and 1 in lengths

    def test_empty_frames(self):
        assert track_hotspots([[], [], []]) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            track_hotspots([], min_overlap=0.0)

    def test_stkdv_integration(self, rng):
        """End to end: outbreak STKDV -> hotspot tracks."""
        from repro.extensions import compute_stkdv

        n = 400
        xy = np.vstack(
            [rng.uniform((0, 0), (100, 80), (n // 2, 2)),
             rng.normal((30.0, 30.0), 3.0, (n // 2, 2))]
        )
        t = np.concatenate(
            [rng.uniform(0, 100, n // 2), rng.uniform(40, 60, n // 2)]
        )
        st = compute_stkdv(
            PointSet(xy, t=t), times=5, temporal_bandwidth=15.0,
            size=(50, 40), bandwidth=6.0,
        )
        frames = [extract_hotspots(f, quantile=0.9, min_pixels=2) for f in st.frames]
        tracks = track_hotspots(frames)
        assert len(tracks) >= 1
