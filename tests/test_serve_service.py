"""Tests for the concurrent tile service (`repro.serve`).

The two proofs the serving subsystem stands on are pinned here:

* **coalescing** — N concurrent requests for the same cold tile trigger
  exactly one render, and every waiter gets a grid bit-identical to a
  direct :func:`~repro.viz.tiles.render_tile`;
* **backpressure** — with a saturated one-worker pool, excess distinct
  tiles are refused with :class:`~repro.serve.ServiceOverloaded`
  immediately (no hang), and a graceful shutdown leaves no non-daemon
  thread behind.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import Region
from repro.obs import Recorder
from repro.serve import (
    ServiceClosed,
    ServiceOverloaded,
    ServiceTimeout,
    TileService,
    TTLCache,
)
from repro.viz.tiles import TileScheme, render_tile

TILE = 8
BANDWIDTH = 60.0


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(23)
    return rng.uniform((0.0, 0.0), (1000.0, 1000.0), (300, 2))


@pytest.fixture(scope="module")
def scheme():
    return TileScheme(Region(0.0, 0.0, 1000.0, 1000.0))


def make_service(points, scheme, **kwargs):
    kwargs.setdefault("tile_size", TILE)
    kwargs.setdefault("bandwidth", BANDWIDTH)
    kwargs.setdefault("max_zoom", 3)
    kwargs.setdefault("recorder", Recorder())
    return TileService(points, scheme, **kwargs)


class GatedRender:
    """A render_fn that blocks until released; counts invocations."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, points, scheme, zoom, tx, ty, **kwargs):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=30.0), "render gate never released"
        return render_tile(points, scheme, zoom, tx, ty, **kwargs)


class TestTTLCache:
    def test_lru_eviction_order(self):
        cache = TTLCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a"
        assert cache.put("c", 3) == 1  # evicts the stale "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_ttl_expiry_with_fake_clock(self):
        now = [0.0]
        cache = TTLCache(8, ttl_s=10.0, clock=lambda: now[0])
        cache.put("k", "v")
        assert cache.get("k") == "v"
        now[0] = 9.999
        assert cache.get("k") == "v"
        now[0] = 10.0
        assert cache.get("k") is None
        assert cache.expirations == 1
        assert len(cache) == 0

    def test_len_and_keys_purge_expired(self):
        """Expired-but-unread entries must not inflate the reported size
        (the ``serve.cache_size`` gauge and ``/metricz`` ``tiles_cached``)."""
        now = [0.0]
        cache = TTLCache(8, ttl_s=10.0, clock=lambda: now[0])
        cache.put("a", 1)
        cache.put("b", 2)
        assert len(cache) == 2 and set(cache.keys()) == {"a", "b"}
        now[0] = 10.0
        assert len(cache) == 0
        assert cache.keys() == []
        assert cache.expirations == 2
        assert cache.evictions == 0  # expiry is not cache pressure

    def test_capacity_pop_of_expired_entry_counts_as_expiration(self):
        """Evicting an already-dead entry at capacity is an expiration, not
        an eviction — the eviction counter stays an honest pressure gauge."""
        now = [0.0]
        cache = TTLCache(2, ttl_s=10.0, clock=lambda: now[0])
        cache.put("a", 1)
        now[0] = 5.0
        cache.put("b", 2)
        now[0] = 11.0  # "a" is now past its TTL, "b" is still live
        assert cache.put("c", 3) == 0  # popping dead "a" is not an eviction
        assert cache.expirations == 1
        assert cache.evictions == 0
        assert cache.get("b", count=False) == 2  # live entry survived
        now[0] = 12.0
        assert cache.put("d", 4) == 1  # now a live entry ("b") must go
        assert cache.evictions == 1

    def test_invalidate_reports_presence(self):
        cache = TTLCache(8)
        cache.put((1, 0, 0), "a")
        cache.put((1, 1, 0), "b")
        assert cache.invalidate([(1, 0, 0), (1, 9, 9)]) == 1
        assert cache.keys() == [(1, 1, 0)]

    def test_counters(self):
        cache = TTLCache(4)
        cache.get("nope")
        cache.put("x", 1)
        cache.get("x")
        assert (cache.hits, cache.misses) == (1, 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            TTLCache(0)
        with pytest.raises(ValueError):
            TTLCache(1, ttl_s=0.0)

    def test_thread_safety_under_churn(self):
        cache = TTLCache(16)

        def worker(seed):
            rng = np.random.default_rng(seed)
            for _ in range(300):
                key = int(rng.integers(0, 32))
                if rng.random() < 0.5:
                    cache.put(key, key)
                else:
                    value = cache.get(key)
                    assert value is None or value == key

        with ThreadPoolExecutor(max_workers=6) as pool:
            list(pool.map(worker, range(6)))
        assert len(cache) <= 16


class TestCoalescing:
    def test_concurrent_requests_render_once(self, points, scheme):
        """≥16 concurrent requests for one cold tile → exactly one render,
        all responses bit-identical to a direct render_tile."""
        n_clients = 16
        gate = GatedRender()
        service = make_service(points, scheme, workers=2, render_fn=gate)
        barrier = threading.Barrier(n_clients)
        results = [None] * n_clients
        errors = []

        def client(i):
            try:
                barrier.wait(timeout=10.0)
                results[i] = service.get_tile(1, 0, 0)
            except Exception as exc:  # pragma: no cover - diagnostic
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(n_clients)]
        for t in threads:
            t.start()
        assert gate.started.wait(timeout=10.0)
        # hold the gate until every request has either joined the in-flight
        # future or is queued behind the barrier-released leader
        rec = service.recorder
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            joined = rec.counter_value("serve.coalesce.joined")
            if joined + rec.counter_value("serve.coalesce.leaders") == n_clients:
                break
            time.sleep(0.01)
        gate.release.set()
        for t in threads:
            t.join(timeout=30.0)
        assert not errors
        assert gate.calls == 1
        spans = [s for s in rec.snapshot()["spans"] if s["name"] == "tiles.render"]
        assert len(spans) == 1
        assert rec.counter_value("serve.coalesce.leaders") == 1
        assert rec.counter_value("serve.coalesce.joined") == n_clients - 1
        direct = render_tile(
            points, scheme, 1, 0, 0, tile_size=TILE, bandwidth=BANDWIDTH
        )
        for grid in results:
            assert grid is not None
            np.testing.assert_array_equal(grid, direct)
        service.close()

    def test_cached_tile_skips_the_pool(self, points, scheme):
        service = make_service(points, scheme, workers=1)
        first = service.get_tile(1, 1, 1)
        before = service.recorder.timer("tiles.render").calls
        second = service.get_tile(1, 1, 1)
        assert service.recorder.timer("tiles.render").calls == before
        assert second is first  # the cached (read-only) array itself
        assert not second.flags.writeable
        service.close()


class TestBackpressure:
    def test_queue_full_rejects_distinct_tile(self, points, scheme):
        gate = GatedRender()
        service = make_service(
            points, scheme, workers=1, queue_limit=1, render_fn=gate
        )
        leader_done = threading.Thread(target=service.get_tile, args=(1, 0, 0))
        leader_done.start()
        assert gate.started.wait(timeout=10.0)
        start = time.monotonic()
        with pytest.raises(ServiceOverloaded) as excinfo:
            service.get_tile(1, 1, 0)
        assert time.monotonic() - start < 5.0  # refused, never hangs
        assert excinfo.value.retry_after_s > 0.0
        assert service.recorder.counter_value("serve.rejected.overload") == 1
        gate.release.set()
        leader_done.join(timeout=30.0)
        service.close()

    def test_joining_is_allowed_when_saturated(self, points, scheme):
        """A request for the tile already in flight adds no work and must
        coalesce rather than 503."""
        gate = GatedRender()
        service = make_service(
            points, scheme, workers=1, queue_limit=1, render_fn=gate
        )
        holder = {}
        leader = threading.Thread(
            target=lambda: holder.setdefault("grid", service.get_tile(1, 0, 0))
        )
        leader.start()
        assert gate.started.wait(timeout=10.0)
        joiner = threading.Thread(
            target=lambda: holder.setdefault("joined", service.get_tile(1, 0, 0))
        )
        joiner.start()
        rec = service.recorder
        deadline = time.monotonic() + 10.0
        while rec.counter_value("serve.coalesce.joined") < 1:
            assert time.monotonic() < deadline
            time.sleep(0.01)
        gate.release.set()
        leader.join(timeout=30.0)
        joiner.join(timeout=30.0)
        np.testing.assert_array_equal(holder["grid"], holder["joined"])
        service.close()

    def test_deadline_turns_into_timeout(self, points, scheme):
        gate = GatedRender()
        service = make_service(points, scheme, workers=1, render_fn=gate)
        with pytest.raises(ServiceTimeout):
            service.get_tile(1, 0, 0, deadline_s=0.05)
        assert service.recorder.counter_value("serve.rejected.deadline") == 1
        # the render itself completes and warms the cache for later requests
        gate.release.set()
        deadline = time.monotonic() + 10.0
        while service.queue_depth and time.monotonic() < deadline:
            time.sleep(0.01)
        assert service.get_tile(1, 0, 0).shape == (TILE, TILE)
        service.close()

    def test_service_deadline_default(self, points, scheme):
        gate = GatedRender()
        service = make_service(
            points, scheme, workers=1, deadline_s=0.05, render_fn=gate
        )
        with pytest.raises(ServiceTimeout):
            service.get_tile(1, 0, 0)
        gate.release.set()
        service.close()


class TestCacheSemantics:
    def test_ttl_expiry_forces_rerender(self, points, scheme):
        now = [0.0]
        service = make_service(
            points, scheme, cache_ttl_s=30.0, clock=lambda: now[0]
        )
        service.get_tile(1, 0, 0)
        service.get_tile(1, 0, 0)
        assert service.recorder.timer("tiles.render").calls == 1
        now[0] = 31.0
        service.get_tile(1, 0, 0)
        assert service.recorder.timer("tiles.render").calls == 2
        service.close()

    def test_reported_cache_size_excludes_expired_entries(self, points, scheme):
        """``/metricz`` ``cache.size``, the ``serve.cache_size`` gauge, and
        ``/healthz`` ``tiles_cached`` must all agree and never count tiles a
        reader could no longer hit."""
        now = [0.0]
        service = make_service(
            points, scheme, cache_ttl_s=30.0, clock=lambda: now[0]
        )
        service.get_tile(1, 0, 0)
        service.get_tile(1, 1, 0)
        assert service.stats()["cache"]["size"] == 2
        now[0] = 31.0  # both tiles are past their TTL, unread
        stats = service.stats()
        assert stats["cache"]["size"] == 0
        assert stats["recorder"]["gauges"]["serve.cache_size"] == 0
        assert service.health()["tiles_cached"] == 0
        assert stats["cache"]["expirations"] == 2
        assert stats["cache"]["evictions"] == 0
        service.close()

    def test_ingest_invalidates_only_affected_tiles(self, points, scheme):
        service = make_service(points, scheme, max_zoom=2)
        # tiles at zoom 2 are 250 world units; bandwidth 60 inflates less
        # than one tile side, so opposite corners cannot both be affected
        near = service.get_tile(2, 0, 0)
        far = service.get_tile(2, 3, 3)
        del near
        outcome = service.ingest([[10.0, 10.0]])
        assert outcome["inserted"] == 1
        assert outcome["invalidated"] >= 1
        cached = set(service._cache.keys())
        assert (2, 0, 0) not in cached
        assert (2, 3, 3) in cached
        # the surviving tile is served from cache, not re-rendered
        renders = service.recorder.timer("tiles.render").calls
        np.testing.assert_array_equal(service.get_tile(2, 3, 3), far)
        assert service.recorder.timer("tiles.render").calls == renders
        service.close()

    def test_ingest_mid_render_keeps_stale_grid_out_of_cache(self, points, scheme):
        gate = GatedRender()
        service = make_service(points, scheme, workers=1, render_fn=gate)
        holder = {}
        waiter = threading.Thread(
            target=lambda: holder.setdefault("grid", service.get_tile(1, 0, 0))
        )
        waiter.start()
        assert gate.started.wait(timeout=10.0)
        service.ingest([[500.0, 500.0]])  # version bump while rendering
        gate.release.set()
        waiter.join(timeout=30.0)
        # the waiter got an answer (to the question it asked)...
        assert holder["grid"].shape == (TILE, TILE)
        # ...but the now-stale grid was not cached
        assert service._cache.get((1, 0, 0)) is None
        assert service.recorder.counter_value("serve.render.stale") == 1
        service.close()

    def test_ingest_validation_precedes_mutation(self, points, scheme):
        service = make_service(points, scheme)
        n = service.points_count
        with pytest.raises(ValueError):
            service.ingest([[1.0, 2.0, 3.0]])
        with pytest.raises(ValueError):
            service.ingest([[np.nan, 0.0]])
        assert service.points_count == n
        service.close()

    def test_empty_ingest_is_a_noop(self, points, scheme):
        service = make_service(points, scheme)
        service.get_tile(1, 0, 0)
        outcome = service.ingest(np.empty((0, 2)))
        assert outcome == {
            "inserted": 0,
            "invalidated": 0,
            "points": service.points_count,
        }
        assert service._cache.get((1, 0, 0)) is not None
        service.close()


class TestLifecycle:
    def test_graceful_shutdown_leaves_no_nondaemon_threads(self, points, scheme):
        before = {t for t in threading.enumerate() if not t.daemon}
        service = make_service(points, scheme, workers=3)
        service.get_tile(0, 0, 0)
        assert any(
            t.name.startswith("kdv-render")
            for t in threading.enumerate()
            if not t.daemon
        )
        service.close(drain=True)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            after = {t for t in threading.enumerate() if not t.daemon}
            if after <= before:
                break
            time.sleep(0.05)
        assert {t for t in threading.enumerate() if not t.daemon} <= before

    def test_closed_service_refuses_work(self, points, scheme):
        service = make_service(points, scheme)
        service.close()
        assert service.closed
        with pytest.raises(ServiceClosed):
            service.get_tile(0, 0, 0)
        with pytest.raises(ServiceClosed):
            service.ingest([[1.0, 1.0]])
        service.close()  # idempotent

    def test_context_manager(self, points, scheme):
        with make_service(points, scheme) as service:
            service.get_tile(0, 0, 0)
        assert service.closed

    def test_drain_answers_inflight_waiters(self, points, scheme):
        gate = GatedRender()
        service = make_service(points, scheme, workers=1, render_fn=gate)
        holder = {}
        waiter = threading.Thread(
            target=lambda: holder.setdefault("grid", service.get_tile(1, 0, 0))
        )
        waiter.start()
        assert gate.started.wait(timeout=10.0)
        gate.release.set()
        service.close(drain=True)
        waiter.join(timeout=30.0)
        assert holder["grid"].shape == (TILE, TILE)


class TestValidationAndIntrospection:
    def test_out_of_pyramid_keys(self, points, scheme):
        service = make_service(points, scheme, max_zoom=2)
        for bad in [(3, 0, 0), (1, 2, 0), (1, 0, -1), (-1, 0, 0)]:
            with pytest.raises(ValueError):
                service.get_tile(*bad)
        service.close()

    def test_constructor_validation(self, points, scheme):
        with pytest.raises(ValueError):
            TileService(np.empty((0, 2)), scheme)
        with pytest.raises(ValueError):
            TileService(points[:, :1], scheme)
        for kwargs in [
            {"tile_size": 0},
            {"workers": 0},
            {"max_zoom": -1},
            {"queue_limit": 0},
            {"deadline_s": 0.0},
        ]:
            with pytest.raises(ValueError):
                TileService(points, scheme, **kwargs)

    def test_default_scheme_covers_points(self, points):
        service = make_service(points, None)
        assert service.scheme.world.contains(points[:, 0], points[:, 1]).all()
        service.close()

    def test_pointset_input(self, points, scheme):
        from repro import PointSet

        service = make_service(PointSet(points), scheme)
        assert service.points_count == len(points)
        service.close()

    def test_health_and_stats_payloads(self, points, scheme):
        service = make_service(points, scheme)
        service.get_tile(0, 0, 0)
        service.get_tile(0, 0, 0)
        health = service.health()
        assert health["status"] == "ok"
        assert health["points"] == len(points)
        assert health["tiles_cached"] == 1
        stats = service.stats()
        assert stats["cache"]["hits"] == 1
        assert stats["cache"]["misses"] == 1
        assert stats["queue"] == {"depth": 0, "limit": service.queue_limit}
        rec = stats["recorder"]
        assert rec["counters"]["serve.tile_requests"] == 2
        assert rec["gauges"]["serve.cache_size"] == 1
        service.close()
        assert service.health()["status"] == "closing"

    def test_metrics_reconcile_with_observed_requests(self, points, scheme):
        service = make_service(points, scheme, max_zoom=2)
        keys = [(1, 0, 0), (1, 0, 0), (1, 1, 1), (2, 0, 0), (1, 0, 0)]
        for key in keys:
            service.get_tile(*key)
        rec = service.recorder
        assert rec.counter_value("serve.tile_requests") == len(keys)
        hits = rec.counter_value("tiles.cache.hits")
        misses = rec.counter_value("tiles.cache.misses")
        assert hits + misses == len(keys)
        assert misses == len(set(keys))
        assert rec.timer("tiles.render").calls == len(set(keys))
        service.close()

    def test_tile_image_stable_scale(self, points, scheme):
        service = make_service(points, scheme)
        img = service.tile_image(1, 0, 0)
        assert img.shape == (TILE, TILE, 3)
        assert img.dtype == np.uint8
        with pytest.raises(ValueError):
            service.tile_image(1, 0, 0, colormap="jet")
        service.close()
