"""Tests for synthetic dataset generation, sampling, and CSV I/O."""

from __future__ import annotations

import numpy as np
import pytest

from repro import CityModel, PointSet, generate_city, load_dataset
from repro.data.datasets import dataset_names, full_size
from repro.data.io import load_csv, save_csv
from repro.data.sampling import sample_without_replacement, size_sweep


class TestGenerateCity:
    @pytest.fixture
    def model(self) -> CityModel:
        return CityModel(name="toyville", extent=(10_000.0, 8_000.0))

    def test_size_and_fields(self, model):
        ps = generate_city(model, 500, seed=3)
        assert len(ps) == 500
        assert ps.t is not None and ps.category is not None
        assert ps.name == "toyville"

    def test_deterministic(self, model):
        a = generate_city(model, 300, seed=9)
        b = generate_city(model, 300, seed=9)
        np.testing.assert_array_equal(a.xy, b.xy)
        np.testing.assert_array_equal(a.t, b.t)
        np.testing.assert_array_equal(a.category, b.category)

    def test_seed_changes_data(self, model):
        a = generate_city(model, 300, seed=1)
        b = generate_city(model, 300, seed=2)
        assert not np.array_equal(a.xy, b.xy)

    def test_within_extent(self, model):
        ps = generate_city(model, 2000, seed=5)
        ox, oy = model.origin
        assert ps.x.min() >= ox and ps.x.max() <= ox + model.extent[0]
        assert ps.y.min() >= oy and ps.y.max() <= oy + model.extent[1]

    def test_clustered_not_uniform(self, model):
        """The generator must produce hotspots: the densest small cell should
        hold far more than the uniform expectation."""
        ps = generate_city(model, 5000, seed=7)
        hist, _, _ = np.histogram2d(ps.x, ps.y, bins=20)
        assert hist.max() > 5 * hist.mean()

    def test_categories_in_range(self, model):
        ps = generate_city(model, 1000, seed=11)
        assert ps.category.min() >= 0
        assert ps.category.max() < model.num_categories

    def test_times_in_span(self, model):
        ps = generate_city(model, 1000, seed=11)
        assert ps.t.min() >= 0.0
        assert ps.t.max() <= model.time_span_years * 365.25 * 24 * 3600

    def test_zero_points(self, model):
        assert len(generate_city(model, 0)) == 0

    def test_negative_rejected(self, model):
        with pytest.raises(ValueError):
            generate_city(model, -1)


class TestDatasets:
    def test_four_cities(self):
        assert dataset_names() == (
            "seattle",
            "los_angeles",
            "new_york",
            "san_francisco",
        )

    def test_full_sizes_match_table5(self):
        assert full_size("seattle") == 862_873
        assert full_size("los_angeles") == 1_255_668
        assert full_size("new_york") == 1_499_928
        assert full_size("san_francisco") == 4_333_098

    def test_scale(self):
        ps = load_dataset("seattle", scale=0.001)
        assert len(ps) == round(862_873 * 0.001)

    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("gotham")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            load_dataset("seattle", scale=0.0)
        with pytest.raises(ValueError):
            load_dataset("seattle", scale=1.5)

    def test_deterministic_default_seed(self):
        a = load_dataset("new_york", scale=0.0005)
        b = load_dataset("new_york", scale=0.0005)
        np.testing.assert_array_equal(a.xy, b.xy)

    def test_extents_differ_between_cities(self):
        sf = load_dataset("san_francisco", scale=0.0005)
        la = load_dataset("los_angeles", scale=0.0005)
        sf_w = sf.x.max() - sf.x.min()
        la_w = la.x.max() - la.x.min()
        assert la_w > 3 * sf_w  # LA sprawls, SF is compact (Table 5 stand-ins)


class TestSampling:
    def test_fraction_size(self, small_points):
        sub = sample_without_replacement(small_points, 0.5, seed=1)
        assert len(sub) == 200

    def test_without_replacement(self, small_points):
        sub = sample_without_replacement(small_points, 0.5, seed=1)
        # no duplicated rows beyond what the source contains
        rows = {tuple(r) for r in sub.xy}
        assert len(rows) == len(sub)

    def test_full_fraction_returns_same(self, small_points):
        assert sample_without_replacement(small_points, 1.0) is small_points

    def test_deterministic(self, small_points):
        a = sample_without_replacement(small_points, 0.3, seed=5)
        b = sample_without_replacement(small_points, 0.3, seed=5)
        np.testing.assert_array_equal(a.xy, b.xy)

    def test_invalid_fraction(self, small_points):
        for bad in (0.0, -0.1, 1.01):
            with pytest.raises(ValueError):
                sample_without_replacement(small_points, bad)

    def test_size_sweep_ladder(self, small_points):
        sweep = size_sweep(small_points)
        assert [f for f, _ in sweep] == [0.25, 0.5, 0.75, 1.0]
        assert [len(p) for _, p in sweep] == [100, 200, 300, 400]

    def test_carries_metadata(self, small_points):
        sub = sample_without_replacement(small_points, 0.25, seed=2)
        assert sub.t is not None and len(sub.t) == len(sub)
        assert sub.category is not None and len(sub.category) == len(sub)


class TestCSVRoundTrip:
    def test_full_roundtrip(self, small_points, tmp_path):
        path = tmp_path / "pts.csv"
        save_csv(small_points, path)
        back = load_csv(path)
        np.testing.assert_array_equal(back.xy, small_points.xy)
        np.testing.assert_array_equal(back.t, small_points.t)
        np.testing.assert_array_equal(back.category, small_points.category)

    def test_coordinates_only(self, tmp_path):
        ps = PointSet(np.array([[1.5, 2.5], [3.0, 4.0]]))
        path = tmp_path / "xy.csv"
        save_csv(ps, path)
        back = load_csv(path)
        assert back.t is None and back.category is None
        np.testing.assert_array_equal(back.xy, ps.xy)

    def test_name_from_stem(self, tmp_path):
        ps = PointSet(np.array([[0.0, 0.0]]))
        path = tmp_path / "mycity.csv"
        save_csv(ps, path)
        assert load_csv(path).name == "mycity"

    def test_missing_columns(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError, match="header must contain"):
            load_csv(path)

    def test_malformed_row(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("x,y\n1,2\n3,oops\n")
        with pytest.raises(ValueError, match="bad.csv:3"):
            load_csv(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty file"):
            load_csv(path)

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "none.csv"
        save_csv(PointSet(np.empty((0, 2))), path)
        assert len(load_csv(path)) == 0
