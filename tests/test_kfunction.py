"""Tests for Ripley's K / L functions (extensions.kfunction)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PointSet, Region
from repro.extensions.kfunction import csr_envelope, k_function, l_function


@pytest.fixture(scope="module")
def region() -> Region:
    return Region(0.0, 0.0, 100.0, 100.0)


@pytest.fixture(scope="module")
def uniform_pattern(region):
    rng = np.random.default_rng(11)
    return rng.uniform(0, 100, (600, 2))


@pytest.fixture(scope="module")
def clustered_pattern(region):
    rng = np.random.default_rng(12)
    centers = rng.uniform(10, 90, (6, 2))
    which = rng.integers(0, 6, 600)
    return np.clip(centers[which] + rng.normal(0, 2.0, (600, 2)), 0, 100)


RADII = np.linspace(2.0, 20.0, 8)


class TestKFunction:
    def test_csr_close_to_pi_r_squared(self, uniform_pattern, region):
        k = k_function(uniform_pattern, RADII, region=region)
        expected = np.pi * RADII**2
        assert np.nanmax(np.abs(k / expected - 1.0)) < 0.35

    def test_clustering_detected(self, uniform_pattern, clustered_pattern, region):
        k_uni = k_function(uniform_pattern, RADII, region=region)
        k_clu = k_function(clustered_pattern, RADII, region=region)
        # at small scales the clustered pattern has far more close pairs
        assert k_clu[0] > 5 * k_uni[0]

    def test_monotone_nondecreasing(self, uniform_pattern, region):
        k = k_function(uniform_pattern, RADII, region=region, correction="none")
        assert np.all(np.diff(k) >= -1e-9)

    def test_border_correction_reduces_bias(self, region):
        """Uncorrected K underestimates CSR's pi r^2; the border correction
        must be closer at large radii."""
        rng = np.random.default_rng(13)
        xy = rng.uniform(0, 100, (800, 2))
        r = np.array([15.0, 20.0])
        expected = np.pi * r**2
        raw = k_function(xy, r, region=region, correction="none")
        corrected = k_function(xy, r, region=region, correction="border")
        assert np.all(np.abs(corrected - expected) <= np.abs(raw - expected))

    def test_nan_when_no_eligible_centers(self, region):
        """Border correction with r larger than any point's border distance
        leaves no centers -> NaN, not a crash."""
        xy = np.array([[50.0, 1.0], [50.0, 99.0], [1.0, 50.0], [99.0, 50.0]])
        k = k_function(xy, np.array([10.0, 60.0]), region=region)
        assert np.isnan(k[1])

    def test_accepts_pointset(self, uniform_pattern, region):
        ps = PointSet(uniform_pattern)
        a = k_function(ps, RADII, region=region)
        b = k_function(uniform_pattern, RADII, region=region)
        np.testing.assert_allclose(a, b, equal_nan=True)

    def test_small_known_case(self):
        """Two points at distance 5 in a 10x10 region, no correction:
        K(r) = |A|/(n(n-1)) * pairs = 100/2 * 2 = 100 once r >= 5."""
        xy = np.array([[2.5, 5.0], [7.5, 5.0]])
        region = Region(0, 0, 10, 10)
        k = k_function(xy, np.array([4.0, 5.0, 6.0]), region=region, correction="none")
        np.testing.assert_allclose(k, [0.0, 100.0, 100.0])

    def test_validation(self, uniform_pattern, region):
        with pytest.raises(ValueError, match="at least 2"):
            k_function(uniform_pattern[:1], RADII, region=region)
        with pytest.raises(ValueError, match="radii"):
            k_function(uniform_pattern, np.array([3.0, 2.0]), region=region)
        with pytest.raises(ValueError, match="radii"):
            k_function(uniform_pattern, np.array([-1.0, 2.0]), region=region)
        with pytest.raises(ValueError, match="unknown correction"):
            k_function(uniform_pattern, RADII, region=region, correction="isotropic")
        with pytest.raises(ValueError, match="expected .n, 2."):
            k_function(np.zeros((5, 3)), RADII, region=region)


class TestLFunction:
    def test_csr_l_is_identity(self, uniform_pattern, region):
        l_vals = l_function(uniform_pattern, RADII, region=region)
        assert np.nanmax(np.abs(l_vals - RADII)) < 0.2 * RADII[-1]

    def test_l_is_sqrt_k_over_pi(self, uniform_pattern, region):
        k = k_function(uniform_pattern, RADII, region=region)
        l_vals = l_function(uniform_pattern, RADII, region=region)
        np.testing.assert_allclose(l_vals, np.sqrt(k / np.pi), equal_nan=True)


class TestCSREnvelope:
    def test_envelope_brackets_csr(self, region):
        rng = np.random.default_rng(14)
        xy = rng.uniform(0, 100, (300, 2))
        radii = np.linspace(3, 12, 4)
        lower, upper = csr_envelope(300, radii, region, simulations=19, seed=5)
        assert np.all(lower <= upper)
        k = k_function(xy, radii, region=region)
        # a CSR pattern should mostly lie inside a 19-simulation envelope
        assert np.mean((k >= lower) & (k <= upper)) >= 0.5

    def test_clustered_exceeds_envelope(self, clustered_pattern, region):
        radii = np.linspace(3, 12, 4)
        lower, upper = csr_envelope(600, radii, region, simulations=19, seed=6)
        k = k_function(clustered_pattern, radii, region=region)
        assert np.all(k > upper)

    def test_validation(self, region):
        with pytest.raises(ValueError):
            csr_envelope(1, RADII, region)
        with pytest.raises(ValueError):
            csr_envelope(10, RADII, region, simulations=0)
        with pytest.raises(ValueError):
            csr_envelope(10, RADII, region, quantile=0.6)


class TestPairCorrelation:
    def test_csr_near_one(self, uniform_pattern, region):
        from repro.extensions.kfunction import pair_correlation

        radii = np.linspace(2.0, 20.0, 12)
        g = pair_correlation(uniform_pattern, radii, region=region)
        assert abs(np.nanmean(g) - 1.0) < 0.25

    def test_clustered_exceeds_one_at_cluster_scale(self, clustered_pattern, region):
        from repro.extensions.kfunction import pair_correlation

        radii = np.linspace(1.0, 15.0, 15)
        g = pair_correlation(clustered_pattern, radii, region=region)
        # clusters have sigma=2: g should spike at small r and decay
        assert g[1] > 3.0
        assert g[1] > g[-1]

    def test_needs_three_radii(self, uniform_pattern, region):
        from repro.extensions.kfunction import pair_correlation

        with pytest.raises(ValueError):
            pair_correlation(uniform_pattern, np.array([1.0, 2.0]), region=region)


class TestCrossK:
    def test_independence_gives_pi_r_squared(self, region):
        from repro.extensions.kfunction import cross_k_function

        rng = np.random.default_rng(21)
        a = rng.uniform(0, 100, (300, 2))
        b = rng.uniform(0, 100, (400, 2))
        radii = np.linspace(3.0, 15.0, 6)
        k = cross_k_function(a, b, radii, region=region)
        np.testing.assert_allclose(k, np.pi * radii**2, rtol=0.35)

    def test_colocation_detected(self, region):
        from repro.extensions.kfunction import cross_k_function

        rng = np.random.default_rng(22)
        a = rng.uniform(10, 90, (100, 2))
        b = a[rng.integers(0, 100, 400)] + rng.normal(0, 1.5, (400, 2))
        radii = np.linspace(2.0, 10.0, 5)
        k = cross_k_function(a, b, radii, region=region)
        assert k[0] > 3 * np.pi * radii[0] ** 2

    def test_asymmetry_of_counts_but_same_statistic(self, region):
        """K_ab and K_ba estimate the same quantity (up to noise) for any
        pair of patterns — the estimator is symmetric in expectation."""
        from repro.extensions.kfunction import cross_k_function

        rng = np.random.default_rng(23)
        a = rng.uniform(0, 100, (200, 2))
        b = rng.uniform(0, 100, (300, 2))
        radii = np.linspace(5.0, 20.0, 4)
        k_ab = cross_k_function(a, b, radii, region=region, correction="none")
        k_ba = cross_k_function(b, a, radii, region=region, correction="none")
        np.testing.assert_allclose(k_ab, k_ba, rtol=1e-9)

    def test_validation(self, region):
        from repro.extensions.kfunction import cross_k_function

        a = np.zeros((0, 2))
        b = np.ones((5, 2))
        with pytest.raises(ValueError, match="at least one"):
            cross_k_function(a, b, np.array([1.0]), region=region)
        with pytest.raises(ValueError, match="unknown correction"):
            cross_k_function(b, b, np.array([1.0]), region=region,
                             correction="ripley")
