"""HTTP contract tests for ``repro.serve.http`` against a live server.

Every test talks to a real :class:`~repro.serve.TileHTTPServer` bound to an
ephemeral port, so the status mapping (400/404/503/504), the payload
formats, and the graceful-shutdown behavior are exercised end to end —
including that ``/metricz`` counters reconcile with what the client
actually observed.
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import Region
from repro.obs import Recorder
from repro.serve import TileService, start_server
from repro.viz.tiles import TileScheme, render_tile

TILE = 8
BANDWIDTH = 60.0


def fetch(url, data=None, method=None, timeout=30.0):
    """(status, headers, body) without raising on HTTP error statuses."""
    request = urllib.request.Request(url, data=data, method=method)
    if data is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


def make_points():
    rng = np.random.default_rng(31)
    return rng.uniform((0.0, 0.0), (1000.0, 1000.0), (200, 2))


def make_server(**service_kwargs):
    allow_shutdown = service_kwargs.pop("allow_shutdown", False)
    points = service_kwargs.pop("points", None)
    service_kwargs.setdefault("tile_size", TILE)
    service_kwargs.setdefault("bandwidth", BANDWIDTH)
    service_kwargs.setdefault("max_zoom", 2)
    service_kwargs.setdefault("recorder", Recorder())
    service = TileService(
        make_points() if points is None else points,
        TileScheme(Region(0.0, 0.0, 1000.0, 1000.0)),
        **service_kwargs,
    )
    return start_server(service, port=0, allow_shutdown=allow_shutdown)


@pytest.fixture()
def server():
    srv = make_server()
    yield srv
    srv.shutdown_gracefully()


class TestTileEndpoint:
    def test_npy_round_trip_matches_direct_render(self, server):
        status, headers, body = fetch(server.url + "/tiles/1/0/0")
        assert status == 200
        assert headers["Content-Type"] == "application/x-npy"
        grid = np.load(io.BytesIO(body))
        service = server.service
        direct = render_tile(
            service._points, service.scheme, 1, 0, 0,
            tile_size=TILE, bandwidth=BANDWIDTH,
        )
        np.testing.assert_array_equal(grid, direct)
        # explicit .npy suffix is the same resource
        status2, _, body2 = fetch(server.url + "/tiles/1/0/0.npy")
        assert status2 == 200 and body2 == body

    def test_png_magic_and_colormap_param(self, server):
        status, headers, body = fetch(server.url + "/tiles/1/0/0.png")
        assert status == 200
        assert headers["Content-Type"] == "image/png"
        assert body[:8] == b"\x89PNG\r\n\x1a\n"
        status2, _, body2 = fetch(
            server.url + "/tiles/1/0/0.png?colormap=viridis"
        )
        assert status2 == 200 and body2 != body

    def test_unknown_colormap_is_404(self, server):
        status, _, _ = fetch(server.url + "/tiles/1/0/0.png?colormap=jet")
        assert status == 404

    def test_malformed_coordinates_are_400(self, server):
        for path in ["/tiles/a/0/0", "/tiles/1/0.5/0", "/tiles/1/0", "/tiles"]:
            status, _, body = fetch(server.url + path)
            assert status == 400, path
            assert "error" in json.loads(body)

    def test_out_of_pyramid_is_404(self, server):
        for path in ["/tiles/9/0/0", "/tiles/1/2/0", "/tiles/1/0/-1"]:
            status, _, _ = fetch(server.url + path)
            assert status == 404, path

    def test_unknown_path_is_404(self, server):
        assert fetch(server.url + "/nope")[0] == 404
        assert fetch(server.url + "/ingest")[0] == 404  # GET on a POST route


class TestOpsEndpoints:
    def test_healthz(self, server):
        status, _, body = fetch(server.url + "/healthz")
        assert status == 200
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["points"] == 200

    def test_metricz_shows_cache_hit_and_reconciles(self, server):
        fetch(server.url + "/tiles/1/1/1")
        fetch(server.url + "/tiles/1/1/1")
        status, _, body = fetch(server.url + "/metricz")
        assert status == 200
        payload = json.loads(body)
        counters = payload["recorder"]["counters"]
        # the client made exactly these requests: 2 tiles + this /metricz
        assert counters["serve.tile_requests"] == 2
        assert counters["tiles.cache.hits"] == 1
        assert counters["tiles.cache.misses"] == 1
        assert counters["serve.http.status.200"] >= 2
        assert payload["cache"]["hits"] == 1
        assert payload["queue"]["limit"] == server.service.queue_limit

    def test_http_counters_match_observed_statuses(self, server):
        observed = []
        observed.append(fetch(server.url + "/tiles/1/0/0")[0])   # 200
        observed.append(fetch(server.url + "/tiles/bad/0/0")[0])  # 400
        observed.append(fetch(server.url + "/tiles/9/0/0")[0])    # 404
        _, _, body = fetch(server.url + "/metricz")
        counters = json.loads(body)["recorder"]["counters"]
        for status in set(observed):
            assert counters[f"serve.http.status.{status}"] == observed.count(
                status
            ), status
        # the /metricz snapshot is taken before its own response is tallied,
        # so the count covers exactly the requests observed so far
        assert counters["serve.http.requests"] == len(observed)


class TestIngestEndpoint:
    def test_ingest_inserts_and_invalidates(self, server):
        fetch(server.url + "/tiles/2/0/0")
        status, _, body = fetch(
            server.url + "/ingest",
            data=json.dumps({"points": [[10.0, 10.0], [20.0, 15.0]]}).encode(),
        )
        assert status == 200
        outcome = json.loads(body)
        assert outcome["inserted"] == 2
        assert outcome["invalidated"] >= 1
        assert outcome["points"] == 202
        # the next fetch re-renders against the grown dataset
        status2, _, body2 = fetch(server.url + "/tiles/2/0/0")
        assert status2 == 200
        grid = np.load(io.BytesIO(body2))
        assert grid.max() > 0.0

    def test_ingest_with_timestamps(self, server):
        status, _, body = fetch(
            server.url + "/ingest",
            data=json.dumps(
                {"points": [[500.0, 500.0]], "t": [42.0]}
            ).encode(),
        )
        assert status == 200
        assert json.loads(body)["inserted"] == 1

    @pytest.mark.parametrize(
        "data",
        [
            b"",  # no body
            b"not json",
            json.dumps({"nope": []}).encode(),
            json.dumps({"points": [[1.0, 2.0, 3.0]]}).encode(),
            json.dumps({"points": [[None, 2.0]]}).encode(),
            json.dumps({"points": "strings"}).encode(),
        ],
    )
    def test_malformed_ingest_is_400(self, server, data):
        status, _, body = fetch(server.url + "/ingest", data=data)
        assert status == 400
        assert "error" in json.loads(body)

    def test_malformed_ingest_changes_nothing(self, server):
        before = server.service.points_count
        fetch(server.url + "/ingest", data=b'{"points": [[1, 2, 3]]}')
        assert server.service.points_count == before


class TestWindowAndTick:
    @pytest.fixture()
    def windowed_server(self):
        from repro.data.points import PointSet

        xy = make_points()
        t = np.arange(len(xy), dtype=np.float64)
        srv = make_server(points=PointSet(xy, t=t), window_s=100.0)
        yield srv
        srv.shutdown_gracefully()

    def test_windowed_tile_differs_from_all_time(self, windowed_server):
        url = windowed_server.url
        status, headers, base = fetch(url + "/tiles/1/0/0")
        assert status == 200
        status2, _, windowed = fetch(url + "/tiles/1/0/0?window=100")
        assert status2 == 200
        assert headers["Content-Type"] == "application/x-npy"
        assert windowed != base  # only the trailing 100 s of the feed
        # the windowed tile is cached under its own key
        status3, _, again = fetch(url + "/tiles/1/0/0?window=100")
        assert status3 == 200 and again == windowed

    def test_windowed_png_renders(self, windowed_server):
        status, headers, body = fetch(
            windowed_server.url + "/tiles/1/0/0.png?window=100"
        )
        assert status == 200
        assert headers["Content-Type"] == "image/png"
        assert body[:8] == b"\x89PNG\r\n\x1a\n"

    @pytest.mark.parametrize("bad", ["soon", "-5", "0", "nan", "inf"])
    def test_malformed_window_is_400(self, windowed_server, bad):
        status, _, body = fetch(
            windowed_server.url + f"/tiles/1/0/0?window={bad}"
        )
        assert status == 400
        assert "window" in json.loads(body)["error"]

    def test_window_on_untimestamped_history_is_400(self, server):
        status, _, body = fetch(server.url + "/tiles/1/0/0?window=10")
        assert status == 400
        assert "timestamp" in json.loads(body)["error"]

    def test_tick_endpoint_expires_and_reports(self, windowed_server):
        url = windowed_server.url
        status, _, body = fetch(
            url + "/ingest",
            data=json.dumps(
                {"points": [[500.0, 500.0]], "t": [1000.0]}
            ).encode(),
        )
        assert status == 200
        status, headers, body = fetch(url + "/tick", data=b"")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        outcome = json.loads(body)
        assert outcome["now"] == 1000.0  # the ingest watermark
        assert outcome["expired"] > 0
        assert outcome["ticks"] == 1
        _, _, metricz = fetch(url + "/metricz")
        payload = json.loads(metricz)
        assert payload["recorder"]["counters"]["window.ticks"] == 1
        assert payload["window"]["ticks"] == 1

    def test_tick_accepts_explicit_now(self, windowed_server):
        status, _, body = fetch(
            windowed_server.url + "/tick",
            data=json.dumps({"now": 250.0}).encode(),
        )
        assert status == 200
        outcome = json.loads(body)
        assert outcome["now"] == 250.0
        # the eager window held t in [99, 199]; cutoff 150 expires [99, 150)
        assert outcome["expired"] == 51

    @pytest.mark.parametrize(
        "data",
        [b"not json", json.dumps(["now"]).encode(),
         json.dumps({"now": "late"}).encode()],
    )
    def test_malformed_tick_is_400(self, windowed_server, data):
        status, _, body = fetch(windowed_server.url + "/tick", data=data)
        assert status == 400
        assert "error" in json.loads(body)

    def test_tick_on_get_is_404(self, windowed_server):
        assert fetch(windowed_server.url + "/tick")[0] == 404


class TestBackpressureOverHTTP:
    def test_saturated_queue_is_503_with_retry_after(self):
        release = threading.Event()
        started = threading.Event()

        def slow_render(points, scheme, zoom, tx, ty, **kwargs):
            started.set()
            release.wait(timeout=30.0)
            return render_tile(points, scheme, zoom, tx, ty, **kwargs)

        server = make_server(workers=1, queue_limit=1, render_fn=slow_render)
        try:
            leader = threading.Thread(
                target=fetch, args=(server.url + "/tiles/1/0/0",)
            )
            leader.start()
            assert started.wait(timeout=10.0)
            status, headers, body = fetch(server.url + "/tiles/1/1/0")
            assert status == 503
            assert float(headers["Retry-After"]) > 0.0
            assert "error" in json.loads(body)
            release.set()
            leader.join(timeout=30.0)
        finally:
            release.set()
            server.shutdown_gracefully()

    def test_deadline_is_504(self):
        release = threading.Event()

        def slow_render(points, scheme, zoom, tx, ty, **kwargs):
            release.wait(timeout=30.0)
            return render_tile(points, scheme, zoom, tx, ty, **kwargs)

        server = make_server(workers=1, deadline_s=0.05, render_fn=slow_render)
        try:
            status, _, body = fetch(server.url + "/tiles/1/0/0")
            assert status == 504
            assert "error" in json.loads(body)
        finally:
            release.set()
            server.shutdown_gracefully()


class TestQualityOverHTTP:
    @pytest.fixture()
    def quality_server(self):
        from repro.serve import QualityPolicy

        srv = make_server(
            quality=QualityPolicy(pyramid_levels=(1,), coreset_sizes=(64,))
        )
        yield srv
        srv.shutdown_gracefully()

    def test_exact_headers_on_npy_and_png(self, quality_server):
        url = quality_server.url
        status, headers, _ = fetch(url + "/tiles/1/0/0")
        assert status == 200
        assert headers["X-KDV-Quality"] == "exact"
        assert headers["X-KDV-Error-Bound"] == "0"
        status2, headers2, _ = fetch(url + "/tiles/1/0/0.png")
        assert status2 == 200
        assert headers2["X-KDV-Quality"] == "exact"
        assert headers2["X-KDV-Error-Bound"] == "0"

    def test_headers_present_without_policy(self, server):
        status, headers, _ = fetch(server.url + "/tiles/1/0/0")
        assert status == 200
        assert headers["X-KDV-Quality"] == "exact"
        assert headers["X-KDV-Error-Bound"] == "0"

    def test_pinned_tier_headers_and_payload(self, quality_server):
        url = quality_server.url
        status, headers, body = fetch(url + "/tiles/1/0/0?quality=coreset:64")
        assert status == 200
        assert headers["X-KDV-Quality"] == "coreset:64"
        assert float(headers["X-KDV-Error-Bound"]) > 0.0
        grid = np.load(io.BytesIO(body))
        assert grid.shape == (TILE, TILE)
        status2, headers2, _ = fetch(url + "/tiles/1/0/0?quality=pyramid:1")
        assert status2 == 200
        assert headers2["X-KDV-Quality"] == "pyramid:1"

    def test_bad_quality_and_max_error_are_400(self, quality_server):
        url = quality_server.url
        for query in ("quality=bogus", "quality=pyramid:7", "max_error=nope",
                      "max_error=-1"):
            status, _, body = fetch(url + f"/tiles/1/0/0?{query}")
            assert status == 400, query
            assert "error" in json.loads(body)

    def test_degraded_pin_without_policy_is_400(self, server):
        status, _, body = fetch(server.url + "/tiles/1/0/0?quality=coreset:64")
        assert status == 400
        assert "disabled" in json.loads(body)["error"]

    def test_metricz_exposes_quality_section(self, quality_server):
        url = quality_server.url
        fetch(url + "/tiles/1/0/0?quality=coreset:64")
        _, _, body = fetch(url + "/metricz")
        payload = json.loads(body)
        quality = payload["quality"]
        assert quality["policy"]["ladder"] == [
            "exact", "pyramid:1", "coreset:64"
        ]
        assert quality["bounds"]["all"]["coreset:64"] > 0.0
        assert payload["recorder"]["counters"]["quality.served.coreset"] >= 1

    def test_saturated_pool_degrades_before_503(self):
        from repro.serve import QualityPolicy

        release = threading.Event()
        started = threading.Event()

        def slow_render(points, scheme, zoom, tx, ty, **kwargs):
            started.set()
            release.wait(timeout=30.0)
            return render_tile(points, scheme, zoom, tx, ty, **kwargs)

        server = make_server(
            workers=1, queue_limit=1, render_fn=slow_render,
            quality=QualityPolicy(pyramid_levels=(1,), coreset_sizes=(64,)),
        )
        try:
            leader = threading.Thread(
                target=fetch, args=(server.url + "/tiles/1/0/0",)
            )
            leader.start()
            assert started.wait(timeout=10.0)
            # where the policy-free server returned 503, the ladder serves
            # a degraded tile with honest headers instead
            status, headers, _ = fetch(server.url + "/tiles/1/1/0")
            assert status == 200
            assert headers["X-KDV-Quality"] == "pyramid:1"
            assert float(headers["X-KDV-Error-Bound"]) >= 0.0
            release.set()
            leader.join(timeout=30.0)
            # once the pool drains, the same tile refines back to exact
            deadline = time.monotonic() + 10.0
            tier = None
            while time.monotonic() < deadline:
                status, headers, _ = fetch(server.url + "/tiles/1/1/0")
                tier = headers["X-KDV-Quality"]
                if status == 200 and tier == "exact":
                    break
                time.sleep(0.05)
            assert tier == "exact"
        finally:
            release.set()
            server.shutdown_gracefully()


class TestShutdown:
    def test_shutdown_endpoint_disabled_by_default(self, server):
        status, _, _ = fetch(server.url + "/shutdown", data=b"{}")
        assert status == 404

    def test_shutdown_endpoint_stops_server_cleanly(self):
        before = {t for t in threading.enumerate() if not t.daemon}
        server = make_server(allow_shutdown=True)
        fetch(server.url + "/tiles/1/0/0")
        status, _, body = fetch(server.url + "/shutdown", data=b"{}")
        assert status == 200
        assert json.loads(body)["status"] == "shutting down"
        deadline = time.monotonic() + 15.0
        while time.monotonic() < deadline:
            alive = {t for t in threading.enumerate() if not t.daemon}
            if server.service.closed and alive <= before:
                break
            time.sleep(0.05)
        assert server.service.closed
        assert {t for t in threading.enumerate() if not t.daemon} <= before
        # the socket is released: connecting now fails
        with pytest.raises(OSError):
            urllib.request.urlopen(server.url + "/healthz", timeout=2.0)

    def test_requests_after_close_are_503(self):
        server = make_server()
        try:
            server.service.close()
            status, headers, _ = fetch(server.url + "/tiles/1/0/0")
            assert status == 503
            assert headers["Retry-After"] == "1"
            status2, _, _ = fetch(
                server.url + "/ingest", data=b'{"points": [[1.0, 1.0]]}'
            )
            assert status2 == 503
        finally:
            server.shutdown_gracefully()

    def test_shutdown_gracefully_is_idempotent(self):
        server = make_server()
        server.shutdown_gracefully()
        server.shutdown_gracefully()
        assert server.service.closed
