"""Tests for the quality degradation ladder (`repro.serve.quality`).

The three proofs the quality subsystem stands on are pinned here:

* **bounded error** — every served coreset tile's measured L-infinity
  error (relative to the global density peak) stays within the bound the
  response advertises (hypothesis drives the data);
* **degradation order** — under a saturated pool, requests step down the
  ladder exact -> pyramid -> coreset, tier by tier, before any
  :class:`~repro.serve.ServiceOverloaded`;
* **refinement** — a degraded serve is replaced by an exact render as
  soon as the pool drains, and the degraded cache entry is dropped.
"""

from __future__ import annotations

import math
import threading
import time

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import Region
from repro.baselines.zorder import epsilon_for, zorder_grid
from repro.extensions.progressive import progressive_kdv, upsample_preview
from repro.obs import Recorder
from repro.serve import (
    QualityError,
    QualityPolicy,
    ServiceOverloaded,
    Tier,
    TileService,
    TTLCache,
)
from repro.serve.quality import (
    EXACT,
    calibrate,
    coreset_grid,
    measured_error,
    parse_tier,
    pyramid_grid,
)
from repro.serve.window import WindowView
from repro.viz.tiles import TileScheme, render_tile

TILE = 8
BANDWIDTH = 60.0
WORLD = Region(0.0, 0.0, 1000.0, 1000.0)


@pytest.fixture(scope="module")
def points():
    rng = np.random.default_rng(23)
    return rng.uniform((0.0, 0.0), (1000.0, 1000.0), (300, 2))


@pytest.fixture(scope="module")
def scheme():
    return TileScheme(WORLD)


def make_service(points, scheme, **kwargs):
    kwargs.setdefault("tile_size", TILE)
    kwargs.setdefault("bandwidth", BANDWIDTH)
    kwargs.setdefault("max_zoom", 3)
    kwargs.setdefault("recorder", Recorder())
    return TileService(points, scheme, **kwargs)


class GatedRender:
    """A render_fn that blocks until released; counts invocations."""

    def __init__(self):
        self.release = threading.Event()
        self.started = threading.Event()
        self.calls = 0
        self._lock = threading.Lock()

    def __call__(self, points, scheme, zoom, tx, ty, **kwargs):
        with self._lock:
            self.calls += 1
        self.started.set()
        assert self.release.wait(timeout=30.0), "render gate never released"
        return render_tile(points, scheme, zoom, tx, ty, **kwargs)


# -- zorder baseline hardening (epsilon_for / sample_size validation) -----


class TestZOrderEpsilon:
    def test_epsilon_inverse_of_sample_size(self):
        # m = ceil(1/eps^2)  <=>  eps(m) = 1/sqrt(m)
        assert epsilon_for(400, 10_000) == pytest.approx(0.05)
        assert epsilon_for(10_000, 1_000_000) == pytest.approx(0.01)

    def test_full_sample_is_exact(self):
        assert epsilon_for(1000, 1000) == 0.0
        assert epsilon_for(1000, 500) == 0.0
        assert epsilon_for(5, 0) == 0.0

    def test_rejects_bad_arguments(self):
        with pytest.raises(ValueError, match="m must be"):
            epsilon_for(0, 100)
        with pytest.raises(ValueError, match="n must be"):
            epsilon_for(10, -1)

    def test_zorder_grid_rejects_oversized_sample(self):
        from repro import Raster
        from repro.core.kernels import get_kernel

        rng = np.random.default_rng(0)
        pts = rng.uniform(0.0, 10.0, (50, 2))
        raster = Raster(Region(0.0, 0.0, 10.0, 10.0), 8, 8)
        kernel = get_kernel("epanechnikov")
        with pytest.raises(ValueError, match="exceeds the dataset size"):
            zorder_grid(pts, raster, kernel, 3.0, sample_size=51)
        # exactly n is still allowed (degenerates to exact)
        zorder_grid(pts, raster, kernel, 3.0, sample_size=50)


# -- tier parsing and policy validation ----------------------------------


class TestTierParsing:
    def test_parse_named_tiers(self):
        assert parse_tier("exact") == EXACT
        assert parse_tier("pyramid:2") == Tier("pyramid", 2)
        assert parse_tier("coreset:4096") == Tier("coreset", 4096)
        # passthrough and round-trip through .name
        assert parse_tier(Tier("pyramid", 1)) == Tier("pyramid", 1)
        assert parse_tier(Tier("coreset", 512).name) == Tier("coreset", 512)

    @pytest.mark.parametrize(
        "bad",
        ["", "bogus", "pyramid", "pyramid:0", "pyramid:x", "coreset:-1",
         "exact:1", "pyramid:1:2"],
    )
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(QualityError):
            parse_tier(bad)

    def test_ladder_order_best_first(self):
        policy = QualityPolicy(pyramid_levels=(1, 3), coreset_sizes=(2048, 64))
        assert [t.name for t in policy.ladder()] == [
            "exact", "pyramid:1", "pyramid:3", "coreset:2048", "coreset:64"
        ]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            QualityPolicy(pyramid_levels=(2, 1))  # not increasing
        with pytest.raises(ValueError):
            QualityPolicy(coreset_sizes=(64, 64))  # not decreasing
        with pytest.raises(ValueError):
            QualityPolicy(pyramid_levels=(), coreset_sizes=())  # no rungs
        with pytest.raises(ValueError):
            QualityPolicy(tier_headroom=0)
        with pytest.raises(ValueError):
            QualityPolicy(error_headroom=0.5)
        with pytest.raises(ValueError):
            QualityPolicy(default_max_error=-1.0)

    def test_theoretical_bounds(self):
        policy = QualityPolicy()
        assert policy.theoretical_bound(EXACT, 10_000) == 0.0
        assert policy.theoretical_bound(Tier("pyramid", 2), 10_000) == 0.0
        assert policy.theoretical_bound(
            Tier("coreset", 1024), 10_000
        ) == pytest.approx(1.0 / math.sqrt(1024))
        # sample >= n degenerates to exact
        assert policy.theoretical_bound(Tier("coreset", 1024), 1000) == 0.0


# -- degraded grid helpers -----------------------------------------------


class TestDegradedGrids:
    def test_pyramid_matches_progressive_rungs(self, points):
        """pyramid:<k> is bit-identical to the progressive renderer's rung
        at 1/2^k resolution, upsampled — one preview code path."""
        size = (TILE * 4, TILE * 4)
        for level in (1, 2):
            rungs = progressive_kdv(
                points, WORLD, size, levels=level + 1,
                bandwidth=BANDWIDTH, normalization="none",
            )
            coarsest = next(iter(rungs))
            expected = upsample_preview(coarsest, size)
            got = pyramid_grid(
                points, WORLD, size, level=level, bandwidth=BANDWIDTH
            )
            assert np.array_equal(got, expected)

    def test_coreset_full_sample_is_exact(self, points, scheme):
        exact = render_tile(
            points, scheme, 0, 0, 0, tile_size=TILE, bandwidth=BANDWIDTH
        )
        got = coreset_grid(
            points, WORLD, (TILE, TILE),
            sample_size=len(points), bandwidth=BANDWIDTH,
        )
        assert np.allclose(got, exact)

    def test_coreset_empty_dataset_is_zero(self):
        empty = np.empty((0, 2), dtype=np.float64)
        got = coreset_grid(
            empty, WORLD, (TILE, TILE), sample_size=16, bandwidth=BANDWIDTH
        )
        assert got.shape == (TILE, TILE)
        assert not got.any()

    def test_measured_error_normalizes_by_peak(self):
        exact = np.array([[0.0, 2.0], [1.0, 0.5]])
        approx = exact.copy()
        approx[0, 1] = 1.5
        assert measured_error(approx, exact) == pytest.approx(0.25)
        assert measured_error(exact, exact) == 0.0
        zeros = np.zeros_like(exact)
        assert measured_error(zeros, zeros) == 0.0
        assert math.isinf(measured_error(exact, zeros))

    def test_calibrate_covers_every_tier(self, points, scheme):
        policy = QualityPolicy(coreset_sizes=(64,))
        bounds = calibrate(policy, points, scheme, bandwidth=BANDWIDTH)
        assert bounds["exact"] == 0.0
        for tier in policy.ladder():
            assert tier.name in bounds
            assert bounds[tier.name] >= 0.0
        # a real subsample of 300 points cannot be measurably perfect at
        # the calibration resolution, so the bound reflects measurement
        assert bounds["coreset:64"] >= policy.error_floor


# -- the bounded-error property (hypothesis) -----------------------------


class TestCoresetBound:
    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(30, 120),
        zoom=st.integers(0, 1),
        sample=st.sampled_from([16, 32, 64]),
    )
    def test_served_error_within_advertised_bound(self, seed, n, zoom, sample):
        """Every served coreset tile's measured L-inf error (vs the exact
        tile, relative to the global density peak) is within the bound the
        response advertises."""
        rng = np.random.default_rng(seed)
        pts = rng.uniform((0.0, 0.0), (1000.0, 1000.0), (n, 2))
        scheme = TileScheme(WORLD)
        # bandwidth >= world side keeps every tile dense, so the global
        # peak (the error's denominator) is stably positive
        service = make_service(
            pts, scheme, bandwidth=1000.0,
            quality=QualityPolicy(coreset_sizes=(sample,)),
        )
        try:
            for tx in range(2**zoom):
                for ty in range(2**zoom):
                    resp = service.request_tile(
                        zoom, tx, ty, quality=f"coreset:{sample}"
                    )
                    exact = render_tile(
                        pts, scheme, zoom, tx, ty,
                        tile_size=TILE, bandwidth=1000.0,
                    )
                    peak = float(
                        render_tile(
                            pts, scheme, 0, 0, 0,
                            tile_size=TILE, bandwidth=1000.0,
                        ).max()
                    )
                    assume(peak > 0)
                    err = float(np.abs(resp.grid - exact).max()) / peak
                    assert resp.tier == f"coreset:{sample}"
                    assert err <= resp.error_bound + 1e-12
        finally:
            service.close()


# -- serving integration -------------------------------------------------


class TestQualityServing:
    def test_policy_off_rejects_degraded_pins(self, points, scheme):
        service = make_service(points, scheme)
        try:
            resp = service.request_tile(0, 0, 0)
            assert resp.tier == "exact"
            assert resp.error_bound == 0.0
            # an exact pin is always honoured, even without a policy
            assert service.request_tile(0, 0, 0, quality="exact").tier == "exact"
            with pytest.raises(QualityError, match="disabled"):
                service.request_tile(0, 0, 0, quality="pyramid:1")
            # exact (bound 0) trivially satisfies any error cap, so a
            # policy-free service still honours max_error requests
            assert service.request_tile(0, 0, 0, max_error="0.5").tier == "exact"
            with pytest.raises(QualityError, match="max_error"):
                service.request_tile(0, 0, 0, max_error="nope")
        finally:
            service.close()

    def test_pin_outside_ladder_rejected(self, points, scheme):
        service = make_service(points, scheme, quality=QualityPolicy())
        try:
            with pytest.raises(QualityError, match="unknown quality tier"):
                service.request_tile(0, 0, 0, quality="pyramid:9")
        finally:
            service.close()

    def test_bad_max_error_rejected(self, points, scheme):
        service = make_service(points, scheme, quality=QualityPolicy())
        try:
            for bad in ("nope", "-0.5", "inf"):
                with pytest.raises(QualityError):
                    service.request_tile(0, 0, 0, max_error=bad)
        finally:
            service.close()

    def test_pinned_tier_serves_and_caches(self, points, scheme):
        rec = Recorder()
        service = make_service(
            points, scheme, recorder=rec, quality=QualityPolicy()
        )
        try:
            first = service.request_tile(0, 0, 0, quality="coreset:1024")
            assert first.tier == "coreset:1024"
            assert first.degraded
            assert first.error_bound > 0.0
            again = service.request_tile(0, 0, 0, quality="coreset:1024")
            assert np.array_equal(again.grid, first.grid)
            # pinned cheap tiers never consume the exact cache namespace
            assert service.request_tile(0, 0, 0).tier == "exact"
            snap = rec.snapshot()["counters"]
            assert snap["quality.served.coreset"] >= 2
            assert snap["quality.calibrations"] == 1
        finally:
            service.close()

    def test_max_error_serves_exact_when_idle(self, points, scheme):
        service = make_service(points, scheme, quality=QualityPolicy())
        try:
            resp = service.request_tile(0, 0, 0, max_error="0.5")
            # an idle pool always admits the best admissible tier
            assert resp.tier == "exact"
        finally:
            service.close()

    def test_degradation_order_under_saturation(self, points, scheme):
        """The load ladder, proven rung by rung: a saturated one-worker
        pool degrades exact -> pyramid -> coreset, and only past the
        cheapest rung rejects with 503/ServiceOverloaded."""
        gate = GatedRender()
        rec = Recorder()
        policy = QualityPolicy(
            pyramid_levels=(1,), coreset_sizes=(64,), tier_headroom=1
        )
        service = make_service(
            points, scheme, workers=1, queue_limit=1,
            render_fn=gate, recorder=rec, quality=policy,
        )
        # gate the degraded path too, so held degraded renders keep
        # contributing to the load the admission rule sees
        degraded_gate = threading.Event()
        degraded_started = threading.Event()
        inner_degraded = service._render_degraded

        def gated_degraded(view, version, tile, tier):
            degraded_started.set()
            assert degraded_gate.wait(timeout=30.0)
            return inner_degraded(view, version, tile, tier)

        try:
            pool = []
            # rung 0: the exact leader occupies the one-slot pool
            t1 = threading.Thread(
                target=lambda: pool.append(service.request_tile(0, 0, 0))
            )
            t1.start()
            assert gate.started.wait(timeout=5.0)

            # rung 1: load 1 >= queue_limit, so the next distinct tile
            # steps down to the pyramid tier (and holds it, gated)
            service._render_degraded = gated_degraded
            t2 = threading.Thread(
                target=lambda: pool.append(service.request_tile(1, 0, 0))
            )
            t2.start()
            assert degraded_started.wait(timeout=5.0)
            service._render_degraded = inner_degraded

            # rung 2: load 2 admits only the coreset rung (< 1 + 2*1)
            resp = service.request_tile(1, 1, 0)
            assert resp.tier == "coreset:64"

            # past the cheapest rung: hold a third degraded render so
            # load 3 exhausts the ladder
            degraded_started.clear()
            service._render_degraded = gated_degraded
            t3 = threading.Thread(
                target=lambda: pool.append(service.request_tile(1, 0, 1))
            )
            t3.start()
            assert degraded_started.wait(timeout=5.0)
            service._render_degraded = inner_degraded
            with pytest.raises(ServiceOverloaded):
                service.request_tile(1, 1, 1)
            assert rec.snapshot()["counters"]["serve.rejected.overload"] == 1

            degraded_gate.set()
            gate.release.set()
            for t in (t1, t2, t3):
                t.join(timeout=10.0)
            assert len(pool) == 3
            tiers = sorted(r.tier for r in pool)
            assert tiers == ["coreset:64", "exact", "pyramid:1"]
        finally:
            degraded_gate.set()
            gate.release.set()
            service.close()

    def test_refinement_replaces_degraded_entry(self, points, scheme):
        """Once the pool drains, a degraded serve is re-rendered exactly;
        the exact entry lands in the cache and the degraded one is
        dropped."""
        gate = GatedRender()
        rec = Recorder()
        service = make_service(
            points, scheme, workers=1, queue_limit=1,
            render_fn=gate, recorder=rec,
            quality=QualityPolicy(pyramid_levels=(1,), coreset_sizes=(64,)),
        )
        try:
            hold = threading.Thread(target=lambda: service.request_tile(0, 0, 0))
            hold.start()
            assert gate.started.wait(timeout=5.0)
            degraded = service.request_tile(1, 0, 0)
            assert degraded.degraded
            degraded_key = (1, 0, 0, degraded.tier)
            assert service._cache.get(degraded_key, count=False) is not None
            assert service.stats()["quality"]["pending_refinements"] == 1

            gate.release.set()
            hold.join(timeout=10.0)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if (
                    service._cache.get((1, 0, 0), count=False) is not None
                    and service._cache.get(degraded_key, count=False) is None
                ):
                    break
                time.sleep(0.01)
            exact_entry = service._cache.get((1, 0, 0), count=False)
            assert exact_entry is not None
            assert service._cache.get(degraded_key, count=False) is None
            assert rec.snapshot()["counters"]["quality.refined"] == 1
            resp = service.request_tile(1, 0, 0)
            assert resp.tier == "exact"
            expected = render_tile(
                points, scheme, 1, 0, 0, tile_size=TILE, bandwidth=BANDWIDTH
            )
            assert np.array_equal(resp.grid, expected)
        finally:
            gate.release.set()
            service.close()

    def test_ingest_invalidates_degraded_tiles_and_recalibrates(
        self, points, scheme
    ):
        gate = GatedRender()
        service = make_service(
            points, scheme, workers=1, queue_limit=1, render_fn=gate,
            quality=QualityPolicy(coreset_sizes=(64,)),
        )
        try:
            # hold the pool so background refinement cannot replace the
            # degraded entry before the assertions see it
            hold = threading.Thread(target=lambda: service.request_tile(1, 0, 0))
            hold.start()
            assert gate.started.wait(timeout=5.0)
            before = service.request_tile(0, 0, 0, quality="coreset:64")
            assert service._cache.get((0, 0, 0, "coreset:64"), count=False) is not None
            service.ingest(np.array([[500.0, 500.0]]))
            # the new generation dropped the degraded entry with the batch
            assert service._cache.get((0, 0, 0, "coreset:64"), count=False) is None
            gate.release.set()
            hold.join(timeout=10.0)
            after = service.request_tile(0, 0, 0, quality="coreset:64")
            assert not np.array_equal(before.grid, after.grid)
        finally:
            gate.release.set()
            service.close()

    def test_windowed_views_calibrate_independently(self, scheme):
        from repro.data.points import PointSet

        rng = np.random.default_rng(7)
        pts = rng.uniform((0.0, 0.0), (1000.0, 1000.0), (200, 2))
        t = np.linspace(0.0, 100.0, 200)
        service = make_service(
            PointSet(pts, t=t), scheme,
            quality=QualityPolicy(coreset_sizes=(32,)),
        )
        try:
            all_time = service.request_tile(0, 0, 0, quality="coreset:32")
            windowed = service.request_tile(
                0, 0, 0, quality="coreset:32", window=50.0
            )
            assert all_time.degraded and windowed.degraded
            bounds = service.stats()["quality"]["bounds"]
            assert "all" in bounds and "50" in bounds
        finally:
            service.close()


# -- cache plumbing the ladder rests on ----------------------------------


class TestQualityCachePlumbing:
    def test_per_entry_ttl_expires_before_default(self):
        now = [0.0]
        cache = TTLCache(8, ttl_s=100.0, clock=lambda: now[0])
        cache.put("slow", 1)
        cache.put("fast", 2, ttl_s=5.0)
        now[0] = 6.0
        assert cache.get("fast") is None
        assert cache.get("slow") == 1

    def test_per_entry_ttl_without_default(self):
        now = [0.0]
        cache = TTLCache(8, clock=lambda: now[0])
        cache.put("forever", 1)
        cache.put("brief", 2, ttl_s=1.0)
        now[0] = 2.0
        assert cache.get("brief") is None
        assert cache.get("forever") == 1
        with pytest.raises(ValueError):
            cache.put("bad", 3, ttl_s=0.0)

    def test_cache_key_tier_namespaces(self):
        class _Stream:
            def points(self):
                return np.empty((0, 2))

        view = WindowView(None, _Stream())
        assert view.cache_key(1, 2, 3) == (1, 2, 3)
        assert view.cache_key(1, 2, 3, "exact") == (1, 2, 3)
        assert view.cache_key(1, 2, 3, "pyramid:1") == (1, 2, 3, "pyramid:1")
        assert view.owns_key((1, 2, 3))
        assert view.owns_key((1, 2, 3, "coreset:64"))
        windowed = WindowView(30.0, _Stream())
        assert windowed.cache_key(1, 2, 3, "coreset:64") == (
            1, 2, 3, 30.0, "coreset:64"
        )
        assert windowed.owns_key((1, 2, 3, 30.0, "coreset:64"))
        assert not windowed.owns_key((1, 2, 3, "coreset:64"))
        assert not view.owns_key((1, 2, 3, 30.0))
