"""Virtual-clock serving: the simulator driving the real TileService.

These tests never sleep.  TTL expiry, window aging, pool saturation, and
quality degradation all happen in *virtual* seconds — either through a
:class:`~repro.simload.SimClock` injected straight into a
:class:`~repro.serve.TileService`, or through full
:class:`~repro.simload.SimulationRunner` runs whose gated renders keep the
real pool genuinely occupied across virtual time.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.data.points import PointSet
from repro.serve import PendingTile, TileService
from repro.simload import SimClock, get_scenario, run_scenario
from repro.simload.metrics import ERROR, OK, OVERLOAD


def _points(n=300, seed=0):
    rng = np.random.default_rng(seed)
    return rng.uniform(0.0, 100.0, size=(n, 2))


def _service(clock, **kwargs):
    kwargs.setdefault("tile_size", 16)
    kwargs.setdefault("bandwidth", 30.0)
    kwargs.setdefault("max_zoom", 2)
    kwargs.setdefault("workers", 1)
    return TileService(_points(), clock=clock, **kwargs)


def _short(name: str, **overrides):
    return dataclasses.replace(
        get_scenario(name), duration_s=10.0, n_points=800, **overrides
    )


class TestVirtualClockDirect:
    def test_cache_ttl_expires_in_virtual_seconds(self):
        clock = SimClock()
        service = _service(clock, cache_ttl_s=5.0)
        try:
            service.get_tile(0, 0, 0)
            service.get_tile(0, 0, 0)
            assert service.stats()["cache"]["hits"] == 1
            clock.advance_to(6.0)  # past the TTL without any real sleeping
            service.get_tile(0, 0, 0)
            stats = service.stats()
            assert stats["cache"]["expirations"] >= 1
            assert stats["cache"]["misses"] == 2  # cold + expired
        finally:
            service.close()

    def test_wait_false_returns_pending_tile_and_hooks_submission(self):
        clock = SimClock()
        submissions = []
        service = _service(
            clock, submit_hook=lambda key, fut: submissions.append((key, fut))
        )
        try:
            answer = service.request_tile(1, 0, 1, wait=False)
            assert isinstance(answer, PendingTile)
            assert submissions and submissions[0][0] == answer.key
            response = answer.resolve(timeout=30.0)
            assert response.tier == "exact"
            assert answer.done()
            # second request is a cache hit: immediate TileResponse
            again = service.request_tile(1, 0, 1, wait=False)
            assert not isinstance(again, PendingTile)
        finally:
            service.close()

    def test_window_ages_on_the_virtual_clock(self):
        clock = SimClock()
        rng = np.random.default_rng(1)
        xy = rng.uniform(0.0, 100.0, size=(200, 2))
        service = TileService(
            # seed events timestamped at virtual t=0
            PointSet(xy=xy, t=np.zeros(len(xy))),
            tile_size=16,
            bandwidth=30.0,
            max_zoom=2,
            workers=1,
            window_s=10.0,
            clock=clock,
        )
        try:
            before = service.request_tile(0, 0, 0, window=10.0)
            clock.advance_to(4.0)
            service.ingest(rng.uniform(0.0, 100.0, size=(50, 2)),
                           t=np.full(50, 4.0))
            clock.advance_to(12.0)
            summary = service.tick(now=12.0)
            # the t=0 seed events are outside the trailing 10 s now
            assert summary["expired"] == 200
            assert summary["ticks"] == 1
            after = service.request_tile(0, 0, 0, window=10.0)
            assert not np.array_equal(before.grid, after.grid)
        finally:
            service.close()


class TestSimulatedServing:
    def test_saturation_sheds_without_real_sleeping(self):
        # 8x the default scenario's base rate: far past the knee
        result = run_scenario(_short("default").at_rate(160.0), seed=3)
        m = result.metrics
        assert m["shed_503"] > 0
        assert m["shed_fraction"] > 0.01
        assert m["errors"] == 0
        assert m["offered_rps"] > 100.0  # virtual rps no wall clock reaches
        outcomes = {r.outcome for r in result.records}
        assert OVERLOAD in outcomes and ERROR not in outcomes

    def test_flash_crowd_degrades_instead_of_shedding(self):
        result = run_scenario(_short("flashcrowd"), seed=7)
        m = result.metrics
        degraded = {t: c for t, c in m["tiers"].items() if t != "exact"}
        assert degraded, "the spike should force degraded tiers"
        assert m["shed_503"] == 0  # the ladder absorbs what 503s would shed
        assert m["errors"] == 0
        assert m["cache_hit_rate"] > 0.0

    def test_ingest_scenario_ticks_windows_virtually(self):
        # shrink the window below the shortened duration so ticks have
        # something to expire
        result = run_scenario(_short("ingest", window_s=4.0), seed=5)
        m = result.metrics
        assert m["window_ticks"] == 3  # duration 10 s / tick_s 3 s
        assert m["window_expired_points"] > 0
        windowed = [r for r in result.records if r.window is not None]
        assert windowed and all(r.window == 4.0 for r in windowed)
        assert m["errors"] == 0

    def test_latencies_are_virtual_queueing_delays(self):
        sc = _short("default")
        result = run_scenario(sc, seed=9)
        ok = [r for r in result.records if r.outcome == OK]
        waited = [r for r in ok if r.latency_s >= sc.cost.render_s]
        assert waited, "cold renders must cost at least one virtual render"
        deadline = sc.deadline_s
        assert all(r.latency_s <= deadline for r in waited)
        hits = [r for r in ok if r.latency_s == sc.cost.hit_s]
        assert hits, "warm tiles must answer at the cache-hit cost"

    def test_degraded_cache_reuse_counts_served_tiers(self):
        result = run_scenario(_short("flashcrowd").at_rate(60.0), seed=2)
        counters = result.stats["recorder"]["counters"]
        served_degraded = sum(
            v for k, v in counters.items()
            if k.startswith("quality.served.") and not k.endswith(".exact")
        )
        trace_degraded = sum(
            c for t, c in result.metrics["tiers"].items() if t != "exact"
        )
        assert served_degraded >= trace_degraded > 0
