"""Tests for the Region/Raster world-coordinate model."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Raster, Region


class TestRegion:
    def test_basic_properties(self):
        r = Region(1.0, 2.0, 5.0, 10.0)
        assert r.width == 4.0
        assert r.height == 8.0
        assert r.center == (3.0, 6.0)

    @pytest.mark.parametrize(
        "bounds", [(0, 0, 0, 1), (0, 0, 1, 0), (2, 0, 1, 1), (0, 5, 1, 1)]
    )
    def test_degenerate_rejected(self, bounds):
        with pytest.raises(ValueError, match="degenerate"):
            Region(*bounds)

    def test_from_points(self):
        xy = np.array([[1.0, 2.0], [4.0, 7.0], [2.0, 3.0]])
        r = Region.from_points(xy)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (1.0, 2.0, 4.0, 7.0)

    def test_from_points_padding(self):
        r = Region.from_points(np.array([[0.0, 0.0], [10.0, 10.0]]), pad_fraction=0.1)
        assert r.xmin == pytest.approx(-1.0)
        assert r.xmax == pytest.approx(11.0)

    def test_from_points_empty_rejected(self):
        # regression: the seed died inside NumPy with "zero-size array to
        # reduction operation" instead of a diagnosable error
        with pytest.raises(ValueError, match="empty point set"):
            Region.from_points(np.empty((0, 2)))

    def test_from_points_degenerate_axis(self):
        # all points on a vertical line must still give a valid region
        r = Region.from_points(np.array([[5.0, 0.0], [5.0, 9.0]]))
        assert r.width > 0

    def test_scaled_zoom_in(self):
        r = Region(0.0, 0.0, 10.0, 20.0).scaled(0.5)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (2.5, 5.0, 7.5, 15.0)
        assert r.center == (5.0, 10.0)

    def test_scaled_anisotropic(self):
        r = Region(0.0, 0.0, 10.0, 10.0).scaled(0.5, ratio_y=0.2)
        assert r.width == pytest.approx(5.0)
        assert r.height == pytest.approx(2.0)

    def test_scaled_invalid(self):
        with pytest.raises(ValueError):
            Region(0, 0, 1, 1).scaled(0.0)
        with pytest.raises(ValueError):
            Region(0, 0, 1, 1).scaled(1.0, ratio_y=-1.0)

    def test_translated(self):
        r = Region(0.0, 0.0, 4.0, 4.0).translated(1.0, -2.0)
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (1.0, -2.0, 5.0, 2.0)

    def test_contains(self):
        r = Region(0.0, 0.0, 10.0, 10.0)
        x = np.array([-1.0, 0.0, 5.0, 10.0, 11.0])
        y = np.array([5.0, 5.0, 5.0, 10.0, 5.0])
        np.testing.assert_array_equal(
            r.contains(x, y), [False, True, True, True, False]
        )

    def test_transposed(self):
        r = Region(1.0, 2.0, 3.0, 7.0).transposed()
        assert (r.xmin, r.ymin, r.xmax, r.ymax) == (2.0, 1.0, 7.0, 3.0)

    def test_transposed_involution(self):
        r = Region(1.0, 2.0, 3.0, 7.0)
        assert r.transposed().transposed() == r


class TestRaster:
    def test_shape_and_gaps(self):
        raster = Raster(Region(0.0, 0.0, 10.0, 6.0), 5, 3)
        assert raster.shape == (3, 5)
        assert raster.gx == pytest.approx(2.0)
        assert raster.gy == pytest.approx(2.0)
        assert raster.pixel_count == 15

    def test_centers(self):
        raster = Raster(Region(0.0, 0.0, 10.0, 6.0), 5, 3)
        np.testing.assert_allclose(raster.x_centers(), [1.0, 3.0, 5.0, 7.0, 9.0])
        np.testing.assert_allclose(raster.y_centers(), [1.0, 3.0, 5.0])

    def test_centers_strictly_increasing_evenly_spaced(self):
        raster = Raster(Region(-3.0, 2.0, 17.0, 21.0), 33, 17)
        xs = raster.x_centers()
        assert np.all(np.diff(xs) > 0)
        np.testing.assert_allclose(np.diff(xs), raster.gx)

    def test_centers_inside_region(self):
        raster = Raster(Region(5.0, 5.0, 6.0, 6.0), 7, 7)
        assert raster.x_centers().min() > 5.0
        assert raster.x_centers().max() < 6.0

    @pytest.mark.parametrize("size", [(0, 5), (5, 0), (-1, 5)])
    def test_invalid_resolution(self, size):
        with pytest.raises(ValueError):
            Raster(Region(0, 0, 1, 1), *size)

    def test_transposed(self):
        raster = Raster(Region(0.0, 0.0, 10.0, 6.0), 5, 3)
        t = raster.transposed()
        assert t.width == 3 and t.height == 5
        np.testing.assert_allclose(t.x_centers(), raster.y_centers())
        np.testing.assert_allclose(t.y_centers(), raster.x_centers())

    @settings(max_examples=40, deadline=None)
    @given(
        width=st.integers(1, 50),
        height=st.integers(1, 50),
        x0=st.floats(-1e5, 1e5),
        span=st.floats(0.01, 1e5),
    )
    def test_center_formula_property(self, width, height, x0, span):
        raster = Raster(Region(x0, 0.0, x0 + span, 1.0), width, height)
        xs = raster.x_centers()
        assert len(xs) == width
        assert xs[0] == pytest.approx(x0 + raster.gx / 2, rel=1e-9, abs=1e-9)
        # symmetric: last center is gx/2 from the right edge
        assert x0 + span - xs[-1] == pytest.approx(raster.gx / 2, rel=1e-6, abs=1e-6)
