"""Work-stealing exactness and protocol behavior (repro.dist coordinator +
workers).

The core claim under test: a steal mid-render never changes a single output
byte.  The straggler is truncated at the steal row, the thief computes the
tail with its own recomputed halo, and when the straggler loses the CANCEL
race and computes stolen rows anyway (forced here with ``ignore_cancel``),
the overlap bytes are identical and the thief's copy wins deterministically.

Workers are in-thread :class:`~repro.dist.WorkerServer` instances (real TCP
sockets) with the fault-injection knobs: ``delay_s`` (a nap before compute —
a wedged worker), ``slow_factor`` (compute stretched per row chunk — a slow
machine), ``ignore_cancel`` (the double-completion race).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import compute_kdv
from repro.dist import Coordinator, WorkerServer

KW = dict(size=(96, 128), bandwidth=12.0, method="slam_bucket", engine="numpy")

#: Aggressive steal knobs so sub-second test renders actually steal.
STEAL_KW = dict(
    steal=True,
    steal_factor=1.5,
    steal_min_s=0.04,
    min_steal_rows=2,
    shards=4,
)


def _dataset(n=4000, seed=77):
    rng = np.random.default_rng(seed)
    return rng.uniform((0.0, 0.0), (100.0, 80.0), (n, 2))


def _serve(*servers):
    threads = [srv.start_in_thread() for srv in servers]
    return threads


def _stop(servers, threads):
    for srv in servers:
        srv.stop()
    for thread in threads:
        thread.join(timeout=5.0)
        assert not thread.is_alive()


class TestStealFires:
    def test_steal_from_throttled_worker_is_exact(self):
        """One 40x-throttled worker: the fast one must steal its tail, and
        the merged grid must still be bit-identical to serial."""
        xy = _dataset()
        serial = compute_kdv(xy, **KW)
        fast = WorkerServer(port=0, heartbeat_s=0.05)
        slow = WorkerServer(
            port=0, heartbeat_s=0.05, slow_factor=40.0, chunk_rows=1
        )
        threads = _serve(fast, slow)
        try:
            with Coordinator(
                [("127.0.0.1", fast.port), ("127.0.0.1", slow.port)],
                **STEAL_KW,
            ) as coord:
                assert coord.connect() == 2
                dist = compute_kdv(
                    xy, backend="dist", coordinator=coord, **KW
                )
                assert np.array_equal(serial.grid, dist.grid)
                rec = coord.recorder
                assert rec.counter_value("dist.steals") >= 1
                assert rec.counter_value("dist.steal_rows") >= 1
                assert rec.counter_value("dist.cancels") >= 1
                report = coord.last_report
                assert report is not None
                assert report.steals >= 1
                stolen = [
                    r for r in report.records if r.stolen_from is not None
                ]
                assert stolen, "no thief record in the report"
                # thief units cover disjoint tails of planned bands
                for r in stolen:
                    assert r.row_stop > r.row_start
        finally:
            _stop((fast, slow), threads)

    def test_wedged_worker_loses_everything(self):
        """A worker that naps before computing (rows_done stays 0) first
        donates half, then — still at zero progress — everything left.  Its
        nap is interrupted and it contributes nothing."""
        xy = _dataset(seed=5)
        serial = compute_kdv(xy, **KW)
        fast = WorkerServer(port=0, heartbeat_s=0.05)
        napper = WorkerServer(port=0, heartbeat_s=0.05, delay_s=30.0)
        threads = _serve(fast, napper)
        try:
            with Coordinator(
                [("127.0.0.1", fast.port), ("127.0.0.1", napper.port)],
                **STEAL_KW,
            ) as coord:
                assert coord.connect() == 2
                dist = compute_kdv(
                    xy, backend="dist", coordinator=coord, **KW
                )
                assert np.array_equal(serial.grid, dist.grid)
                rec = coord.recorder
                assert rec.counter_value("dist.steals") >= 2
                report = coord.last_report
                napper_addr = f"127.0.0.1:{napper.port}"
                napper_rows = sum(
                    r.rows for r in report.records if r.worker == napper_addr
                )
                assert napper_rows == 0
        finally:
            _stop((fast, napper), threads)

    def test_double_completion_race_discards_deterministically(self):
        """``ignore_cancel`` forces the race: the straggler computes the
        stolen rows anyway.  The thief's identical bytes win; the discard is
        counted; the grid is exact."""
        xy = _dataset(seed=11)
        serial = compute_kdv(xy, **KW)
        fast = WorkerServer(port=0, heartbeat_s=0.05)
        stubborn = WorkerServer(
            port=0,
            heartbeat_s=0.05,
            slow_factor=20.0,
            chunk_rows=1,
            ignore_cancel=True,
        )
        threads = _serve(fast, stubborn)
        try:
            with Coordinator(
                [("127.0.0.1", fast.port), ("127.0.0.1", stubborn.port)],
                **STEAL_KW,
            ) as coord:
                assert coord.connect() == 2
                dist = compute_kdv(
                    xy, backend="dist", coordinator=coord, **KW
                )
                assert np.array_equal(serial.grid, dist.grid)
                rec = coord.recorder
                assert rec.counter_value("dist.steals") >= 1
                assert rec.counter_value("dist.steal_discarded_rows") >= 1
                report = coord.last_report
                assert report.discarded_rows >= 1
                # the stubborn worker computed more rows than it contributed
                overshoot = [
                    r
                    for r in report.records
                    if r.computed_rows > r.rows
                ]
                assert overshoot
        finally:
            _stop((fast, stubborn), threads)

    def test_no_steal_when_disabled(self):
        xy = _dataset(seed=3)
        serial = compute_kdv(xy, **KW)
        fast = WorkerServer(port=0, heartbeat_s=0.05)
        slow = WorkerServer(
            port=0, heartbeat_s=0.05, slow_factor=8.0, chunk_rows=2
        )
        threads = _serve(fast, slow)
        try:
            with Coordinator(
                [("127.0.0.1", fast.port), ("127.0.0.1", slow.port)],
                **{**STEAL_KW, "steal": False},
            ) as coord:
                dist = compute_kdv(
                    xy, backend="dist", coordinator=coord, **KW
                )
                assert np.array_equal(serial.grid, dist.grid)
                assert coord.recorder.counter_value("dist.steals") == 0
                assert coord.recorder.counter_value("dist.cancels") == 0
        finally:
            _stop((fast, slow), threads)


@pytest.fixture(scope="module")
def steal_pool():
    """A heterogeneous pool shared by the hypothesis examples below: one
    native-speed worker and one heavily throttled one."""
    fast = WorkerServer(port=0, heartbeat_s=0.05)
    slow = WorkerServer(
        port=0, heartbeat_s=0.05, slow_factor=25.0, chunk_rows=1
    )
    threads = _serve(fast, slow)
    yield (fast, slow)
    _stop((fast, slow), threads)


class TestStealExactnessProperty:
    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        n=st.integers(50, 600),
        shards=st.integers(2, 6),
        seed=st.integers(0, 2**16),
        skew=st.booleans(),
    )
    def test_grids_bit_identical_whatever_steals_fire(
        self, steal_pool, n, shards, seed, skew
    ):
        """For any dataset / shard count, with a straggler in the pool and
        aggressive steal knobs, the distributed grid equals serial exactly —
        whether or not steals actually fired for that example."""
        rng = np.random.default_rng(seed)
        if skew:
            hot = rng.normal((50, 20), (15, 3.0), (n, 2))
            xy = np.clip(hot, 0.0, (100.0, 80.0))
        else:
            xy = rng.uniform((0.0, 0.0), (100.0, 80.0), (n, 2))
        fast, slow = steal_pool
        serial = compute_kdv(xy, **KW)
        with Coordinator(
            [("127.0.0.1", fast.port), ("127.0.0.1", slow.port)],
            **{**STEAL_KW, "shards": shards},
        ) as coord:
            dist = compute_kdv(xy, backend="dist", coordinator=coord, **KW)
        assert np.array_equal(serial.grid, dist.grid)
