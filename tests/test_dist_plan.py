"""Tests for the deterministic shard planner (repro.dist.plan).

The planner's contract is structural: for any dataset, raster height,
bandwidth, shard count, and balance mode, the row bands partition
``range(Y)`` exactly, the owned point ranges partition ``range(n)`` exactly,
every halo covers its owned range plus everything within one bandwidth of
the band's rows, and the whole thing is a pure function of its inputs.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import YSortedIndex
from repro.dist.plan import plan_shards


def _y_centers(height: int, ymin: float = 0.0, ymax: float = 80.0) -> np.ndarray:
    step = (ymax - ymin) / height
    return ymin + (np.arange(height) + 0.5) * step


def _check_plan_invariants(plan, ysorted, y_centers, bandwidth):
    # row bands partition range(height) exactly, in order
    cursor = 0
    for shard in plan:
        assert shard.row_start == cursor
        assert shard.row_stop >= shard.row_start
        cursor = shard.row_stop
    assert cursor == plan.height
    # owned point ranges partition range(n) exactly, in order
    cursor = 0
    for shard in plan:
        assert shard.own_start == cursor
        assert shard.own_stop >= shard.own_start
        cursor = shard.own_stop
    assert cursor == plan.n_points
    # each halo is exactly the envelope union of the shard's rows
    sorted_y = ysorted.sorted_y
    for shard in plan:
        if shard.rows == 0:
            continue
        lo = int(np.searchsorted(
            sorted_y, y_centers[shard.row_start] - bandwidth, side="left"))
        hi = int(np.searchsorted(
            sorted_y, y_centers[shard.row_stop - 1] + bandwidth, side="right"))
        assert (shard.halo_start, shard.halo_stop) == (lo, hi)
        # ... and per-row envelope slices fall inside it
        for k in (y_centers[shard.row_start], y_centers[shard.row_stop - 1]):
            env = ysorted.envelope_slice(k, bandwidth)
            assert shard.halo_start <= env.start
            assert env.stop <= shard.halo_stop


class TestPlanShards:
    def test_single_shard_covers_everything(self):
        rng = np.random.default_rng(5)
        ysorted = YSortedIndex(rng.uniform((0, 0), (100, 80), (50, 2)))
        y_centers = _y_centers(20)
        plan = plan_shards(ysorted, y_centers, 9.0, 1)
        assert len(plan) == 1
        (shard,) = plan.shards
        assert (shard.row_start, shard.row_stop) == (0, 20)
        assert (shard.own_start, shard.own_stop) == (0, 50)

    def test_clamps_to_points_and_rows(self):
        ysorted = YSortedIndex(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        assert len(plan_shards(ysorted, _y_centers(20), 5.0, 99)) == 3
        assert len(plan_shards(ysorted, _y_centers(2), 5.0, 99)) == 2

    @pytest.mark.parametrize("balance", ("points", "rows"))
    def test_balance_modes(self, balance):
        rng = np.random.default_rng(11)
        xy = rng.normal((50, 40), 10.0, (400, 2))
        ysorted = YSortedIndex(xy)
        y_centers = _y_centers(48)
        plan = plan_shards(ysorted, y_centers, 8.0, 4, balance=balance)
        _check_plan_invariants(plan, ysorted, y_centers, 8.0)
        if balance == "points":
            # "points" balances *haloed* point counts (the work proxy), so
            # every shard's halo must carry a fair share: no shard may hold
            # more haloed points than a naive even split of the total halo
            # mass plus one boundary row's worth of slack.
            haloed = [s.halo_stop - s.halo_start for s in plan]
            assert max(haloed) <= sum(haloed) / len(haloed) * 2.0
            # and refinement must beat the naive max of an unbalanced seed:
            # the largest halo cannot be the whole dataset.
            assert max(haloed) < plan.n_points
        else:
            rows = [s.rows for s in plan]
            assert max(rows) - min(rows) <= 1

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        xy = rng.uniform((0, 0), (100, 80), (120, 2))
        ysorted = YSortedIndex(xy)
        y_centers = _y_centers(30)
        a = plan_shards(ysorted, y_centers, 7.0, 5)
        b = plan_shards(YSortedIndex(xy.copy()), y_centers.copy(), 7.0, 5)
        assert a.shards == b.shards

    def test_describe_mentions_every_shard(self):
        ysorted = YSortedIndex(np.random.default_rng(0).uniform(0, 80, (40, 2)))
        plan = plan_shards(ysorted, _y_centers(16), 6.0, 3)
        text = plan.describe()
        for shard in plan:
            assert f"#{shard.shard_id}:" in text

    def test_invalid_inputs(self):
        ysorted = YSortedIndex(np.array([[1.0, 2.0]]))
        y_centers = _y_centers(4)
        with pytest.raises(ValueError, match="empty"):
            plan_shards(YSortedIndex(np.empty((0, 2))), y_centers, 5.0, 2)
        with pytest.raises(ValueError, match="zero-row"):
            plan_shards(ysorted, np.empty(0), 5.0, 2)
        with pytest.raises(ValueError, match="bandwidth"):
            plan_shards(ysorted, y_centers, 0.0, 2)
        with pytest.raises(ValueError, match="shards"):
            plan_shards(ysorted, y_centers, 5.0, 0)
        with pytest.raises(ValueError, match="balance"):
            plan_shards(ysorted, y_centers, 5.0, 2, balance="luck")

    @settings(max_examples=60, deadline=None)
    @given(
        n=st.integers(1, 200),
        height=st.integers(1, 60),
        shards=st.integers(1, 10),
        bandwidth=st.floats(0.5, 40.0),
        balance=st.sampled_from(("points", "rows")),
        seed=st.integers(0, 2**16),
    )
    def test_invariants_hold_for_any_plan(
        self, n, height, shards, bandwidth, balance, seed
    ):
        rng = np.random.default_rng(seed)
        xy = rng.uniform((0.0, 0.0), (100.0, 80.0), (n, 2))
        ysorted = YSortedIndex(xy)
        y_centers = _y_centers(height)
        plan = plan_shards(ysorted, y_centers, bandwidth, shards, balance=balance)
        assert 1 <= len(plan) <= min(shards, n, height)
        _check_plan_invariants(plan, ysorted, y_centers, bandwidth)
