"""Tests for the network KDV subsystem (graph, Dijkstra, lixels, NKDV)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import get_kernel
from repro.network import (
    Lixelization,
    SpatialNetwork,
    bounded_dijkstra,
    compute_nkdv,
    node_distances_from_edge_point,
    street_grid,
)
from repro.network.nkdv import nkdv_event_centric, nkdv_lixel_centric


@pytest.fixture(scope="module")
def grid_net() -> SpatialNetwork:
    return street_grid(5, 4, spacing=100.0)


@pytest.fixture(scope="module")
def holey_net() -> SpatialNetwork:
    return street_grid(6, 6, spacing=100.0, removal_fraction=0.2, seed=7)


class TestSpatialNetwork:
    def test_grid_counts(self, grid_net):
        assert grid_net.num_nodes == 20
        # 4 rows x 4 horizontal + 3 vertical x 5 columns per the grid shape
        assert grid_net.num_edges == 4 * 4 + 3 * 5

    def test_edge_lengths_euclidean(self, grid_net):
        np.testing.assert_allclose(grid_net.edge_length, 100.0)
        assert grid_net.total_length() == pytest.approx(31 * 100.0)

    def test_custom_lengths(self):
        net = SpatialNetwork(
            np.array([[0.0, 0.0], [1.0, 0.0]]),
            np.array([[0, 1]]),
            edge_length=np.array([5.0]),
        )
        assert net.edge_length[0] == 5.0

    def test_adjacency_consistent(self, grid_net):
        for node in range(grid_net.num_nodes):
            for neighbor, edge, weight in grid_net.neighbors(node):
                u, v = grid_net.edges[edge]
                assert {u, v} == {node, neighbor}
                assert weight == pytest.approx(grid_net.edge_length[edge])

    def test_degrees(self, grid_net):
        degrees = sorted(grid_net.degree(n) for n in range(grid_net.num_nodes))
        # 4 corners of degree 2, edges of degree 3, interior of degree 4
        assert degrees[:4] == [2, 2, 2, 2]
        assert degrees[-1] == 4

    def test_validation(self):
        xy = np.array([[0.0, 0.0], [1.0, 0.0]])
        with pytest.raises(ValueError, match="self-loops"):
            SpatialNetwork(xy, np.array([[0, 0]]))
        with pytest.raises(ValueError, match="parallel"):
            SpatialNetwork(xy, np.array([[0, 1], [1, 0]]))
        with pytest.raises(ValueError, match="out of range"):
            SpatialNetwork(xy, np.array([[0, 5]]))
        with pytest.raises(ValueError, match="positive"):
            SpatialNetwork(xy, np.array([[0, 1]]), edge_length=np.array([0.0]))

    def test_edge_point(self, grid_net):
        edge = 0
        u, v = grid_net.edges[edge]
        mid = grid_net.edge_point(edge, grid_net.edge_length[edge] / 2)
        np.testing.assert_allclose(
            mid, (grid_net.node_xy[u] + grid_net.node_xy[v]) / 2
        )
        with pytest.raises(ValueError):
            grid_net.edge_point(edge, 1e9)

    def test_snap_projects_to_nearest_edge(self, grid_net):
        # a point just off the segment from (100,0)-(200,0)
        edges, offsets = grid_net.snap(np.array([[150.0, 5.0]]))
        u, v = grid_net.edges[edges[0]]
        pts = grid_net.node_xy[[u, v]]
        assert set(map(tuple, pts)) == {(100.0, 0.0), (200.0, 0.0)}
        snapped = grid_net.edge_point(int(edges[0]), float(offsets[0]))
        np.testing.assert_allclose(snapped, [150.0, 0.0])

    def test_snap_endpoint_clamping(self, grid_net):
        # far outside the grid: snaps to the nearest corner
        edges, offsets = grid_net.snap(np.array([[-50.0, -50.0]]))
        snapped = grid_net.edge_point(int(edges[0]), float(offsets[0]))
        np.testing.assert_allclose(snapped, [0.0, 0.0])

    def test_snap_empty_network(self):
        net = SpatialNetwork(np.array([[0.0, 0.0]]), np.empty((0, 2)))
        with pytest.raises(ValueError, match="no edges"):
            net.snap(np.array([[0.0, 0.0]]))


class TestStreetGrid:
    def test_removal(self):
        full = street_grid(6, 6)
        holey = street_grid(6, 6, removal_fraction=0.3, seed=1)
        assert holey.num_edges < full.num_edges

    def test_origin_and_spacing(self):
        net = street_grid(2, 2, spacing=50.0, origin=(10.0, 20.0))
        np.testing.assert_allclose(net.node_xy.min(axis=0), [10.0, 20.0])
        np.testing.assert_allclose(net.node_xy.max(axis=0), [60.0, 70.0])

    def test_validation(self):
        with pytest.raises(ValueError):
            street_grid(1, 5)
        with pytest.raises(ValueError):
            street_grid(3, 3, removal_fraction=1.0)


class TestBoundedDijkstra:
    def test_against_networkx(self, holey_net):
        """Cross-check against the independent networkx implementation."""
        import networkx as nx

        g = nx.Graph()
        for i, (u, v) in enumerate(holey_net.edges):
            g.add_edge(int(u), int(v), weight=float(holey_net.edge_length[i]))
        budget = 350.0
        for source in (0, 7, 20):
            if source not in g:
                continue
            expected = {
                node: d
                for node, d in nx.single_source_dijkstra_path_length(
                    g, source, weight="weight"
                ).items()
                if d <= budget
            }
            got = bounded_dijkstra(holey_net, {source: 0.0}, budget)
            assert got.keys() == expected.keys()
            for node in expected:
                assert got[node] == pytest.approx(expected[node])

    def test_budget_excludes_far_nodes(self, grid_net):
        got = bounded_dijkstra(grid_net, {0: 0.0}, 150.0)
        assert max(got.values()) <= 150.0
        # node 0's own distance is zero
        assert got[0] == 0.0

    def test_multi_source(self, grid_net):
        a = bounded_dijkstra(grid_net, {0: 0.0}, 250.0)
        b = bounded_dijkstra(grid_net, {19: 0.0}, 250.0)
        both = bounded_dijkstra(grid_net, {0: 0.0, 19: 0.0}, 250.0)
        for node in both:
            assert both[node] == pytest.approx(
                min(a.get(node, np.inf), b.get(node, np.inf))
            )

    def test_seed_beyond_budget_ignored(self, grid_net):
        assert bounded_dijkstra(grid_net, {0: 1e9}, 100.0) == {}

    def test_zero_budget(self, grid_net):
        assert bounded_dijkstra(grid_net, {3: 0.0}, 0.0) == {3: 0.0}

    def test_validation(self, grid_net):
        with pytest.raises(ValueError, match="budget"):
            bounded_dijkstra(grid_net, {0: 0.0}, -1.0)
        with pytest.raises(ValueError, match="out of range"):
            bounded_dijkstra(grid_net, {10**6: 0.0}, 10.0)

    def test_edge_point_seeding(self, grid_net):
        """Distances from a mid-edge point: endpoints at a and L - a."""
        edge = 0
        u, v = (int(x) for x in grid_net.edges[edge])
        dist = node_distances_from_edge_point(grid_net, edge, 30.0, 500.0)
        assert dist[u] == pytest.approx(30.0)
        assert dist[v] == pytest.approx(70.0)

    def test_disconnected_component_unreached(self):
        xy = np.array([[0.0, 0.0], [1.0, 0.0], [10.0, 0.0], [11.0, 0.0]])
        net = SpatialNetwork(xy, np.array([[0, 1], [2, 3]]))
        got = bounded_dijkstra(net, {0: 0.0}, 100.0)
        assert set(got) == {0, 1}


class TestLixelization:
    def test_tiles_every_edge_exactly(self, grid_net):
        lix = Lixelization(grid_net, 30.0)
        for e in range(grid_net.num_edges):
            sl = lix.lixels_of_edge(e)
            assert lix.length[sl].sum() == pytest.approx(grid_net.edge_length[e])
            assert np.all(lix.length[sl] <= 30.0 + 1e-9)

    def test_centers_inside_edges(self, grid_net):
        lix = Lixelization(grid_net, 30.0)
        assert np.all(lix.center > 0)
        assert np.all(lix.center < grid_net.edge_length[lix.edge_id])

    def test_center_points_on_segments(self, grid_net):
        lix = Lixelization(grid_net, 30.0)
        pts = lix.center_points()
        # grid edges are axis-aligned: centers share a coordinate with nodes
        on_grid_line = (pts % 100.0 == 0.0).any(axis=1)
        assert on_grid_line.all()

    def test_segments_tile_edges(self, grid_net):
        lix = Lixelization(grid_net, 33.0)
        segments = lix.segments()
        for e in range(grid_net.num_edges):
            sl = lix.lixels_of_edge(e)
            segs = segments[sl]
            # consecutive lixels share endpoints
            np.testing.assert_allclose(segs[:-1, 1], segs[1:, 0])

    def test_long_lixel_clamped_to_one_per_edge(self, grid_net):
        lix = Lixelization(grid_net, 1e6)
        assert len(lix) == grid_net.num_edges

    def test_validation(self, grid_net):
        with pytest.raises(ValueError):
            Lixelization(grid_net, 0.0)


class TestNKDV:
    @pytest.mark.parametrize("kernel_name", ["uniform", "epanechnikov", "quartic"])
    def test_evaluators_agree(self, holey_net, kernel_name, rng):
        pts = rng.uniform((0, 0), (500, 500), (25, 2))
        lix = Lixelization(holey_net, 40.0)
        edges, offsets = holey_net.snap(pts)
        kernel = get_kernel(kernel_name)
        fast = nkdv_event_centric(holey_net, lix, edges, offsets, kernel, 180.0)
        naive = nkdv_lixel_centric(holey_net, lix, edges, offsets, kernel, 180.0)
        np.testing.assert_allclose(fast, naive, rtol=1e-10, atol=1e-12)

    def test_weighted_evaluators_agree(self, grid_net, rng):
        pts = rng.uniform((0, 0), (400, 300), (20, 2))
        w = rng.uniform(0, 3, 20)
        lix = Lixelization(grid_net, 40.0)
        edges, offsets = grid_net.snap(pts)
        kernel = get_kernel("epanechnikov")
        fast = nkdv_event_centric(grid_net, lix, edges, offsets, kernel, 180.0, weights=w)
        naive = nkdv_lixel_centric(grid_net, lix, edges, offsets, kernel, 180.0, weights=w)
        np.testing.assert_allclose(fast, naive, rtol=1e-10, atol=1e-12)

    def test_single_event_same_edge_profile(self):
        """One event mid-edge on a path graph: density falls off linearly in
        network distance under the Epanechnikov kernel's 1 - (d/b)^2."""
        xy = np.array([[0.0, 0.0], [100.0, 0.0]])
        net = SpatialNetwork(xy, np.array([[0, 1]]))
        lix = Lixelization(net, 10.0)
        density = nkdv_event_centric(
            net, lix, np.array([0]), np.array([50.0]),
            get_kernel("epanechnikov"), 30.0,
        )
        d = np.abs(lix.center - 50.0)
        expected = np.where(d <= 30.0, 1 - (d / 30.0) ** 2, 0.0)
        np.testing.assert_allclose(density, expected, rtol=1e-12)

    def test_density_respects_network_distance_not_euclidean(self):
        """Two parallel streets 10 m apart but connected only at the far end:
        an event on one street must NOT leak onto the other even though the
        Euclidean distance is tiny."""
        xy = np.array(
            [[0.0, 0.0], [1000.0, 0.0], [0.0, 10.0], [1000.0, 10.0]]
        )
        edges = np.array([[0, 1], [2, 3], [1, 3]])  # connected at x=1000 only
        net = SpatialNetwork(xy, edges)
        lix = Lixelization(net, 50.0)
        density = nkdv_event_centric(
            net, lix, np.array([0]), np.array([0.0]),  # event at (0, 0)
            get_kernel("epanechnikov"), 200.0,
        )
        other_street = lix.edge_id == 1
        assert density[other_street].max() == 0.0
        same_street = lix.edge_id == 0
        assert density[same_street].max() > 0.0

    def test_disconnected_component_gets_zero(self):
        xy = np.array([[0.0, 0.0], [100.0, 0.0], [500.0, 0.0], [600.0, 0.0]])
        net = SpatialNetwork(xy, np.array([[0, 1], [2, 3]]))
        lix = Lixelization(net, 20.0)
        density = nkdv_event_centric(
            net, lix, np.array([0]), np.array([50.0]),
            get_kernel("epanechnikov"), 1e4,
        )
        assert density[lix.edge_id == 1].max() == 0.0

    def test_event_on_long_edge_beyond_endpoints(self):
        """Bandwidth smaller than the distance to either endpoint: only the
        same-edge fallback contributes."""
        xy = np.array([[0.0, 0.0], [1000.0, 0.0]])
        net = SpatialNetwork(xy, np.array([[0, 1]]))
        lix = Lixelization(net, 25.0)
        density = nkdv_event_centric(
            net, lix, np.array([0]), np.array([500.0]),
            get_kernel("epanechnikov"), 100.0,
        )
        naive = nkdv_lixel_centric(
            net, lix, np.array([0]), np.array([500.0]),
            get_kernel("epanechnikov"), 100.0,
        )
        np.testing.assert_allclose(density, naive, rtol=1e-12)
        assert density.max() > 0

    def test_gaussian_rejected(self, grid_net):
        with pytest.raises(ValueError, match="infinite support"):
            compute_nkdv(grid_net, np.zeros((1, 2)), kernel="gaussian")

    def test_compute_nkdv_end_to_end(self, holey_net, rng):
        pts = rng.uniform((0, 0), (500, 500), (60, 2))
        res = compute_nkdv(holey_net, pts, lixel_length=25.0, bandwidth=150.0)
        assert res.n_events == 60
        assert res.max_density() > 0
        hot = res.hotspot_lixels(0.9)
        assert 0 < hot.sum() < len(res)
        img = res.rasterize((64, 48))
        assert img.shape == (48, 64)
        assert (img > 0).any()

    def test_compute_nkdv_pointset_weights(self, grid_net, rng):
        from repro import PointSet

        xy = rng.uniform((0, 0), (400, 300), (20, 2))
        w = rng.uniform(1, 2, 20)
        weighted = compute_nkdv(
            grid_net, PointSet(xy, w=w), lixel_length=40.0, bandwidth=150.0
        )
        plain = compute_nkdv(grid_net, xy, lixel_length=40.0, bandwidth=150.0)
        assert weighted.density.sum() > plain.density.sum()

    def test_unknown_method(self, grid_net):
        with pytest.raises(ValueError, match="unknown method"):
            compute_nkdv(grid_net, np.zeros((1, 2)), method="sweep")

    @settings(max_examples=15, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), b=st.floats(20.0, 400.0))
    def test_evaluator_agreement_property(self, seed, b):
        gen = np.random.default_rng(seed)
        net = street_grid(4, 4, spacing=100.0, removal_fraction=0.15, seed=seed % 100)
        pts = gen.uniform((0, 0), (300, 300), (10, 2))
        lix = Lixelization(net, 35.0)
        edges, offsets = net.snap(pts)
        kernel = get_kernel("epanechnikov")
        fast = nkdv_event_centric(net, lix, edges, offsets, kernel, b)
        naive = nkdv_lixel_centric(net, lix, edges, offsets, kernel, b)
        np.testing.assert_allclose(fast, naive, rtol=1e-9, atol=1e-11)
