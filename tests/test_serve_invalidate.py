"""Tests for targeted tile invalidation (`repro.serve.invalidate`).

The load-bearing claim is the *soundness* property: after inserting a
batch, **no tile outside** :func:`~repro.serve.invalidate.affected_tiles`
changes — verified by re-rendering every tile of a small pyramid before
and after random batches (hypothesis drives the geometry).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Region
from repro.serve import affected_tiles, batch_mbr
from repro.viz.tiles import TileScheme, render_tile

WORLD = Region(0.0, 0.0, 1000.0, 1000.0)


@pytest.fixture(scope="module")
def scheme():
    return TileScheme(WORLD)


class TestBatchMBR:
    def test_single_point(self):
        assert batch_mbr([[3.0, 4.0]]) == (3.0, 4.0, 3.0, 4.0)

    def test_spread(self):
        mbr = batch_mbr([[0.0, 10.0], [5.0, -2.0], [3.0, 3.0]])
        assert mbr == (0.0, -2.0, 5.0, 10.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            batch_mbr(np.empty((0, 2)))
        with pytest.raises(ValueError):
            batch_mbr([[1.0, 2.0, 3.0]])
        with pytest.raises(ValueError):
            batch_mbr([[np.inf, 0.0]])


class TestAffectedTiles:
    def test_empty_batch_affects_nothing(self, scheme):
        assert affected_tiles(scheme, 2, np.empty((0, 2)), 50.0) == set()

    def test_far_outside_world_affects_nothing(self, scheme):
        assert affected_tiles(scheme, 2, [[5000.0, 5000.0]], 50.0) == set()
        # ...but within one bandwidth of the border it does
        assert affected_tiles(scheme, 2, [[1040.0, 500.0]], 50.0) != set()

    def test_interior_point_touches_one_tile_when_bandwidth_small(self, scheme):
        # zoom 3: tiles are 125 wide; bandwidth 10 around the tile center
        # stays strictly inside tile (4, 4)
        keys = affected_tiles(scheme, 3, [[562.5, 562.5]], 10.0)
        assert keys == {(3, 4, 4)}

    def test_inflation_reaches_neighbors(self, scheme):
        # same point, bandwidth larger than the distance to every border of
        # its tile: the 3x3 neighborhood is affected
        keys = affected_tiles(scheme, 3, [[562.5, 562.5]], 70.0)
        assert keys == {
            (3, tx, ty) for tx in (3, 4, 5) for ty in (3, 4, 5)
        }

    def test_level0_always_whole_world(self, scheme):
        assert affected_tiles(scheme, 0, [[1.0, 1.0]], 5.0) == {(0, 0, 0)}

    def test_keys_carry_the_zoom(self, scheme):
        for key in affected_tiles(scheme, 2, [[100.0, 900.0]], 80.0):
            assert key[0] == 2

    def test_validation(self, scheme):
        with pytest.raises(ValueError):
            affected_tiles(scheme, 1, [[0.0, 0.0]], 0.0)
        with pytest.raises(ValueError):
            affected_tiles(scheme, 1, [[0.0, 0.0]], np.inf)
        with pytest.raises(ValueError):
            affected_tiles(scheme, 1, [[0.0, 0.0, 0.0]], 10.0)


class TestSoundnessProperty:
    """No tile outside the affected set changes — the guarantee the cache
    relies on to keep (rather than drop) entries across an ingest."""

    @settings(max_examples=15, deadline=None)
    @given(
        batch=st.lists(
            st.tuples(
                st.floats(-100.0, 1100.0),
                st.floats(-100.0, 1100.0),
            ),
            min_size=1,
            max_size=4,
        ),
        bandwidth=st.floats(20.0, 200.0),
        zoom=st.integers(1, 2),
    )
    def test_unaffected_tiles_are_bit_identical(self, batch, bandwidth, zoom):
        scheme = TileScheme(WORLD)
        rng = np.random.default_rng(7)
        base = rng.uniform((0.0, 0.0), (1000.0, 1000.0), (40, 2))
        grown = np.vstack([base, np.asarray(batch, float)])
        affected = affected_tiles(scheme, zoom, batch, bandwidth)
        per_axis = scheme.tiles_per_axis(zoom)
        for tx in range(per_axis):
            for ty in range(per_axis):
                if (zoom, tx, ty) in affected:
                    continue
                # direct evaluation: a point outside reach contributes an
                # exact 0, so unaffected tiles are bit-identical
                before = render_tile(
                    base, scheme, zoom, tx, ty,
                    tile_size=4, bandwidth=bandwidth, method="scan",
                )
                after = render_tile(
                    grown, scheme, zoom, tx, ty,
                    tile_size=4, bandwidth=bandwidth, method="scan",
                )
                np.testing.assert_array_equal(before, after)
                # the incremental sweep carries ~1e-15 accumulator residue
                # downstream of a point's support, so the default method is
                # unchanged only up to machine noise — far below any
                # density value the color scale can resolve
                sweep_before = render_tile(
                    base, scheme, zoom, tx, ty, tile_size=4, bandwidth=bandwidth
                )
                sweep_after = render_tile(
                    grown, scheme, zoom, tx, ty, tile_size=4, bandwidth=bandwidth
                )
                np.testing.assert_allclose(
                    sweep_after, sweep_before, rtol=1e-9, atol=1e-10
                )

    def test_affected_tiles_actually_change(self, scheme):
        """Sanity in the other direction: the tile hosting a batch point
        does change (the set is not trivially 'everything stays')."""
        rng = np.random.default_rng(11)
        base = rng.uniform((0.0, 0.0), (1000.0, 1000.0), (40, 2))
        batch = np.array([[562.5, 562.5]])
        grown = np.vstack([base, batch])
        affected = affected_tiles(scheme, 2, batch, 50.0)
        host = (2, *scheme.tile_of_point(2, 562.5, 562.5))
        assert host in affected
        before = render_tile(base, scheme, *host, tile_size=4, bandwidth=50.0)
        after = render_tile(grown, scheme, *host, tile_size=4, bandwidth=50.0)
        assert not np.array_equal(before, after)
