"""Tests for adaptive (variable-bandwidth) KDV (extensions.adaptive)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Raster, Region
from repro.extensions.adaptive import (
    adaptive_kdv_grid,
    adaptive_scan_grid,
    compute_adaptive_kdv,
    knn_bandwidths,
)


@pytest.fixture
def mixed_xy(rng):
    """Dense cluster + sparse background: the case adaptive KDE exists for."""
    return np.vstack(
        [rng.normal((30.0, 30.0), 3.0, (200, 2)),
         rng.uniform((0, 0), (100, 80), (100, 2))]
    )


@pytest.fixture
def per_point_b(rng, mixed_xy):
    return rng.uniform(2.0, 15.0, len(mixed_xy))


class TestKnnBandwidths:
    def test_positive_and_shaped(self, mixed_xy):
        b = knn_bandwidths(mixed_xy, k=8)
        assert b.shape == (len(mixed_xy),)
        assert np.all(b > 0)

    def test_dense_points_get_smaller_bandwidths(self, mixed_xy):
        b = knn_bandwidths(mixed_xy, k=8)
        dense = b[:200]  # the cluster
        sparse = b[200:]
        assert np.median(dense) < np.median(sparse) / 2

    def test_matches_brute_force_knn_distance(self, rng):
        xy = rng.uniform(0, 50, (60, 2))
        k = 5
        b = knn_bandwidths(xy, k=k)
        for i in range(0, 60, 7):
            d = np.sqrt(((xy - xy[i]) ** 2).sum(axis=1))
            d = np.sort(d[d > 0])
            assert b[i] == pytest.approx(d[k - 1], rel=1e-9)

    def test_scale(self, mixed_xy):
        b1 = knn_bandwidths(mixed_xy, k=8, scale=1.0)
        b2 = knn_bandwidths(mixed_xy, k=8, scale=2.5)
        np.testing.assert_allclose(b2, 2.5 * b1, rtol=1e-12)

    def test_min_bandwidth_floor(self):
        xy = np.vstack([np.zeros((5, 2)), [[10.0, 10.0]]])  # coincident points
        b = knn_bandwidths(xy, k=2, min_bandwidth=0.5)
        assert np.all(b >= 0.5)

    def test_validation(self, mixed_xy):
        with pytest.raises(ValueError):
            knn_bandwidths(mixed_xy[:1])
        with pytest.raises(ValueError):
            knn_bandwidths(mixed_xy, k=0)
        with pytest.raises(ValueError):
            knn_bandwidths(mixed_xy, k=len(mixed_xy))
        with pytest.raises(ValueError):
            knn_bandwidths(mixed_xy, scale=0.0)


class TestAdaptiveExactness:
    @pytest.fixture
    def raster(self):
        return Raster(Region(0, 0, 100, 80), 29, 19)

    @pytest.mark.parametrize("kernel", ["uniform", "epanechnikov"])
    def test_sweep_matches_scan(self, kernel, mixed_xy, per_point_b, raster):
        fast = adaptive_kdv_grid(mixed_xy, raster, kernel, per_point_b)
        ref = adaptive_scan_grid(mixed_xy, raster, kernel, per_point_b)
        np.testing.assert_allclose(fast, ref, rtol=1e-9, atol=1e-10)

    def test_quartic_within_conditioning_tolerance(self, mixed_xy, per_point_b, raster):
        fast = adaptive_kdv_grid(mixed_xy, raster, "quartic", per_point_b)
        ref = adaptive_scan_grid(mixed_xy, raster, "quartic", per_point_b)
        scale = max(ref.max(), 1.0)
        np.testing.assert_allclose(fast / scale, ref / scale, atol=1e-6)

    def test_constant_bandwidths_equal_fixed_kdv(self, mixed_xy, raster):
        from repro import compute_kdv

        b = np.full(len(mixed_xy), 9.0)
        adaptive = adaptive_kdv_grid(mixed_xy, raster, "epanechnikov", b)
        fixed = compute_kdv(
            mixed_xy, region=raster.region, size=(29, 19), bandwidth=9.0,
            normalization="none",
        ).grid
        np.testing.assert_allclose(adaptive, fixed, rtol=1e-9, atol=1e-11)

    def test_weighted(self, mixed_xy, per_point_b, raster, rng):
        w = rng.uniform(0, 3, len(mixed_xy))
        fast = adaptive_kdv_grid(mixed_xy, raster, "epanechnikov", per_point_b, weights=w)
        ref = adaptive_scan_grid(mixed_xy, raster, "epanechnikov", per_point_b, weights=w)
        np.testing.assert_allclose(fast, ref, rtol=1e-8, atol=1e-10)

    def test_empty(self, raster):
        grid = adaptive_kdv_grid(np.empty((0, 2)), raster, "epanechnikov", np.empty(0))
        assert np.all(grid == 0)

    def test_extreme_bandwidth_spread(self, raster, rng):
        """One giant-bandwidth point among tiny ones (the worst case for
        the b_max envelope) must stay exact for Epanechnikov."""
        xy = rng.uniform((0, 0), (100, 80), (50, 2))
        b = np.full(50, 2.0)
        b[0] = 120.0  # covers the whole region
        fast = adaptive_kdv_grid(xy, raster, "epanechnikov", b)
        ref = adaptive_scan_grid(xy, raster, "epanechnikov", b)
        np.testing.assert_allclose(fast, ref, rtol=1e-8, atol=1e-10)

    def test_validation(self, mixed_xy, raster):
        with pytest.raises(ValueError, match="bandwidths must have shape"):
            adaptive_kdv_grid(mixed_xy, raster, "epanechnikov", np.ones(3))
        with pytest.raises(ValueError, match="positive"):
            adaptive_kdv_grid(
                mixed_xy, raster, "epanechnikov", np.zeros(len(mixed_xy))
            )
        with pytest.raises(ValueError, match="not supported"):
            adaptive_kdv_grid(
                mixed_xy, raster, "gaussian", np.ones(len(mixed_xy))
            )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_exactness_property(self, seed):
        gen = np.random.default_rng(seed)
        xy = gen.uniform((0, 0), (20, 15), (40, 2))
        b = gen.uniform(0.5, 6.0, 40)
        raster = Raster(Region(0, 0, 20, 15), 11, 7)
        fast = adaptive_kdv_grid(xy, raster, "epanechnikov", b)
        ref = adaptive_scan_grid(xy, raster, "epanechnikov", b)
        scale = max(ref.max(), 1.0)
        np.testing.assert_allclose(fast / scale, ref / scale, atol=1e-9)


class TestComputeAdaptive:
    def test_end_to_end(self, mixed_xy):
        res = compute_adaptive_kdv(mixed_xy, size=(32, 24), k_neighbors=10)
        assert res.shape == (24, 32)
        assert res.exact
        assert res.method == "adaptive_slam_sort"
        assert res.max_density() > 0

    def test_adaptive_sharpens_dense_cluster(self, mixed_xy):
        """In proper density units the adaptive map resolves the dense
        cluster more sharply than a fixed Scott bandwidth: higher peak."""
        from repro import compute_kdv

        adaptive = compute_adaptive_kdv(
            mixed_xy, size=(64, 48), k_neighbors=10, normalization="density"
        )
        fixed = compute_kdv(mixed_xy, size=(64, 48), normalization="density")
        assert adaptive.max_density() > fixed.max_density()

    def test_density_normalization_integrates_to_one(self, rng):
        """The adaptive density estimate must still integrate to ~1."""
        xy = rng.normal((50.0, 40.0), 4.0, (400, 2))
        region = Region(0.0, 0.0, 100.0, 80.0)
        res = compute_adaptive_kdv(
            xy, region=region, size=(160, 128), k_neighbors=12,
            normalization="density",
        )
        cell = res.raster.gx * res.raster.gy
        assert res.grid.sum() * cell == pytest.approx(1.0, rel=0.02)

    def test_unknown_normalization(self, mixed_xy):
        with pytest.raises(ValueError, match="unknown normalization"):
            compute_adaptive_kdv(mixed_xy, size=(8, 8), normalization="softmax")

    def test_explicit_bandwidths(self, mixed_xy, per_point_b):
        res = compute_adaptive_kdv(mixed_xy, size=(16, 12), bandwidths=per_point_b)
        assert res.bandwidth == pytest.approx(float(np.median(per_point_b)))

    def test_pointset_weights(self, rng):
        from repro import PointSet

        xy = rng.uniform((0, 0), (50, 40), (60, 2))
        ps = PointSet(xy, w=rng.uniform(1, 2, 60))
        res = compute_adaptive_kdv(ps, size=(16, 12), k_neighbors=5)
        plain = compute_adaptive_kdv(xy, size=(16, 12), k_neighbors=5)
        assert not np.allclose(res.grid, plain.grid)
