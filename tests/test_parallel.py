"""Tests for the parallel row-block executor (core.parallel + sweep threading).

The contract under test: any ``workers``/``backend`` combination returns a
grid *bit-identical* (``np.array_equal``, not allclose) to the serial sweep,
because each row is computed by the same code in the same floating-point
order regardless of blocking.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PARALLEL_METHODS, Raster, Region, compute_kdv
from repro.core.envelope import YSortedIndex
from repro.core.kernels import get_kernel
from repro.core.parallel import (
    BACKENDS,
    BLOCKS_PER_WORKER,
    partition_rows,
    resolve_workers,
    validate_backend,
)
from repro.core.slam_bucket import slam_bucket_row_numpy
from repro.core.sweep import sweep_kdv, sweep_rows

KERNEL_NAMES = ("uniform", "epanechnikov", "quartic")
ENGINES = ("python", "numpy")


@pytest.fixture(scope="module")
def xy() -> np.ndarray:
    rng = np.random.default_rng(77)
    return rng.uniform((0.0, 0.0), (100.0, 80.0), (200, 2))


class TestResolveWorkers:
    def test_serial_values(self):
        assert resolve_workers(None) == 1
        assert resolve_workers(1) == 1

    def test_auto_is_positive(self):
        assert resolve_workers("auto") >= 1

    def test_int_passthrough(self):
        assert resolve_workers(4) == 4
        assert resolve_workers("3") == 3

    @pytest.mark.parametrize("bad", [0, -2, "many", 1.5, object()])
    def test_invalid_rejected(self, bad):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(bad)


class TestValidateBackend:
    def test_known_backends(self):
        for backend in BACKENDS:
            validate_backend(backend)

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            validate_backend("mpi")


class TestPartitionRows:
    def test_empty(self):
        assert partition_rows(0, 4) == []

    def test_single_block(self):
        assert partition_rows(10, 1) == [(0, 10)]

    def test_more_blocks_than_rows(self):
        blocks = partition_rows(3, 8)
        assert blocks == [(0, 1), (1, 2), (2, 3)]

    def test_invalid(self):
        with pytest.raises(ValueError, match="num_rows"):
            partition_rows(-1, 4)
        with pytest.raises(ValueError, match="num_blocks"):
            partition_rows(10, 0)

    @settings(max_examples=200, deadline=None)
    @given(num_rows=st.integers(0, 5000), num_blocks=st.integers(1, 64))
    def test_exact_contiguous_cover(self, num_rows, num_blocks):
        blocks = partition_rows(num_rows, num_blocks)
        # contiguous, in order, covering [0, num_rows) exactly once
        cursor = 0
        for start, stop in blocks:
            assert start == cursor
            assert stop > start
            cursor = stop
        assert cursor == num_rows
        if num_rows:
            assert len(blocks) == min(num_blocks, num_rows)
            sizes = [stop - start for start, stop in blocks]
            assert max(sizes) - min(sizes) <= 1  # near-equal split


class TestSweepRowsBlocks:
    def test_blocks_reassemble_full_sweep(self, xy):
        """sweep_rows over any partition concatenates to the full grid."""
        raster = Raster(Region(0, 0, 100, 80), 21, 17)
        kernel = get_kernel("epanechnikov")
        ysorted = YSortedIndex(xy)
        cx = (raster.region.xmin + raster.region.xmax) / 2.0
        xs_scaled = (raster.x_centers() - cx) / 9.0
        args = (raster.y_centers(), xs_scaled, ysorted, cx, 9.0, kernel,
                slam_bucket_row_numpy)
        full = sweep_rows(0, raster.height, *args)
        for num_blocks in (2, 3, 17):
            parts = [
                sweep_rows(start, stop, *args)
                for start, stop in partition_rows(raster.height, num_blocks)
            ]
            assert np.array_equal(np.concatenate(parts), full)


class TestParallelEquality:
    """workers > 1 must be bit-for-bit identical to the serial path."""

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    @pytest.mark.parametrize("method", PARALLEL_METHODS)
    def test_bit_identical(self, method, kernel_name, engine, backend, xy):
        kwargs = dict(
            size=(16, 12), kernel=kernel_name, bandwidth=9.0,
            method=method, engine=engine,
        )
        serial = compute_kdv(xy, **kwargs)
        parallel = compute_kdv(xy, workers=2, backend=backend, **kwargs)
        assert np.array_equal(serial.grid, parallel.grid)
        assert parallel.stats is not None
        assert parallel.stats.workers == 2

    def test_tall_raster_rao_columns(self, xy):
        """RAO picks the column sweep; parallel blocks must survive the
        transpose round-trip bit-for-bit."""
        kwargs = dict(size=(12, 20), bandwidth=9.0, method="slam_bucket_rao")
        serial = compute_kdv(xy, **kwargs)
        parallel = compute_kdv(xy, workers=3, **kwargs)
        assert np.array_equal(serial.grid, parallel.grid)
        assert parallel.stats.orientation == "columns"
        assert parallel.stats.rows == 12  # RAO sweeps the shorter axis

    def test_weighted_sweep_parallel(self, xy):
        weights = np.linspace(0.5, 2.0, len(xy))
        kwargs = dict(size=(16, 12), bandwidth=9.0, method="slam_bucket",
                      weights=weights)
        serial = compute_kdv(xy, **kwargs)
        parallel = compute_kdv(xy, workers=2, backend="thread", **kwargs)
        assert np.array_equal(serial.grid, parallel.grid)

    def test_workers_auto(self, xy):
        result = compute_kdv(xy, size=(16, 12), bandwidth=9.0,
                             method="slam_bucket", workers="auto")
        serial = compute_kdv(xy, size=(16, 12), bandwidth=9.0,
                             method="slam_bucket")
        assert np.array_equal(result.grid, serial.grid)
        assert result.stats.workers >= 1

    def test_sweep_kdv_direct_parallel(self, xy):
        raster = Raster(Region(0, 0, 100, 80), 19, 13)
        kernel = get_kernel("quartic")
        serial = sweep_kdv(xy, raster, kernel, 9.0, slam_bucket_row_numpy)
        threaded = sweep_kdv(xy, raster, kernel, 9.0, slam_bucket_row_numpy,
                             workers=2, backend="thread")
        assert np.array_equal(serial, threaded)

    def test_bad_workers_via_api(self, xy):
        with pytest.raises(ValueError, match="workers"):
            compute_kdv(xy, size=(8, 8), bandwidth=5.0, workers=0)
        with pytest.raises(ValueError, match="workers"):
            compute_kdv(xy, size=(8, 8), bandwidth=5.0, workers="fast")

    def test_bad_backend_via_api(self, xy):
        with pytest.raises(ValueError, match="backend"):
            compute_kdv(xy, size=(8, 8), bandwidth=5.0,
                        method="slam_bucket", workers=2, backend="mpi")

    def test_baselines_ignore_workers(self, xy):
        """Non-SLAM methods accept the workers parameter (validated, then
        ignored) so callers can sweep methods uniformly."""
        result = compute_kdv(xy, size=(8, 8), bandwidth=9.0,
                             method="scan", workers=4)
        assert result.stats is None


class TestStats:
    def test_serial_stats(self, xy):
        result = compute_kdv(xy, size=(16, 12), bandwidth=9.0,
                             method="slam_bucket")
        s = result.stats
        assert s is not None
        assert s.backend == "serial"
        assert s.workers == 1
        assert s.blocks == 1
        assert s.rows == 12
        assert s.orientation == "rows"
        assert s.elapsed_seconds > 0
        assert s.rows_per_sec > 0

    def test_parallel_block_count(self, xy):
        result = compute_kdv(xy, size=(16, 12), bandwidth=9.0,
                             method="slam_bucket", workers=2, backend="thread")
        s = result.stats
        assert s.backend == "thread"
        assert 1 < s.blocks <= 2 * BLOCKS_PER_WORKER
        assert s.blocks <= s.rows

    def test_non_rao_orientation_is_rows(self, xy):
        # even on a tall raster, the non-RAO methods sweep rows
        result = compute_kdv(xy, size=(12, 20), bandwidth=9.0,
                             method="slam_sort", workers=2, backend="thread")
        assert result.stats.orientation == "rows"
        assert result.stats.rows == 20


class TestPicklability:
    """The sweep context must cross a process boundary: regions, rasters,
    the y-sorted index, and kernel singletons all pickle round-trip."""

    def test_region_raster_roundtrip(self):
        raster = Raster(Region(0.0, 0.0, 100.0, 80.0), 37, 23)
        clone = pickle.loads(pickle.dumps(raster))
        assert clone == raster
        assert np.array_equal(clone.x_centers(), raster.x_centers())

    def test_ysorted_index_roundtrip(self, xy):
        index = YSortedIndex(xy)
        clone = pickle.loads(pickle.dumps(index))
        assert np.array_equal(clone.sorted_xy, index.sorted_xy)
        assert np.array_equal(clone.order, index.order)

    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    def test_kernel_roundtrip(self, kernel_name):
        kernel = get_kernel(kernel_name)
        clone = pickle.loads(pickle.dumps(kernel))
        assert clone.name == kernel.name
        assert clone.num_channels == kernel.num_channels
