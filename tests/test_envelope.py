"""Tests for envelope point sets (Definition 1, Lemma 1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import YSortedIndex, envelope_scan


class TestEnvelopeScan:
    def test_definition(self):
        xy = np.array([[0.0, 0.0], [0.0, 2.0], [0.0, 5.0], [0.0, -2.0]])
        idx = envelope_scan(xy, k=0.0, bandwidth=2.0)
        assert set(idx) == {0, 1, 3}

    def test_boundary_inclusive(self):
        # |k - p.y| == b is inside the envelope (Equation 6 uses <=)
        xy = np.array([[0.0, 3.0]])
        assert len(envelope_scan(xy, k=0.0, bandwidth=3.0)) == 1

    def test_empty_dataset(self):
        assert len(envelope_scan(np.empty((0, 2)), 0.0, 1.0)) == 0

    def test_all_points_when_bandwidth_huge(self, small_xy):
        idx = envelope_scan(small_xy, k=40.0, bandwidth=1e6)
        assert len(idx) == len(small_xy)


class TestYSortedIndex:
    def test_sorted_by_y(self, small_xy):
        index = YSortedIndex(small_xy)
        assert np.all(np.diff(index.sorted_y) >= 0)

    def test_order_is_permutation(self, small_xy):
        index = YSortedIndex(small_xy)
        assert sorted(index.order) == list(range(len(small_xy)))
        np.testing.assert_array_equal(index.sorted_xy, small_xy[index.order])

    def test_matches_scan(self, small_xy):
        index = YSortedIndex(small_xy)
        for k in (0.0, 17.3, 40.0, 80.0, 100.0):
            from_scan = set(envelope_scan(small_xy, k, 7.0))
            from_index = set(index.envelope_indices(k, 7.0))
            assert from_scan == from_index

    def test_envelope_points_match_indices(self, small_xy):
        index = YSortedIndex(small_xy)
        pts = index.envelope_points(33.0, 5.0)
        idx = index.envelope_indices(33.0, 5.0)
        np.testing.assert_array_equal(pts, small_xy[idx])

    def test_empty_envelope(self, small_xy):
        index = YSortedIndex(small_xy)
        assert len(index.envelope_points(-1000.0, 1.0)) == 0

    def test_len(self, small_xy):
        assert len(YSortedIndex(small_xy)) == len(small_xy)

    @settings(max_examples=50, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(0, 80),
        k=st.floats(-20, 20),
        b=st.floats(0.01, 30),
    )
    def test_equivalence_property(self, seed, n, k, b):
        """Scan (Lemma 1) and sorted-slice extraction select the same set,
        including for duplicated y coordinates and boundary ties."""
        r = np.random.default_rng(seed)
        # integer coordinates force exact boundary ties
        xy = r.integers(-10, 10, (n, 2)).astype(float)
        assert set(envelope_scan(xy, k, b)) == set(
            YSortedIndex(xy).envelope_indices(k, b)
        )

    def test_duplicate_y_all_selected(self):
        xy = np.array([[float(i), 5.0] for i in range(10)])
        index = YSortedIndex(xy)
        assert len(index.envelope_points(5.0, 0.1)) == 10


class TestRowBounds:
    def test_interval_matches_distance_condition(self, rng):
        from repro.core.bounds import row_bounds

        k, b = 10.0, 4.0
        xy = np.column_stack(
            [rng.uniform(0, 50, 200), rng.uniform(k - b, k + b, 200)]
        )
        lb, ub = row_bounds(xy, k, b)
        for qx in np.linspace(0, 50, 23):
            in_interval = (lb <= qx) & (qx <= ub)
            d_sq = (xy[:, 0] - qx) ** 2 + (xy[:, 1] - k) ** 2
            in_disc = d_sq <= b * b
            np.testing.assert_array_equal(in_interval, in_disc)

    def test_interval_centered_on_point(self):
        from repro.core.bounds import row_bounds

        lb, ub = row_bounds(np.array([[7.0, 0.0]]), k=0.0, bandwidth=2.0)
        assert lb[0] == pytest.approx(5.0)
        assert ub[0] == pytest.approx(9.0)

    def test_zero_width_interval_at_envelope_edge(self):
        from repro.core.bounds import row_bounds

        # |k - p.y| == b: the interval degenerates to the point's x.
        lb, ub = row_bounds(np.array([[3.0, 2.0]]), k=0.0, bandwidth=2.0)
        assert lb[0] == ub[0] == pytest.approx(3.0)

    def test_outside_envelope_raises(self):
        from repro.core.bounds import row_bounds

        with pytest.raises(ValueError, match="outside envelope"):
            row_bounds(np.array([[0.0, 10.0]]), k=0.0, bandwidth=2.0)

    def test_empty(self):
        from repro.core.bounds import row_bounds

        lb, ub = row_bounds(np.empty((0, 2)), 0.0, 1.0)
        assert len(lb) == len(ub) == 0
