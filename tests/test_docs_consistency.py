"""Meta-tests keeping the documentation and the code in sync.

These fail when someone registers a method, adds an example, or adds a
benchmark without documenting it (or vice versa) — cheap guards against the
docs drifting from the code, which matters for a reproduction repository.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

from repro import method_names

REPO = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def readme() -> str:
    return (REPO / "README.md").read_text()


@pytest.fixture(scope="module")
def design() -> str:
    return (REPO / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments() -> str:
    return (REPO / "EXPERIMENTS.md").read_text()


class TestMethodsDocumented:
    def test_all_methods_in_cli_complexity_table(self):
        from repro.cli import _COMPLEXITY

        assert set(_COMPLEXITY) == set(method_names())

    def test_api_docstring_lists_all_methods(self):
        import repro.core.api as api

        for method in method_names():
            assert method in api.__doc__, f"{method} missing from api module doc"


class TestExamplesListed:
    def test_every_example_in_readme(self, readme):
        examples = sorted(
            p.name for p in (REPO / "examples").glob("*.py") if p.name != "__init__.py"
        )
        assert examples, "no examples found"
        for name in examples:
            assert f"examples/{name}" in readme, f"{name} not listed in README"

    def test_examples_have_docstrings_and_main(self):
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text()
            assert text.startswith('"""'), f"{path.name} lacks a docstring"
            assert 'if __name__ == "__main__":' in text, path.name


class TestBenchmarksListed:
    def test_every_bench_module_in_readme(self, readme):
        benches = sorted(p.name for p in (REPO / "benchmarks").glob("bench_*.py"))
        assert benches, "no bench modules found"
        for name in benches:
            assert name in readme, f"{name} not listed in README"

    def test_every_paper_artifact_has_a_bench(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for artifact in (
            "table7_default",
            "fig13_resolution",
            "fig14_datasize",
            "fig15_bandwidth",
            "fig16_explore",
            "fig17_space",
            "fig18_kernels_resolution",
            "fig19_kernels_datasize",
            "table1_complexity",
        ):
            assert f"bench_{artifact}.py" in benches, artifact

    def test_experiments_covers_every_bench(self, experiments):
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            assert path.name in experiments, f"{path.name} not in EXPERIMENTS.md"


class TestDesignInventory:
    def test_design_mentions_every_source_module(self, design):
        """Every implementation module appears in DESIGN.md's inventory (by
        name or through its package directory)."""
        for path in (REPO / "src" / "repro").rglob("*.py"):
            if path.name in ("__init__.py", "__main__.py"):
                continue
            rel = path.relative_to(REPO / "src")
            mentioned = (
                path.name in design
                or str(rel.parent).replace("\\", "/") + "/" in design
            )
            assert mentioned, f"{rel} missing from DESIGN.md inventory"

    def test_docs_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                    "docs/algorithm.md", "docs/api_guide.md",
                    "docs/reproducing.md", "docs/benchmarks.md",
                    "docs/observability.md", "docs/serving.md",
                    "docs/streaming.md", "docs/distributed.md"):
            assert (REPO / doc).is_file(), doc


def _doc_files() -> list[Path]:
    return [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]


def _logical_lines(text: str) -> list[str]:
    """Lines with backslash continuations joined."""
    lines: list[str] = []
    pending = ""
    for raw in text.splitlines():
        if raw.rstrip().endswith("\\"):
            pending += raw.rstrip()[:-1] + " "
            continue
        lines.append(pending + raw)
        pending = ""
    if pending:
        lines.append(pending)
    return lines


class TestDocsSymbolsImport:
    """Every dotted ``repro.*`` reference in the docs resolves: the named
    module imports and the final attribute (if any) exists.  Catches docs
    that mention renamed or removed API."""

    DOTTED = re.compile(r"\brepro(?:\.\w+)+")

    @pytest.mark.parametrize("doc", _doc_files(), ids=lambda p: p.name)
    def test_dotted_references_resolve(self, doc):
        text = doc.read_text()
        for match in sorted(set(self.DOTTED.findall(text))):
            dotted = match.removesuffix(".py")
            parts = dotted.split(".")
            # longest importable module prefix, remainder must be attributes
            obj = None
            for i in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:i]))
                except ImportError:
                    continue
                break
            assert obj is not None, f"{doc.name}: cannot import {dotted}"
            for attr in parts[i:]:
                assert hasattr(obj, attr), (
                    f"{doc.name}: {dotted} — no attribute {attr!r}"
                )
                obj = getattr(obj, attr)

    @pytest.mark.parametrize("doc", _doc_files(), ids=lambda p: p.name)
    def test_import_statements_run(self, doc):
        """``from repro... import a, b`` lines in doc code blocks execute."""
        for line in _logical_lines(doc.read_text()):
            stripped = line.strip()
            if not stripped.startswith("from repro"):
                continue
            exec(stripped, {})  # raises ImportError on drift


class TestDocumentedCliFlags:
    """Every ``--flag`` shown in a documented ``repro`` or bench-script
    invocation is defined somewhere in the CLI / bench sources."""

    def _known_flags(self) -> str:
        sources = [REPO / "src" / "repro" / "cli.py"]
        sources += sorted((REPO / "benchmarks").glob("*.py"))
        return "\n".join(p.read_text() for p in sources)

    def test_documented_flags_exist(self):
        known = self._known_flags()
        flag_re = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
        missing = []
        for doc in _doc_files():
            for line in _logical_lines(doc.read_text()):
                # direct CLI or script-mode bench invocations only (pytest
                # runs own their flags, e.g. --benchmark-only)
                if "-m repro" not in line and not re.search(
                    r"python\s+benchmarks/bench_", line
                ):
                    continue
                for flag in flag_re.findall(line):
                    if f'"{flag}"' not in known and f"'{flag}'" not in known:
                        missing.append(f"{doc.name}: {flag} ({line.strip()})")
        assert not missing, "documented flags not found in code:\n" + "\n".join(
            missing
        )
