"""Meta-tests keeping the documentation and the code in sync.

These fail when someone registers a method, adds an example, or adds a
benchmark without documenting it (or vice versa) — cheap guards against the
docs drifting from the code, which matters for a reproduction repository.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

from repro import method_names

REPO = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def readme() -> str:
    return (REPO / "README.md").read_text()


@pytest.fixture(scope="module")
def design() -> str:
    return (REPO / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments() -> str:
    return (REPO / "EXPERIMENTS.md").read_text()


class TestMethodsDocumented:
    def test_all_methods_in_cli_complexity_table(self):
        from repro.cli import _COMPLEXITY

        assert set(_COMPLEXITY) == set(method_names())

    def test_api_docstring_lists_all_methods(self):
        import repro.core.api as api

        for method in method_names():
            assert method in api.__doc__, f"{method} missing from api module doc"


class TestExamplesListed:
    def test_every_example_in_readme(self, readme):
        examples = sorted(
            p.name for p in (REPO / "examples").glob("*.py") if p.name != "__init__.py"
        )
        assert examples, "no examples found"
        for name in examples:
            assert f"examples/{name}" in readme, f"{name} not listed in README"

    def test_examples_have_docstrings_and_main(self):
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text()
            assert text.startswith('"""'), f"{path.name} lacks a docstring"
            assert 'if __name__ == "__main__":' in text, path.name


class TestBenchmarksListed:
    def test_every_bench_module_in_readme(self, readme):
        benches = sorted(p.name for p in (REPO / "benchmarks").glob("bench_*.py"))
        assert benches, "no bench modules found"
        for name in benches:
            assert name in readme, f"{name} not listed in README"

    def test_every_paper_artifact_has_a_bench(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for artifact in (
            "table7_default",
            "fig13_resolution",
            "fig14_datasize",
            "fig15_bandwidth",
            "fig16_explore",
            "fig17_space",
            "fig18_kernels_resolution",
            "fig19_kernels_datasize",
            "table1_complexity",
        ):
            assert f"bench_{artifact}.py" in benches, artifact

    def test_experiments_covers_every_bench(self, experiments):
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            assert path.name in experiments, f"{path.name} not in EXPERIMENTS.md"


class TestDesignInventory:
    def test_design_mentions_every_source_module(self, design):
        """Every implementation module appears in DESIGN.md's inventory (by
        name or through its package directory)."""
        for path in (REPO / "src" / "repro").rglob("*.py"):
            if path.name in ("__init__.py", "__main__.py"):
                continue
            rel = path.relative_to(REPO / "src")
            mentioned = (
                path.name in design
                or str(rel.parent).replace("\\", "/") + "/" in design
            )
            assert mentioned, f"{rel} missing from DESIGN.md inventory"

    def test_docs_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                    "docs/algorithm.md", "docs/api_guide.md",
                    "docs/architecture.md", "docs/reproducing.md",
                    "docs/benchmarks.md", "docs/observability.md",
                    "docs/serving.md", "docs/streaming.md",
                    "docs/quality.md", "docs/distributed.md",
                    "docs/native.md", "docs/scheduling.md"):
            assert (REPO / doc).is_file(), doc


def _doc_files() -> list[Path]:
    return [REPO / "README.md", *sorted((REPO / "docs").glob("*.md"))]


def _logical_lines(text: str) -> list[str]:
    """Lines with backslash continuations joined."""
    lines: list[str] = []
    pending = ""
    for raw in text.splitlines():
        if raw.rstrip().endswith("\\"):
            pending += raw.rstrip()[:-1] + " "
            continue
        lines.append(pending + raw)
        pending = ""
    if pending:
        lines.append(pending)
    return lines


class TestDocsSymbolsImport:
    """Every dotted ``repro.*`` reference in the docs resolves: the named
    module imports and the final attribute (if any) exists.  Catches docs
    that mention renamed or removed API."""

    DOTTED = re.compile(r"\brepro(?:\.\w+)+")

    @pytest.mark.parametrize("doc", _doc_files(), ids=lambda p: p.name)
    def test_dotted_references_resolve(self, doc):
        text = doc.read_text()
        for match in sorted(set(self.DOTTED.findall(text))):
            dotted = match.removesuffix(".py")
            parts = dotted.split(".")
            # longest importable module prefix, remainder must be attributes
            obj = None
            for i in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:i]))
                except ImportError:
                    continue
                break
            assert obj is not None, f"{doc.name}: cannot import {dotted}"
            for attr in parts[i:]:
                assert hasattr(obj, attr), (
                    f"{doc.name}: {dotted} — no attribute {attr!r}"
                )
                obj = getattr(obj, attr)

    @pytest.mark.parametrize("doc", _doc_files(), ids=lambda p: p.name)
    def test_import_statements_run(self, doc):
        """``from repro... import a, b`` lines in doc code blocks execute."""
        for line in _logical_lines(doc.read_text()):
            stripped = line.strip()
            if not stripped.startswith("from repro"):
                continue
            exec(stripped, {})  # raises ImportError on drift


class TestDocsCrossLinked:
    """The doc pages form a connected graph: every page under ``docs/`` is
    reachable from README.md by following markdown links."""

    LINK = re.compile(r"\]\(([^)#\s]+\.md)\)")

    def test_every_doc_reachable_from_readme(self):
        all_docs = {p.name for p in (REPO / "docs").glob("*.md")}
        seen: set[str] = set()
        frontier = [REPO / "README.md"]
        while frontier:
            page = frontier.pop()
            for target in self.LINK.findall(page.read_text()):
                name = Path(target).name
                if name in all_docs and name not in seen:
                    seen.add(name)
                    frontier.append(REPO / "docs" / name)
        orphans = sorted(all_docs - seen)
        assert not orphans, f"docs unreachable from README: {orphans}"


class TestDocumentedHttpContract:
    """Every HTTP header and query parameter the docs promise is present in
    the front end (`repro/serve/http.py`)."""

    HEADER = re.compile(r"\bX-KDV-[A-Za-z-]+\b")
    QUERY = re.compile(r"[?&]([a-z_]+)=")

    @pytest.fixture(scope="class")
    def http_source(self) -> str:
        return (REPO / "src" / "repro" / "serve" / "http.py").read_text()

    def test_documented_headers_exist(self, http_source):
        documented: set[str] = set()
        for doc in _doc_files():
            documented.update(self.HEADER.findall(doc.read_text()))
        assert {"X-KDV-Quality", "X-KDV-Error-Bound"} <= documented
        missing = sorted(h for h in documented if h not in http_source)
        assert not missing, f"documented headers not set by http.py: {missing}"
        assert "Retry-After" in http_source  # the 503 contract

    def test_documented_query_params_exist(self, http_source):
        documented: set[str] = set()
        for doc in _doc_files():
            documented.update(self.QUERY.findall(doc.read_text()))
        assert {"window", "quality", "max_error", "colormap"} <= documented
        missing = sorted(
            q for q in documented if f'"{q}"' not in http_source
        )
        assert not missing, f"documented query params not read by http.py: {missing}"


class TestDocumentedKnobTables:
    """Every knob-table row in the docs names a real constructor argument,
    CLI flag, or environment variable from the sources."""

    TABLE_HEADER = re.compile(r"^\|\s*(?:Knob|CLI flag)\b", re.IGNORECASE)
    TOKEN = re.compile(r"`([^`]+)`")
    FLAG = re.compile(r"^--[a-z][a-z0-9-]*$")
    ENV = re.compile(r"^[A-Z][A-Z0-9_]+$")
    IDENT = re.compile(r"^[a-z_][a-z0-9_]*$")

    def _knob_rows(self):
        """Yield (doc, first-two-cells) for every data row of a knob table
        (the knob name and where it lives; defaults/effects are prose)."""
        for doc in _doc_files():
            in_table = False
            for line in doc.read_text().splitlines():
                if self.TABLE_HEADER.match(line):
                    in_table = True
                    continue
                if not in_table:
                    continue
                if not line.startswith("|"):
                    in_table = False
                    continue
                if set(line) <= set("|-: "):
                    continue  # the header/body separator row
                cells = [c.strip() for c in line.strip("|").split("|")]
                yield doc, cells[:2]

    def test_knob_rows_name_real_arguments(self):
        cli = (REPO / "src" / "repro" / "cli.py").read_text()
        src = "\n".join(
            p.read_text() for p in (REPO / "src" / "repro").rglob("*.py")
        )
        env_sources = src + "\n".join(
            p.read_text() for p in (REPO / "benchmarks").glob("*.py")
        ) + (REPO / "setup.py").read_text()  # REPRO_NATIVE_* build knobs
        rows = 0
        missing = []
        for doc, cells in self._knob_rows():
            rows += 1
            for cell in cells:
                for token in self.TOKEN.findall(cell):
                    for part in token.split():
                        if self.FLAG.match(part):
                            if (f'"{part}"' not in cli
                                    and f"'{part}'" not in cli):
                                missing.append(f"{doc.name}: {part}")
                        elif self.ENV.match(part):
                            if part not in env_sources:
                                missing.append(f"{doc.name}: {part}")
                        elif self.IDENT.match(part):
                            if not re.search(rf"\b{re.escape(part)}\b", src):
                                missing.append(f"{doc.name}: {part}")
        assert rows >= 20, "knob tables went missing from the docs"
        assert not missing, (
            "knob-table rows naming nothing in the code:\n" + "\n".join(missing)
        )


class TestDocumentedCliFlags:
    """Every ``--flag`` shown in a documented ``repro`` or bench-script
    invocation is defined somewhere in the CLI / bench sources."""

    def _known_flags(self) -> str:
        sources = [REPO / "src" / "repro" / "cli.py"]
        sources += sorted((REPO / "benchmarks").glob("*.py"))
        return "\n".join(p.read_text() for p in sources)

    def test_documented_flags_exist(self):
        known = self._known_flags()
        flag_re = re.compile(r"(?<![\w-])--[a-z][a-z0-9-]*")
        missing = []
        for doc in _doc_files():
            for line in _logical_lines(doc.read_text()):
                # direct CLI or script-mode bench invocations only (pytest
                # runs own their flags, e.g. --benchmark-only)
                if "-m repro" not in line and not re.search(
                    r"python\s+benchmarks/bench_", line
                ):
                    continue
                for flag in flag_re.findall(line):
                    if f'"{flag}"' not in known and f"'{flag}'" not in known:
                        missing.append(f"{doc.name}: {flag} ({line.strip()})")
        assert not missing, "documented flags not found in code:\n" + "\n".join(
            missing
        )
