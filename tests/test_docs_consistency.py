"""Meta-tests keeping the documentation and the code in sync.

These fail when someone registers a method, adds an example, or adds a
benchmark without documenting it (or vice versa) — cheap guards against the
docs drifting from the code, which matters for a reproduction repository.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro import method_names

REPO = Path(__file__).resolve().parents[1]


@pytest.fixture(scope="module")
def readme() -> str:
    return (REPO / "README.md").read_text()


@pytest.fixture(scope="module")
def design() -> str:
    return (REPO / "DESIGN.md").read_text()


@pytest.fixture(scope="module")
def experiments() -> str:
    return (REPO / "EXPERIMENTS.md").read_text()


class TestMethodsDocumented:
    def test_all_methods_in_cli_complexity_table(self):
        from repro.cli import _COMPLEXITY

        assert set(_COMPLEXITY) == set(method_names())

    def test_api_docstring_lists_all_methods(self):
        import repro.core.api as api

        for method in method_names():
            assert method in api.__doc__, f"{method} missing from api module doc"


class TestExamplesListed:
    def test_every_example_in_readme(self, readme):
        examples = sorted(
            p.name for p in (REPO / "examples").glob("*.py") if p.name != "__init__.py"
        )
        assert examples, "no examples found"
        for name in examples:
            assert f"examples/{name}" in readme, f"{name} not listed in README"

    def test_examples_have_docstrings_and_main(self):
        for path in (REPO / "examples").glob("*.py"):
            text = path.read_text()
            assert text.startswith('"""'), f"{path.name} lacks a docstring"
            assert 'if __name__ == "__main__":' in text, path.name


class TestBenchmarksListed:
    def test_every_bench_module_in_readme(self, readme):
        benches = sorted(p.name for p in (REPO / "benchmarks").glob("bench_*.py"))
        assert benches, "no bench modules found"
        for name in benches:
            assert name in readme, f"{name} not listed in README"

    def test_every_paper_artifact_has_a_bench(self):
        benches = {p.name for p in (REPO / "benchmarks").glob("bench_*.py")}
        for artifact in (
            "table7_default",
            "fig13_resolution",
            "fig14_datasize",
            "fig15_bandwidth",
            "fig16_explore",
            "fig17_space",
            "fig18_kernels_resolution",
            "fig19_kernels_datasize",
            "table1_complexity",
        ):
            assert f"bench_{artifact}.py" in benches, artifact

    def test_experiments_covers_every_bench(self, experiments):
        for path in (REPO / "benchmarks").glob("bench_*.py"):
            assert path.name in experiments, f"{path.name} not in EXPERIMENTS.md"


class TestDesignInventory:
    def test_design_mentions_every_source_module(self, design):
        """Every implementation module appears in DESIGN.md's inventory (by
        name or through its package directory)."""
        for path in (REPO / "src" / "repro").rglob("*.py"):
            if path.name in ("__init__.py", "__main__.py"):
                continue
            rel = path.relative_to(REPO / "src")
            mentioned = (
                path.name in design
                or str(rel.parent).replace("\\", "/") + "/" in design
            )
            assert mentioned, f"{rel} missing from DESIGN.md inventory"

    def test_docs_exist(self):
        for doc in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                    "docs/algorithm.md", "docs/api_guide.md",
                    "docs/reproducing.md"):
            assert (REPO / doc).is_file(), doc
