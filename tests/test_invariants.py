"""Cross-cutting mathematical invariants of KDV, tested property-style.

These pin down facts that must hold regardless of implementation details:
densities are invariant under translating the whole problem, under uniformly
rescaling coordinates *and* bandwidth, and under 90-degree problem rotation
(which swaps the raster axes — the RAO transformation); densities are
additive over dataset partitions; and the sweep's local-frame transform is
self-consistent.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Raster, Region, compute_kdv
from repro.core.sweep import row_frame


def _grid(xy, region, b, **kw):
    return compute_kdv(
        xy, region=region, size=(13, 9), bandwidth=b, normalization="none", **kw
    ).grid


class TestTranslationInvariance:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        dx=st.floats(-1e5, 1e5),
        dy=st.floats(-1e5, 1e5),
        kernel=st.sampled_from(["uniform", "epanechnikov", "quartic"]),
    )
    def test_shift_everything(self, seed, dx, dy, kernel):
        rng = np.random.default_rng(seed)
        xy = rng.uniform((0, 0), (50, 40), (60, 2))
        region = Region(0.0, 0.0, 50.0, 40.0)
        base = _grid(xy, region, 7.0, kernel=kernel)
        shifted = _grid(
            xy + (dx, dy),
            Region(dx, dy, 50.0 + dx, 40.0 + dy),
            7.0,
            kernel=kernel,
        )
        np.testing.assert_allclose(shifted, base, rtol=1e-7, atol=1e-9)


class TestScaleInvariance:
    @settings(max_examples=30, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        c=st.floats(1e-3, 1e3),
        kernel=st.sampled_from(["epanechnikov", "quartic"]),
    )
    def test_rescale_coordinates_and_bandwidth(self, seed, c, kernel):
        """K depends on d/b for these kernels, so (c*xy, c*b) is identical."""
        rng = np.random.default_rng(seed)
        xy = rng.uniform((0, 0), (50, 40), (60, 2))
        region = Region(0.0, 0.0, 50.0, 40.0)
        base = _grid(xy, region, 7.0, kernel=kernel)
        scaled = _grid(
            xy * c, Region(0.0, 0.0, 50.0 * c, 40.0 * c), 7.0 * c, kernel=kernel
        )
        np.testing.assert_allclose(scaled, base, rtol=1e-7, atol=1e-9)

    def test_uniform_kernel_scales_by_inverse_bandwidth(self, rng):
        """The uniform kernel's plateau is 1/b, so rescaling multiplies
        densities by 1/c."""
        xy = rng.uniform((0, 0), (50, 40), (60, 2))
        region = Region(0.0, 0.0, 50.0, 40.0)
        base = _grid(xy, region, 7.0, kernel="uniform")
        scaled = _grid(
            xy * 10, Region(0.0, 0.0, 500.0, 400.0), 70.0, kernel="uniform"
        )
        np.testing.assert_allclose(scaled * 10, base, rtol=1e-9)


class TestRotationInvariance:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1))
    def test_quarter_turn(self, seed):
        """Rotating points and region by 90 degrees transposes the grid."""
        rng = np.random.default_rng(seed)
        xy = rng.uniform((0, 0), (50, 40), (60, 2))
        base = compute_kdv(
            xy, region=Region(0, 0, 50, 40), size=(13, 9), bandwidth=7.0,
            normalization="none",
        ).grid
        rotated_xy = np.column_stack([xy[:, 1], xy[:, 0]])  # (x,y)->(y,x) mirror
        rotated = compute_kdv(
            rotated_xy, region=Region(0, 0, 40, 50), size=(9, 13), bandwidth=7.0,
            normalization="none",
        ).grid
        np.testing.assert_allclose(rotated, base.T, rtol=1e-7, atol=1e-9)


class TestAdditivity:
    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(0, 2**32 - 1), split=st.integers(1, 59))
    def test_partition_sum(self, seed, split):
        """F over a dataset equals the sum of F over any partition of it."""
        rng = np.random.default_rng(seed)
        xy = rng.uniform((0, 0), (50, 40), (60, 2))
        region = Region(0.0, 0.0, 50.0, 40.0)
        whole = _grid(xy, region, 7.0)
        parts = _grid(xy[:split], region, 7.0) + _grid(xy[split:], region, 7.0)
        np.testing.assert_allclose(parts, whole, rtol=1e-9, atol=1e-11)

    def test_weights_equal_replication(self, rng):
        """Integer weights equal replicating points that many times."""
        xy = rng.uniform((0, 0), (50, 40), (20, 2))
        region = Region(0.0, 0.0, 50.0, 40.0)
        reps = rng.integers(1, 4, 20)
        weighted = _grid(xy, region, 7.0, weights=reps.astype(float))
        replicated = _grid(np.repeat(xy, reps, axis=0), region, 7.0)
        np.testing.assert_allclose(weighted, replicated, rtol=1e-9, atol=1e-11)


class TestRowFrame:
    def test_roundtrip(self, rng):
        """Scaled-frame interval endpoints agree with world-frame bounds."""
        from repro.core.bounds import row_bounds

        k, b, cx = 10.0, 4.0, 25.0
        xy = np.column_stack(
            [rng.uniform(0, 50, 100), rng.uniform(k - b, k + b, 100)]
        )
        u, v, half = row_frame(xy, k, cx, b)
        lb, ub = row_bounds(xy, k, b)
        np.testing.assert_allclose((u - half) * b + cx, lb, rtol=1e-9, atol=1e-9)
        np.testing.assert_allclose((u + half) * b + cx, ub, rtol=1e-9, atol=1e-9)

    def test_clamps_boundary_rounding(self):
        """A point exactly at the envelope edge must not produce NaN."""
        xy = np.array([[3.0, 4.0 + 1e-16]])
        u, v, half = row_frame(xy, k=0.0, cx=0.0, bandwidth=4.0)
        assert np.isfinite(half).all()


class TestDensityBounds:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        kernel=st.sampled_from(["uniform", "epanechnikov", "quartic"]),
    )
    def test_nonnegative_and_bounded(self, seed, kernel):
        """0 <= F(q) <= n * max K for finite-support kernels."""
        rng = np.random.default_rng(seed)
        xy = rng.uniform((0, 0), (50, 40), (60, 2))
        region = Region(0.0, 0.0, 50.0, 40.0)
        grid = _grid(xy, region, 7.0, kernel=kernel)
        assert grid.min() >= -1e-9
        k_max = 1.0 / 7.0 if kernel == "uniform" else 1.0
        assert grid.max() <= 60 * k_max + 1e-9

    def test_far_pixels_exactly_zero(self, rng):
        """Pixels farther than b from every point get exactly 0 (not just
        tiny) for finite-support kernels — no bleeding from the sweep."""
        xy = np.tile([[5.0, 5.0]], (10, 1))
        region = Region(0.0, 0.0, 100.0, 100.0)
        grid = compute_kdv(
            xy, region=region, size=(20, 20), bandwidth=3.0, normalization="none"
        ).grid
        raster = Raster(region, 20, 20)
        xs = raster.x_centers()
        ys = raster.y_centers()
        d_far = (xs[None, :] - 5.0) ** 2 + (ys[:, None] - 5.0) ** 2 > 9.0
        assert np.all(grid[d_far] == 0.0)
