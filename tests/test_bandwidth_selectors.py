"""Tests for the additional bandwidth selectors (Silverman, LCV)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viz.bandwidth import (
    BANDWIDTH_SELECTORS,
    lcv_bandwidth,
    resolve_bandwidth,
    scott_bandwidth,
    silverman_bandwidth,
)


class TestSilverman:
    def test_gaussian_data_matches_scott(self, rng):
        """For Gaussian data std ~ IQR/1.349, so the rules coincide."""
        xy = rng.normal(0, 5, (3000, 2))
        assert silverman_bandwidth(xy) == pytest.approx(
            scott_bandwidth(xy), rel=0.05
        )

    def test_never_exceeds_scott(self, rng):
        for _ in range(5):
            xy = rng.uniform(0, 100, (500, 2)) * rng.uniform(0.1, 10)
            assert silverman_bandwidth(xy) <= scott_bandwidth(xy) + 1e-12

    def test_outliers_shrink_silverman(self, rng):
        """Heavy outliers inflate std but not IQR: Silverman stays small."""
        core = rng.normal(0, 1, (1000, 2))
        outliers = rng.normal(0, 100, (20, 2))
        xy = np.vstack([core, outliers])
        assert silverman_bandwidth(xy) < 0.5 * scott_bandwidth(xy)

    def test_degenerate_iqr_falls_back_to_std(self):
        """Massive duplication makes IQR zero; the rule must not return 0."""
        xy = np.vstack([np.zeros((90, 2)), np.random.default_rng(0).normal(0, 1, (10, 2))])
        assert silverman_bandwidth(xy) > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            silverman_bandwidth(np.zeros((1, 2)))
        with pytest.raises(ValueError):
            silverman_bandwidth(np.zeros((10, 2)))


class TestLCV:
    def test_returns_within_bracket(self, rng):
        xy = rng.normal(0, 3, (300, 2))
        b = lcv_bandwidth(xy, b_min=0.5, b_max=5.0, iterations=10)
        assert 0.5 <= b <= 5.0

    def test_reasonable_for_gaussian_data(self, rng):
        """The LCV optimum for a Gaussian cloud lands within a small factor
        of Scott's rule (both are near-optimal there)."""
        xy = rng.normal(0, 3, (800, 2))
        b = lcv_bandwidth(xy, iterations=15)
        scott = scott_bandwidth(xy)
        assert scott / 4 <= b <= scott * 4

    def test_bimodal_prefers_smaller_than_scott(self, rng):
        """Scott over-smooths multi-modal data; LCV should pick smaller."""
        xy = np.vstack(
            [rng.normal((0, 0), 1.0, (400, 2)), rng.normal((25, 25), 1.0, (400, 2))]
        )
        b = lcv_bandwidth(xy, iterations=15)
        assert b < scott_bandwidth(xy)

    def test_deterministic(self, rng):
        xy = rng.normal(0, 3, (200, 2))
        assert lcv_bandwidth(xy, iterations=8) == lcv_bandwidth(xy, iterations=8)

    def test_subsampling_path(self, rng):
        xy = rng.normal(0, 3, (3000, 2))
        b = lcv_bandwidth(xy, iterations=6, max_points=500)
        assert b > 0

    def test_validation(self, rng):
        xy = rng.normal(0, 1, (50, 2))
        with pytest.raises(ValueError):
            lcv_bandwidth(xy[:2])
        with pytest.raises(ValueError):
            lcv_bandwidth(xy, iterations=0)
        with pytest.raises(ValueError):
            lcv_bandwidth(xy, b_min=5.0, b_max=1.0)
        with pytest.raises(ValueError, match="finite-support"):
            lcv_bandwidth(xy, kernel="gaussian")

    def test_usable_in_compute_kdv(self, rng):
        from repro import compute_kdv

        xy = rng.normal((50, 40), 5.0, (300, 2))
        b = lcv_bandwidth(xy, iterations=8)
        res = compute_kdv(xy, size=(16, 12), bandwidth=b)
        assert res.max_density() > 0


class TestResolveBandwidth:
    """Every selector name must work everywhere a bandwidth is accepted —
    the regression here was ``compute_kdv(bandwidth="silverman")`` crashing
    on ``float("silverman")`` because only ``"scott"`` was special-cased."""

    def test_selector_names_route_to_their_functions(self, rng):
        xy = rng.normal(0, 3, (400, 2))
        assert resolve_bandwidth("scott", xy) == scott_bandwidth(xy)
        assert resolve_bandwidth("silverman", xy) == silverman_bandwidth(xy)
        assert resolve_bandwidth("lcv", xy) == lcv_bandwidth(xy)
        assert set(BANDWIDTH_SELECTORS) == {"scott", "silverman", "lcv"}

    def test_numbers_pass_through(self, rng):
        xy = rng.normal(0, 3, (50, 2))
        assert resolve_bandwidth(12.5, xy) == 12.5
        assert resolve_bandwidth(np.float64(3.0), xy) == 3.0

    def test_unknown_selector_lists_the_valid_ones(self, rng):
        xy = rng.normal(0, 3, (50, 2))
        with pytest.raises(ValueError, match="scott.*silverman"):
            resolve_bandwidth("sheather-jones", xy)

    def test_bad_numbers_rejected(self, rng):
        xy = rng.normal(0, 3, (50, 2))
        for bad in (0.0, -1.0, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="positive"):
                resolve_bandwidth(bad, xy)

    @pytest.mark.parametrize("name", ["scott", "silverman", "lcv"])
    def test_compute_kdv_accepts_every_selector(self, rng, name):
        from repro import compute_kdv

        xy = rng.normal((50, 40), 5.0, (300, 2))
        res = compute_kdv(xy, size=(16, 12), bandwidth=name)
        assert res.max_density() > 0
        direct = compute_kdv(
            xy, size=(16, 12), bandwidth=resolve_bandwidth(name, xy)
        )
        np.testing.assert_array_equal(res.grid, direct.grid)

    def test_compute_kdv_unknown_selector_message(self, rng):
        from repro import compute_kdv

        xy = rng.normal(0, 3, (50, 2))
        with pytest.raises(ValueError, match="bandwidth selector"):
            compute_kdv(xy, size=(8, 6), bandwidth="sheather-jones")

    def test_stkdv_accepts_silverman(self, rng):
        from repro import PointSet
        from repro.extensions.temporal import compute_stkdv

        xy = rng.normal((50, 40), 5.0, (200, 2))
        ps = PointSet(xy, t=rng.uniform(0, 80, 200))
        res = compute_stkdv(
            ps, times=np.array([40.0]), temporal_bandwidth=20.0,
            size=(8, 6), bandwidth="silverman",
        )
        assert res.frames[0].max_density() > 0
