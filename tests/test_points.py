"""Tests for the PointSet container and its filters."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PointSet


class TestConstruction:
    def test_basic(self):
        ps = PointSet(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert len(ps) == 2
        np.testing.assert_array_equal(ps.x, [1.0, 3.0])
        np.testing.assert_array_equal(ps.y, [2.0, 4.0])

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError, match="expected an .n, 2."):
            PointSet(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            PointSet(np.zeros(4))

    def test_nonfinite_rejected(self):
        with pytest.raises(ValueError, match="finite"):
            PointSet(np.array([[np.nan, 0.0]]))
        with pytest.raises(ValueError, match="finite"):
            PointSet(np.array([[np.inf, 0.0]]))

    def test_coerces_dtype(self):
        ps = PointSet(np.array([[1, 2], [3, 4]], dtype=np.int32))
        assert ps.xy.dtype == np.float64

    def test_mismatched_time_length(self):
        with pytest.raises(ValueError, match="t must have shape"):
            PointSet(np.zeros((3, 2)), t=np.zeros(2))

    def test_mismatched_category_length(self):
        with pytest.raises(ValueError, match="category must have shape"):
            PointSet(np.zeros((3, 2)), category=np.zeros(4, dtype=int))

    def test_empty(self):
        ps = PointSet(np.empty((0, 2)))
        assert len(ps) == 0
        with pytest.raises(ValueError, match="empty"):
            ps.bounds()


class TestOperations:
    def test_bounds(self, small_points):
        xmin, ymin, xmax, ymax = small_points.bounds()
        assert xmin == small_points.x.min()
        assert ymax == small_points.y.max()

    def test_select_bool_mask(self, small_points):
        mask = small_points.x < 50.0
        sub = small_points.select(mask)
        assert len(sub) == mask.sum()
        assert sub.t is not None and len(sub.t) == len(sub)
        assert sub.category is not None and len(sub.category) == len(sub)

    def test_select_preserves_name(self, small_points):
        assert small_points.select(small_points.x < 50).name == small_points.name

    def test_filter_time_half_open(self):
        ps = PointSet(np.zeros((4, 2)), t=np.array([0.0, 1.0, 2.0, 3.0]))
        sub = ps.filter_time(1.0, 3.0)
        np.testing.assert_array_equal(sub.t, [1.0, 2.0])

    def test_filter_time_without_timestamps(self):
        with pytest.raises(ValueError, match="no timestamps"):
            PointSet(np.zeros((2, 2))).filter_time(0, 1)

    def test_filter_category(self):
        ps = PointSet(np.zeros((4, 2)), category=np.array([0, 1, 2, 1]))
        assert len(ps.filter_category(1)) == 2
        assert len(ps.filter_category(0, 2)) == 2
        assert len(ps.filter_category(9)) == 0

    def test_filter_category_without_categories(self):
        with pytest.raises(ValueError, match="no categories"):
            PointSet(np.zeros((2, 2))).filter_category(1)

    def test_sample(self, small_points):
        sub = small_points.sample(0.25, seed=7)
        assert len(sub) == round(len(small_points) * 0.25)

    def test_immutability(self, small_points):
        with pytest.raises(AttributeError):
            small_points.xy = np.zeros((1, 2))
