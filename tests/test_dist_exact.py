"""Exactness of the distributed path: sharded render == serial render, bit
for bit (satellite of the repro.dist PR).

These tests use a worker-less :class:`~repro.dist.Coordinator` so every
shard runs the graceful-degradation local path — the *same* shard planning,
task building, per-shard sweep, and merge code the socket path executes,
minus the (separately tested) transport.  That keeps the hypothesis sweep
over shard counts, kernels, weights, and RAO orientations fast enough to be
a tier-1 test while still proving the decomposition itself loses nothing.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compute_kdv
from repro.dist import Coordinator

KERNEL_NAMES = ("uniform", "epanechnikov", "quartic")


@pytest.fixture(scope="module")
def xy() -> np.ndarray:
    rng = np.random.default_rng(77)
    return rng.uniform((0.0, 0.0), (100.0, 80.0), (200, 2))


def _dist_equals_serial(xy, *, shards, weights=None, **kwargs):
    serial = compute_kdv(xy, weights=weights, **kwargs)
    coord = Coordinator(shards=shards)
    try:
        dist = compute_kdv(
            xy, weights=weights, backend="dist", coordinator=coord, **kwargs
        )
    finally:
        coord.close()
    assert np.array_equal(serial.grid, dist.grid)
    return dist


class TestDistEqualsSerial:
    @pytest.mark.parametrize("shards", (1, 2, 3, 7))
    @pytest.mark.parametrize("engine", ("python", "numpy", "numpy_batch"))
    def test_engines_and_shard_counts(self, xy, engine, shards):
        _dist_equals_serial(
            xy, shards=shards, size=(16, 12), bandwidth=9.0,
            method="slam_bucket", engine=engine,
        )

    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    def test_kernels(self, xy, kernel_name):
        _dist_equals_serial(
            xy, shards=3, size=(16, 12), kernel=kernel_name, bandwidth=9.0,
            method="slam_sort",
        )

    def test_weighted(self, xy):
        weights = np.linspace(0.5, 2.0, len(xy))
        _dist_equals_serial(
            xy, shards=4, weights=weights, size=(16, 12), bandwidth=9.0,
            method="slam_bucket",
        )

    def test_rao_column_sweep(self, xy):
        """RAO resolves orientation *before* the sweep, so the dist hook
        shards whichever axis RAO picked; a tall raster forces columns."""
        dist = _dist_equals_serial(
            xy, shards=3, size=(12, 20), bandwidth=9.0,
            method="slam_bucket_rao",
        )
        assert dist.stats.orientation == "columns"

    def test_stats_report_dist_backend(self, xy):
        dist = _dist_equals_serial(
            xy, shards=3, size=(16, 12), bandwidth=9.0, method="slam_bucket",
        )
        assert dist.stats.backend == "dist"
        assert dist.stats.blocks == 3

    def test_more_shards_than_rows_clamps(self, xy):
        _dist_equals_serial(
            xy, shards=64, size=(10, 5), bandwidth=9.0, method="slam_bucket",
        )

    @settings(max_examples=40, deadline=None)
    @given(
        shards=st.integers(1, 8),
        kernel_name=st.sampled_from(KERNEL_NAMES),
        weighted=st.booleans(),
        method=st.sampled_from(
            ("slam_sort", "slam_bucket", "slam_sort_rao", "slam_bucket_rao")
        ),
        tall=st.booleans(),
        n=st.integers(1, 150),
        seed=st.integers(0, 2**16),
    )
    def test_property_bit_identical(
        self, shards, kernel_name, weighted, method, tall, n, seed
    ):
        rng = np.random.default_rng(seed)
        xy = rng.uniform((0.0, 0.0), (100.0, 80.0), (n, 2))
        weights = rng.uniform(0.25, 4.0, n) if weighted else None
        size = (9, 14) if tall else (14, 9)  # tall flips RAO's orientation
        _dist_equals_serial(
            xy, shards=shards, weights=weights, size=size,
            kernel=kernel_name, bandwidth=11.0, method=method,
        )
