"""Tests for the dual-tree aKDE extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Raster, Region, compute_kdv
from repro.baselines.akde import akde_error_bound
from repro.baselines.akde_dual import akde_dual_grid
from repro.core.kernels import get_kernel

from .conftest import reference_grid


class TestDualTreeAKDE:
    @pytest.mark.parametrize("kernel_name", ["uniform", "epanechnikov", "quartic"])
    def test_zero_tolerance_exact(self, kernel_name, small_xy, raster):
        expected = reference_grid(small_xy, raster, kernel_name, 9.0)
        got = akde_dual_grid(
            small_xy, raster, get_kernel(kernel_name), 9.0, tolerance=0.0
        )
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)

    @pytest.mark.parametrize("tol", [1e-2, 1e-3, 1e-4])
    def test_error_within_bound(self, tol, small_xy, raster):
        expected = reference_grid(small_xy, raster, "epanechnikov", 9.0)
        got = akde_dual_grid(
            small_xy, raster, get_kernel("epanechnikov"), 9.0, tolerance=tol
        )
        bound = akde_error_bound(len(small_xy), tol)
        assert np.abs(got - expected).max() <= bound + 1e-9

    def test_gaussian_supported(self, small_xy, raster):
        expected = reference_grid(small_xy, raster, "gaussian", 9.0)
        got = akde_dual_grid(
            small_xy, raster, get_kernel("gaussian"), 9.0, tolerance=1e-4
        )
        bound = akde_error_bound(len(small_xy), 1e-4)
        assert np.abs(got - expected).max() <= bound + 1e-9

    def test_weighted_bound(self, small_xy, raster, rng):
        w = rng.uniform(0, 3, len(small_xy))
        from repro.baselines.scan import scan_grid

        expected = scan_grid(
            small_xy, raster, get_kernel("epanechnikov"), 9.0, weights=w
        )
        got = akde_dual_grid(
            small_xy, raster, get_kernel("epanechnikov"), 9.0,
            tolerance=1e-3, weights=w,
        )
        assert np.abs(got - expected).max() <= w.sum() * 1e-3 / 2 + 1e-9

    @pytest.mark.parametrize("tile_size", [1, 4, 32])
    def test_tile_size_does_not_change_exact_result(self, tile_size, small_xy, raster):
        expected = reference_grid(small_xy, raster, "epanechnikov", 9.0)
        got = akde_dual_grid(
            small_xy, raster, get_kernel("epanechnikov"), 9.0,
            tolerance=0.0, tile_size=tile_size,
        )
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)

    def test_agrees_with_single_tree_within_tolerances(self, small_xy, raster):
        from repro.baselines.akde import akde_grid

        tol = 1e-3
        single = akde_grid(small_xy, raster, get_kernel("epanechnikov"), 9.0, tolerance=tol)
        dual = akde_dual_grid(small_xy, raster, get_kernel("epanechnikov"), 9.0, tolerance=tol)
        # both are within tau*n/2 of the truth, so within tau*n of each other
        assert np.abs(single - dual).max() <= len(small_xy) * tol + 1e-9

    def test_via_api(self, small_xy):
        res = compute_kdv(
            small_xy, size=(12, 9), bandwidth=12.0, method="akde_dual", tolerance=0.0
        )
        assert not res.exact  # registered as approximate despite tol=0 here
        ref = compute_kdv(small_xy, size=(12, 9), bandwidth=12.0, method="scan")
        np.testing.assert_allclose(res.grid, ref.grid, rtol=1e-9, atol=1e-11)

    def test_empty(self, raster):
        got = akde_dual_grid(
            np.empty((0, 2)), raster, get_kernel("epanechnikov"), 5.0
        )
        assert np.all(got == 0)

    def test_validation(self, small_xy, raster):
        kernel = get_kernel("epanechnikov")
        with pytest.raises(ValueError, match="bandwidth"):
            akde_dual_grid(small_xy, raster, kernel, 0.0)
        with pytest.raises(ValueError, match="tolerance"):
            akde_dual_grid(small_xy, raster, kernel, 9.0, tolerance=-1.0)
        with pytest.raises(ValueError, match="tile_size"):
            akde_dual_grid(small_xy, raster, kernel, 9.0, tile_size=0)
        with pytest.raises(ValueError, match="weights"):
            akde_dual_grid(small_xy, raster, kernel, 9.0, weights=np.ones(2))

    def test_single_pixel_raster(self, small_xy, region):
        raster = Raster(region, 1, 1)
        expected = reference_grid(small_xy, raster, "epanechnikov", 25.0)
        got = akde_dual_grid(
            small_xy, raster, get_kernel("epanechnikov"), 25.0, tolerance=0.0
        )
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        b=st.floats(0.5, 25.0),
        tol=st.floats(0.0, 0.05),
    )
    def test_bound_property(self, seed, b, tol):
        gen = np.random.default_rng(seed)
        xy = gen.uniform((0, 0), (20, 15), (80, 2))
        raster = Raster(Region(0, 0, 20, 15), 11, 6)
        expected = reference_grid(xy, raster, "quartic", b)
        got = akde_dual_grid(xy, raster, get_kernel("quartic"), b, tolerance=tol)
        assert np.abs(got - expected).max() <= akde_error_bound(80, tol) + 1e-8
