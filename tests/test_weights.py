"""Tests for weighted KDV support across all methods.

Weighted density ``F(q) = sum_p w_p K(q, p)`` (e.g. severity-weighted
accidents) decomposes into the same aggregates with channels scaled per
point, so every exact method must stay exact under weighting.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import EXACT_METHODS, PointSet, Raster, Region, compute_kdv
from repro.core.kernels import get_kernel


@pytest.fixture
def weights(rng, small_xy):
    return rng.uniform(0.0, 4.0, len(small_xy))


def weighted_reference(xy, raster, kernel_name, bandwidth, weights):
    kernel = get_kernel(kernel_name)
    xs = raster.x_centers()
    ys = raster.y_centers()
    grid = np.zeros(raster.shape)
    for j, k in enumerate(ys):
        for i, qx in enumerate(xs):
            d_sq = (xy[:, 0] - qx) ** 2 + (xy[:, 1] - k) ** 2
            grid[j, i] = (weights * kernel.evaluate(d_sq, bandwidth)).sum()
    return grid


class TestWeightedExactness:
    @pytest.mark.parametrize("method", EXACT_METHODS)
    @pytest.mark.parametrize("kernel_name", ["uniform", "epanechnikov", "quartic"])
    def test_matches_weighted_reference(
        self, method, kernel_name, small_xy, raster, weights
    ):
        expected = weighted_reference(small_xy, raster, kernel_name, 9.0, weights)
        got = compute_kdv(
            small_xy,
            region=raster.region,
            size=(raster.width, raster.height),
            kernel=kernel_name,
            bandwidth=9.0,
            method=method,
            weights=weights,
            normalization="none",
        ).grid
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)

    def test_unit_weights_equal_unweighted(self, small_xy, raster):
        unweighted = compute_kdv(
            small_xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, normalization="none",
        ).grid
        weighted = compute_kdv(
            small_xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, weights=np.ones(len(small_xy)), normalization="none",
        ).grid
        np.testing.assert_allclose(weighted, unweighted, rtol=1e-12)

    def test_weights_linear(self, small_xy, raster, weights):
        """F is linear in the weights: doubling weights doubles the grid."""
        base = compute_kdv(
            small_xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, weights=weights, normalization="none",
        ).grid
        doubled = compute_kdv(
            small_xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, weights=2 * weights, normalization="none",
        ).grid
        np.testing.assert_allclose(doubled, 2 * base, rtol=1e-12)

    def test_zero_weight_points_invisible(self, raster, rng):
        xy = rng.uniform((0, 0), (100, 80), (100, 2))
        w = np.ones(100)
        w[50:] = 0.0
        with_zeros = compute_kdv(
            xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, weights=w, normalization="none",
        ).grid
        only_first = compute_kdv(
            xy[:50], region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, normalization="none",
        ).grid
        np.testing.assert_allclose(with_zeros, only_first, rtol=1e-10, atol=1e-12)

    def test_superposition(self, raster, rng):
        """A weight-2 point equals two coincident weight-1 points."""
        xy = rng.uniform((20, 20), (80, 60), (30, 2))
        doubled = compute_kdv(
            xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=12.0, weights=np.full(30, 2.0), normalization="none",
        ).grid
        stacked = compute_kdv(
            np.vstack([xy, xy]), region=raster.region,
            size=(raster.width, raster.height), bandwidth=12.0,
            normalization="none",
        ).grid
        np.testing.assert_allclose(doubled, stacked, rtol=1e-10, atol=1e-12)


class TestWeightedApproximate:
    def test_akde_weighted_bound(self, small_xy, raster, weights):
        expected = weighted_reference(small_xy, raster, "epanechnikov", 9.0, weights)
        got = compute_kdv(
            small_xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, method="akde", weights=weights, tolerance=1e-3,
            normalization="none",
        ).grid
        bound = weights.sum() * 1e-3 / 2
        assert np.abs(got - expected).max() <= bound + 1e-9

    def test_zorder_full_sample_weighted_exact(self, small_xy, raster, weights):
        expected = weighted_reference(small_xy, raster, "epanechnikov", 9.0, weights)
        got = compute_kdv(
            small_xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, method="zorder", weights=weights,
            sample_size=len(small_xy), normalization="none",
        ).grid
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_zorder_all_zero_weights(self, small_xy, raster):
        got = compute_kdv(
            small_xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, method="zorder", weights=np.zeros(len(small_xy)),
            sample_size=10, normalization="none",
        ).grid
        assert np.all(got == 0)


class TestWeightedAPI:
    def test_pointset_weights_used_by_default(self, rng, raster):
        xy = rng.uniform((0, 0), (100, 80), (50, 2))
        w = rng.uniform(0, 3, 50)
        ps = PointSet(xy, w=w)
        via_pointset = compute_kdv(
            ps, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, normalization="none",
        ).grid
        via_arg = compute_kdv(
            xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, weights=w, normalization="none",
        ).grid
        np.testing.assert_allclose(via_pointset, via_arg, rtol=1e-12)

    def test_explicit_weights_override_pointset(self, rng, raster):
        xy = rng.uniform((0, 0), (100, 80), (50, 2))
        ps = PointSet(xy, w=rng.uniform(1, 3, 50))
        override = compute_kdv(
            ps, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, weights=np.ones(50), normalization="none",
        ).grid
        plain = compute_kdv(
            xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, normalization="none",
        ).grid
        np.testing.assert_allclose(override, plain, rtol=1e-12)

    def test_count_normalization_uses_total_mass(self, rng, raster):
        xy = rng.uniform((0, 0), (100, 80), (50, 2))
        w = rng.uniform(1, 3, 50)
        raw = compute_kdv(
            xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, weights=w, normalization="none",
        ).grid
        normalized = compute_kdv(
            xy, region=raster.region, size=(raster.width, raster.height),
            bandwidth=9.0, weights=w, normalization="count",
        ).grid
        np.testing.assert_allclose(normalized * w.sum(), raw, rtol=1e-12)

    def test_invalid_weights_rejected(self, small_xy, raster):
        with pytest.raises(ValueError, match="weights must have shape"):
            compute_kdv(small_xy, size=(8, 8), bandwidth=9.0, weights=np.ones(3))
        with pytest.raises(ValueError, match="finite and non-negative"):
            compute_kdv(
                small_xy, size=(8, 8), bandwidth=9.0,
                weights=-np.ones(len(small_xy)),
            )

    def test_pointset_validates_weights(self, rng):
        xy = rng.uniform(0, 1, (5, 2))
        with pytest.raises(ValueError, match="w must have shape"):
            PointSet(xy, w=np.ones(4))
        with pytest.raises(ValueError, match="finite and non-negative"):
            PointSet(xy, w=np.array([1.0, 2.0, -1.0, 0.0, 1.0]))

    def test_total_weight(self, rng):
        xy = rng.uniform(0, 1, (5, 2))
        assert PointSet(xy).total_weight() == 5.0
        assert PointSet(xy, w=np.full(5, 0.5)).total_weight() == pytest.approx(2.5)

    def test_select_carries_weights(self, rng):
        xy = rng.uniform(0, 1, (10, 2))
        ps = PointSet(xy, w=np.arange(10, dtype=float))
        sub = ps.select(np.array([1, 3, 5]))
        np.testing.assert_array_equal(sub.w, [1.0, 3.0, 5.0])


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), b=st.floats(0.5, 30.0))
def test_weighted_slam_property(seed, b):
    gen = np.random.default_rng(seed)
    xy = gen.uniform((0, 0), (20, 15), (40, 2))
    w = gen.uniform(0, 3, 40)
    raster = Raster(Region(0, 0, 20, 15), 9, 7)
    expected = weighted_reference(xy, raster, "epanechnikov", b, w)
    got = compute_kdv(
        xy, region=raster.region, size=(9, 7), bandwidth=b,
        method="slam_bucket_rao", weights=w, normalization="none",
    ).grid
    scale = max(expected.max(), 1.0)
    np.testing.assert_allclose(got / scale, expected / scale, atol=1e-9)
