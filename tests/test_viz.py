"""Tests for bandwidth selection, colormaps, image writers, and previews."""

from __future__ import annotations

import numpy as np
import pytest

from repro.viz.bandwidth import scaled_bandwidth, scott_bandwidth
from repro.viz.colormap import COLORMAPS, apply_colormap, normalize_grid
from repro.viz.image import ascii_preview, write_pgm, write_ppm


class TestScottBandwidth:
    def test_formula(self, rng):
        xy = rng.normal(0, 10, (1000, 2))
        expected = 1000 ** (-1 / 6) * np.sqrt(
            (np.var(xy[:, 0]) + np.var(xy[:, 1])) / 2
        )
        assert scott_bandwidth(xy) == pytest.approx(expected)

    def test_scale_invariance(self, rng):
        """Scott's bandwidth scales linearly with the data's spread."""
        xy = rng.normal(0, 1, (500, 2))
        assert scott_bandwidth(xy * 10) == pytest.approx(10 * scott_bandwidth(xy))

    def test_shrinks_with_n(self, rng):
        xy = rng.normal(0, 5, (4000, 2))
        assert scott_bandwidth(xy) < scott_bandwidth(xy[:100]) * 1.2

    def test_needs_two_points(self):
        with pytest.raises(ValueError, match="at least 2"):
            scott_bandwidth(np.zeros((1, 2)))

    def test_coincident_points(self):
        with pytest.raises(ValueError, match="coincident"):
            scott_bandwidth(np.zeros((10, 2)))

    def test_scaled_bandwidth(self, rng):
        xy = rng.normal(0, 5, (200, 2))
        assert scaled_bandwidth(xy, 2.0) == pytest.approx(2 * scott_bandwidth(xy))
        with pytest.raises(ValueError):
            scaled_bandwidth(xy, 0.0)


class TestNormalizeGrid:
    def test_range(self, rng):
        grid = rng.uniform(0, 7, (20, 30))
        norm = normalize_grid(grid)
        assert norm.min() >= 0.0 and norm.max() <= 1.0

    def test_clipping_tames_outlier(self):
        grid = np.ones((30, 30))
        grid[0, 0] = 1e9  # one outlier among 900 cells, beyond the 99.5th pct
        norm = normalize_grid(grid)
        # the bulk of the map keeps contrast despite the outlier
        assert norm[5, 5] == pytest.approx(1.0)

    def test_all_zero(self):
        assert np.all(normalize_grid(np.zeros((4, 4))) == 0.0)

    def test_empty(self):
        assert normalize_grid(np.zeros((0, 0))).shape == (0, 0)


class TestColormap:
    def test_known_maps(self):
        assert {"heat", "viridis", "gray"} <= set(COLORMAPS)

    def test_output_shape_dtype(self, rng):
        grid = rng.uniform(0, 3, (8, 9))
        img = apply_colormap(grid, "heat")
        assert img.shape == (8, 9, 3)
        assert img.dtype == np.uint8

    def test_zero_maps_to_first_stop(self):
        img = apply_colormap(np.zeros((2, 2)), "gray")
        assert np.all(img == 0)

    def test_heat_low_is_light_high_is_dark_red(self):
        grid = np.array([[0.0, 100.0]])
        img = apply_colormap(grid, "heat")
        assert tuple(img[0, 0]) == (255, 255, 255)  # low density: white
        assert img[0, 1, 0] > img[0, 1, 2]  # high density: red-dominant

    def test_unknown_map(self):
        with pytest.raises(ValueError, match="unknown colormap"):
            apply_colormap(np.zeros((2, 2)), "jet")


class TestImageWriters:
    def test_ppm_layout(self, tmp_path):
        img = np.arange(2 * 3 * 3, dtype=np.uint8).reshape(2, 3, 3)
        path = tmp_path / "img.ppm"
        write_ppm(path, img)
        data = path.read_bytes()
        assert data == b"P6\n3 2\n255\n" + img.tobytes()

    def test_ppm_rejects_bad_input(self, tmp_path):
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 3, 3), dtype=np.float64))
        with pytest.raises(ValueError):
            write_ppm(tmp_path / "x.ppm", np.zeros((2, 3), dtype=np.uint8))

    def test_pgm_layout(self, tmp_path):
        img = np.arange(6, dtype=np.uint8).reshape(2, 3)
        path = tmp_path / "img.pgm"
        write_pgm(path, img)
        assert path.read_bytes() == b"P5\n3 2\n255\n" + img.tobytes()

    def test_pgm_rejects_bad_input(self, tmp_path):
        with pytest.raises(ValueError):
            write_pgm(tmp_path / "x.pgm", np.zeros((2, 3, 3), dtype=np.uint8))


class TestAsciiPreview:
    def test_dimensions(self, rng):
        text = ascii_preview(rng.uniform(0, 1, (100, 200)), width=40, height=10)
        lines = text.split("\n")
        assert len(lines) == 10
        assert all(len(line) == 40 for line in lines)

    def test_small_grid_unchanged_dims(self):
        text = ascii_preview(np.ones((3, 5)), width=40, height=10)
        lines = text.split("\n")
        assert len(lines) == 3 and len(lines[0]) == 5

    def test_peak_gets_densest_char(self):
        grid = np.zeros((5, 5))
        grid[2, 2] = 1.0
        text = ascii_preview(grid, width=5, height=5)
        assert text.split("\n")[2][2] == "@"

    def test_zero_grid_is_blank(self):
        text = ascii_preview(np.zeros((4, 4)), width=4, height=4)
        assert set(text) <= {" ", "\n"}

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            ascii_preview(np.zeros((2, 2, 2)))

    def test_empty(self):
        assert ascii_preview(np.zeros((0, 0))) == ""


class TestPNG:
    @staticmethod
    def _decode(data):
        """Minimal PNG reader (filter-0 truecolor only) for round-tripping."""
        import struct
        import zlib

        assert data[:8] == b"\x89PNG\r\n\x1a\n"
        pos, idat, dims = 8, b"", None
        while pos < len(data):
            (length,) = struct.unpack(">I", data[pos:pos + 4])
            tag = data[pos + 4:pos + 8]
            payload = data[pos + 8:pos + 8 + length]
            if tag == b"IHDR":
                width, height, depth, color = struct.unpack(">IIBB", payload[:10])
                assert (depth, color) == (8, 2)  # 8-bit truecolor
                dims = (height, width)
            elif tag == b"IDAT":
                idat += payload
            pos += 12 + length
        height, width = dims
        raw = zlib.decompress(idat)
        stride = 1 + width * 3
        rows = []
        for y in range(height):
            row = raw[y * stride:(y + 1) * stride]
            assert row[0] == 0  # filter 0 scanlines
            rows.append(np.frombuffer(row[1:], np.uint8).reshape(width, 3))
        return np.stack(rows)

    def test_round_trip(self, rng):
        from repro.viz.image import encode_png

        rgb = rng.integers(0, 256, (13, 7, 3), dtype=np.uint8)
        np.testing.assert_array_equal(self._decode(encode_png(rgb)), rgb)

    def test_write_png(self, tmp_path, rng):
        from repro.viz.image import write_png

        rgb = rng.integers(0, 256, (4, 6, 3), dtype=np.uint8)
        path = tmp_path / "tile.png"
        write_png(path, rgb)
        np.testing.assert_array_equal(self._decode(path.read_bytes()), rgb)

    def test_rejects_bad_input(self):
        from repro.viz.image import encode_png

        with pytest.raises(ValueError):
            encode_png(np.zeros((4, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            encode_png(np.zeros((4, 4, 3), dtype=np.float64))


class TestColorize:
    def test_matches_apply_colormap(self, rng):
        from repro.viz.colormap import colorize

        grid = rng.uniform(0.0, 5.0, (10, 8))
        via_colorize = colorize(normalize_grid(grid), "heat")
        np.testing.assert_array_equal(via_colorize, apply_colormap(grid, "heat"))

    def test_accepts_prenormalized_values(self):
        from repro.viz.colormap import colorize

        img = colorize(np.array([[0.0, 0.5, 1.0]]), "gray")
        assert img.shape == (1, 3, 3)
        assert img[0, 0, 0] < img[0, 1, 0] < img[0, 2, 0]

    def test_unknown_colormap(self):
        from repro.viz.colormap import colorize

        with pytest.raises(ValueError):
            colorize(np.zeros((2, 2)), "jet")
