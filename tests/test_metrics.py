"""Tests for the grid comparison metrics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.bench.metrics import (
    hotspot_jaccard,
    max_abs_error,
    peak_displacement,
    relative_linf,
    rmse,
)


class TestBasics:
    def test_identical_grids(self, rng):
        g = rng.uniform(0, 5, (10, 12))
        assert max_abs_error(g, g) == 0.0
        assert relative_linf(g, g) == 0.0
        assert rmse(g, g) == 0.0
        assert hotspot_jaccard(g, g) == 1.0
        assert peak_displacement(g, g) == 0.0

    def test_max_abs_error(self):
        a = np.zeros((2, 2))
        b = np.array([[0.0, 0.0], [0.0, 3.0]])
        assert max_abs_error(a, b) == 3.0

    def test_relative_linf(self):
        exact = np.array([[0.0, 10.0]])
        approx = np.array([[1.0, 10.0]])
        assert relative_linf(approx, exact) == pytest.approx(0.1)

    def test_relative_linf_zero_exact(self):
        zero = np.zeros((2, 2))
        assert relative_linf(zero, zero) == 0.0
        assert relative_linf(np.ones((2, 2)), zero) == math.inf

    def test_rmse(self):
        a = np.zeros((1, 4))
        b = np.full((1, 4), 2.0)
        assert rmse(a, b) == pytest.approx(2.0)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="shapes differ"):
            max_abs_error(np.zeros((2, 2)), np.zeros((3, 2)))

    def test_empty(self):
        with pytest.raises(ValueError, match="empty"):
            rmse(np.zeros((0, 0)), np.zeros((0, 0)))


class TestHotspotJaccard:
    def test_disjoint_hotspots(self):
        a = np.zeros((10, 10))
        b = np.zeros((10, 10))
        a[0, 0] = 1.0
        b[9, 9] = 1.0
        assert hotspot_jaccard(a, b, quantile=0.5) == 0.0

    def test_partial_overlap(self):
        a = np.zeros((10, 10))
        b = np.zeros((10, 10))
        a[0, 0] = a[0, 1] = 1.0
        b[0, 1] = b[0, 2] = 1.0
        assert hotspot_jaccard(a, b, quantile=0.01) == pytest.approx(1 / 3)

    def test_both_zero_grids(self):
        z = np.zeros((4, 4))
        assert hotspot_jaccard(z, z) == 1.0

    def test_quantile_validation(self, rng):
        g = rng.uniform(0, 1, (4, 4))
        with pytest.raises(ValueError):
            hotspot_jaccard(g, g, quantile=1.0)

    def test_small_noise_keeps_hotspots(self, rng):
        """Tiny perturbations should not change the detected hotspots."""
        g = rng.uniform(0, 1, (30, 30))
        g[10:13, 10:13] = 5.0
        noisy = g + rng.normal(0, 1e-6, g.shape)
        assert hotspot_jaccard(noisy, g, quantile=0.95) > 0.9


class TestPeakDisplacement:
    def test_known_displacement(self):
        a = np.zeros((5, 5))
        b = np.zeros((5, 5))
        a[0, 0] = 1.0
        b[3, 4] = 1.0
        assert peak_displacement(a, b) == pytest.approx(5.0)

    def test_exact_methods_zero_displacement(self, rng):
        from repro import Region, compute_kdv

        xy = rng.uniform((0, 0), (100, 80), (200, 2))
        region = Region(0, 0, 100, 80)
        a = compute_kdv(xy, region=region, size=(20, 16), bandwidth=10.0,
                        method="slam_bucket_rao").grid
        b = compute_kdv(xy, region=region, size=(20, 16), bandwidth=10.0,
                        method="scan").grid
        assert peak_displacement(a, b) == 0.0


class TestOnRealApproximations:
    def test_zorder_error_decreases_with_sample(self, rng):
        from repro import Region, compute_kdv

        xy = rng.uniform((0, 0), (100, 80), (2000, 2))
        region = Region(0, 0, 100, 80)
        exact = compute_kdv(xy, region=region, size=(20, 16), bandwidth=15.0).grid
        errs = []
        for m in (20, 200, 2000):
            approx = compute_kdv(
                xy, region=region, size=(20, 16), bandwidth=15.0,
                method="zorder", sample_size=m,
            ).grid
            errs.append(relative_linf(approx, exact))
        assert errs[0] > errs[1] > errs[2]
        assert errs[2] == pytest.approx(0.0, abs=1e-12)

    def test_akde_jaccard_high_at_tight_tolerance(self, rng):
        from repro import Region, compute_kdv

        xy = rng.uniform((0, 0), (100, 80), (1000, 2))
        region = Region(0, 0, 100, 80)
        exact = compute_kdv(xy, region=region, size=(20, 16), bandwidth=15.0).grid
        approx = compute_kdv(
            xy, region=region, size=(20, 16), bandwidth=15.0,
            method="akde", tolerance=1e-4,
        ).grid
        assert hotspot_jaccard(approx, exact, quantile=0.9) > 0.9
