"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PointSet, save_csv
from repro.cli import build_parser, main


@pytest.fixture
def csv_path(tmp_path, rng):
    xy = rng.uniform((0, 0), (1000, 800), (200, 2))
    path = tmp_path / "pts.csv"
    save_csv(PointSet(xy), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_size_parsing(self):
        args = build_parser().parse_args(["compute", "x.csv", "--size", "320x240"])
        assert args.size == (320, 240)

    @pytest.mark.parametrize("bad", ["320", "320x", "ax240", "0x240"])
    def test_bad_size_rejected(self, bad):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compute", "x.csv", "--size", bad])

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["compute", "x.csv", "--method", "fft"])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            build_parser().parse_args(["--version"])
        assert exc.value.code == 0


class TestCompute:
    def test_csv_to_ppm(self, csv_path, tmp_path, capsys):
        out = str(tmp_path / "map.ppm")
        code = main(["compute", csv_path, "-o", out, "--size", "32x24"])
        assert code == 0
        data = (tmp_path / "map.ppm").read_bytes()
        assert data.startswith(b"P6\n32 24\n255\n")
        assert "wrote" in capsys.readouterr().out

    def test_builtin_dataset(self, tmp_path, capsys):
        out = str(tmp_path / "map.ppm")
        code = main([
            "compute", "--dataset", "seattle", "--scale", "0.001",
            "-o", out, "--size", "16x12",
        ])
        assert code == 0
        assert (tmp_path / "map.ppm").exists()

    def test_preview_flag(self, csv_path, tmp_path, capsys):
        out = str(tmp_path / "map.ppm")
        code = main(["compute", csv_path, "-o", out, "--size", "16x12", "--preview"])
        assert code == 0
        # the ASCII preview adds many lines after the summary
        assert len(capsys.readouterr().out.split("\n")) > 5

    def test_explicit_bandwidth_and_method(self, csv_path, tmp_path, capsys):
        out = str(tmp_path / "map.ppm")
        code = main([
            "compute", csv_path, "-o", out, "--size", "16x12",
            "--bandwidth", "120", "--method", "quad", "--kernel", "quartic",
        ])
        assert code == 0
        assert "method=quad" in capsys.readouterr().out

    def test_both_sources_is_error(self, csv_path, capsys):
        code = main(["compute", csv_path, "--dataset", "seattle"])
        assert code == 2
        assert "either" in capsys.readouterr().err

    def test_neither_source_is_error(self, capsys):
        code = main(["compute"])
        assert code == 2

    def test_bad_bandwidth(self, csv_path, capsys):
        code = main(["compute", csv_path, "--bandwidth", "wide"])
        assert code == 2
        assert "bad bandwidth" in capsys.readouterr().err

    def test_empty_csv(self, tmp_path, capsys):
        path = tmp_path / "empty.csv"
        save_csv(PointSet(np.empty((0, 2))), path)
        code = main(["compute", str(path)])
        assert code == 2
        assert "empty" in capsys.readouterr().err


class TestInfoCommands:
    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "seattle" in out and "4,333,098" in out

    def test_methods(self, capsys):
        assert main(["methods"]) == 0
        out = capsys.readouterr().out
        assert "slam_bucket_rao" in out
        assert "O(min(X,Y)(max(X,Y) + n))" in out


class TestGenerate:
    def test_generate_roundtrip(self, tmp_path, capsys):
        out = str(tmp_path / "city.csv")
        code = main(["generate", "new_york", "--scale", "0.0005", "-o", out])
        assert code == 0
        from repro import load_csv

        back = load_csv(out)
        assert len(back) == round(1_499_928 * 0.0005)
        assert back.t is not None and back.category is not None

    def test_generate_seed(self, tmp_path):
        a = str(tmp_path / "a.csv")
        b = str(tmp_path / "b.csv")
        main(["generate", "seattle", "--scale", "0.0002", "--seed", "7", "-o", a])
        main(["generate", "seattle", "--scale", "0.0002", "--seed", "8", "-o", b])
        from repro import load_csv

        assert not np.array_equal(load_csv(a).xy, load_csv(b).xy)


class TestHotspotsCommand:
    def test_builtin_dataset(self, capsys):
        code = main([
            "hotspots", "--dataset", "seattle", "--scale", "0.002",
            "--size", "64x48", "--top", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "hotspot" in out
        assert "peak density" in out

    def test_csv_input(self, csv_path, capsys):
        code = main(["hotspots", csv_path, "--size", "32x24",
                     "--bandwidth", "100"])
        assert code == 0

    def test_source_validation(self, capsys):
        assert main(["hotspots"]) == 2


class TestStkdvCommand:
    def test_renders_frames(self, tmp_path, capsys):
        prefix = str(tmp_path / "frames")
        code = main([
            "stkdv", "--dataset", "seattle", "--scale", "0.001",
            "--frames", "3", "--size", "16x12", "-o", prefix,
        ])
        assert code == 0
        assert (tmp_path / "frames_0000.ppm").exists()
        assert (tmp_path / "frames_0002.ppm").exists()

    def test_requires_timestamps(self, csv_path, capsys):
        # the plain fixture CSV has no t column
        code = main(["stkdv", csv_path])
        assert code == 2
        assert "timestamps" in capsys.readouterr().err


class TestNkdvCommand:
    def test_renders_ppm(self, tmp_path, capsys):
        out = str(tmp_path / "net.ppm")
        code = main([
            "nkdv", "--dataset", "seattle", "--scale", "0.0005",
            "--grid", "6x5", "--lixel", "100", "--bandwidth", "800",
            "-o", out,
        ])
        assert code == 0
        assert (tmp_path / "net.ppm").read_bytes().startswith(b"P6\n")
        assert "lixels" in capsys.readouterr().out

    def test_csv_input(self, csv_path, tmp_path, capsys):
        out = str(tmp_path / "net.ppm")
        code = main(["nkdv", csv_path, "--grid", "4x4", "--lixel", "50",
                     "--bandwidth", "200", "-o", out])
        assert code == 0


class TestServeCommand:
    def test_parser_defaults(self):
        ns = build_parser().parse_args(["serve", "--dataset", "seattle"])
        assert ns.port == 8711
        assert ns.workers == 2
        assert ns.bandwidth == "scott"
        assert ns.max_zoom == 8
        assert not ns.allow_shutdown

    def test_bad_bandwidth_rejected(self, csv_path, capsys):
        code = main(["serve", csv_path, "--bandwidth", "nope"])
        assert code == 2
        assert "bandwidth" in capsys.readouterr().err

    def test_bad_service_config_rejected(self, csv_path, capsys):
        code = main(["serve", csv_path, "--workers", "0"])
        assert code == 2

    def test_end_to_end_over_http(self, csv_path):
        """`repro serve` binds, serves tiles and metrics, and exits cleanly
        on POST /shutdown."""
        import json
        import socket
        import threading
        import time
        import urllib.request

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        url = f"http://127.0.0.1:{port}"
        holder = {}
        thread = threading.Thread(
            target=lambda: holder.setdefault("code", main([
                "serve", csv_path, "--port", str(port), "--tile-size", "8",
                "--max-zoom", "1", "--bandwidth", "50", "--workers", "1",
                "--allow-shutdown",
            ])),
        )
        thread.start()
        try:
            deadline = time.monotonic() + 20.0
            health = None
            while time.monotonic() < deadline:
                try:
                    with urllib.request.urlopen(url + "/healthz", timeout=2.0) as r:
                        health = json.load(r)
                    break
                except OSError:
                    time.sleep(0.1)
            assert health is not None and health["status"] == "ok"
            with urllib.request.urlopen(url + "/tiles/1/0/0", timeout=30.0) as r:
                assert r.status == 200
            request = urllib.request.Request(
                url + "/shutdown", data=b"{}", method="POST"
            )
            with urllib.request.urlopen(request, timeout=10.0) as r:
                assert r.status == 200
        finally:
            thread.join(timeout=30.0)
        assert not thread.is_alive()
        assert holder["code"] == 0
