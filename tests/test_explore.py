"""Tests for the exploratory session (zoom/pan/filter, paper Figure 2 & 16)."""

from __future__ import annotations

import numpy as np
import pytest

from repro import ExplorationSession, PointSet, Region, random_pan_regions


@pytest.fixture
def session(small_points) -> ExplorationSession:
    return ExplorationSession(
        small_points, size=(16, 12), bandwidth=9.0, method="slam_bucket_rao"
    )


class TestRandomPanRegions:
    def test_count_and_size(self):
        base = Region(0.0, 0.0, 100.0, 80.0)
        regions = random_pan_regions(base, count=5, size_ratio=0.5, seed=1)
        assert len(regions) == 5
        for r in regions:
            assert r.width == pytest.approx(50.0)
            assert r.height == pytest.approx(40.0)

    def test_inside_base(self):
        base = Region(10.0, 20.0, 110.0, 100.0)
        for r in random_pan_regions(base, count=20, seed=3):
            assert r.xmin >= base.xmin and r.xmax <= base.xmax
            assert r.ymin >= base.ymin and r.ymax <= base.ymax

    def test_deterministic(self):
        base = Region(0.0, 0.0, 10.0, 10.0)
        a = random_pan_regions(base, seed=7)
        b = random_pan_regions(base, seed=7)
        assert a == b

    def test_full_ratio(self):
        base = Region(0.0, 0.0, 10.0, 10.0)
        regions = random_pan_regions(base, count=2, size_ratio=1.0)
        assert all(r == base for r in regions)

    def test_validation(self):
        base = Region(0.0, 0.0, 1.0, 1.0)
        with pytest.raises(ValueError):
            random_pan_regions(base, count=0)
        with pytest.raises(ValueError):
            random_pan_regions(base, size_ratio=0.0)


class TestSession:
    def test_initial_state(self, session, small_points):
        assert session.region == Region.from_points(small_points.xy)
        assert session.bandwidth == 9.0
        assert session.frames == []

    def test_render_records_frame(self, session):
        res = session.render()
        assert len(session.frames) == 1
        frame = session.frames[0]
        assert frame.operation == "render"
        assert frame.result is res
        assert frame.seconds >= 0.0
        assert frame.n_points == len(session.full_points)

    def test_zoom_shrinks_region(self, session):
        session.zoom(0.5)
        assert session.region.width == pytest.approx(session.base_region.width / 2)
        assert session.region.center == pytest.approx(session.base_region.center)

    def test_zoom_ratios_relative_to_base(self, session):
        session.zoom(0.5)
        session.zoom(0.25)  # not cumulative: always relative to the base MBR
        assert session.region.width == pytest.approx(session.base_region.width / 4)

    def test_pan_shifts_region(self, session):
        session.zoom(0.5)
        before = session.region
        session.pan(0.1, -0.2)
        assert session.region.xmin == pytest.approx(before.xmin + 0.1 * before.width)
        assert session.region.ymin == pytest.approx(before.ymin - 0.2 * before.height)

    def test_pan_to(self, session):
        target = Region(10.0, 10.0, 20.0, 20.0)
        session.pan_to(target)
        assert session.region == target

    def test_reset_view(self, session):
        session.zoom(0.25)
        session.reset_view()
        assert session.region == session.base_region

    def test_set_bandwidth(self, session):
        session.set_bandwidth(4.0)
        assert session.bandwidth == 4.0
        assert session.frames[-1].operation.startswith("bandwidth")
        with pytest.raises(ValueError):
            session.set_bandwidth(0.0)

    def test_filter_time(self, session):
        session.filter_time(0.0, 500.0)
        assert len(session.active_points) < len(session.full_points)
        assert np.all(session.active_points.t < 500.0)

    def test_filter_category(self, session):
        session.filter_category(1, 2)
        assert set(np.unique(session.active_points.category)) <= {1, 2}

    def test_filters_not_cumulative(self, session):
        """Each filter derives from the full dataset, as the paper's workflow
        (filter -> look -> different filter) implies."""
        session.filter_category(1)
        n_cat1 = len(session.active_points)
        session.filter_category(1, 2)
        assert len(session.active_points) > n_cat1

    def test_clear_filters(self, session):
        session.filter_category(1)
        session.clear_filters()
        assert session.active_points is session.full_points

    def test_empty_filter_raises(self, session):
        with pytest.raises(ValueError, match="matched no events"):
            session.filter_category(999)

    def test_filter_affects_density(self, session):
        full = session.render().grid
        filtered = session.filter_category(0).grid
        assert filtered.sum() != pytest.approx(full.sum())

    def test_zoomed_region_renders_same_as_direct_compute(self, session, small_points):
        from repro import compute_kdv

        res = session.zoom(0.5)
        direct = compute_kdv(
            small_points,
            region=session.base_region.scaled(0.5),
            size=(16, 12),
            bandwidth=9.0,
            method="slam_bucket_rao",
        )
        np.testing.assert_allclose(res.grid, direct.grid, rtol=1e-12)

    def test_latency_summary(self, session):
        assert session.latency_summary()["frames"] == 0
        session.render()
        session.zoom(0.5)
        summary = session.latency_summary()
        assert summary["frames"] == 2
        assert summary["min"] <= summary["mean"] <= summary["max"]
        assert session.total_seconds() >= summary["max"]

    def test_requires_points(self):
        with pytest.raises(ValueError, match="empty"):
            ExplorationSession(PointSet(np.empty((0, 2))), bandwidth=1.0)

    def test_requires_positive_bandwidth(self, small_points):
        with pytest.raises(ValueError):
            ExplorationSession(small_points, bandwidth=-1.0)

    def test_scott_default(self, small_points):
        from repro import scott_bandwidth

        s = ExplorationSession(small_points, size=(8, 6))
        assert s.bandwidth == pytest.approx(scott_bandwidth(small_points.xy))
