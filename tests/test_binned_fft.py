"""Tests for the binned FFT-convolution baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro import Raster, Region, compute_kdv
from repro.baselines.binned_fft import binned_fft_grid
from repro.bench.metrics import relative_linf
from repro.core.kernels import get_kernel

from .conftest import reference_grid


class TestExactCases:
    """Configurations where binning introduces no error at all."""

    @pytest.mark.parametrize("kernel_name", ["uniform", "epanechnikov", "quartic"])
    def test_points_on_pixel_centers(self, kernel_name):
        """Points exactly on pixel centers bin losslessly: the FFT result
        must equal direct evaluation to float precision."""
        raster = Raster(Region(0, 0, 16, 12), 16, 12)
        rng = np.random.default_rng(4)
        ix = rng.integers(0, 16, 50)
        iy = rng.integers(0, 12, 50)
        xy = np.column_stack([ix + 0.5, iy + 0.5]).astype(float)
        kernel = get_kernel(kernel_name)
        fft = binned_fft_grid(xy, raster, kernel, 3.0)
        exact = reference_grid(xy, raster, kernel_name, 3.0)
        np.testing.assert_allclose(fft, exact, rtol=1e-9, atol=1e-9)

    def test_single_point(self):
        raster = Raster(Region(0, 0, 10, 10), 10, 10)
        xy = np.array([[4.5, 6.5]])
        fft = binned_fft_grid(xy, raster, get_kernel("epanechnikov"), 2.5)
        exact = reference_grid(xy, raster, "epanechnikov", 2.5)
        np.testing.assert_allclose(fft, exact, atol=1e-12)


class TestApproximationQuality:
    @pytest.fixture(scope="class")
    def setup(self):
        rng = np.random.default_rng(5)
        xy = rng.uniform((0, 0), (1000, 800), (10_000, 2))
        region = Region(0, 0, 1000, 800)
        return xy, region

    def test_small_relative_error(self, setup):
        xy, region = setup
        raster = Raster(region, 160, 120)
        kernel = get_kernel("epanechnikov")
        fft = binned_fft_grid(xy, raster, kernel, 40.0)
        exact = reference_grid(xy, raster, "epanechnikov", 40.0)
        assert relative_linf(fft, exact) < 0.03

    def test_linear_binning_beats_nearest(self, setup):
        xy, region = setup
        raster = Raster(region, 80, 60)
        kernel = get_kernel("epanechnikov")
        exact = reference_grid(xy, raster, "epanechnikov", 40.0)
        err_linear = relative_linf(
            binned_fft_grid(xy, raster, kernel, 40.0, linear_binning=True), exact
        )
        err_nearest = relative_linf(
            binned_fft_grid(xy, raster, kernel, 40.0, linear_binning=False), exact
        )
        assert err_linear < err_nearest

    def test_error_shrinks_with_resolution(self, setup):
        xy, region = setup
        kernel = get_kernel("epanechnikov")
        errs = []
        for res in (40, 80, 160):
            raster = Raster(region, res, res * 3 // 4)
            fft = binned_fft_grid(xy, raster, kernel, 40.0)
            exact = reference_grid(xy, raster, "epanechnikov", 40.0)
            errs.append(relative_linf(fft, exact))
        assert errs[0] > errs[1] > errs[2]

    def test_gaussian_supported(self, setup):
        xy, region = setup
        raster = Raster(region, 80, 60)
        kernel = get_kernel("gaussian")
        fft = binned_fft_grid(xy, raster, kernel, 40.0)
        exact = reference_grid(xy, raster, "gaussian", 40.0)
        assert relative_linf(fft, exact) < 0.03

    def test_weighted(self, setup, rng):
        xy, region = setup
        raster = Raster(region, 80, 60)
        kernel = get_kernel("epanechnikov")
        w = rng.uniform(0, 3, len(xy))
        fft = binned_fft_grid(xy, raster, kernel, 40.0, weights=w)
        from repro.baselines.scan import scan_grid

        exact = scan_grid(xy, raster, kernel, 40.0, weights=w)
        # weighted mass concentrates more per pixel; allow a little more
        assert relative_linf(fft, exact) < 0.05

    def test_outside_points_dropped_not_piled(self, setup):
        """Points outside the raster are dropped (documented limitation) —
        the edge rows must NOT accumulate their mass."""
        region = Region(0, 0, 100, 100)
        raster = Raster(region, 20, 20)
        inside = np.full((50, 2), 50.0)
        outside = np.column_stack([np.full(500, 50.0), np.full(500, 300.0)])
        kernel = get_kernel("epanechnikov")
        fft = binned_fft_grid(np.vstack([inside, outside]), raster, kernel, 10.0)
        only_inside = binned_fft_grid(inside, raster, kernel, 10.0)
        np.testing.assert_allclose(fft, only_inside, rtol=1e-12)

    def test_nonnegative(self, setup):
        xy, region = setup
        raster = Raster(region, 64, 48)
        fft = binned_fft_grid(xy, raster, get_kernel("quartic"), 25.0)
        assert fft.min() >= 0.0


class TestAPI:
    def test_registered_as_approximate(self):
        from repro import APPROXIMATE_METHODS, method_names

        assert "binned_fft" in method_names()
        assert "binned_fft" in APPROXIMATE_METHODS

    def test_via_compute_kdv(self, rng):
        xy = rng.uniform((0, 0), (100, 80), (500, 2))
        res = compute_kdv(
            xy, size=(32, 24), bandwidth=10.0, method="binned_fft"
        )
        assert not res.exact
        exact = compute_kdv(xy, size=(32, 24), bandwidth=10.0)
        assert relative_linf(res.grid, exact.grid) < 0.1

    def test_validation(self, rng):
        raster = Raster(Region(0, 0, 10, 10), 8, 8)
        kernel = get_kernel("epanechnikov")
        with pytest.raises(ValueError):
            binned_fft_grid(np.zeros((2, 3)), raster, kernel, 1.0)
        with pytest.raises(ValueError):
            binned_fft_grid(np.zeros((2, 2)), raster, kernel, 0.0)
        with pytest.raises(ValueError):
            binned_fft_grid(np.zeros((2, 2)), raster, kernel, 1.0, weights=np.ones(3))

    def test_empty(self):
        raster = Raster(Region(0, 0, 10, 10), 8, 8)
        grid = binned_fft_grid(np.empty((0, 2)), raster, get_kernel("epanechnikov"), 1.0)
        assert np.all(grid == 0)
