"""Tests for the STR-packed R-tree and the RQS_rtree method."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import compute_kdv
from repro.baselines.rqs import rqs_rtree_grid
from repro.core.kernels import channel_values, get_kernel
from repro.index.rtree import RTree

from .conftest import reference_grid


def brute_radius(xy, qx, qy, r):
    d_sq = (xy[:, 0] - qx) ** 2 + (xy[:, 1] - qy) ** 2
    return set(np.nonzero(d_sq <= r * r)[0])


class TestStructure:
    def test_perm_is_permutation(self, small_xy):
        tree = RTree(small_xy, leaf_size=8)
        assert sorted(tree.perm) == list(range(len(small_xy)))

    def test_single_root(self, small_xy):
        tree = RTree(small_xy, leaf_size=8, fanout=4)
        # root point range covers everything
        assert tree.node_start[tree.root] == 0
        assert tree.node_end[tree.root] == len(small_xy)

    def test_children_cover_parent_range(self, small_xy):
        tree = RTree(small_xy, leaf_size=8, fanout=4)
        for node in range(tree.num_nodes):
            if tree.is_leaf(node):
                continue
            kids = list(tree.children(node))
            assert tree.node_start[node] == tree.node_start[kids[0]]
            assert tree.node_end[node] == tree.node_end[kids[-1]]
            # consecutive children tile the parent's point range
            for a, b in zip(kids, kids[1:]):
                assert tree.node_end[a] == tree.node_start[b]

    def test_child_bboxes_inside_parent(self, small_xy):
        tree = RTree(small_xy, leaf_size=8, fanout=4)
        for node in range(tree.num_nodes):
            if tree.is_leaf(node):
                continue
            pxmin, pymin, pxmax, pymax = tree.node_bbox[node]
            for child in tree.children(node):
                cxmin, cymin, cxmax, cymax = tree.node_bbox[child]
                assert cxmin >= pxmin - 1e-12 and cymin >= pymin - 1e-12
                assert cxmax <= pxmax + 1e-12 and cymax <= pymax + 1e-12

    def test_leaf_sizes(self, small_xy):
        tree = RTree(small_xy, leaf_size=8)
        for node in range(tree.num_nodes):
            if tree.is_leaf(node):
                assert tree.node_size(node) <= 8

    def test_str_order_locality(self, rng):
        """STR packing yields spatially tight leaves (small average MBR)."""
        xy = rng.uniform(0, 100, (1000, 2))
        tree = RTree(xy, leaf_size=25)
        leaf_areas = [
            (tree.node_bbox[n][2] - tree.node_bbox[n][0])
            * (tree.node_bbox[n][3] - tree.node_bbox[n][1])
            for n in range(tree.num_nodes)
            if tree.is_leaf(n)
        ]
        # 40 leaves tiling a 10,000-area square: average leaf MBR far below
        # the full region's area
        assert np.mean(leaf_areas) < 100 * 100 / 10

    def test_validation(self):
        with pytest.raises(ValueError):
            RTree(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            RTree(np.zeros((3, 2)), leaf_size=0)
        with pytest.raises(ValueError):
            RTree(np.zeros((3, 2)), fanout=1)
        with pytest.raises(ValueError):
            RTree(np.zeros((3, 2)), weights=np.ones(2))

    def test_empty(self):
        tree = RTree(np.empty((0, 2)))
        assert tree.query_radius(0.0, 0.0, 5.0).size == 0


class TestQueries:
    def test_matches_brute_force(self, small_xy, rng):
        tree = RTree(small_xy, leaf_size=8, fanout=4)
        for _ in range(20):
            qx, qy = rng.uniform(0, 100), rng.uniform(0, 80)
            r = rng.uniform(1, 40)
            assert set(tree.query_radius(qx, qy, r)) == brute_radius(
                small_xy, qx, qy, r
            )

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        n=st.integers(0, 120),
        leaf_size=st.integers(1, 24),
        fanout=st.integers(2, 9),
        r=st.floats(0.01, 25.0),
    )
    def test_query_property(self, seed, n, leaf_size, fanout, r):
        gen = np.random.default_rng(seed)
        xy = gen.integers(-8, 8, (n, 2)).astype(float)
        tree = RTree(xy, leaf_size=leaf_size, fanout=fanout)
        qx, qy = gen.uniform(-10, 10, 2)
        assert set(tree.query_radius(qx, qy, r)) == brute_radius(xy, qx, qy, r)

    def test_count_radius(self, small_xy):
        tree = RTree(small_xy, leaf_size=16)
        assert tree.count_radius(50.0, 40.0, 20.0) == len(
            brute_radius(small_xy, 50.0, 40.0, 20.0)
        )


class TestAggregates:
    @pytest.mark.parametrize("nch", [1, 4, 10])
    def test_node_aggregates(self, nch, small_xy, rng):
        w = rng.uniform(0, 2, len(small_xy))
        tree = RTree(small_xy, leaf_size=8, num_channels=nch, weights=w)
        chans = channel_values(small_xy, nch, weights=w)
        for node in range(0, tree.num_nodes, 3):
            idx = tree.perm[tree.node_start[node] : tree.node_end[node]]
            np.testing.assert_allclose(
                tree.node_agg[node], chans[idx].sum(axis=0), rtol=1e-12, atol=1e-9
            )


class TestRQSRtree:
    @pytest.mark.parametrize("kernel_name", ["uniform", "epanechnikov", "quartic"])
    def test_exact(self, kernel_name, small_xy, raster):
        expected = reference_grid(small_xy, raster, kernel_name, 9.0)
        got = rqs_rtree_grid(small_xy, raster, get_kernel(kernel_name), 9.0)
        np.testing.assert_allclose(got, expected, rtol=1e-10, atol=1e-12)

    def test_via_api(self, small_xy):
        a = compute_kdv(small_xy, size=(12, 9), bandwidth=12.0, method="rqs_rtree")
        b = compute_kdv(small_xy, size=(12, 9), bandwidth=12.0, method="scan")
        np.testing.assert_allclose(a.grid, b.grid, rtol=1e-10)
        assert a.exact

    def test_weighted(self, small_xy, raster, rng):
        w = rng.uniform(0, 3, len(small_xy))
        a = rqs_rtree_grid(small_xy, raster, get_kernel("epanechnikov"), 9.0, weights=w)
        from repro.baselines.scan import scan_grid

        b = scan_grid(small_xy, raster, get_kernel("epanechnikov"), 9.0, weights=w)
        np.testing.assert_allclose(a, b, rtol=1e-10, atol=1e-12)
