"""Tests for the cost-model scheduler (repro.dist.sched): envelope pricing,
online calibration, capacity weights, persistence, and the
allocate-then-refine planner's invariants.

The exactness story is structural — a refined plan is still a monotone row
partition fed through ``build_plan`` — so the properties here are about
balance quality (the refined pair-max never exceeds the seed's) and about
the model's predictions being sane (monotone, clamped, warm-startable).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.envelope import YSortedIndex
from repro.dist.plan import midpoint_row_bounds, plan_shards, refine_row_bounds
from repro.dist.sched import (
    CostModel,
    engine_key,
    envelope_profile,
    pairs_prefix,
    plan_shards_cost,
)


def _y_centers(height: int, ymin: float = 0.0, ymax: float = 80.0) -> np.ndarray:
    step = (ymax - ymin) / height
    return ymin + (np.arange(height) + 0.5) * step


class TestEnvelopeProfile:
    def test_matches_brute_force(self):
        rng = np.random.default_rng(9)
        xy = rng.uniform((0, 0), (100, 80), (150, 2))
        ysorted = YSortedIndex(xy)
        y_centers = _y_centers(25)
        profile = envelope_profile(ysorted, y_centers, 7.5)
        for j, yc in enumerate(y_centers):
            expected = int(np.sum(np.abs(xy[:, 1] - yc) <= 7.5))
            assert profile[j] == expected

    def test_pairs_prefix_sums_profile(self):
        rng = np.random.default_rng(10)
        ysorted = YSortedIndex(rng.uniform((0, 0), (100, 80), (80, 2)))
        y_centers = _y_centers(16)
        profile = envelope_profile(ysorted, y_centers, 11.0)
        prefix = pairs_prefix(ysorted, y_centers, 11.0)
        assert prefix[0] == 0.0
        assert prefix[-1] == profile.sum()
        for r0, r1 in ((0, 16), (3, 9), (5, 5), (15, 16)):
            assert prefix[r1] - prefix[r0] == profile[r0:r1].sum()


class TestEngineKey:
    def test_distinct_pools(self):
        assert engine_key(None) == "batch"
        assert engine_key({"kind": "batch", "max_block_bytes": 1}) == "batch"
        assert engine_key({"kind": "row", "name": "m.f"}) == "row:m.f"
        assert engine_key({"kind": "native", "threads": 4}) == "native@4"
        assert engine_key({"kind": "native"}) == "native@0"


class TestCostModel:
    def test_cold_model_predicts_none(self):
        model = CostModel()
        assert model.predict_seconds("batch", 100, 5000) is None

    def test_single_sample_enables_throughput_fallback(self):
        model = CostModel()
        model.observe("batch", "w1", rows=100, pairs=900, seconds=0.1)
        # 1000 work units in 0.1s -> a 2000-unit band predicts ~0.2s
        pred = model.predict_seconds("batch", 200, 1800)
        assert pred == pytest.approx(0.2, rel=0.3)
        # other engine pools stay cold
        assert model.predict_seconds("row:x", 100, 900) is None

    def test_fit_recovers_linear_coefficients(self):
        model = CostModel()
        rng = np.random.default_rng(4)
        c0, c1, c2 = 0.01, 2e-4, 3e-6
        for _ in range(40):
            rows = float(rng.integers(10, 500))
            pairs = float(rng.integers(100, 50_000))
            model.observe("batch", "w", rows, pairs, c0 + c1 * rows + c2 * pairs)
        pred = model.predict_seconds("batch", 300, 20_000)
        truth = c0 + c1 * 300 + c2 * 20_000
        assert pred == pytest.approx(truth, rel=0.05)
        # predictions are monotone in band size (clamped coefficients)
        assert model.predict_seconds("batch", 600, 40_000) >= pred

    def test_ignores_degenerate_samples(self):
        model = CostModel()
        model.observe("batch", "w", rows=0, pairs=100, seconds=1.0)
        model.observe("batch", "w", rows=10, pairs=100, seconds=0.0)
        assert model.predict_seconds("batch", 10, 100) is None

    def test_capacity_ranks_throttled_worker(self):
        model = CostModel()
        for _ in range(5):
            model.observe("batch", "fast", 100, 900, 0.1)
            model.observe("batch", "slow", 100, 900, 0.4)  # 4x throttled
        fast, slow = model.capacities(["fast", "slow"])
        assert fast > slow
        assert slow == pytest.approx(fast / 4.0, rel=0.2)
        # worker-relative prediction: the slow worker is predicted slower
        pool = model.predict_seconds("batch", 100, 900)
        assert model.predict_seconds("batch", 100, 900, worker="slow") > pool

    def test_hello_cpus_prior_before_any_sample(self):
        model = CostModel()
        model.hello("big", 16)
        model.hello("small", 4)
        big, small = model.capacities(["big", "small"])
        assert big > 1.0 > small
        assert model.capacity("unknown") == 1.0

    def test_persistence_roundtrip(self, tmp_path):
        path = str(tmp_path / "sched.json")
        model = CostModel()
        for i in range(12):
            model.observe("batch", "w1", 100 + i, 1000 + 10 * i, 0.05)
        model.hello("w1", 8)
        model.save(path)
        warm = CostModel(path)
        cold = model.predict_seconds("batch", 150, 1500)
        assert warm.predict_seconds("batch", 150, 1500) == pytest.approx(cold)
        assert warm.capacity("w1") == model.capacity("w1")

    def test_corrupt_state_file_ignored(self, tmp_path):
        path = tmp_path / "sched.json"
        path.write_text("{not json")
        model = CostModel()
        assert model.load(str(path)) is False
        assert model.predict_seconds("batch", 10, 10) is None
        assert model.load(str(tmp_path / "missing.json")) is False

    def test_row_cost_units_fallback_and_fit(self):
        model = CostModel()
        profile = np.array([10.0, 0.0, 5.0])
        # cold: pairs + 1 per row
        assert np.array_equal(
            model.row_cost_units("batch", profile), profile + 1.0
        )
        for _ in range(12):
            model.observe("batch", "w", 100, 10_000, 0.1)
        units = model.row_cost_units("batch", profile)
        assert units.shape == profile.shape
        assert np.all(units >= 0)
        # still monotone in envelope size
        assert units[0] >= units[2] >= units[1]


class TestRefineRowBounds:
    @settings(max_examples=80, deadline=None)
    @given(
        height=st.integers(2, 80),
        k=st.integers(1, 8),
        seed=st.integers(0, 2**16),
        weighted=st.booleans(),
    )
    def test_refine_never_worsens_the_weighted_max(
        self, height, k, seed, weighted
    ):
        k = min(k, height)
        rng = np.random.default_rng(seed)
        costs = rng.uniform(0.0, 10.0, height)
        prefix = np.concatenate([[0.0], np.cumsum(costs)])

        def band_cost(r0, r1):
            return float(prefix[r1] - prefix[r0])

        start = np.sort(rng.choice(np.arange(1, height), k - 1, replace=False))
        seed_bounds = [0, *map(int, start), height]
        weights = list(rng.uniform(0.5, 4.0, k)) if weighted else None

        def weighted_max(bounds):
            return max(
                band_cost(bounds[i], bounds[i + 1])
                / (weights[i] if weights else 1.0)
                for i in range(k)
            )

        bounds, moves = refine_row_bounds(
            band_cost, seed_bounds, weights=weights
        )
        # still a monotone partition with the same endpoints
        assert bounds[0] == 0 and bounds[-1] == height
        assert all(a <= b for a, b in zip(bounds, bounds[1:]))
        assert len(bounds) == k + 1
        assert weighted_max(bounds) <= weighted_max(seed_bounds) + 1e-9
        assert moves >= 0
        # deterministic: same inputs, same answer
        again, again_moves = refine_row_bounds(
            band_cost, seed_bounds, weights=weights
        )
        assert again == bounds and again_moves == moves

    def test_fixes_a_pathological_seed(self):
        # all cost in the first band; refinement must spread it
        costs = np.array([100.0, 100.0, 100.0, 100.0, 1.0, 1.0, 1.0, 1.0])
        prefix = np.concatenate([[0.0], np.cumsum(costs)])

        def band_cost(r0, r1):
            return float(prefix[r1] - prefix[r0])

        bounds, moves = refine_row_bounds(band_cost, [0, 4, 6, 8])
        assert moves > 0
        per_band = [band_cost(a, b) for a, b in zip(bounds, bounds[1:])]
        assert max(per_band) < band_cost(0, 4)


class TestPlanShardsCost:
    def _skewed(self, n=600, seed=2):
        """A Gaussian hotspot: most points in a thin y band."""
        rng = np.random.default_rng(seed)
        hot = rng.normal((50, 15), (20, 2.0), (int(n * 0.8), 2))
        cold = rng.uniform((0, 0), (100, 80), (n - len(hot), 2))
        return np.clip(np.vstack([hot, cold]), 0, (100, 80))

    def test_clamps_exactly_like_plan_shards(self):
        ysorted = YSortedIndex(np.array([[1.0, 2.0], [3.0, 4.0], [5.0, 6.0]]))
        assert len(plan_shards_cost(ysorted, _y_centers(20), 5.0, 99).plan) == 3
        assert len(plan_shards_cost(ysorted, _y_centers(2), 5.0, 99).plan) == 2

    def test_beats_rows_balance_under_skew(self):
        ysorted = YSortedIndex(self._skewed())
        y_centers = _y_centers(64)
        sp = plan_shards_cost(ysorted, y_centers, 6.0, 4)
        rows_plan = plan_shards(ysorted, y_centers, 6.0, 4, balance="rows")

        def pair_max(plan):
            return max(
                sp.band_pairs(s.row_start, s.row_stop) for s in plan
            )

        assert pair_max(sp.plan) < pair_max(rows_plan)
        assert sp.refine_moves > 0

    def test_capacity_weights_widen_fast_workers_bands(self):
        ysorted = YSortedIndex(
            np.random.default_rng(0).uniform((0, 0), (100, 80), (800, 2))
        )
        y_centers = _y_centers(64)
        flat = plan_shards_cost(ysorted, y_centers, 6.0, 2)
        tilted = plan_shards_cost(
            ysorted, y_centers, 6.0, 2, capacities=[4.0, 1.0]
        )
        assert flat.weights is None
        assert tilted.weights == (4.0, 1.0)
        costs = [
            tilted.band_cost(s.row_start, s.row_stop) for s in tilted.plan
        ]
        # the 4x band should get clearly more predicted work
        assert costs[0] > 1.5 * costs[1]

    def test_plan_is_valid_and_deterministic(self):
        xy = self._skewed(400, seed=7)
        ysorted = YSortedIndex(xy)
        y_centers = _y_centers(48)
        a = plan_shards_cost(ysorted, y_centers, 8.0, 5)
        b = plan_shards_cost(YSortedIndex(xy.copy()), y_centers.copy(), 8.0, 5)
        assert a.plan.shards == b.plan.shards
        cursor = 0
        for shard in a.plan:
            assert shard.row_start == cursor
            cursor = shard.row_stop
        assert cursor == a.plan.height

    def test_seed_matches_midpoint_split(self):
        # with a flat cost surface the refined plan equals the midpoint seed
        ysorted = YSortedIndex(
            np.random.default_rng(1).uniform((0, 0), (100, 80), (300, 2))
        )
        y_centers = _y_centers(32)
        model = CostModel()
        sp = plan_shards_cost(ysorted, y_centers, 4.0, 3, model=model)
        seed = midpoint_row_bounds(ysorted, y_centers, 3)
        got = [s.row_start for s in sp.plan] + [sp.plan.height]
        # refinement may move boundaries, but only to reduce the pair max
        def pmax(bounds):
            return max(
                sp.band_pairs(a, b) for a, b in zip(bounds, bounds[1:])
            )

        assert pmax(got) <= pmax(seed) + 1e-9
