"""Correctness tests for SLAM_SORT, SLAM_BUCKET, and RAO.

The central claim of the paper is that the sweep-line algorithms are *exact*:
they must agree with direct kernel evaluation for every pixel, kernel, and
engine.  These tests pin that down, including adversarial tie cases where
interval endpoints coincide with pixel centers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Raster, Region
from repro.core.kernels import get_kernel
from repro.core.rao import rao_orientation, with_rao
from repro.core.slam_bucket import bucket_indices, slam_bucket_grid
from repro.core.slam_sort import slam_sort_grid

from .conftest import reference_grid

KERNEL_NAMES = ("uniform", "epanechnikov", "quartic")
ENGINES = ("python", "numpy")


@pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
@pytest.mark.parametrize("engine", ENGINES)
class TestSlamExactness:
    def test_sort_matches_reference(self, kernel_name, engine, small_xy, raster):
        kernel = get_kernel(kernel_name)
        expected = reference_grid(small_xy, raster, kernel_name, 9.0)
        got = slam_sort_grid[engine](small_xy, raster, kernel, 9.0)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)

    def test_bucket_matches_reference(self, kernel_name, engine, small_xy, raster):
        kernel = get_kernel(kernel_name)
        expected = reference_grid(small_xy, raster, kernel_name, 9.0)
        got = slam_bucket_grid[engine](small_xy, raster, kernel, 9.0)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)


class TestSlamEdgeCases:
    @pytest.mark.parametrize("variant", ["sort", "bucket"])
    def test_empty_dataset(self, variant, raster):
        grid_fn = (slam_sort_grid if variant == "sort" else slam_bucket_grid)["numpy"]
        grid = grid_fn(np.empty((0, 2)), raster, get_kernel("epanechnikov"), 5.0)
        assert grid.shape == raster.shape
        assert np.all(grid == 0.0)

    @pytest.mark.parametrize("variant", ["sort", "bucket"])
    def test_single_point(self, variant, raster):
        grid_fn = (slam_sort_grid if variant == "sort" else slam_bucket_grid)["numpy"]
        xy = np.array([[50.0, 40.0]])
        grid = grid_fn(xy, raster, get_kernel("epanechnikov"), 8.0)
        expected = reference_grid(xy, raster, "epanechnikov", 8.0)
        np.testing.assert_allclose(grid, expected, atol=1e-12)

    @pytest.mark.parametrize("variant", ["sort", "bucket"])
    def test_all_points_coincident(self, variant, raster):
        grid_fn = (slam_sort_grid if variant == "sort" else slam_bucket_grid)["numpy"]
        xy = np.full((57, 2), 33.0)
        grid = grid_fn(xy, raster, get_kernel("quartic"), 12.0)
        expected = reference_grid(xy, raster, "quartic", 12.0)
        np.testing.assert_allclose(grid, expected, rtol=1e-10, atol=1e-10)

    @pytest.mark.parametrize("variant", ["sort", "bucket"])
    @pytest.mark.parametrize("engine", ENGINES)
    def test_integer_tie_coordinates(self, variant, engine):
        """Points and pixel centers on the same integer lattice: interval
        endpoints land exactly on pixel centers, exercising tie handling."""
        region = Region(0.0, 0.0, 8.0, 8.0)
        raster = Raster(region, 8, 8)  # pixel centers at 0.5, 1.5, ...
        xy = np.array(
            [[x + 0.5, y + 0.5] for x in range(8) for y in range(8)], dtype=float
        )
        grid_fn = (slam_sort_grid if variant == "sort" else slam_bucket_grid)[engine]
        for b in (1.0, 2.0, 3.0):  # integer bandwidths force LB/UB on centers
            expected = reference_grid(xy, raster, "epanechnikov", b)
            got = grid_fn(xy, raster, get_kernel("epanechnikov"), b)
            np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)

    def test_bandwidth_larger_than_region(self, small_xy, raster):
        expected = reference_grid(small_xy, raster, "epanechnikov", 500.0)
        got = slam_bucket_grid["numpy"](
            small_xy, raster, get_kernel("epanechnikov"), 500.0
        )
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_tiny_bandwidth(self, small_xy, raster):
        expected = reference_grid(small_xy, raster, "epanechnikov", 0.05)
        got = slam_bucket_grid["numpy"](
            small_xy, raster, get_kernel("epanechnikov"), 0.05
        )
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)

    def test_points_outside_region(self, raster):
        """Points outside the rendered region still contribute within b."""
        xy = np.array([[-3.0, 40.0], [103.0, 40.0], [50.0, -3.0], [50.0, 83.0]])
        expected = reference_grid(xy, raster, "epanechnikov", 10.0)
        got = slam_bucket_grid["numpy"](xy, raster, get_kernel("epanechnikov"), 10.0)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-12)
        assert expected.max() > 0  # the case is non-trivial

    @pytest.mark.parametrize("variant", ["sort", "bucket"])
    def test_invalid_bandwidth_raises(self, variant, small_xy, raster):
        grid_fn = (slam_sort_grid if variant == "sort" else slam_bucket_grid)["numpy"]
        with pytest.raises(ValueError, match="bandwidth"):
            grid_fn(small_xy, raster, get_kernel("epanechnikov"), 0.0)

    def test_gaussian_rejected(self, small_xy, raster):
        with pytest.raises(ValueError, match="aggregate decomposition"):
            slam_bucket_grid["numpy"](small_xy, raster, get_kernel("gaussian"), 5.0)

    def test_one_pixel_raster(self, small_xy, region):
        raster = Raster(region, 1, 1)
        expected = reference_grid(small_xy, raster, "epanechnikov", 20.0)
        got = slam_bucket_grid["numpy"](
            small_xy, raster, get_kernel("epanechnikov"), 20.0
        )
        np.testing.assert_allclose(got, expected, rtol=1e-9)

    def test_single_row_raster(self, small_xy, region):
        raster = Raster(region, 64, 1)
        expected = reference_grid(small_xy, raster, "quartic", 15.0)
        got = slam_sort_grid["numpy"](small_xy, raster, get_kernel("quartic"), 15.0)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)

    def test_single_column_raster(self, small_xy, region):
        raster = Raster(region, 1, 64)
        expected = reference_grid(small_xy, raster, "quartic", 15.0)
        got = slam_bucket_grid["numpy"](small_xy, raster, get_kernel("quartic"), 15.0)
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)


class TestBucketIndices:
    """The O(1) bucket assignment (Equations 19-20) against searchsorted."""

    @settings(max_examples=80, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_pixels=st.integers(1, 40),
        integer_grid=st.booleans(),
    )
    def test_matches_searchsorted(self, seed, num_pixels, integer_grid):
        r = np.random.default_rng(seed)
        x0 = r.uniform(-5, 5)
        gx = r.uniform(0.1, 3.0)
        if integer_grid:
            x0, gx = float(round(x0)), 1.0
        xs = x0 + np.arange(num_pixels) * gx
        lb = r.uniform(xs[0] - 3 * gx, xs[-1] + 3 * gx, 60)
        if integer_grid:
            lb = np.round(lb)  # force exact ties with pixel centers
        ub = lb + r.uniform(0, 5, 60)
        if integer_grid:
            ub = np.round(ub)
        enter, leave = bucket_indices(xs, lb, ub)
        np.testing.assert_array_equal(enter, np.searchsorted(xs, lb, side="left"))
        np.testing.assert_array_equal(leave, np.searchsorted(xs, ub, side="right"))

    def test_enter_before_leave(self, rng):
        xs = np.linspace(0, 10, 11)
        lb = rng.uniform(-2, 12, 50)
        ub = lb + rng.uniform(0, 4, 50)
        enter, leave = bucket_indices(xs, lb, ub)
        assert np.all(enter <= leave)

    def test_single_pixel_row(self):
        xs = np.array([5.0])
        enter, leave = bucket_indices(xs, np.array([4.0, 5.0, 6.0]), np.array([4.5, 5.0, 7.0]))
        np.testing.assert_array_equal(enter, [0, 0, 1])
        np.testing.assert_array_equal(leave, [0, 1, 1])

    @settings(max_examples=100, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_pixels=st.integers(1, 30),
        x0=st.floats(-1e6, 1e6, allow_nan=False),
        gx=st.floats(1e-3, 1e3, allow_nan=False),
    )
    def test_endpoints_exactly_on_pixel_centers(self, seed, num_pixels, x0, gx):
        """Endpoints that *are* pixel centers (no rounding slack at all) must
        still land on the searchsorted bucket."""
        r = np.random.default_rng(seed)
        xs = x0 + np.arange(num_pixels) * gx
        picks = r.integers(0, num_pixels, 40)
        lb = xs[picks]
        ub = xs[np.maximum(picks, r.integers(0, num_pixels, 40))]
        enter, leave = bucket_indices(xs, lb, ub)
        np.testing.assert_array_equal(enter, np.searchsorted(xs, lb, side="left"))
        np.testing.assert_array_equal(leave, np.searchsorted(xs, ub, side="right"))

    @settings(max_examples=100, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        num_pixels=st.integers(1, 30),
        direction=st.sampled_from([-1.0, 1.0]),
    )
    def test_sub_ulp_offsets(self, seed, num_pixels, direction):
        """Endpoints one ulp away from a pixel center: the arithmetic bucket
        can round either way, but the one-step correction must restore exact
        searchsorted semantics."""
        r = np.random.default_rng(seed)
        xs = r.uniform(-100, 100) + np.arange(num_pixels) * r.uniform(0.25, 7.0)
        centers = xs[r.integers(0, num_pixels, 50)]
        lb = np.nextafter(centers, direction * np.inf)
        ub = np.nextafter(centers + r.uniform(0, 3, 50), -direction * np.inf)
        lb, ub = np.minimum(lb, ub), np.maximum(lb, ub)
        enter, leave = bucket_indices(xs, lb, ub)
        np.testing.assert_array_equal(enter, np.searchsorted(xs, lb, side="left"))
        np.testing.assert_array_equal(leave, np.searchsorted(xs, ub, side="right"))

    @settings(max_examples=60, deadline=None)
    @given(
        seed=st.integers(0, 2**32 - 1),
        center=st.floats(-1e4, 1e4, allow_nan=False),
    )
    def test_one_pixel_row_property(self, seed, center):
        """Degenerate 1-pixel rows use the gx=1 fallback; semantics must not
        change."""
        r = np.random.default_rng(seed)
        xs = np.array([center])
        lb = center + r.uniform(-2, 2, 25)
        lb[0] = center  # force the exact-tie case every run
        ub = lb + r.uniform(0, 2, 25)
        enter, leave = bucket_indices(xs, lb, ub)
        np.testing.assert_array_equal(enter, np.searchsorted(xs, lb, side="left"))
        np.testing.assert_array_equal(leave, np.searchsorted(xs, ub, side="right"))


class TestEnginesAgree:
    @pytest.mark.parametrize("variant", ["sort", "bucket"])
    @pytest.mark.parametrize("kernel_name", KERNEL_NAMES)
    def test_python_equals_numpy(self, variant, kernel_name, small_xy, raster):
        table = slam_sort_grid if variant == "sort" else slam_bucket_grid
        kernel = get_kernel(kernel_name)
        a = table["python"](small_xy, raster, kernel, 11.0)
        b = table["numpy"](small_xy, raster, kernel, 11.0)
        # engines sum in different orders; only float round-off may differ
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-11)

    def test_sort_equals_bucket(self, small_xy, raster):
        kernel = get_kernel("epanechnikov")
        a = slam_sort_grid["numpy"](small_xy, raster, kernel, 11.0)
        b = slam_bucket_grid["numpy"](small_xy, raster, kernel, 11.0)
        np.testing.assert_allclose(a, b, rtol=1e-12, atol=1e-13)


class TestRAO:
    def test_orientation_choice(self, region):
        assert rao_orientation(Raster(region, 40, 20)) == "rows"
        assert rao_orientation(Raster(region, 20, 40)) == "columns"
        assert rao_orientation(Raster(region, 30, 30)) == "rows"  # X >= Y default

    @pytest.mark.parametrize("size", [(30, 12), (12, 30), (20, 20)])
    def test_rao_equals_base(self, size, small_xy, region):
        base = slam_bucket_grid["numpy"]
        rao = with_rao(base)
        raster = Raster(region, *size)
        kernel = get_kernel("epanechnikov")
        np.testing.assert_allclose(
            rao(small_xy, raster, kernel, 9.0),
            base(small_xy, raster, kernel, 9.0),
            rtol=1e-9,
            atol=1e-11,
        )

    def test_rao_matches_reference_tall_raster(self, small_xy, region):
        raster = Raster(region, 9, 41)
        expected = reference_grid(small_xy, raster, "quartic", 13.0)
        got = with_rao(slam_sort_grid["numpy"])(
            small_xy, raster, get_kernel("quartic"), 13.0
        )
        np.testing.assert_allclose(got, expected, rtol=1e-9, atol=1e-10)

    def test_rao_result_contiguous(self, small_xy, region):
        raster = Raster(region, 5, 17)
        out = with_rao(slam_bucket_grid["numpy"])(
            small_xy, raster, get_kernel("epanechnikov"), 9.0
        )
        assert out.flags["C_CONTIGUOUS"]
        assert out.shape == raster.shape


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    n=st.integers(0, 60),
    b=st.floats(0.2, 40.0),
    width=st.integers(1, 16),
    height=st.integers(1, 16),
    kernel_name=st.sampled_from(KERNEL_NAMES),
)
def test_slam_exactness_property(seed, n, b, width, height, kernel_name):
    """Randomized cross-check: both SLAM variants equal direct evaluation for
    arbitrary datasets, bandwidths, kernels, and raster shapes."""
    r = np.random.default_rng(seed)
    xy = r.uniform((-5.0, -5.0), (25.0, 20.0), (n, 2))
    region = Region(0.0, 0.0, 20.0, 15.0)
    raster = Raster(region, width, height)
    kernel = get_kernel(kernel_name)
    expected = reference_grid(xy, raster, kernel_name, b)
    scale = max(expected.max(), 1.0)
    for table in (slam_sort_grid, slam_bucket_grid):
        got = table["numpy"](xy, raster, kernel, b)
        np.testing.assert_allclose(got / scale, expected / scale, atol=1e-9)
