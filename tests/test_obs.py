"""Tests for the observability layer (repro.obs).

Contracts under test, mirroring docs/observability.md:

* counters/timers/spans record exactly what call sites report, thread-safely;
* ``snapshot()`` is JSON-safe and schema-tagged; ``merge()`` adds exactly;
* the no-op path allocates nothing per call (cached singletons);
* attaching a recorder never changes a computed grid, serial or parallel,
  and parallel merged counters equal the serial counts exactly.
"""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro import compute_kdv
from repro.obs import (
    NULL_RECORDER,
    RECORDER_SCHEMA,
    NullRecorder,
    Recorder,
    active,
    format_summary,
)


class TestCounter:
    def test_add_and_value(self):
        rec = Recorder()
        rec.count("a")
        rec.count("a", 4)
        assert rec.counter_value("a") == 5
        assert rec.counter("a").value == 5

    def test_unknown_counter_reads_zero(self):
        assert Recorder().counter_value("never") == 0

    def test_counter_identity(self):
        rec = Recorder()
        assert rec.counter("x") is rec.counter("x")


class TestPhaseTimer:
    def test_accumulates_totals_and_calls(self):
        rec = Recorder()
        rec.timer("p").add(0.5)
        rec.timer("p").add(1.5, calls=3)
        assert rec.phase_seconds("p") == pytest.approx(2.0)
        assert rec.timer("p").calls == 4

    def test_unknown_phase_reads_zero(self):
        assert Recorder().phase_seconds("never") == 0.0


class TestSpan:
    def test_span_feeds_phase_timer(self):
        rec = Recorder()
        with rec.span("work"):
            pass
        assert rec.phase_seconds("work") > 0.0
        assert rec.timer("work").calls == 1

    def test_spans_nest_with_depth(self):
        rec = Recorder()
        with rec.span("outer"):
            with rec.span("inner"):
                pass
        spans = rec.snapshot()["spans"]
        by_name = {s["name"]: s for s in spans}
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        # outer wall time includes the nested inner time
        assert by_name["outer"]["elapsed_s"] >= by_name["inner"]["elapsed_s"]

    def test_span_exception_still_records(self):
        rec = Recorder()
        with pytest.raises(RuntimeError):
            with rec.span("broken"):
                raise RuntimeError("boom")
        assert rec.timer("broken").calls == 1


class TestSnapshot:
    def test_schema_tag_and_shape(self):
        rec = Recorder()
        rec.count("c", 2)
        with rec.span("p"):
            pass
        snap = rec.snapshot()
        assert snap["schema"] == RECORDER_SCHEMA
        assert snap["counters"] == {"c": 2}
        assert snap["phases"]["p"]["calls"] == 1
        assert len(snap["spans"]) == 1

    def test_snapshot_is_strict_json(self):
        rec = Recorder()
        rec.count("c")
        with rec.span("p"):
            pass
        # round-trips through strict JSON (what bench reports embed)
        restored = json.loads(json.dumps(rec.snapshot(), allow_nan=False))
        assert restored["counters"] == {"c": 1}

    def test_snapshot_is_detached(self):
        rec = Recorder()
        rec.count("c")
        snap = rec.snapshot()
        rec.count("c")
        assert snap["counters"]["c"] == 1


class TestGauge:
    def test_set_and_read(self):
        rec = Recorder()
        rec.set_gauge("queue_depth", 3)
        assert rec.gauge_value("queue_depth") == 3
        rec.set_gauge("queue_depth", 0)
        assert rec.gauge_value("queue_depth") == 0
        assert rec.gauge("queue_depth").value == 0

    def test_unknown_gauge_reads_zero(self):
        assert Recorder().gauge_value("never") == 0

    def test_moves_both_directions(self):
        rec = Recorder()
        for value in (5, 2, 7.5, 1):
            rec.set_gauge("g", value)
            assert rec.gauge_value("g") == value

    def test_snapshot_carries_gauges(self):
        rec = Recorder()
        rec.set_gauge("cache_size", 12)
        snap = rec.snapshot()
        assert snap["gauges"] == {"cache_size": 12}
        json.dumps(snap)  # stays JSON-safe

    def test_merge_takes_donor_last_value(self):
        a, b = Recorder(), Recorder()
        a.set_gauge("depth", 4)
        b.set_gauge("depth", 9)
        b.set_gauge("only_b", 1)
        a.merge(b)
        # last value wins — gauges are levels, not accumulations
        assert a.gauge_value("depth") == 9
        assert a.gauge_value("only_b") == 1

    def test_null_recorder_gauges_are_noops(self):
        NULL_RECORDER.set_gauge("g", 5)
        assert NULL_RECORDER.gauge_value("g") == 0
        assert NULL_RECORDER.gauge("g") is NULL_RECORDER.gauge("other")
        assert NULL_RECORDER.snapshot()["gauges"] == {}

    def test_summary_lists_gauges(self):
        rec = Recorder()
        rec.set_gauge("serve.queue_depth", 2)
        text = rec.summary()
        assert "gauges:" in text
        assert "serve.queue_depth" in text

    def test_thread_safety(self):
        rec = Recorder()

        def writer(value):
            for _ in range(500):
                rec.set_gauge("g", value)

        threads = [threading.Thread(target=writer, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.gauge_value("g") in (0, 1, 2, 3)


class TestMerge:
    def test_merge_recorder_adds_exactly(self):
        a, b = Recorder(), Recorder()
        a.count("rows", 10)
        b.count("rows", 7)
        b.count("extra", 1)
        a.timer("sweep").add(1.0, calls=2)
        b.timer("sweep").add(0.5)
        a.merge(b)
        assert a.counter_value("rows") == 17
        assert a.counter_value("extra") == 1
        assert a.phase_seconds("sweep") == pytest.approx(1.5)
        assert a.timer("sweep").calls == 3

    def test_merge_snapshot_dict(self):
        """Process-pool workers ship snapshots, not recorder objects."""
        a, b = Recorder(), Recorder()
        b.count("rows", 3)
        with b.span("sweep"):
            pass
        a.merge(b.snapshot())
        assert a.counter_value("rows") == 3
        assert a.timer("sweep").calls == 1
        assert len(a.snapshot()["spans"]) == 1

    def test_merge_is_associative_on_counters(self):
        parts = []
        for n in (1, 2, 3):
            r = Recorder()
            r.count("x", n)
            parts.append(r.snapshot())
        left, right = Recorder(), Recorder()
        for snap in parts:
            left.merge(snap)
        for snap in reversed(parts):
            right.merge(snap)
        assert left.counter_value("x") == right.counter_value("x") == 6


class TestThreadSafety:
    def test_concurrent_counter_bumps_are_exact(self):
        rec = Recorder()
        n_threads, bumps = 8, 2_000

        def worker():
            for _ in range(bumps):
                rec.count("hits")

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.counter_value("hits") == n_threads * bumps

    def test_concurrent_timer_adds_are_exact(self):
        rec = Recorder()
        n_threads, adds = 8, 1_000

        def worker():
            for _ in range(adds):
                rec.timer("phase").add(0.001)

        threads = [threading.Thread(target=worker) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert rec.timer("phase").calls == n_threads * adds
        assert rec.phase_seconds("phase") == pytest.approx(n_threads * adds * 0.001)


class TestNullRecorder:
    def test_disabled_flag(self):
        assert NULL_RECORDER.enabled is False
        assert Recorder.enabled is True

    def test_accessors_return_cached_singletons(self):
        """The no-op path allocates nothing per call: every accessor hands
        back the same shared object regardless of the name asked for."""
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("b")
        assert NULL_RECORDER.counter("a") is NULL_RECORDER.counter("b")
        assert NULL_RECORDER.timer("a") is NULL_RECORDER.timer("b")

    def test_span_context_is_noop(self):
        span = NULL_RECORDER.span("x")
        with span as s:
            assert s is span
        assert NULL_RECORDER.phase_seconds("x") == 0.0

    def test_mutators_are_inert(self):
        NULL_RECORDER.count("c", 5)
        NULL_RECORDER.timer("t").add(1.0)
        donor = Recorder()
        donor.count("c", 5)
        NULL_RECORDER.merge(donor)
        snap = NULL_RECORDER.snapshot()
        assert snap["counters"] == {} and snap["phases"] == {}
        assert snap["schema"] == RECORDER_SCHEMA

    def test_active_normalization(self):
        rec = Recorder()
        assert active(rec) is rec
        assert active(None) is None
        assert active(NULL_RECORDER) is None
        assert active(NullRecorder()) is None


class TestFormatSummary:
    def test_empty(self):
        assert format_summary({}) == "(nothing recorded)"
        assert NULL_RECORDER.summary() == "(recording disabled)"

    def test_contents(self):
        rec = Recorder()
        rec.count("sweep.rows", 120)
        rec.timer("sweep").add(1.25, calls=3)
        text = rec.summary()
        assert "sweep.rows" in text
        assert "120" in text
        assert "3 calls" in text
        assert "phase breakdown:" in text


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(4242)
    return rng.uniform((0.0, 0.0), (100.0, 80.0), (400, 2))


class TestComputeIntegration:
    def test_collect_stats_populates_phases_and_counters(self, workload):
        result = compute_kdv(
            workload, size=(64, 48), bandwidth=10.0, collect_stats=True
        )
        assert result.recorder is not None
        assert result.stats is not None
        assert "sweep" in result.stats.phases
        assert result.stats.phases["sweep"] > 0.0
        # RAO may sweep either orientation; rows counted = swept lines
        assert result.stats.counters["sweep.rows"] in (48, 64)
        assert result.stats.counters["sweep.envelope_points"] > 0

    def test_grid_identical_with_and_without_recorder(self, workload):
        plain = compute_kdv(workload, size=(64, 48), bandwidth=10.0)
        stats = compute_kdv(
            workload, size=(64, 48), bandwidth=10.0, collect_stats=True
        )
        ext = compute_kdv(
            workload, size=(64, 48), bandwidth=10.0, recorder=Recorder()
        )
        assert np.array_equal(plain.grid, stats.grid)
        assert np.array_equal(plain.grid, ext.grid)
        assert plain.recorder is None and plain.stats.phases == {}

    def test_external_recorder_aggregates_across_calls(self, workload):
        rec = Recorder()
        for _ in range(3):
            compute_kdv(workload, size=(32, 24), bandwidth=10.0, recorder=rec)
        assert rec.timer("sweep").calls >= 3

    def test_baseline_method_records_compute_span(self, workload):
        result = compute_kdv(
            workload,
            size=(16, 12),
            bandwidth=10.0,
            method="scan",
            collect_stats=True,
        )
        # baselines have no sweep, hence no SweepStats — but the recorder
        # still carries the whole-call span
        assert result.recorder.phase_seconds("compute.scan") > 0.0
        assert result.recorder.timer("compute.scan").calls == 1

    @pytest.mark.parametrize("method", ["slam_sort", "slam_bucket_rao"])
    def test_parallel_merged_counters_equal_serial(self, workload, method):
        serial = compute_kdv(
            workload, size=(64, 48), bandwidth=10.0, method=method,
            collect_stats=True,
        )
        parallel = compute_kdv(
            workload, size=(64, 48), bandwidth=10.0, method=method,
            workers=2, backend="thread", collect_stats=True,
        )
        assert np.array_equal(serial.grid, parallel.grid)
        for name in ("sweep.rows", "sweep.envelope_points"):
            assert parallel.stats.counters[name] == serial.stats.counters[name]
        assert parallel.stats.counters["sweep.blocks"] > 1
