"""Coordinator behavior over real workers: socket parity, fault injection,
typed deadlines, graceful degradation, and clean shutdown.

Fast tests use in-thread :class:`~repro.dist.WorkerServer` instances (real
TCP sockets, one process).  The fault-injection tests spawn actual worker
*processes* via :func:`~repro.dist.launch_local_workers` so a SIGKILL is a
genuine process death, and assert the pool leaves no orphans behind.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import compute_kdv
from repro.core.batch import NumpyBatchEngine
from repro.core.slam_bucket import slam_bucket_row_numpy
from repro.core.slam_sort import slam_sort_row_python
from repro.dist import (
    Coordinator,
    DistError,
    DistTimeout,
    WorkerServer,
    engine_spec,
    launch_local_workers,
    resolve_row_engine,
)
from repro.serve import TileService


@pytest.fixture(scope="module")
def xy() -> np.ndarray:
    rng = np.random.default_rng(77)
    return rng.uniform((0.0, 0.0), (100.0, 80.0), (200, 2))


KW = dict(size=(16, 12), bandwidth=9.0, method="slam_bucket")


class TestEngineSpec:
    def test_row_engine_roundtrip(self):
        for fn in (slam_bucket_row_numpy, slam_sort_row_python):
            spec = engine_spec(fn)
            assert spec["kind"] == "row"
            assert resolve_row_engine(spec) is fn

    def test_batch_engine_roundtrip(self):
        engine = NumpyBatchEngine(max_block_bytes=1 << 16)
        spec = engine_spec(engine)
        assert spec == {"kind": "batch", "max_block_bytes": 1 << 16}
        clone = resolve_row_engine(spec)
        assert isinstance(clone, NumpyBatchEngine)
        assert clone.max_block_bytes == 1 << 16

    def test_unknown_engine_rejected(self):
        with pytest.raises(DistError, match="engine"):
            engine_spec(lambda *a, **k: None)
        with pytest.raises(DistError, match="engine"):
            resolve_row_engine({"kind": "row", "name": "no.such.engine"})


class TestSocketParity:
    """Two in-thread socket workers produce the exact serial grid."""

    @pytest.fixture()
    def workers(self):
        servers = [WorkerServer(port=0, heartbeat_s=0.2) for _ in range(2)]
        threads = [srv.start_in_thread() for srv in servers]
        yield servers
        for srv in servers:
            srv.stop()
        for thread in threads:
            thread.join(timeout=5.0)
            assert not thread.is_alive()

    @pytest.mark.parametrize("engine", ("numpy", "numpy_batch"))
    def test_bit_identical_over_sockets(self, xy, workers, engine):
        serial = compute_kdv(xy, engine=engine, **KW)
        with Coordinator([("127.0.0.1", s.port) for s in workers]) as coord:
            assert coord.connect() == 2
            dist = compute_kdv(
                xy, engine=engine, backend="dist", coordinator=coord, **KW
            )
            rec = coord.recorder
            assert np.array_equal(serial.grid, dist.grid)
            # shards really crossed the wire, none fell back to local
            assert rec.counter_value("dist.bytes_tx") > 0
            assert rec.counter_value("dist.bytes_rx") > 0
            assert rec.counter_value("dist.local_shards") == 0
            assert rec.counter_value("dist.shards") >= 2
        # workers bump tasks_done after the result frame is already on the
        # wire, so give the last increment a moment to land
        expected = rec.counter_value("dist.shards")
        deadline = time.monotonic() + 5.0
        while (
            sum(s.tasks_done for s in workers) != expected
            and time.monotonic() < deadline
        ):
            time.sleep(0.01)
        assert sum(s.tasks_done for s in workers) == expected

    def test_worker_survives_coordinator_churn(self, xy, workers):
        """A worker outlives its coordinator: disconnect, then serve again."""
        addrs = [("127.0.0.1", s.port) for s in workers]
        serial = compute_kdv(xy, **KW)
        for _ in range(2):
            with Coordinator(addrs) as coord:
                dist = compute_kdv(
                    xy, backend="dist", coordinator=coord, **KW
                )
                assert np.array_equal(serial.grid, dist.grid)

    def test_explicit_shard_count_honored(self, xy, workers):
        with Coordinator(
            [("127.0.0.1", s.port) for s in workers], shards=5
        ) as coord:
            dist = compute_kdv(xy, backend="dist", coordinator=coord, **KW)
            assert coord.recorder.counter_value("dist.shards") == 5
            assert np.array_equal(compute_kdv(xy, **KW).grid, dist.grid)


class TestGracefulDegradation:
    def test_unreachable_workers_fall_back_to_local(self, xy):
        serial = compute_kdv(xy, **KW)
        # nothing listens on this port; connect fails fast and every shard
        # runs in-process
        with Coordinator(
            [("127.0.0.1", 1)], connect_timeout_s=0.2, shards=3
        ) as coord:
            dist = compute_kdv(xy, backend="dist", coordinator=coord, **KW)
            assert np.array_equal(serial.grid, dist.grid)
            assert coord.recorder.counter_value("dist.local_shards") == 3

    def test_workerless_coordinator_is_fully_local(self, xy):
        with Coordinator(shards=4) as coord:
            dist = compute_kdv(xy, backend="dist", coordinator=coord, **KW)
            assert np.array_equal(compute_kdv(xy, **KW).grid, dist.grid)
            assert coord.recorder.counter_value("dist.local_shards") == 4
            assert coord.recorder.counter_value("dist.bytes_tx") == 0


class TestFaultInjection:
    """Real worker processes, real SIGKILL."""

    def test_kill_worker_mid_shard_retries_on_survivor(self, xy):
        serial = compute_kdv(xy, **KW)
        pool = launch_local_workers(2, delay_s=0.5)
        try:
            with Coordinator(pool.addrs) as coord:
                assert coord.connect() == 2
                victim = pool[0]
                killer = threading.Timer(0.25, victim.kill)
                killer.start()
                try:
                    dist = compute_kdv(
                        xy, backend="dist", coordinator=coord, **KW
                    )
                finally:
                    killer.cancel()
                rec = coord.recorder
                assert np.array_equal(serial.grid, dist.grid)
                assert rec.counter_value("dist.worker_deaths") >= 1
                assert rec.counter_value("dist.retries") >= 1
                assert rec.counter_value("dist.heartbeats") >= 1
                assert not victim.alive()
        finally:
            pool.shutdown()
        assert all(not w.alive() for w in pool)

    def test_deadline_expiry_raises_typed_timeout(self, xy):
        """An unresponsive worker trips DistTimeout — a typed error, not a
        hang.  ``deadline_s`` is a *liveness* deadline (heartbeats reset it),
        so the worker is launched with its heartbeat effectively disabled to
        model a wedged process."""
        pool = launch_local_workers(1, delay_s=30.0, heartbeat_s=30.0)
        try:
            with Coordinator(
                pool.addrs, deadline_s=0.3, max_retries=0, shards=1
            ) as coord:
                assert coord.connect() == 1
                start = time.monotonic()
                with pytest.raises(DistTimeout, match="timed out"):
                    compute_kdv(xy, backend="dist", coordinator=coord, **KW)
                assert time.monotonic() - start < 10.0
        finally:
            pool.shutdown()
        assert all(not w.alive() for w in pool)

    def test_shutdown_workers_terminates_processes(self, xy):
        pool = launch_local_workers(2)
        try:
            with Coordinator(pool.addrs) as coord:
                assert coord.connect() == 2
                dist = compute_kdv(xy, backend="dist", coordinator=coord, **KW)
                assert np.array_equal(compute_kdv(xy, **KW).grid, dist.grid)
                coord.shutdown_workers()
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline and any(w.alive() for w in pool):
                time.sleep(0.05)
            assert all(not w.alive() for w in pool)
        finally:
            pool.shutdown()


class TestTileServiceCoordinator:
    def test_distributed_tiles_match_local(self, xy):
        kwargs = dict(
            tile_size=16, bandwidth=20.0, method="slam_bucket",
            workers=2, max_zoom=2,
        )
        plain = TileService(xy, **kwargs)
        coord = Coordinator(shards=3)
        dist = TileService(xy, coordinator=coord, **kwargs)
        try:
            for key in ((0, 0, 0), (1, 0, 1), (1, 1, 0)):
                assert np.array_equal(dist.get_tile(*key), plain.get_tile(*key))
            counters = dist.stats()["recorder"]["counters"]
            assert counters["dist.shards"] > 0
            # repeated stats() snapshots must not double-count the coordinator
            again = dist.stats()["recorder"]["counters"]
            assert again["dist.shards"] == counters["dist.shards"]
        finally:
            plain.close()
            dist.close()
            coord.close()

    def test_coordinator_render_fn_mutually_exclusive(self, xy):
        coord = Coordinator()
        try:
            with pytest.raises(ValueError, match="mutually exclusive"):
                TileService(
                    xy, coordinator=coord, render_fn=lambda *a, **k: None
                )
            with pytest.raises(ValueError, match="SLAM method"):
                TileService(xy, coordinator=coord, method="scan")
        finally:
            coord.close()
