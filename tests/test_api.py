"""Tests for the public compute_kdv API and the KDVResult container."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    APPROXIMATE_METHODS,
    EXACT_METHODS,
    KDVResult,
    Region,
    compute_kdv,
    method_names,
)
from repro.viz.bandwidth import scott_bandwidth


class TestRegistry:
    def test_table6_methods_present(self):
        # the paper's Table 6 plus the rqs_rtree / akde_dual extensions
        assert method_names() == (
            "scan",
            "rqs_kd",
            "rqs_ball",
            "rqs_rtree",
            "zorder",
            "akde",
            "akde_dual",
            "binned_fft",
            "quad",
            "slam_sort",
            "slam_bucket",
            "slam_sort_rao",
            "slam_bucket_rao",
        )

    def test_exactness_classification(self):
        assert set(APPROXIMATE_METHODS) == {
            "zorder", "akde", "akde_dual", "binned_fft"
        }
        assert "slam_bucket_rao" in EXACT_METHODS
        assert set(EXACT_METHODS) | set(APPROXIMATE_METHODS) == set(method_names())


class TestComputeKDV:
    def test_default_method_is_paper_best(self, small_points):
        res = compute_kdv(small_points, size=(24, 18), bandwidth=9.0)
        assert res.method == "slam_bucket_rao"
        assert res.kernel == "epanechnikov"
        assert res.exact

    def test_accepts_raw_array(self, small_xy):
        res = compute_kdv(small_xy, size=(16, 12), bandwidth=9.0)
        assert res.shape == (12, 16)
        assert res.n_points == len(small_xy)

    def test_accepts_pointset(self, small_points):
        res = compute_kdv(small_points, size=(16, 12), bandwidth=9.0)
        assert res.n_points == len(small_points)

    def test_region_defaults_to_mbr(self, small_xy):
        res = compute_kdv(small_xy, size=(16, 12), bandwidth=9.0)
        assert res.raster.region.xmin == small_xy[:, 0].min()
        assert res.raster.region.ymax == small_xy[:, 1].max()

    def test_explicit_region(self, small_xy):
        region = Region(10.0, 10.0, 30.0, 30.0)
        res = compute_kdv(small_xy, region=region, size=(8, 8), bandwidth=9.0)
        assert res.raster.region == region

    def test_scott_bandwidth_default(self, small_xy):
        res = compute_kdv(small_xy, size=(8, 8))
        assert res.bandwidth == pytest.approx(scott_bandwidth(small_xy))

    def test_explicit_bandwidth(self, small_xy):
        res = compute_kdv(small_xy, size=(8, 8), bandwidth=12.5)
        assert res.bandwidth == 12.5

    @pytest.mark.parametrize("bad", [0.0, -3.0])
    def test_invalid_bandwidth(self, small_xy, bad):
        with pytest.raises(ValueError, match="bandwidth"):
            compute_kdv(small_xy, size=(8, 8), bandwidth=bad)

    def test_unknown_method(self, small_xy):
        with pytest.raises(ValueError, match="unknown method"):
            compute_kdv(small_xy, size=(8, 8), method="fft")

    def test_unknown_normalization(self, small_xy):
        with pytest.raises(ValueError, match="unknown normalization"):
            compute_kdv(small_xy, size=(8, 8), normalization="softmax")

    def test_bad_shape(self):
        with pytest.raises(ValueError, match="expected .n, 2."):
            compute_kdv(np.zeros((5, 3)), size=(8, 8), bandwidth=1.0)

    def test_empty_dataset_needs_region(self):
        with pytest.raises(ValueError, match="region is required"):
            compute_kdv(np.empty((0, 2)), size=(8, 8), bandwidth=1.0)

    def test_empty_dataset_with_region(self):
        res = compute_kdv(
            np.empty((0, 2)),
            region=Region(0, 0, 1, 1),
            size=(8, 8),
            bandwidth=1.0,
            method="slam_bucket",
        )
        assert np.all(res.grid == 0)

    @pytest.mark.parametrize("method", method_names())
    def test_every_method_runs(self, method, small_xy):
        res = compute_kdv(small_xy, size=(12, 9), bandwidth=15.0, method=method)
        assert res.shape == (9, 12)
        assert res.grid.max() > 0

    def test_all_exact_methods_agree(self, small_xy):
        grids = {
            m: compute_kdv(small_xy, size=(15, 11), bandwidth=12.0, method=m).grid
            for m in EXACT_METHODS
        }
        ref = grids["scan"]
        for m, g in grids.items():
            np.testing.assert_allclose(g, ref, rtol=1e-9, atol=1e-11, err_msg=m)

    def test_normalization_none_vs_count(self, small_xy):
        raw = compute_kdv(
            small_xy, size=(8, 8), bandwidth=9.0, normalization="none"
        ).grid
        per_count = compute_kdv(
            small_xy, size=(8, 8), bandwidth=9.0, normalization="count"
        ).grid
        np.testing.assert_allclose(per_count * len(small_xy), raw, rtol=1e-12)

    def test_normalization_density_integrates_to_one(self, rng):
        """A proper KDE must integrate to ~1 over a raster that contains all
        kernel support."""
        xy = rng.uniform((40, 30), (60, 50), (200, 2))
        region = Region(0.0, 0.0, 100.0, 80.0)
        res = compute_kdv(
            xy,
            region=region,
            size=(200, 160),
            bandwidth=5.0,
            normalization="density",
        )
        cell_area = res.raster.gx * res.raster.gy
        assert res.grid.sum() * cell_area == pytest.approx(1.0, rel=1e-3)

    def test_engine_python_dispatch(self, small_xy):
        a = compute_kdv(
            small_xy, size=(10, 8), bandwidth=9.0, method="slam_sort", engine="python"
        ).grid
        b = compute_kdv(
            small_xy, size=(10, 8), bandwidth=9.0, method="slam_sort", engine="numpy"
        ).grid
        np.testing.assert_allclose(a, b, rtol=1e-9, atol=1e-12)

    def test_method_kwargs_forwarded(self, small_xy):
        res = compute_kdv(
            small_xy, size=(10, 8), bandwidth=9.0, method="zorder", sample_size=10
        )
        assert not res.exact

    def test_gaussian_via_scan(self, small_xy):
        res = compute_kdv(
            small_xy, size=(10, 8), bandwidth=9.0, kernel="gaussian", method="scan"
        )
        assert res.grid.min() > 0  # infinite support touches every pixel

    def test_gaussian_via_slam_rejected(self, small_xy):
        with pytest.raises(ValueError, match="aggregate decomposition"):
            compute_kdv(small_xy, size=(10, 8), bandwidth=9.0, kernel="gaussian")


class TestKDVResult:
    @pytest.fixture
    def result(self, small_xy) -> KDVResult:
        return compute_kdv(small_xy, size=(20, 15), bandwidth=12.0)

    def test_grid_image_flips_rows(self, result):
        np.testing.assert_array_equal(result.grid_image(), result.grid[::-1])

    def test_max_density(self, result):
        assert result.max_density() == result.grid.max()

    def test_hotspot_pixels(self, result):
        mask = result.hotspot_pixels(quantile=0.9)
        assert mask.shape == result.grid.shape
        assert 0 < mask.sum() < mask.size
        # hotspot pixels are the densest ones
        assert result.grid[mask].min() >= result.grid[~mask].max() - 1e-12

    def test_hotspot_quantile_validation(self, result):
        with pytest.raises(ValueError):
            result.hotspot_pixels(quantile=1.5)

    def test_hotspot_empty_grid(self, small_xy):
        res = compute_kdv(
            np.empty((0, 2)),
            region=Region(0, 0, 1, 1),
            size=(4, 4),
            bandwidth=1.0,
            method="scan",
        )
        assert not res.hotspot_pixels().any()

    def test_to_image_shape(self, result):
        img = result.to_image()
        assert img.shape == result.grid.shape + (3,)
        assert img.dtype == np.uint8

    def test_save_ppm(self, result, tmp_path):
        path = tmp_path / "map.ppm"
        result.save_ppm(str(path))
        data = path.read_bytes()
        assert data.startswith(b"P6\n20 15\n255\n")
        assert len(data) == len(b"P6\n20 15\n255\n") + 20 * 15 * 3


class TestErrorPaths:
    """Hardened user-facing error paths (regression tests: each of these
    failed with a raw KeyError / deep shape error on the seed code)."""

    def test_bad_engine_lists_available(self, small_xy):
        with pytest.raises(ValueError) as excinfo:
            compute_kdv(small_xy, size=(8, 8), bandwidth=5.0,
                        method="slam_bucket", engine="typo")
        message = str(excinfo.value)
        assert "typo" in message
        assert "slam_bucket" in message
        assert "numpy" in message and "python" in message

    @pytest.mark.parametrize(
        "method", ["slam_sort", "slam_bucket", "slam_sort_rao", "slam_bucket_rao"]
    )
    def test_bad_engine_every_slam_method(self, small_xy, method):
        with pytest.raises(ValueError, match="unknown engine"):
            compute_kdv(small_xy, size=(8, 8), bandwidth=5.0,
                        method=method, engine="cuda")

    @pytest.mark.parametrize(
        "method", ["slam_bucket_rao", "slam_sort", "slam_bucket", "scan", "quad"]
    )
    def test_empty_dataset_with_region(self, method):
        res = compute_kdv(np.empty((0, 2)), region=Region(0, 0, 10, 8),
                          size=(12, 9), bandwidth=2.0, method=method)
        assert res.shape == (9, 12)
        assert np.all(res.grid == 0.0)
        assert res.n_points == 0
        assert res.method == method
        assert res.bandwidth == 2.0

    def test_empty_dataset_scott_bandwidth(self):
        # Scott's rule is undefined for n == 0; the short-circuit substitutes
        # a positive region-scaled placeholder so the result stays well-formed.
        res = compute_kdv(np.empty((0, 2)), region=Region(0, 0, 10, 8),
                          size=(6, 4))
        assert np.all(res.grid == 0.0)
        assert res.bandwidth > 0

    def test_empty_dataset_without_region_still_raises(self):
        with pytest.raises(ValueError, match="region is required"):
            compute_kdv(np.empty((0, 2)), size=(6, 4), bandwidth=1.0)

    def test_empty_pointset_with_weights(self):
        res = compute_kdv(np.empty((0, 2)), region=Region(0, 0, 5, 5),
                          size=(4, 4), bandwidth=1.0,
                          weights=np.empty(0))
        assert np.all(res.grid == 0.0)

    def test_empty_dataset_normalizations(self):
        for normalization in ("none", "count", "density"):
            res = compute_kdv(np.empty((0, 2)), region=Region(0, 0, 5, 5),
                              size=(4, 4), bandwidth=1.0,
                              normalization=normalization)
            assert np.all(res.grid == 0.0)
            assert res.normalization == normalization
