"""Parallel row-block sweep scaling: speedup at 1/2/4/8 workers.

Measures the four SLAM variants on the paper's default workload
(1280x960 pixels, 100k points) across worker counts, for both executor
backends, and reports per-cell wall time, rows/sec, and speedup relative to
the serial sweep.  The headline acceptance number is SLAM_BUCKET^(RAO) at
4 workers, which should reach >= 2x on a machine with >= 4 usable cores;
on fewer cores the table documents the (lack of) scaling honestly.

Knobs (environment variables, all optional):

``REPRO_BENCH_PARALLEL_RESOLUTION``
    Base resolution ``X`` (default 1280; ``Y = 3 X / 4`` -> 1280x960).
``REPRO_BENCH_PARALLEL_N``
    Point count (default 100_000).
``REPRO_BENCH_PARALLEL_BACKEND``
    ``process`` (default) or ``thread``.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_scaling.py -q -s
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _common import emit_json, write_report
from repro.bench.harness import format_table
from repro.core.api import METHODS, PARALLEL_METHODS
from repro.core.kernels import get_kernel
from repro.viz.region import Raster, Region

WORKER_COUNTS = (1, 2, 4, 8)
BENCH_METHODS = PARALLEL_METHODS  # slam_sort, slam_bucket, + RAO variants

_cells: dict[tuple[str, int], float] = {}
_stats: dict[tuple[str, int], dict] = {}
_STARTED = time.perf_counter()


def _resolution() -> tuple[int, int]:
    x = int(os.environ.get("REPRO_BENCH_PARALLEL_RESOLUTION", "1280"))
    return x, max(1, (x * 3) // 4)


def _num_points() -> int:
    return int(os.environ.get("REPRO_BENCH_PARALLEL_N", "100000"))


def _backend() -> str:
    return os.environ.get("REPRO_BENCH_PARALLEL_BACKEND", "process")


@pytest.fixture(scope="module")
def workload():
    """The default parallel-scaling workload: uniform-ish clustered points
    over a 1280x960 raster, Epanechnikov kernel, fixed bandwidth."""
    return _build_workload()


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _cells:
        return
    width, height = _resolution()
    headers = ["method"] + [f"w={w}" for w in WORKER_COUNTS] + [
        f"speedup@{w}" for w in WORKER_COUNTS[1:]
    ]
    rows = []
    for method in BENCH_METHODS:
        serial = _cells.get((method, 1))
        row: list = [method]
        for w in WORKER_COUNTS:
            t = _cells.get((method, w))
            row.append(f"{t:.3f}" if t is not None else "-")
        for w in WORKER_COUNTS[1:]:
            t = _cells.get((method, w))
            row.append(f"{serial / t:.2f}x" if serial and t else "-")
        rows.append(row)
    lines = [
        f"{m} w={w}: {s['blocks']} blocks, {s.get('orientation', 'rows')}, "
        f"{s['rows_per_sec']:,.0f} rows/s"
        for (m, w), s in sorted(_stats.items())
        if "rows_per_sec" in s
    ]
    title = (
        f"Parallel row-block sweep scaling, {width}x{height}, "
        f"n={_num_points():,}, backend={_backend()}, cpus={os.cpu_count()}"
    )
    text = format_table(headers, rows, title=title)
    write_report("parallel_scaling", text + "\n\n" + "\n".join(lines))
    emit_json(
        "parallel_scaling",
        _cells,
        title=title,
        key_fields=["method", "workers"],
        meta={
            "resolution": list(_resolution()),
            "n_points": _num_points(),
            "backend": _backend(),
            "cpu_count": os.cpu_count(),
            "rows_per_sec": {
                f"{m}@w={w}": s["rows_per_sec"]
                for (m, w), s in sorted(_stats.items())
                if "rows_per_sec" in s
            },
        },
        started=_STARTED,
    )


@pytest.mark.parametrize("workers", WORKER_COUNTS)
@pytest.mark.parametrize("method", BENCH_METHODS)
def test_scaling(benchmark, method, workers, workload):
    xy, raster, kernel, bandwidth = workload
    fn, _exact = METHODS[method]
    stats: dict = {}
    kwargs = {"stats": stats}
    if workers > 1:
        kwargs.update(workers=workers, backend=_backend())

    def call():
        return fn(xy, raster, kernel, bandwidth, **kwargs)

    benchmark.pedantic(call, rounds=1, iterations=1, warmup_rounds=0)
    _cells[(method, workers)] = float(benchmark.stats.stats.mean)
    _stats[(method, workers)] = stats


def _build_workload():
    width, height = _resolution()
    n = _num_points()
    rng = np.random.default_rng(20220613)
    centers = rng.uniform((0.0, 0.0), (10_000.0, 7_500.0), (32, 2))
    assignments = rng.integers(0, len(centers), n)
    xy = centers[assignments] + rng.normal(0.0, 400.0, (n, 2))
    raster = Raster(Region(0.0, 0.0, 10_000.0, 7_500.0), width, height)
    return xy, raster, get_kernel("epanechnikov"), 250.0


def main(argv: "list[str] | None" = None) -> int:
    """Script mode: run the scaling sweep directly (no pytest) with an
    attached recorder and write ``BENCH_parallel_scaling.json``::

        PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --json out/
    """
    import argparse

    from _common import json_dir
    from repro.bench.harness import time_call
    from repro.bench.report import BenchReport
    from repro.obs import Recorder

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="output directory for BENCH_parallel_scaling.json "
        "(default: benchmarks/out)",
    )
    parser.add_argument(
        "--workers",
        default=None,
        help="comma-separated worker counts (default: 1,2,4,8)",
    )
    ns = parser.parse_args(argv)
    if ns.json:
        os.environ["REPRO_BENCH_JSON"] = ns.json
    worker_counts = (
        tuple(int(w) for w in ns.workers.split(",")) if ns.workers else WORKER_COUNTS
    )

    xy, raster, kernel, bandwidth = _build_workload()
    width, height = _resolution()
    title = (
        f"Parallel row-block sweep scaling, {width}x{height}, "
        f"n={_num_points():,}, backend={_backend()}, cpus={os.cpu_count()}"
    )
    recorder = Recorder()
    report = BenchReport(
        "parallel_scaling", title=title, key_fields=["method", "workers"]
    )
    report.meta.update(
        resolution=[width, height],
        n_points=_num_points(),
        backend=_backend(),
        cpu_count=os.cpu_count(),
    )
    for method in BENCH_METHODS:
        fn, _exact = METHODS[method]
        for workers in worker_counts:
            stats: dict = {}
            kwargs = {"stats": stats, "recorder": recorder}
            if workers > 1:
                kwargs.update(workers=workers, backend=_backend())
            elapsed, _ = time_call(
                lambda: fn(xy, raster, kernel, bandwidth, **kwargs)
            )
            report.add_cell(
                (method, workers),
                elapsed,
                rows_per_sec=stats.get("rows_per_sec"),
                blocks=stats.get("blocks"),
            )
            print(
                f"{method:16s} w={workers}  {elapsed:7.3f}s  "
                f"{stats.get('rows_per_sec', 0):,.0f} rows/s"
            )
    print()
    print(recorder.summary())
    report.attach_recorder(recorder)
    path = report.write(json_dir())
    print(f"\n[bench report: {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
