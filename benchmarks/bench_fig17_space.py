"""Paper Figure 17: space consumption vs dataset size.

Theorem 4: SLAM's space complexity is O(XY + n), the same as RQS — so the
measured footprints of all methods are similar and grow linearly in n.  We
measure peak traced allocations (tracemalloc) during one KDV computation,
which captures the result grid, the indexes/buckets, and all temporaries.

The reported number is peak MiB; the shape to verify against the paper is
"all methods within a small constant factor of each other, linear in n".
"""

from __future__ import annotations

import time

import pytest

from _common import emit_json, grid_fn, skip_if_over_budget, write_report
from repro.bench.harness import TIMEOUT, format_series, measure_peak_memory
from repro.bench.workloads import SIZE_FRACTIONS, base_resolution, bench_raster
from repro.core.kernels import get_kernel
from repro.data.datasets import dataset_names
from repro.data.sampling import sample_without_replacement

FIG_METHODS = ["scan", "rqs_kd", "zorder", "quad", "slam_sort", "slam_bucket_rao"]
ALL_DATASETS = list(dataset_names())

_cells: dict[tuple[str, str, float], float] = {}
_STARTED = time.perf_counter()


@pytest.fixture(scope="session")
def samples(datasets):
    return {
        (name, fraction): sample_without_replacement(points, fraction, seed=0)
        for name, points in datasets.items()
        for fraction in SIZE_FRACTIONS
    }


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _cells:
        return
    sections = []
    for dataset in ALL_DATASETS:
        series = {
            m: [_cells.get((m, dataset, f), TIMEOUT) for f in SIZE_FRACTIONS]
            for m in FIG_METHODS
        }
        sections.append(
            format_series(
                "fraction",
                [f"{int(f * 100)}%" for f in SIZE_FRACTIONS],
                series,
                title=f"Figure 17 ({dataset}): peak memory (MiB) vs dataset size",
            )
        )
    write_report("fig17_space", "\n\n".join(sections))
    emit_json(
        "fig17_space",
        _cells,
        title="Figure 17: peak memory (MiB) vs dataset size, per dataset",
        unit="MiB",
        key_fields=["method", "dataset", "fraction"],
        started=_STARTED,
    )


@pytest.mark.parametrize("fraction", SIZE_FRACTIONS, ids=lambda f: f"{int(f*100)}pct")
@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
@pytest.mark.parametrize("method", FIG_METHODS)
def test_fig17(benchmark, samples, bandwidths, method, dataset_name, fraction):
    points = samples[(dataset_name, fraction)]
    size = base_resolution()
    skip_if_over_budget(method, size[0], size[1], len(points))
    raster = bench_raster(points, size)
    fn = grid_fn(
        method,
        points.xy,
        raster,
        get_kernel("epanechnikov"),
        bandwidths[dataset_name],
    )

    def measured():
        peak, _grid = measure_peak_memory(fn)
        return peak

    benchmark.group = f"fig17 {dataset_name}"
    # the benchmark time here includes tracemalloc overhead; the figure's
    # metric is the peak, recorded below
    peak_holder = {}

    def run():
        peak_holder["peak"] = measured()

    benchmark.pedantic(run, rounds=1, iterations=1, warmup_rounds=0)
    _cells[(method, dataset_name, fraction)] = peak_holder["peak"] / (1024 * 1024)


if __name__ == "__main__":
    from _common import pytest_script_main

    raise SystemExit(pytest_script_main(__file__))
