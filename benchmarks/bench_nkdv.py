"""Network KDV benchmarks: event-centric vs lixel-centric evaluation.

Extension benchmark (the paper's future-work item [20]): the event-centric
evaluator's cost scales with the number of events times the kernel's network
reach, while the naive lixel-centric baseline scales with the (much larger)
number of lixels — the same "evaluate only what can contribute" idea that
powers SLAM, transplanted to networks.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _common import emit_json, run_cell, write_report
from repro.bench.harness import format_table
from repro.core.kernels import get_kernel
from repro.network import Lixelization, street_grid
from repro.network.nkdv import nkdv_event_centric, nkdv_lixel_centric

_rows: list[list] = []
_STARTED = time.perf_counter()

_NET = street_grid(25, 20, spacing=120.0, removal_fraction=0.1, seed=9)
_RNG = np.random.default_rng(31)
_EVENTS = _RNG.uniform((0, 0), (24 * 120.0, 19 * 120.0), (400, 2))
_KERNEL = get_kernel("epanechnikov")
_BANDWIDTH = 360.0


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _rows:
        return
    write_report(
        "nkdv",
        format_table(
            ["evaluator", "lixel length (m)", "lixels", "seconds"],
            _rows,
            title=(
                f"NKDV: {len(_EVENTS)} events, {_NET.num_edges} road segments, "
                f"b = {_BANDWIDTH:.0f} m network distance"
            ),
        ),
    )
    emit_json(
        "nkdv",
        {(ev, length): seconds for ev, length, _lix, seconds in _rows},
        title="NKDV: event-centric vs lixel-centric evaluation",
        key_fields=["evaluator", "lixel_length_m"],
        meta={"events": len(_EVENTS), "bandwidth_m": _BANDWIDTH},
        started=_STARTED,
    )


@pytest.mark.parametrize("lixel_length", [60.0, 30.0])
@pytest.mark.parametrize("evaluator", ["event", "lixel"])
def test_nkdv(benchmark, evaluator, lixel_length):
    lixels = Lixelization(_NET, lixel_length)
    if evaluator == "lixel" and lixel_length < 60.0:
        pytest.skip("naive lixel-centric baseline only at the coarse resolution")
    edges, offsets = _NET.snap(_EVENTS)
    fn_impl = nkdv_event_centric if evaluator == "event" else nkdv_lixel_centric
    fn = lambda: fn_impl(_NET, lixels, edges, offsets, _KERNEL, _BANDWIDTH)
    benchmark.group = "nkdv"
    seconds = run_cell(benchmark, fn)
    _rows.append([evaluator, lixel_length, len(lixels), seconds])


if __name__ == "__main__":
    from _common import pytest_script_main

    raise SystemExit(pytest_script_main(__file__))
