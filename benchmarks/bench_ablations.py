"""Design-choice ablations (DESIGN.md §5) and extension benchmarks.

Not a paper artifact — these quantify the implementation decisions the
reproduction makes and the extensions it adds:

* envelope extraction: Lemma 1's O(n) scan vs the y-sorted binary search;
* kernel channel width: SLAM with 1 (uniform) / 4 (Epanechnikov) /
  10 (quartic) aggregate channels;
* RQS index choice: kd-tree vs ball tree vs STR R-tree (all O(XYn));
* single-tree vs dual-tree aKDE at equal tolerance;
* multi-bandwidth batch vs independent per-bandwidth runs;
* STKDV per-frame cost vs an equivalent standalone weighted KDV.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _common import emit_json, run_cell, write_report
from repro.bench.harness import format_table
from repro.baselines.akde import akde_grid
from repro.baselines.akde_dual import akde_dual_grid
from repro.baselines.rqs import rqs_grid
from repro.core.envelope import YSortedIndex, envelope_scan
from repro.core.kernels import get_kernel
from repro.core.slam_bucket import slam_bucket_grid
from repro.data.points import PointSet
from repro.extensions.multiband import compute_multiband
from repro.extensions.temporal import compute_stkdv
from repro.viz.region import Raster, Region

_RNG = np.random.default_rng(21)
_N = 40_000
_XY = np.column_stack([_RNG.uniform(0, 10_000, _N), _RNG.uniform(0, 8_000, _N)])
_REGION = Region(0.0, 0.0, 10_000.0, 8_000.0)
_RASTER = Raster(_REGION, 160, 120)
_B = 300.0

_times: dict[str, float] = {}
_STARTED = time.perf_counter()


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _times:
        return
    rows = [[name, seconds] for name, seconds in sorted(_times.items())]
    write_report(
        "ablations",
        format_table(["variant", "seconds"], rows, title="Design-choice ablations"),
    )
    emit_json(
        "ablations",
        _times,
        title="Design-choice ablations",
        key_fields=["variant"],
        started=_STARTED,
    )


@pytest.mark.parametrize("strategy", ["scan", "ysorted"])
def test_envelope_extraction(benchmark, strategy):
    """Lemma 1 scan vs sorted binary search, over all raster rows."""
    ys = _RASTER.y_centers()
    if strategy == "scan":
        fn = lambda: [envelope_scan(_XY, float(k), _B) for k in ys]
    else:
        index = YSortedIndex(_XY)
        fn = lambda: [index.envelope_points(float(k), _B) for k in ys]
    benchmark.group = "ablation envelope"
    _times[f"envelope_{strategy}"] = run_cell(benchmark, fn)


@pytest.mark.parametrize("kernel_name", ["uniform", "epanechnikov", "quartic"])
def test_channel_width(benchmark, kernel_name):
    """Aggregate channel count (1 / 4 / 10) overhead in SLAM_BUCKET."""
    kernel = get_kernel(kernel_name)
    fn = lambda: slam_bucket_grid["numpy"](_XY, _RASTER, kernel, _B)
    benchmark.group = "ablation channels"
    _times[f"channels_{kernel.num_channels}_{kernel_name}"] = run_cell(benchmark, fn)


@pytest.mark.parametrize("index", ["kd", "ball", "rtree"])
def test_rqs_index_choice(benchmark, index):
    """Three range-query indexes, same O(XYn) complexity class."""
    small_raster = Raster(_REGION, 48, 36)  # RQS is slow; keep the cell small
    kernel = get_kernel("epanechnikov")
    fn = lambda: rqs_grid(_XY, small_raster, kernel, _B, index=index)
    benchmark.group = "ablation rqs index"
    _times[f"rqs_{index}"] = run_cell(benchmark, fn)


@pytest.mark.parametrize("variant", ["single", "dual"])
def test_akde_single_vs_dual(benchmark, variant):
    """Gray & Moore single-tree vs dual-tree at the same tolerance."""
    kernel = get_kernel("epanechnikov")
    if variant == "single":
        fn = lambda: akde_grid(_XY, _RASTER, kernel, _B, tolerance=1e-3)
    else:
        fn = lambda: akde_dual_grid(_XY, _RASTER, kernel, _B, tolerance=1e-3)
    benchmark.group = "ablation akde"
    _times[f"akde_{variant}"] = run_cell(benchmark, fn)


@pytest.mark.parametrize("mode", ["batched", "separate"])
def test_multiband_sharing(benchmark, mode):
    """Shared y-sort across five bandwidths vs independent runs."""
    bands = [_B * r for r in (0.25, 0.5, 1.0, 2.0, 4.0)]
    kernel = get_kernel("epanechnikov")
    if mode == "batched":
        fn = lambda: compute_multiband(
            _XY, bands, region=_REGION, size=(160, 120), normalization="none"
        )
    else:
        def fn():
            for b in bands:
                slam_bucket_grid["numpy"](_XY, _RASTER, kernel, b)
    benchmark.group = "ablation multiband"
    _times[f"multiband_{mode}"] = run_cell(benchmark, fn)


def test_stkdv_frames(benchmark):
    """Eight STKDV frames: per-frame cost stays near one weighted KDV."""
    t = _RNG.uniform(0.0, 100.0, _N)
    ps = PointSet(_XY, t=t)
    fn = lambda: compute_stkdv(
        ps, times=8, region=_REGION, size=(160, 120), bandwidth=_B,
        temporal_bandwidth=20.0,
    )
    benchmark.group = "ablation stkdv"
    _times["stkdv_8_frames"] = run_cell(benchmark, fn)


def test_weighted_vs_unweighted_overhead(benchmark):
    """Per-point weights scale the channels; the overhead should be small."""
    w = _RNG.uniform(0.0, 2.0, _N)
    kernel = get_kernel("epanechnikov")
    fn = lambda: slam_bucket_grid["numpy"](_XY, _RASTER, kernel, _B, weights=w)
    benchmark.group = "ablation weights"
    _times["weighted_slam_bucket"] = run_cell(benchmark, fn)


if __name__ == "__main__":
    from _common import pytest_script_main

    raise SystemExit(pytest_script_main(__file__))
