"""Paper Figure 15: response time vs bandwidth (0.25x .. 4x Scott's rule).

The paper's observation: every method slows as b grows (more points fall
inside each pixel's range), with the range-query methods degrading fastest —
their per-query result sets grow quadratically with b — while
SLAM_BUCKET^(RAO) stays 5.8-34.8x ahead of the best competitors throughout.

The RQS budget model scales with b^2 so oversized cells skip (timeout
analog) instead of stalling the suite.
"""

from __future__ import annotations

import time

import pytest

from _common import (
    MAX_CELL_COST,
    emit_json,
    grid_fn,
    predicted_cost,
    run_cell,
    write_report,
)
from repro.bench.harness import TIMEOUT, format_series
from repro.bench.workloads import BANDWIDTH_RATIOS, base_resolution, bench_raster
from repro.core.kernels import get_kernel
from repro.data.datasets import dataset_names

FIG_METHODS = ["scan", "rqs_kd", "zorder", "quad", "slam_bucket_rao"]
ALL_DATASETS = list(dataset_names())

_cells: dict[tuple[str, str, float], float] = {}
_STARTED = time.perf_counter()


def _skip_if_over_budget(method: str, width: int, height: int, n: int, ratio: float):
    cost = predicted_cost(method, width, height, n)
    if method in ("rqs_kd", "rqs_ball", "quad"):
        cost *= max(1.0, ratio * ratio)
    if cost > MAX_CELL_COST:
        pytest.skip(
            f"{method} at b x{ratio}: predicted cost exceeds the bench budget "
            "(the paper's '> 14400 s' timeout analog)"
        )


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _cells:
        return
    sections = []
    for dataset in ALL_DATASETS:
        series = {
            m: [_cells.get((m, dataset, r), TIMEOUT) for r in BANDWIDTH_RATIOS]
            for m in FIG_METHODS
        }
        sections.append(
            format_series(
                "b ratio",
                list(BANDWIDTH_RATIOS),
                series,
                title=f"Figure 15 ({dataset}): time (s) vs bandwidth multiplier",
            )
        )
    write_report("fig15_bandwidth", "\n\n".join(sections))
    emit_json(
        "fig15_bandwidth",
        _cells,
        title="Figure 15: time (s) vs bandwidth multiplier, per dataset",
        key_fields=["method", "dataset", "bandwidth_ratio"],
        started=_STARTED,
    )


@pytest.mark.parametrize("ratio", BANDWIDTH_RATIOS, ids=lambda r: f"x{r}")
@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
@pytest.mark.parametrize("method", FIG_METHODS)
def test_fig15(benchmark, datasets, bandwidths, method, dataset_name, ratio):
    points = datasets[dataset_name]
    size = base_resolution()
    _skip_if_over_budget(method, size[0], size[1], len(points), ratio)
    raster = bench_raster(points, size)
    benchmark.group = f"fig15 {dataset_name}"
    fn = grid_fn(
        method,
        points.xy,
        raster,
        get_kernel("epanechnikov"),
        bandwidths[dataset_name] * ratio,
    )
    _cells[(method, dataset_name, ratio)] = run_cell(benchmark, fn)


if __name__ == "__main__":
    from _common import pytest_script_main

    raise SystemExit(pytest_script_main(__file__))
