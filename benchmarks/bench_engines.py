"""SLAM row-engine shootout: python vs numpy vs numpy_batch vs native.

Measures the ``slam_bucket`` engines over a grid of resolutions and
dataset sizes on the clustered benchmark workload, serial, with the y-sorted
index prebuilt outside the timed region — so each cell times exactly the
sweep the engine owns.  Every cell reports min-of-repeats wall clock and
rows/sec; the numpy-relative speedup column quantifies what the
block-vectorized engine buys.

On compiled checkouts the fused-C ``native`` engine joins the grid
(serial, plus an OpenMP ``native@<T>T`` cell when the machine has more
than one CPU — see ``docs/native.md``); fallback checkouts simply skip it.

The headline acceptance cell is ``numpy_batch`` vs ``numpy`` at 1280x960,
n = 100k, Epanechnikov, bandwidth 15 (a sharp-hotspot bandwidth, ~4 px —
the per-row-overhead-dominated regime the batch engine targets), which
should reach >= 3x.  Larger bandwidths shrink the ratio — by ~200 px-scale
bandwidths both engines are DRAM-bound on the same pair stream and the
speedup approaches 1x; ``docs/benchmarks.md`` documents that crossover.

The per-engine timings are directly comparable because the engines are
bit-identical (numpy vs numpy_batch) or float-close (python): they do the
same work, only dispatched differently.

Knobs (environment variables, all optional):

``REPRO_BENCH_ENGINES_RESOLUTIONS``
    Comma-separated base resolutions ``X`` (default ``320,1280``;
    ``Y = 3 X / 4``).
``REPRO_BENCH_ENGINES_N``
    Comma-separated point counts (default ``10000,100000``).
``REPRO_BENCH_ENGINES_BANDWIDTH``
    Bandwidth in world units (default ``15``).
``REPRO_BENCH_ENGINES_REPEATS``
    Timing repeats per cell; the minimum is reported (default ``3``).
``REPRO_BENCH_ENGINES_NATIVE_THREADS``
    OpenMP thread count for the extra ``native@<T>T`` cell (default: CPU
    count; the cell only appears when the count is > 1 and the extension
    compiled).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_engines.py -q -s

or script mode (no pytest)::

    PYTHONPATH=src python benchmarks/bench_engines.py --json out/
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _common import MAX_CELL_COST, emit_json, write_report
from repro.bench.harness import format_table
from repro.core.envelope import YSortedIndex
from repro.core.kernels import get_kernel
from repro.core.native import NATIVE_AVAILABLE
from repro.core.slam_bucket import slam_bucket_grid
from repro.viz.region import Raster, Region

ENGINES = ("python", "numpy", "numpy_batch") + (
    ("native",) if NATIVE_AVAILABLE else ()
)

#: Interpreter-overhead multiplier for the python engine's cost estimate
#: (pure-Python per-point loops vs vectorized passes), used only for the
#: budget skip that stands in for the paper's timeout.
_PYTHON_OVERHEAD = 50.0

_cells: dict[tuple[str, int, int], float] = {}
_rows_per_sec: dict[tuple[str, int, int], float] = {}
_STARTED = time.perf_counter()


def _resolutions() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_ENGINES_RESOLUTIONS", "320,1280")
    return tuple(int(x) for x in raw.split(","))


def _point_counts() -> tuple[int, ...]:
    raw = os.environ.get("REPRO_BENCH_ENGINES_N", "10000,100000")
    return tuple(int(n) for n in raw.split(","))


def _bandwidth() -> float:
    return float(os.environ.get("REPRO_BENCH_ENGINES_BANDWIDTH", "15"))


def _repeats() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_ENGINES_REPEATS", "3")))


def _native_threads() -> int:
    raw = os.environ.get("REPRO_BENCH_ENGINES_NATIVE_THREADS", "")
    return max(1, int(raw)) if raw else (os.cpu_count() or 1)


def _engine_cells() -> tuple[tuple[str, int], ...]:
    """(engine, threads) pairs: every engine serial, plus an OpenMP cell
    for ``native`` when the machine can actually parallelize."""
    cells = [(engine, 1) for engine in ENGINES]
    if NATIVE_AVAILABLE and _native_threads() > 1:
        cells.append(("native", _native_threads()))
    return tuple(cells)


def _cell_label(engine: str, threads: int) -> str:
    return engine if threads == 1 else f"{engine}@{threads}T"


def _engine_cost(engine: str, width: int, height: int, n: int) -> float:
    cost = height * (width + n)
    return cost * _PYTHON_OVERHEAD if engine == "python" else cost


def build_workload(width: int, n: int):
    """Clustered points over the paper-shaped region, index prebuilt."""
    height = max(1, (width * 3) // 4)
    rng = np.random.default_rng(20220613)
    centers = rng.uniform((0.0, 0.0), (10_000.0, 7_500.0), (32, 2))
    xy = centers[rng.integers(0, 32, n)] + rng.normal(0.0, 400.0, (n, 2))
    raster = Raster(Region(0.0, 0.0, 10_000.0, 7_500.0), width, height)
    return xy, raster, YSortedIndex(xy)


def timed_cell(
    engine: str, width: int, n: int, repeats: int, threads: int = 1,
) -> tuple[float, float]:
    """(min wall seconds, rows/sec) for one engine cell.

    ``threads > 1`` is only meaningful for ``native``, where it becomes the
    OpenMP thread count; the other engines are always timed serial.
    """
    xy, raster, ysorted = build_workload(width, n)
    kernel = get_kernel("epanechnikov")
    fn = slam_bucket_grid[engine]
    bandwidth = _bandwidth()
    kwargs = {"workers": threads} if engine == "native" and threads > 1 else {}
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn(xy, raster, kernel, bandwidth, ysorted=ysorted, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, raster.height / best


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _cells:
        return
    headers = ["X x Y", "n", "engine", "seconds", "rows/s", "vs numpy"]
    rows = []
    for width in _resolutions():
        height = max(1, (width * 3) // 4)
        for n in _point_counts():
            numpy_t = _cells.get(("numpy", width, n))
            for engine, threads in _engine_cells():
                label = _cell_label(engine, threads)
                t = _cells.get((label, width, n))
                if t is None:
                    continue
                rel = f"{numpy_t / t:.2f}x" if numpy_t else "-"
                rows.append([
                    f"{width}x{height}", f"{n:,}", label, f"{t:.3f}",
                    f"{_rows_per_sec[(label, width, n)]:,.0f}", rel,
                ])
    title = (
        f"SLAM row-engine comparison (slam_bucket, serial, epanechnikov, "
        f"b={_bandwidth():g}, min of {_repeats()})"
    )
    write_report("engines", format_table(headers, rows, title=title))
    emit_json(
        "engines",
        _cells,
        title=title,
        key_fields=["engine", "resolution", "n"],
        meta=_report_meta(),
        started=_STARTED,
    )


def _report_meta() -> dict:
    meta = {
        "bandwidth": _bandwidth(),
        "repeats": _repeats(),
        "resolutions": list(_resolutions()),
        "n_points": list(_point_counts()),
        "rows_per_sec": {
            f"{e}@{w}x{max(1, (w * 3) // 4)},n={n}": rps
            for (e, w, n), rps in sorted(_rows_per_sec.items())
        },
    }
    # headline speedups at the largest cell: numpy_batch vs per-row numpy,
    # and (on compiled checkouts) native vs numpy_batch
    width, n = max(_resolutions()), max(_point_counts())
    numpy_t = _cells.get(("numpy", width, n))
    batch_t = _cells.get(("numpy_batch", width, n))
    if numpy_t and batch_t:
        meta["headline_cell"] = {
            "resolution": width, "n": n,
            "speedup_numpy_batch_vs_numpy": numpy_t / batch_t,
        }
    native_t = _cells.get(("native", width, n))
    if batch_t and native_t:
        meta.setdefault("headline_cell", {"resolution": width, "n": n})
        meta["headline_cell"]["speedup_native_vs_numpy_batch"] = (
            batch_t / native_t
        )
        omp_t = _cells.get(
            (_cell_label("native", _native_threads()), width, n)
        )
        if omp_t and _native_threads() > 1:
            meta["headline_cell"]["speedup_native_omp_vs_serial"] = (
                native_t / omp_t
            )
    return meta


@pytest.mark.parametrize("n", _point_counts())
@pytest.mark.parametrize("width", _resolutions())
@pytest.mark.parametrize(
    "engine,threads", _engine_cells(),
    ids=[_cell_label(e, t) for e, t in _engine_cells()],
)
def test_engine_cell(benchmark, engine, threads, width, n):
    height = max(1, (width * 3) // 4)
    if _engine_cost(engine, width, height, n) > MAX_CELL_COST:
        pytest.skip(
            f"{engine} at {width}x{height}, n={n}: predicted cost exceeds "
            "the bench budget (the paper's timeout analog)"
        )
    result = {}

    def call():
        result["cell"] = timed_cell(engine, width, n, _repeats(), threads)

    benchmark.pedantic(call, rounds=1, iterations=1, warmup_rounds=0)
    seconds, rps = result["cell"]
    label = _cell_label(engine, threads)
    _cells[(label, width, n)] = seconds
    _rows_per_sec[(label, width, n)] = rps


def main(argv: "list[str] | None" = None) -> int:
    """Script mode: run the engine grid directly (no pytest) and write
    ``BENCH_engines.json``::

        PYTHONPATH=src python benchmarks/bench_engines.py --json out/
    """
    import argparse

    from _common import json_dir
    from repro.bench.report import BenchReport
    from repro.obs import Recorder

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="output directory for BENCH_engines.json (default: benchmarks/out)",
    )
    parser.add_argument(
        "--engines",
        default=None,
        help="comma-separated engines (default: python,numpy,numpy_batch, "
        "plus native on compiled checkouts)",
    )
    ns = parser.parse_args(argv)
    if ns.json:
        os.environ["REPRO_BENCH_JSON"] = ns.json
    for engine in ns.engines.split(",") if ns.engines else ():
        if engine not in slam_bucket_grid:
            parser.error(f"unknown engine {engine!r}")
    if ns.engines:
        cells = tuple((engine, 1) for engine in ns.engines.split(","))
    else:
        cells = _engine_cells()

    title = (
        f"SLAM row-engine comparison (slam_bucket, serial, epanechnikov, "
        f"b={_bandwidth():g}, min of {_repeats()})"
    )
    report = BenchReport("engines", title=title,
                         key_fields=["engine", "resolution", "n"])
    for width in _resolutions():
        height = max(1, (width * 3) // 4)
        for n in _point_counts():
            for engine, threads in cells:
                label = _cell_label(engine, threads)
                if _engine_cost(engine, width, height, n) > MAX_CELL_COST:
                    print(f"{label:12s} {width}x{height} n={n:,}: skipped "
                          "(over budget)")
                    continue
                seconds, rps = timed_cell(engine, width, n, _repeats(),
                                          threads)
                _cells[(label, width, n)] = seconds
                _rows_per_sec[(label, width, n)] = rps
                report.add_cell((label, width, n), seconds, rows_per_sec=rps)
                print(f"{label:12s} {width}x{height} n={n:,}: "
                      f"{seconds:7.3f}s  {rps:,.0f} rows/s")
    report.meta.update(_report_meta())
    headline = report.meta.get("headline_cell") or {}
    if "speedup_numpy_batch_vs_numpy" in headline:
        print(f"\nnumpy_batch speedup at the headline cell: "
              f"{headline['speedup_numpy_batch_vs_numpy']:.2f}x")
    if "speedup_native_vs_numpy_batch" in headline:
        print(f"native speedup over numpy_batch at the headline cell: "
              f"{headline['speedup_native_vs_numpy_batch']:.2f}x")
    # one instrumented numpy_batch run so the report carries a phase profile
    recorder = Recorder()
    width, n = max(_resolutions()), max(_point_counts())
    xy, raster, ysorted = build_workload(width, n)
    slam_bucket_grid["numpy_batch"](
        xy, raster, get_kernel("epanechnikov"), _bandwidth(),
        ysorted=ysorted, recorder=recorder,
    )
    report.attach_recorder(recorder)
    path = report.write(json_dir())
    print(f"[bench report: {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
