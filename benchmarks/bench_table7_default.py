"""Paper Table 7: response time of all ten methods under default parameters.

Default setting = the full city MBR, the paper's default resolution (scaled
via ``REPRO_BENCH_RESOLUTION``), Scott's-rule bandwidth, Epanechnikov kernel,
for all four datasets.  The paper's headline observations this reproduces:

* the four SLAM variants beat every competitor by 1-2 orders of magnitude;
* SLAM_BUCKET beats SLAM_SORT by ~1.6x;
* RAO further reduces both;
* SLAM_BUCKET^(RAO) is the overall fastest exact method.
"""

from __future__ import annotations

import time

import pytest

from _common import (
    MAX_CELL_COST,
    emit_json,
    grid_fn,
    json_dir,
    predicted_cost,
    run_cell,
    skip_if_over_budget,
    table_report,
)
from repro.bench.harness import TIMEOUT
from repro.bench.workloads import base_resolution, bench_raster
from repro.core.kernels import get_kernel
from repro.data.datasets import dataset_names

_STARTED = time.perf_counter()

_cells: dict[tuple[str, str], float] = {}

#: exactly the paper's Table 6 method set, in Table 7 row order, plus our
#: two extension methods (R-tree RQS and dual-tree aKDE) as extra rows
ALL_METHODS = [
    "scan",
    "rqs_kd",
    "rqs_ball",
    "zorder",
    "akde",
    "quad",
    "slam_sort",
    "slam_bucket",
    "slam_sort_rao",
    "slam_bucket_rao",
    "rqs_rtree",
    "akde_dual",
    "binned_fft",
]
ALL_DATASETS = list(dataset_names())


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _cells:
        return
    rows = []
    for method in ALL_METHODS:
        rows.append(
            [method] + [_cells.get((method, d), TIMEOUT) for d in ALL_DATASETS]
        )
    # derived headline ratios where available
    lines = []
    for d in ALL_DATASETS:
        sort_t = _cells.get(("slam_sort", d))
        bucket_t = _cells.get(("slam_bucket", d))
        rao_t = _cells.get(("slam_bucket_rao", d))
        quad_t = _cells.get(("quad", d))
        if sort_t and bucket_t:
            lines.append(
                f"{d}: SLAM_BUCKET vs SLAM_SORT speedup {sort_t / bucket_t:.2f}x "
                f"(paper: 1.57-1.65x)"
            )
        if quad_t and rao_t:
            lines.append(
                f"{d}: SLAM_BUCKET^(RAO) vs QUAD speedup {quad_t / rao_t:.1f}x"
            )
    x, y = base_resolution()
    title = (
        f"Table 7: response time (s), resolution {x}x{y}, Scott bandwidth, "
        "Epanechnikov kernel"
    )
    table_report("table7_default", title, ["method"] + ALL_DATASETS, rows)
    print("\n".join(lines))
    emit_json(
        "table7_default",
        _cells,
        title=title,
        key_fields=["method", "dataset"],
        meta={"resolution": [x, y], "kernel": "epanechnikov"},
        started=_STARTED,
    )


@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
@pytest.mark.parametrize("method", ALL_METHODS)
def test_table7(benchmark, datasets, bandwidths, method, dataset_name):
    points = datasets[dataset_name]
    raster = bench_raster(points, base_resolution())
    skip_if_over_budget(method, raster.width, raster.height, len(points))
    benchmark.group = f"table7 {dataset_name}"
    fn = grid_fn(
        method,
        points.xy,
        raster,
        get_kernel("epanechnikov"),
        bandwidths[dataset_name],
    )
    _cells[(method, dataset_name)] = run_cell(benchmark, fn)


def main(argv: "list[str] | None" = None) -> int:
    """Script mode: run every cell directly (no pytest), with an attached
    recorder and a per-cell peak-memory pass, and write
    ``BENCH_table7_default.json``::

        PYTHONPATH=src python benchmarks/bench_table7_default.py --json out/
    """
    import argparse
    import os

    from repro.bench.harness import format_table, measure_peak_memory, time_call
    from repro.bench.report import BenchReport
    from repro.bench.workloads import bench_budget, bench_dataset, default_bandwidth
    from repro.core.api import PARALLEL_METHODS
    from repro.obs import Recorder

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="output directory for BENCH_table7_default.json "
        "(default: benchmarks/out)",
    )
    parser.add_argument(
        "--methods",
        default=None,
        help="comma-separated subset of methods to run (default: all)",
    )
    parser.add_argument(
        "--datasets",
        default=None,
        help="comma-separated subset of datasets to run (default: all)",
    )
    ns = parser.parse_args(argv)
    if ns.json:
        os.environ["REPRO_BENCH_JSON"] = ns.json
    methods = ns.methods.split(",") if ns.methods else ALL_METHODS
    names = ns.datasets.split(",") if ns.datasets else ALL_DATASETS

    x, y = base_resolution()
    title = (
        f"Table 7: response time (s), resolution {x}x{y}, Scott bandwidth, "
        "Epanechnikov kernel"
    )
    recorder = Recorder()
    report = BenchReport(
        "table7_default", title=title, key_fields=["method", "dataset"]
    )
    report.meta.update(resolution=[x, y], kernel="epanechnikov")
    kernel = get_kernel("epanechnikov")
    budget = bench_budget()
    cells: dict[tuple[str, str], float] = {}

    for dataset_name in names:
        points = bench_dataset(dataset_name)
        bandwidth = default_bandwidth(points)
        raster = bench_raster(points, (x, y))
        for method in methods:
            if predicted_cost(method, raster.width, raster.height, len(points)) > MAX_CELL_COST:
                cells[(method, dataset_name)] = TIMEOUT
                report.add_cell((method, dataset_name), TIMEOUT)
                print(f"{method:16s} {dataset_name:12s} timeout (over budget)")
                continue
            kwargs = (
                {"recorder": recorder} if method in PARALLEL_METHODS else {}
            )
            fn = grid_fn(method, points.xy, raster, kernel, bandwidth, **kwargs)
            fn_plain = grid_fn(method, points.xy, raster, kernel, bandwidth)
            if method in PARALLEL_METHODS:
                elapsed, _ = time_call(fn)
            else:
                with recorder.span(f"compute.{method}"):
                    elapsed, _ = time_call(fn)
            # second, tracemalloc-instrumented run (un-instrumented fn, so
            # the recorder counts each cell once) for the space column;
            # skipped for slow cells so the script stays within ~2x the
            # plain sweep time
            peak = None
            if elapsed <= budget:
                peak, _ = measure_peak_memory(fn_plain)
            cells[(method, dataset_name)] = elapsed
            report.add_cell(
                (method, dataset_name), elapsed, peak_memory_bytes=peak
            )
            print(f"{method:16s} {dataset_name:12s} {elapsed:8.3f}s")

    rows = [
        [m] + [cells.get((m, d), TIMEOUT) for d in names] for m in methods
    ]
    print()
    print(format_table(["method"] + list(names), rows, title=title))
    print()
    print(recorder.summary())
    report.attach_recorder(recorder)
    report.peak_memory_bytes = max(
        (c.get("peak_memory_bytes") or 0 for c in report.cells), default=0
    ) or None
    path = report.write(json_dir())
    print(f"\n[bench report: {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
