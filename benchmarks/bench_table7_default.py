"""Paper Table 7: response time of all ten methods under default parameters.

Default setting = the full city MBR, the paper's default resolution (scaled
via ``REPRO_BENCH_RESOLUTION``), Scott's-rule bandwidth, Epanechnikov kernel,
for all four datasets.  The paper's headline observations this reproduces:

* the four SLAM variants beat every competitor by 1-2 orders of magnitude;
* SLAM_BUCKET beats SLAM_SORT by ~1.6x;
* RAO further reduces both;
* SLAM_BUCKET^(RAO) is the overall fastest exact method.
"""

from __future__ import annotations

import pytest

from _common import (
    grid_fn,
    run_cell,
    skip_if_over_budget,
    table_report,
)
from repro.bench.harness import TIMEOUT
from repro.bench.workloads import base_resolution, bench_raster
from repro.core.kernels import get_kernel
from repro.data.datasets import dataset_names

_cells: dict[tuple[str, str], float] = {}

#: exactly the paper's Table 6 method set, in Table 7 row order, plus our
#: two extension methods (R-tree RQS and dual-tree aKDE) as extra rows
ALL_METHODS = [
    "scan",
    "rqs_kd",
    "rqs_ball",
    "zorder",
    "akde",
    "quad",
    "slam_sort",
    "slam_bucket",
    "slam_sort_rao",
    "slam_bucket_rao",
    "rqs_rtree",
    "akde_dual",
    "binned_fft",
]
ALL_DATASETS = list(dataset_names())


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _cells:
        return
    rows = []
    for method in ALL_METHODS:
        rows.append(
            [method] + [_cells.get((method, d), TIMEOUT) for d in ALL_DATASETS]
        )
    # derived headline ratios where available
    lines = []
    for d in ALL_DATASETS:
        sort_t = _cells.get(("slam_sort", d))
        bucket_t = _cells.get(("slam_bucket", d))
        rao_t = _cells.get(("slam_bucket_rao", d))
        quad_t = _cells.get(("quad", d))
        if sort_t and bucket_t:
            lines.append(
                f"{d}: SLAM_BUCKET vs SLAM_SORT speedup {sort_t / bucket_t:.2f}x "
                f"(paper: 1.57-1.65x)"
            )
        if quad_t and rao_t:
            lines.append(
                f"{d}: SLAM_BUCKET^(RAO) vs QUAD speedup {quad_t / rao_t:.1f}x"
            )
    x, y = base_resolution()
    table_report(
        "table7_default",
        f"Table 7: response time (s), resolution {x}x{y}, Scott bandwidth, "
        "Epanechnikov kernel",
        ["method"] + ALL_DATASETS,
        rows,
    )
    print("\n".join(lines))


@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
@pytest.mark.parametrize("method", ALL_METHODS)
def test_table7(benchmark, datasets, bandwidths, method, dataset_name):
    points = datasets[dataset_name]
    raster = bench_raster(points, base_resolution())
    skip_if_over_budget(method, raster.width, raster.height, len(points))
    benchmark.group = f"table7 {dataset_name}"
    fn = grid_fn(
        method,
        points.xy,
        raster,
        get_kernel("epanechnikov"),
        bandwidths[dataset_name],
    )
    _cells[(method, dataset_name)] = run_cell(benchmark, fn)
