"""Sliding-window maintenance cost: O(Δ) ticks vs full re-render.

Drives :class:`repro.extensions.streaming.StreamingKDV` as the tile server's
window machinery does: a fixed-size window of events slides forward in event
time, and each *tick* ingests a fresh batch and expires the batch that aged
out — two signed grid updates, each one sweep of only the changed points.
The bench measures, per churn fraction (batch size / window size):

* mean tick latency (insert + expire);
* the wall time of recomputing the same grid from the full live window
  (what a server without incremental maintenance would pay per change);
* the speedup between the two — the paper's real-time claim in one number;
* the float-cancellation drift trajectory (maintained grid vs fresh
  recompute) sampled along the run, plus the drift erased by one explicit
  rebuild at the end.

Writes the paper-shaped text table and the machine-readable
``BENCH_streaming_window.json``.

Knobs (environment variables, all optional):

``REPRO_BENCH_SWIN_N``           window size in points (default 100_000)
``REPRO_BENCH_SWIN_SIZE``        raster as XxY (default 640x480)
``REPRO_BENCH_SWIN_TICKS``       ticks per churn level (default 20)
``REPRO_BENCH_SWIN_CHURN``       comma-separated churn fractions
                                 (default 0.001,0.01,0.05)
``REPRO_BENCH_SWIN_DRIFT_EVERY`` drift checkpoint cadence in ticks (default 5)

Run with::

    PYTHONPATH=src python benchmarks/bench_streaming_window.py --json out/
"""

from __future__ import annotations

import os
import time

import numpy as np

from repro.extensions.streaming import StreamingKDV
from repro.viz.region import Region

REGION = Region(0.0, 0.0, 10_000.0, 8_000.0)
BANDWIDTH = 400.0
METHOD = "slam_bucket_rao"
ENGINE = "numpy_batch"


def _knob(name: str, default: str) -> str:
    return os.environ.get(name, default)


def _parse_size(text: str) -> tuple[int, int]:
    w, h = text.lower().split("x")
    return int(w), int(h)


def _make_engine(size: tuple[int, int]) -> StreamingKDV:
    # rebuild_every=None: the run measures the *unbounded* drift trajectory;
    # the explicit rebuild at the end shows what the policy would erase
    return StreamingKDV(
        REGION,
        size=size,
        bandwidth=BANDWIDTH,
        method=METHOD,
        engine=ENGINE,
        rebuild_every=None,
        require_timestamps=True,
    )


def _batch(rng: np.random.Generator, k: int, t0: float) -> tuple:
    xy = rng.uniform((0.0, 0.0), (10_000.0, 8_000.0), (k, 2))
    return xy, t0 + np.arange(k, dtype=np.float64)


def _full_render_s(engine: StreamingKDV, repeats: int = 2) -> float:
    """Wall time of one from-scratch sweep of the live window (best of
    ``repeats``) — the per-change cost without incremental maintenance."""
    pts = engine.points()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        engine._delta(pts)
        best = min(best, time.perf_counter() - start)
    return best


def run_window_bench(
    n: int,
    size: tuple[int, int],
    ticks: int,
    churn_fractions: list[float],
    drift_every: int,
) -> dict:
    """Run the workload; returns ``{"cells": ..., "rows": ...}``."""
    cells: dict = {}
    rows: list[list] = []
    for churn in churn_fractions:
        k = max(int(round(churn * n)), 1)
        rng = np.random.default_rng(20220613)
        engine = _make_engine(size)
        xy, t = _batch(rng, n, 0.0)
        engine.insert(xy, t)
        next_t = float(n)

        full_s = _full_render_s(engine)
        cells[("full_render_ms", f"{churn:g}", "-")] = full_s * 1e3

        tick_times: list[float] = []
        for i in range(1, ticks + 1):
            xy, t = _batch(rng, k, next_t)
            next_t += k
            start = time.perf_counter()
            engine.insert(xy, t)
            removed = engine.expire_before(next_t - n)
            tick_times.append(time.perf_counter() - start)
            assert removed == k and len(engine) == n  # the window truly slides
            if drift_every and i % drift_every == 0:
                cells[("drift", f"{churn:g}", str(i))] = engine.drift()

        tick_ms = float(np.mean(tick_times)) * 1e3
        speedup = (full_s * 1e3) / tick_ms if tick_ms > 0 else float("inf")
        drift_final = engine.drift()
        drift_erased = engine.rebuild()
        cells[("tick_ms", f"{churn:g}", "-")] = tick_ms
        cells[("speedup", f"{churn:g}", "-")] = speedup
        cells[("drift_final", f"{churn:g}", "-")] = drift_final
        cells[("rebuild_drift_erased", f"{churn:g}", "-")] = drift_erased
        cells[("drift_after_rebuild", f"{churn:g}", "-")] = engine.drift()
        rows.append(
            [
                f"{churn:g}",
                k,
                f"{tick_ms:.2f}",
                f"{full_s * 1e3:.1f}",
                f"{speedup:.1f}x",
                f"{drift_final:.2e}",
            ]
        )
    return {"cells": cells, "rows": rows}


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    from _common import json_dir, table_report
    from repro.bench.report import BenchReport

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="output directory for BENCH_streaming_window.json "
                             "(default: benchmarks/out)")
    parser.add_argument("--points", type=int,
                        default=int(_knob("REPRO_BENCH_SWIN_N", "100000")))
    parser.add_argument("--size", type=_parse_size,
                        default=_parse_size(_knob("REPRO_BENCH_SWIN_SIZE",
                                                  "640x480")))
    parser.add_argument("--ticks", type=int,
                        default=int(_knob("REPRO_BENCH_SWIN_TICKS", "20")))
    parser.add_argument("--churn", default=_knob("REPRO_BENCH_SWIN_CHURN",
                                                 "0.001,0.01,0.05"),
                        help="comma-separated churn fractions")
    parser.add_argument("--drift-every", type=int,
                        default=int(_knob("REPRO_BENCH_SWIN_DRIFT_EVERY", "5")))
    ns = parser.parse_args(argv)
    if ns.json:
        os.environ["REPRO_BENCH_JSON"] = ns.json
    churn_fractions = [float(c) for c in ns.churn.split(",") if c]

    outcome = run_window_bench(
        ns.points, ns.size, ns.ticks, churn_fractions, ns.drift_every
    )
    title = (
        f"Sliding-window ticks vs full re-render: {ns.points:,}-point window, "
        f"{ns.size[0]}x{ns.size[1]}, {METHOD}/{ENGINE}, {ns.ticks} ticks"
    )
    table_report(
        "streaming_window",
        title,
        ["churn", "batch", "tick (ms)", "full (ms)", "speedup", "drift"],
        outcome["rows"],
    )

    report = BenchReport(
        "streaming_window",
        title=title,
        unit="mixed",
        key_fields=["metric", "churn", "tick"],
    )
    report.meta.update(
        n_points=ns.points,
        size=list(ns.size),
        ticks=ns.ticks,
        churn=churn_fractions,
        drift_every=ns.drift_every,
        bandwidth=BANDWIDTH,
        method=METHOD,
        engine=ENGINE,
    )
    report.add_cells(outcome["cells"])
    path = report.write(json_dir())
    print(f"\n[bench report: {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
