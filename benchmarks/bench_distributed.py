"""Distributed sweep benchmark: speedup vs workers, merge overhead, and
recovery latency after an injected worker kill.

Each distributed cell spawns real worker processes
(:func:`repro.dist.launch_local_workers`), renders the workload through a
:class:`repro.dist.Coordinator`, and tears the pool down again, so the
numbers include connection setup and result shipping — the honest cost of
the socket path.  Four questions the report answers:

* **speedup** — wall time at 1/2/4 workers against the in-process serial
  sweep (the ``serial`` row);
* **merge overhead** — the coordinator's ``dist.plan`` + ``dist.merge``
  phase seconds as a fraction of the render, i.e. what sharding itself
  costs beyond the sweeps;
* **transport bytes** — TCP bytes shipped per shard under the zero-copy
  shared-memory transport (the local-pool default) versus forced pickle
  (``Coordinator(..., shm=False)``), plus the ``dist.shm_bytes`` volume
  that moved through shared memory instead (see ``docs/native.md``);
* **recovery latency** — extra wall time when one of two workers is
  SIGKILLed mid-render versus the same throttled render undisturbed;
* **skew & scheduling** — a skewed-dataset matrix (Gaussian hotspot, Zipf
  y-bands) comparing the cost-model planner (``balance="cost"`` + work
  stealing) against the points-balanced baseline: per-shard time spread,
  p99 tail latency, and the ``balance_ratio`` (max/mean shard seconds) from
  ``Coordinator.last_report`` — plus a straggler cell where one of two
  workers runs 4x throttled (see ``docs/scheduling.md``).

Knobs (environment variables, all optional):

``REPRO_BENCH_DIST_RESOLUTION``
    Base resolution ``X`` (default 640; ``Y = 3 X / 4`` -> 640x480).
``REPRO_BENCH_DIST_N``
    Point count (default 50_000).
``REPRO_BENCH_DIST_WORKERS``
    Comma-separated worker counts (default ``1,2,4``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_distributed.py -q -s
"""

from __future__ import annotations

import os
import threading
import time

import numpy as np
import pytest

from _common import emit_json, write_report
from repro.bench.harness import format_table
from repro.core.api import compute_kdv
from repro.dist import Coordinator, launch_local_workers
from repro.viz.region import Region

_cells: dict[tuple[str, ...], float] = {}
_meta: dict[str, dict] = {}
#: label -> max/mean per-shard seconds; surfaces as top-level meta field.
_balance_ratios: dict[str, float] = {}
_STARTED = time.perf_counter()

METHOD = "slam_bucket"
ENGINE = "numpy_batch"
BANDWIDTH = 250.0


def _resolution() -> tuple[int, int]:
    x = int(os.environ.get("REPRO_BENCH_DIST_RESOLUTION", "640"))
    return x, max(1, (x * 3) // 4)


def _num_points() -> int:
    return int(os.environ.get("REPRO_BENCH_DIST_N", "50000"))


def _worker_counts() -> tuple[int, ...]:
    spec = os.environ.get("REPRO_BENCH_DIST_WORKERS", "1,2,4")
    return tuple(int(w) for w in spec.split(","))


def _build_workload() -> np.ndarray:
    n = _num_points()
    rng = np.random.default_rng(20220613)
    centers = rng.uniform((0.0, 0.0), (10_000.0, 7_500.0), (32, 2))
    assignments = rng.integers(0, len(centers), n)
    return centers[assignments] + rng.normal(0.0, 400.0, (n, 2))


def _kdv_kwargs() -> dict:
    width, height = _resolution()
    return dict(
        region=Region(0.0, 0.0, 10_000.0, 7_500.0),
        size=(width, height),
        kernel="epanechnikov",
        bandwidth=BANDWIDTH,
        method=METHOD,
        engine=ENGINE,
    )


@pytest.fixture(scope="module")
def workload():
    return _build_workload()


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _cells:
        return
    width, height = _resolution()
    serial = _cells.get(("serial",))
    headers = ["cell", "seconds", "speedup", "plan+merge overhead"]
    rows = []
    for key in sorted(_cells):
        elapsed = _cells[key]
        label = ":".join(str(k) for k in key)
        meta = _meta.get(label, {})
        speedup = f"{serial / elapsed:.2f}x" if serial and elapsed else "-"
        overhead = meta.get("overhead_fraction")
        rows.append([
            label,
            f"{elapsed:.3f}",
            speedup if key != ("serial",) else "1.00x",
            f"{overhead * 100:.1f}%" if overhead is not None else "-",
        ])
    title = (
        f"Distributed sweep, {width}x{height}, n={_num_points():,}, "
        f"method={METHOD}/{ENGINE}, cpus={os.cpu_count()}"
    )
    text = format_table(headers, rows, title=title)
    recovery = _meta.get("recovery", {})
    lines = [
        f"{label}: " + ", ".join(f"{k}={v}" for k, v in sorted(info.items()))
        for label, info in sorted(_meta.items())
        if info
    ]
    if recovery:
        lines.append(
            "recovery latency (killed vs throttled baseline): "
            f"{recovery.get('latency_s', float('nan')):.3f}s"
        )
    write_report("distributed", text + "\n\n" + "\n".join(lines))
    emit_json(
        "distributed",
        _cells,
        title=title,
        key_fields=["cell"],
        meta={
            "resolution": list(_resolution()),
            "n_points": _num_points(),
            "method": METHOD,
            "engine": ENGINE,
            "worker_counts": list(_worker_counts()),
            "cpu_count": os.cpu_count(),
            "balance_ratio": _balance_ratios or None,
            "cells": _meta,
        },
        started=_STARTED,
    )


def _overhead_fraction(snapshot: dict, elapsed: float) -> "float | None":
    phases = snapshot.get("phases", {})
    cost = sum(
        phases.get(name, {}).get("total_s", 0.0)
        for name in ("dist.plan", "dist.merge")
    )
    return cost / elapsed if elapsed > 0 else None


def test_serial_baseline(benchmark, workload):
    benchmark.pedantic(
        lambda: compute_kdv(workload, **_kdv_kwargs()),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    _cells[("serial",)] = float(benchmark.stats.stats.mean)


@pytest.mark.parametrize("workers", _worker_counts())
def test_speedup_vs_workers(benchmark, workload, workers):
    pool = launch_local_workers(workers)
    try:
        with Coordinator(pool.addrs) as coord:
            assert coord.connect() == workers

            def call():
                return compute_kdv(
                    workload, backend="dist", coordinator=coord,
                    **_kdv_kwargs(),
                )

            benchmark.pedantic(call, rounds=1, iterations=1, warmup_rounds=0)
            elapsed = float(benchmark.stats.stats.mean)
            snapshot = coord.recorder.snapshot()
    finally:
        pool.shutdown()
    label = f"dist:w={workers}"
    _cells[("dist", f"w={workers}")] = elapsed
    counters = snapshot.get("counters", {})
    _meta[label] = {
        "shards": counters.get("dist.shards"),
        "bytes_tx": counters.get("dist.bytes_tx"),
        "bytes_rx": counters.get("dist.bytes_rx"),
        "overhead_fraction": _overhead_fraction(snapshot, elapsed),
    }


@pytest.mark.parametrize("transport", ("shm", "pickle"))
def test_transport_bytes(benchmark, workload, transport):
    """Same render, two local workers, shared-memory transport on vs forced
    pickle — the wire-byte delta is what the zero-copy path saves."""
    pool = launch_local_workers(2)
    try:
        with Coordinator(pool.addrs, shm=(transport == "shm")) as coord:
            assert coord.connect() == 2

            def call():
                return compute_kdv(
                    workload, backend="dist", coordinator=coord,
                    **_kdv_kwargs(),
                )

            benchmark.pedantic(call, rounds=1, iterations=1, warmup_rounds=0)
            elapsed = float(benchmark.stats.stats.mean)
            counters = coord.recorder.snapshot().get("counters", {})
    finally:
        pool.shutdown()
    _cells[("transport", transport)] = elapsed
    shards = counters.get("dist.shards") or 0
    bytes_tx = counters.get("dist.bytes_tx", 0)
    _meta[f"transport:{transport}"] = {
        "shards": shards,
        "bytes_tx": bytes_tx,
        "bytes_rx": counters.get("dist.bytes_rx"),
        "shm_bytes": counters.get("dist.shm_bytes", 0),
        "tcp_bytes_per_shard": round(bytes_tx / shards) if shards else None,
    }


def test_recovery_after_kill(benchmark, workload):
    """Two throttled workers; one is SIGKILLed mid-render.  The extra wall
    time over the undisturbed throttled render is the recovery latency
    (detection + resubmission to the survivor)."""
    delay_s = 0.2

    def throttled_render(kill: bool) -> float:
        pool = launch_local_workers(2, delay_s=delay_s)
        try:
            with Coordinator(pool.addrs) as coord:
                assert coord.connect() == 2
                killer = threading.Timer(delay_s / 2, pool[0].kill)
                if kill:
                    killer.start()
                start = time.perf_counter()
                try:
                    compute_kdv(
                        workload, backend="dist", coordinator=coord,
                        **_kdv_kwargs(),
                    )
                finally:
                    killer.cancel()
                elapsed = time.perf_counter() - start
                if kill:
                    counters = coord.recorder.snapshot()["counters"]
                    assert counters.get("dist.worker_deaths", 0) >= 1
        finally:
            pool.shutdown()
        return elapsed

    baseline = throttled_render(kill=False)

    def call():
        return throttled_render(kill=True)

    benchmark.pedantic(call, rounds=1, iterations=1, warmup_rounds=0)
    killed = float(benchmark.stats.stats.mean)
    _cells[("recovery", "killed")] = killed
    _cells[("recovery", "baseline")] = baseline
    _meta["recovery"] = {"latency_s": max(killed - baseline, 0.0)}


def _skewed_workload(kind: str) -> np.ndarray:
    """Workloads whose per-row cost is very unevenly distributed in y —
    exactly where point- or row-balanced planning falls apart."""
    n = _num_points()
    rng = np.random.default_rng(20260808)
    if kind == "hotspot":
        # 80% of the mass in one Gaussian blob spanning a thin y band.
        hot = rng.normal((5_000.0, 1_500.0), (2_500.0, 250.0), (n * 4 // 5, 2))
        cold = rng.uniform((0.0, 0.0), (10_000.0, 7_500.0), (n - len(hot), 2))
        xy = np.vstack([hot, cold])
    else:
        # Zipf-distributed y bands: a few of 16 horizontal stripes hold
        # nearly all points.
        band = (rng.zipf(1.5, n) - 1) % 16
        step = 7_500.0 / 16
        y = band * step + rng.uniform(0.0, step, n)
        x = rng.uniform(0.0, 10_000.0, n)
        xy = np.column_stack([x, y])
    return np.clip(xy, 0.0, (10_000.0, 7_500.0))


def _record_sched_cell(key: tuple, label: str, elapsed: float, coord) -> None:
    report = coord.last_report
    _cells[key] = elapsed
    seconds = report.shard_seconds() if report else []
    ratio = report.balance_ratio() if report else None
    meta = {
        "balance": getattr(report, "balance", None),
        "shards": len(seconds),
        "balance_ratio": ratio,
        "p99_s": report.p99_seconds() if report else None,
        "shard_spread_s": (
            float(max(seconds) - min(seconds)) if seconds else None
        ),
        "steals": getattr(report, "steals", 0),
        "steal_rows": getattr(report, "steal_rows", 0),
        "refine_moves": getattr(report, "refine_moves", 0),
    }
    _meta[label] = meta
    if ratio is not None:
        _balance_ratios[label] = ratio


@pytest.mark.parametrize("dataset", ("hotspot", "zipf"))
@pytest.mark.parametrize("mode", ("points", "cost"))
def test_skewed_balance(benchmark, dataset, mode):
    """Skewed datasets, two workers: points-balanced planning (stealing off,
    the pre-scheduler baseline) vs cost planning with stealing on."""
    xy = _skewed_workload(dataset)
    pool = launch_local_workers(2)
    try:
        with Coordinator(
            pool.addrs,
            balance=mode,
            steal=(mode == "cost"),
            steal_factor=2.0,
            steal_min_s=0.2,
        ) as coord:
            assert coord.connect() == 2

            def call():
                return compute_kdv(
                    xy, backend="dist", coordinator=coord, **_kdv_kwargs()
                )

            benchmark.pedantic(call, rounds=1, iterations=1, warmup_rounds=0)
            elapsed = float(benchmark.stats.stats.mean)
            _record_sched_cell(
                ("skew", dataset, mode), f"skew:{dataset}:{mode}",
                elapsed, coord,
            )
    finally:
        pool.shutdown()


@pytest.mark.parametrize("mode", ("points", "cost"))
def test_straggler_modes(benchmark, workload, mode):
    """One of two workers runs 4x throttled.  Points-balanced planning with
    no stealing rides the straggler's clock; cost planning plus stealing
    should land near the balanced ideal."""
    # Heartbeats every 50ms: steal triggers are only evaluated on signs of
    # life, so they must tick several times within one throttled shard.
    fast = launch_local_workers(1, heartbeat_s=0.05)
    slow = launch_local_workers(1, heartbeat_s=0.05, slow_factor=4.0)
    try:
        with Coordinator(
            fast.addrs + slow.addrs,
            balance=mode,
            steal=(mode == "cost"),
            steal_factor=1.5,
            steal_min_s=0.1,
            min_steal_rows=4,
            shards=4,
        ) as coord:
            assert coord.connect() == 2

            def call():
                return compute_kdv(
                    workload, backend="dist", coordinator=coord,
                    **_kdv_kwargs(),
                )

            benchmark.pedantic(call, rounds=1, iterations=1, warmup_rounds=0)
            elapsed = float(benchmark.stats.stats.mean)
            _record_sched_cell(
                ("straggler", mode), f"straggler:{mode}", elapsed, coord
            )
    finally:
        fast.shutdown()
        slow.shutdown()


def main(argv: "list[str] | None" = None) -> int:
    """Script mode (delegates to pytest so the report fixture runs)::

        PYTHONPATH=src python benchmarks/bench_distributed.py --json out/
    """
    from _common import pytest_script_main

    return pytest_script_main(__file__, argv)


if __name__ == "__main__":
    raise SystemExit(main())
