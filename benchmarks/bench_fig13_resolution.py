"""Paper Figure 13: response time vs resolution size (four datasets).

The paper's observation: methods with O(XYn) complexity (SCAN, RQS, aKDE,
QUAD's worst case) roughly quadruple when the pixel count quadruples, while
SLAM_BUCKET^(RAO) — O(min(X,Y)(max(X,Y)+n)) — only doubles, so the gap widens
with resolution.  aKDE is omitted from the figure methods because it exceeds
the timeout at every setting in the paper's Table 7 (its cells would all read
"timeout"); it is still measured in bench_table7_default.py.

Cells whose predicted cost exceeds the budget are skipped and reported as
``timeout`` (the paper's "> 14400 s" analog).
"""

from __future__ import annotations

import time

import pytest

from _common import emit_json, grid_fn, run_cell, skip_if_over_budget, write_report
from repro.bench.harness import TIMEOUT, format_series
from repro.bench.workloads import bench_raster, resolution_ladder
from repro.core.kernels import get_kernel
from repro.data.datasets import dataset_names

FIG_METHODS = ["scan", "rqs_kd", "zorder", "quad", "slam_bucket_rao"]
ALL_DATASETS = list(dataset_names())
LADDER = resolution_ladder()

_cells: dict[tuple[str, str, tuple[int, int]], float] = {}
_STARTED = time.perf_counter()


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _cells:
        return
    sections = []
    for dataset in ALL_DATASETS:
        series = {
            m: [_cells.get((m, dataset, size), TIMEOUT) for size in LADDER]
            for m in FIG_METHODS
        }
        sections.append(
            format_series(
                "XxY",
                [f"{x}x{y}" for x, y in LADDER],
                series,
                title=f"Figure 13 ({dataset}): time (s) vs resolution",
            )
        )
    write_report("fig13_resolution", "\n\n".join(sections))
    emit_json(
        "fig13_resolution",
        {(m, d, f"{x}x{y}"): v for (m, d, (x, y)), v in _cells.items()},
        title="Figure 13: time (s) vs resolution, per dataset",
        key_fields=["method", "dataset", "resolution"],
        started=_STARTED,
    )


@pytest.mark.parametrize("size", LADDER, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
@pytest.mark.parametrize("method", FIG_METHODS)
def test_fig13(benchmark, datasets, bandwidths, method, dataset_name, size):
    points = datasets[dataset_name]
    skip_if_over_budget(method, size[0], size[1], len(points))
    raster = bench_raster(points, size)
    benchmark.group = f"fig13 {dataset_name}"
    fn = grid_fn(
        method,
        points.xy,
        raster,
        get_kernel("epanechnikov"),
        bandwidths[dataset_name],
    )
    _cells[(method, dataset_name, size)] = run_cell(benchmark, fn)


if __name__ == "__main__":
    from _common import pytest_script_main

    raise SystemExit(pytest_script_main(__file__))
