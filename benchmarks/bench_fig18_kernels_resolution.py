"""Paper Figure 18: uniform & quartic kernels, time vs resolution (LA & SF).

Section 3.7 extends SLAM to the uniform and quartic kernels via wider
aggregate channel sets (1 and 10 channels respectively vs Epanechnikov's 4).
The paper's observation: response times stay close to the Epanechnikov
results of Figure 13 — no large kernel-support overhead for any method — and
SLAM_BUCKET^(RAO)'s margin over the competitors again widens with resolution.
"""

from __future__ import annotations

import time

import pytest

from _common import emit_json, grid_fn, run_cell, skip_if_over_budget, write_report
from repro.bench.harness import TIMEOUT, format_series
from repro.bench.workloads import bench_raster, resolution_ladder
from repro.core.kernels import get_kernel

FIG_METHODS = ["scan", "zorder", "quad", "slam_bucket_rao"]
FIG_DATASETS = ["los_angeles", "san_francisco"]
FIG_KERNELS = ["uniform", "quartic"]
LADDER = resolution_ladder()

_cells: dict[tuple[str, str, str, tuple[int, int]], float] = {}
_STARTED = time.perf_counter()


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _cells:
        return
    sections = []
    for kernel_name in FIG_KERNELS:
        for dataset in FIG_DATASETS:
            series = {
                m: [
                    _cells.get((m, dataset, kernel_name, size), TIMEOUT)
                    for size in LADDER
                ]
                for m in FIG_METHODS
            }
            sections.append(
                format_series(
                    "XxY",
                    [f"{x}x{y}" for x, y in LADDER],
                    series,
                    title=(
                        f"Figure 18 ({dataset}, {kernel_name} kernel): "
                        "time (s) vs resolution"
                    ),
                )
            )
    write_report("fig18_kernels_resolution", "\n\n".join(sections))
    emit_json(
        "fig18_kernels_resolution",
        {
            (m, d, k, f"{x}x{y}"): v
            for (m, d, k, (x, y)), v in _cells.items()
        },
        title="Figure 18: time (s) vs resolution, uniform & quartic kernels",
        key_fields=["method", "dataset", "kernel", "resolution"],
        started=_STARTED,
    )


@pytest.mark.parametrize("size", LADDER, ids=lambda s: f"{s[0]}x{s[1]}")
@pytest.mark.parametrize("kernel_name", FIG_KERNELS)
@pytest.mark.parametrize("dataset_name", FIG_DATASETS)
@pytest.mark.parametrize("method", FIG_METHODS)
def test_fig18(benchmark, datasets, bandwidths, method, dataset_name, kernel_name, size):
    points = datasets[dataset_name]
    skip_if_over_budget(method, size[0], size[1], len(points))
    raster = bench_raster(points, size)
    benchmark.group = f"fig18 {dataset_name} {kernel_name}"
    fn = grid_fn(
        method,
        points.xy,
        raster,
        get_kernel(kernel_name),
        bandwidths[dataset_name],
    )
    _cells[(method, dataset_name, kernel_name, size)] = run_cell(benchmark, fn)


if __name__ == "__main__":
    from _common import pytest_script_main

    raise SystemExit(pytest_script_main(__file__))
