"""Paper Figure 14: response time vs dataset size (25/50/75/100 % samples).

All methods grow with n; SLAM_BUCKET^(RAO) keeps a visible margin over the
best competitors at every sample size.  Samples are drawn without
replacement, exactly like the paper's protocol.
"""

from __future__ import annotations

import time

import pytest

from _common import emit_json, grid_fn, run_cell, skip_if_over_budget, write_report
from repro.bench.harness import TIMEOUT, format_series
from repro.bench.workloads import SIZE_FRACTIONS, base_resolution, bench_raster
from repro.core.kernels import get_kernel
from repro.data.datasets import dataset_names
from repro.data.sampling import sample_without_replacement

FIG_METHODS = ["scan", "rqs_kd", "zorder", "quad", "slam_bucket_rao"]
ALL_DATASETS = list(dataset_names())

_cells: dict[tuple[str, str, float], float] = {}
_STARTED = time.perf_counter()


@pytest.fixture(scope="session")
def samples(datasets):
    """(dataset, fraction) -> sampled PointSet, shared across cells."""
    return {
        (name, fraction): sample_without_replacement(points, fraction, seed=0)
        for name, points in datasets.items()
        for fraction in SIZE_FRACTIONS
    }


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _cells:
        return
    sections = []
    for dataset in ALL_DATASETS:
        series = {
            m: [_cells.get((m, dataset, f), TIMEOUT) for f in SIZE_FRACTIONS]
            for m in FIG_METHODS
        }
        sections.append(
            format_series(
                "fraction",
                [f"{int(f * 100)}%" for f in SIZE_FRACTIONS],
                series,
                title=f"Figure 14 ({dataset}): time (s) vs dataset size",
            )
        )
    write_report("fig14_datasize", "\n\n".join(sections))
    emit_json(
        "fig14_datasize",
        _cells,
        title="Figure 14: time (s) vs dataset size, per dataset",
        key_fields=["method", "dataset", "fraction"],
        started=_STARTED,
    )


@pytest.mark.parametrize("fraction", SIZE_FRACTIONS, ids=lambda f: f"{int(f*100)}pct")
@pytest.mark.parametrize("dataset_name", ALL_DATASETS)
@pytest.mark.parametrize("method", FIG_METHODS)
def test_fig14(benchmark, samples, bandwidths, method, dataset_name, fraction):
    points = samples[(dataset_name, fraction)]
    size = base_resolution()
    skip_if_over_budget(method, size[0], size[1], len(points))
    # Bandwidth follows the paper: Scott's rule on the *full* dataset stays
    # the default; the sweep varies n only.
    raster = bench_raster(points, size)
    benchmark.group = f"fig14 {dataset_name}"
    fn = grid_fn(
        method,
        points.xy,
        raster,
        get_kernel("epanechnikov"),
        bandwidths[dataset_name],
    )
    _cells[(method, dataset_name, fraction)] = run_cell(benchmark, fn)


if __name__ == "__main__":
    from _common import pytest_script_main

    raise SystemExit(pytest_script_main(__file__))
