"""Shared plumbing for the per-table/figure benchmark modules.

Each ``bench_*.py`` module reproduces one table or figure of the paper's
evaluation section.  Cells run once each (``rounds=1`` — the methods are
deterministic and multi-second), record their wall time into a module-local
results dict, and a trailing ``test_zz_report_*`` writes the paper-shaped
table/series to ``benchmarks/out/<name>.txt`` (and stdout, visible with
``pytest -s``).

Cost-based skipping stands in for the paper's 4-hour timeout: cells whose
predicted work exceeds ``REPRO_BENCH_MAX_CELL`` elementary operations are
skipped and reported as ``timeout``, exactly like the "> 14400" entries in
the paper's Table 7.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.harness import TIMEOUT, format_series, format_table
from repro.bench.report import BenchReport
from repro.core.api import METHODS

OUT_DIR = Path(__file__).parent / "out"


def json_dir() -> Path:
    """Where ``BENCH_*.json`` reports go: ``REPRO_BENCH_JSON`` or the
    default text-report directory."""
    return Path(os.environ.get("REPRO_BENCH_JSON", str(OUT_DIR)))

#: Elementary-operation budget per benchmark cell (the timeout analog).
MAX_CELL_COST = float(os.environ.get("REPRO_BENCH_MAX_CELL", "3e9"))


def predicted_cost(method: str, width: int, height: int, n: int) -> float:
    """Rough elementary-operation count of one KDV computation.

    Mirrors Table 1: O(XYn) for the scan-complexity methods, O(Y(X+n)) for
    the sweeps.  Used only to decide timeout skips, so constants are crude.
    """
    pixels = width * height
    if method in ("scan", "akde"):
        return pixels * n
    if method == "akde_dual":
        return (pixels + n) * 100
    if method == "binned_fft":
        return n + pixels * 40
    if method in ("rqs_kd", "rqs_ball", "rqs_rtree"):
        # per-pixel queries with Python-level traversal overhead
        return pixels * max(n**0.5, 64.0) * 50
    if method == "zorder":
        return pixels * min(n, 400)
    if method == "quad":
        return pixels * max(n**0.5, 64.0)
    if method in ("slam_sort", "slam_bucket"):
        return height * (width + n)
    if method in ("slam_sort_rao", "slam_bucket_rao"):
        return min(width, height) * (max(width, height) + n)
    raise ValueError(f"unknown method {method!r}")


def skip_if_over_budget(method: str, width: int, height: int, n: int) -> None:
    if predicted_cost(method, width, height, n) > MAX_CELL_COST:
        pytest.skip(
            f"{method} at {width}x{height}, n={n}: predicted cost exceeds the "
            "bench budget (the paper's '> 14400 s' timeout analog)"
        )


def run_cell(benchmark, fn) -> float:
    """Benchmark one cell once and return its wall time in seconds."""
    benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
    return float(benchmark.stats.stats.mean)


#: Method options used throughout the benches.  Z-order's epsilon follows the
#: original paper's tighter guarantee (sample of ~1/eps^2 = 10k points), which
#: places it between QUAD and SLAM as in the paper's Table 7 ordering.
BENCH_KWARGS: dict[str, dict] = {"zorder": {"epsilon": 0.01}}


def grid_fn(method: str, xy, raster, kernel, bandwidth, **kwargs):
    """Zero-arg callable computing one raw KDV grid."""
    fn, _exact = METHODS[method]
    options = {**BENCH_KWARGS.get(method, {}), **kwargs}

    def call():
        return fn(xy, raster, kernel, bandwidth, **options)

    return call


def write_report(name: str, text: str) -> None:
    """Persist a paper-shaped report and echo it to stdout."""
    OUT_DIR.mkdir(exist_ok=True)
    path = OUT_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[written to {path}]")


def emit_json(
    name: str,
    cells: dict,
    *,
    title: str = "",
    unit: str = "seconds",
    key_fields: "list[str] | None" = None,
    meta: "dict | None" = None,
    recorder=None,
    peak_memory_bytes: "int | None" = None,
    started: "float | None" = None,
) -> Path:
    """Write the machine-readable twin of a text report:
    ``BENCH_<name>.json`` (see :mod:`repro.bench.report` and
    ``docs/benchmarks.md``).  Every bench module calls this from its report
    fixture so JSON is produced on both the pytest and script paths."""
    report = BenchReport(name, title=title, unit=unit, key_fields=key_fields)
    if started is not None:
        report._start = started
    report.add_cells(cells)
    if meta:
        report.meta.update(meta)
    report.attach_recorder(recorder)
    report.peak_memory_bytes = peak_memory_bytes
    path = report.write(json_dir())
    print(f"[bench report: {path}]")
    return path


def pytest_script_main(path: str, argv: "list[str] | None" = None) -> int:
    """``python benchmarks/bench_<x>.py [--json DIR] [pytest args...]``.

    Runs the module's cells through pytest (the fixtures need it) with the
    JSON output directory redirected; used by every bench module's
    ``__main__`` block and by the ``repro bench`` CLI subcommand.
    """
    import argparse

    parser = argparse.ArgumentParser(
        description="Run one benchmark module and write its text + JSON reports."
    )
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="directory for the BENCH_<name>.json report "
        "(default: benchmarks/out)",
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (e.g. -k slam)",
    )
    ns = parser.parse_args(argv)
    if ns.json:
        os.environ["REPRO_BENCH_JSON"] = ns.json
    return int(
        pytest.main([str(path), "-q", "-s", "-p", "no:cacheprovider", *ns.pytest_args])
    )


def series_report(
    name: str,
    title: str,
    x_label: str,
    x_values: list,
    cells: dict,
    methods: list[str],
) -> None:
    """Format ``cells[(method, x)] -> seconds`` as a figure-style series."""
    series = {}
    for method in methods:
        row = []
        for x in x_values:
            row.append(cells.get((method, x), TIMEOUT))
        series[method] = row
    write_report(name, format_series(x_label, x_values, series, title=title))


def table_report(
    name: str, title: str, headers: list[str], rows: list[list]
) -> None:
    write_report(name, format_table(headers, rows, title=title))
