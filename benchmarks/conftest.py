"""Shared fixtures for the benchmark suite.

Datasets and bandwidths are generated once per session at the configured
scale (``REPRO_BENCH_SCALE``, default 0.01 of the paper's full sizes) so the
per-cell timings measure the KDV computation only.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.bench.workloads import bench_dataset, default_bandwidth
from repro.data.datasets import dataset_names


@pytest.fixture(scope="session")
def datasets():
    """name -> PointSet at the benchmark scale, for all four cities."""
    return {name: bench_dataset(name) for name in dataset_names()}


@pytest.fixture(scope="session")
def bandwidths(datasets):
    """name -> Scott's-rule default bandwidth (the paper's default)."""
    return {name: default_bandwidth(points) for name, points in datasets.items()}
