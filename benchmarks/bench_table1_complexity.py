"""Paper Table 1: empirical verification of the complexity claims + ablations.

Table 1 is theory; this bench checks that the *measured* scaling exponents
match it, and quantifies the design ablations DESIGN.md calls out:

* time vs n at fixed resolution: SCAN and SLAM should both be ~linear in n,
  but with constants orders of magnitude apart;
* time vs resolution at fixed n: SCAN grows ~linearly in the pixel count XY
  (exponent ~1 in XY), SLAM_BUCKET^(RAO) grows ~0.5 in XY (linear in one
  axis only) once n no longer dominates;
* RAO ablation: portrait rasters (Y >> X) with RAO vs without;
* engine ablation: literal-Python vs vectorized SLAM_BUCKET (same
  asymptotics, large constant gap).

Exponents are least-squares slopes in log-log space, printed in the report.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from _common import emit_json, run_cell, write_report
from repro.bench.harness import format_table
from repro.core.kernels import get_kernel
from repro.core.rao import with_rao
from repro.core.slam_bucket import slam_bucket_grid
from repro.baselines.scan import scan_grid
from repro.viz.region import Raster, Region

N_LADDER = [4000, 8000, 16000, 32000]
X_LADDER = [64, 128, 256, 512]
FIXED_N = 16000
FIXED_SIZE = (128, 96)
PORTRAIT = (48, 640)  # Y >> X: the case RAO exists for

_times: dict[tuple[str, str, int], float] = {}
_STARTED = time.perf_counter()

_rng = np.random.default_rng(7)
_POINTS = {
    n: np.column_stack(
        [_rng.uniform(0, 10_000, n), _rng.uniform(0, 8_000, n)]
    )
    for n in set(N_LADDER) | {FIXED_N}
}
_REGION = Region(0.0, 0.0, 10_000.0, 8_000.0)
_BANDWIDTH = 400.0
_KERNEL = get_kernel("epanechnikov")


def _slope(xs: list[float], ys: list[float]) -> float:
    return float(np.polyfit(np.log(xs), np.log(ys), 1)[0])


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _times:
        return
    rows = []

    def ladder(series: str, axis: str, values: list[int]):
        times = [_times.get((series, axis, v)) for v in values]
        if all(t is not None for t in times):
            rows.append(
                [series, axis, _slope([float(v) for v in values], times)]
                + times
            )

    ladder("scan", "n", N_LADDER)
    ladder("slam_bucket_rao", "n", N_LADDER)
    ladder("scan", "X", X_LADDER)
    ladder("slam_bucket_rao", "X", X_LADDER)
    text = format_table(
        ["series", "axis", "log-log slope", "t1", "t2", "t3", "t4"],
        rows,
        title=(
            "Table 1 empirical scaling check (slopes: SCAN ~1 in n and ~2 in X "
            "[XY grows as X^2]; SLAM ~<=1 in n and ~1 in X)"
        ),
    )
    extra = []
    rao_on = _times.get(("rao_on", "portrait", PORTRAIT[1]))
    rao_off = _times.get(("rao_off", "portrait", PORTRAIT[1]))
    if rao_on and rao_off:
        extra.append(
            f"RAO ablation on {PORTRAIT[0]}x{PORTRAIT[1]} portrait raster: "
            f"without {rao_off:.3f}s, with {rao_on:.3f}s "
            f"({rao_off / rao_on:.2f}x, Theorem 3)"
        )
    eng_py = _times.get(("engine_python", "n", FIXED_N))
    eng_np = _times.get(("engine_numpy", "n", FIXED_N))
    if eng_py and eng_np:
        extra.append(
            f"engine ablation (SLAM_BUCKET, n={FIXED_N}): literal Python "
            f"{eng_py:.3f}s vs vectorized {eng_np:.3f}s "
            f"({eng_py / eng_np:.1f}x constant-factor gap, same asymptotics)"
        )
    write_report("table1_complexity", text + "\n" + "\n".join(extra))
    emit_json(
        "table1_complexity",
        {(s, a, str(v)): t for (s, a, v), t in _times.items()},
        title="Table 1 empirical scaling check + ablations",
        key_fields=["series", "axis", "value"],
        started=_STARTED,
    )


@pytest.mark.parametrize("n", N_LADDER)
@pytest.mark.parametrize("series", ["scan", "slam_bucket_rao"])
def test_scaling_in_n(benchmark, series, n):
    raster = Raster(_REGION, *FIXED_SIZE)
    xy = _POINTS[n]
    benchmark.group = "table1 scaling in n"
    if series == "scan":
        fn = lambda: scan_grid(xy, raster, _KERNEL, _BANDWIDTH)
    else:
        fn = lambda: with_rao(slam_bucket_grid["numpy"])(xy, raster, _KERNEL, _BANDWIDTH)
    _times[(series, "n", n)] = run_cell(benchmark, fn)


@pytest.mark.parametrize("x", X_LADDER)
@pytest.mark.parametrize("series", ["scan", "slam_bucket_rao"])
def test_scaling_in_resolution(benchmark, series, x):
    raster = Raster(_REGION, x, (x * 3) // 4)
    xy = _POINTS[FIXED_N]
    benchmark.group = "table1 scaling in X"
    if series == "scan":
        fn = lambda: scan_grid(xy, raster, _KERNEL, _BANDWIDTH)
    else:
        fn = lambda: with_rao(slam_bucket_grid["numpy"])(xy, raster, _KERNEL, _BANDWIDTH)
    _times[(series, "X", x)] = run_cell(benchmark, fn)


@pytest.mark.parametrize("mode", ["rao_off", "rao_on"])
def test_rao_ablation_portrait(benchmark, mode):
    raster = Raster(Region(0, 0, 1_000.0, 13_000.0), *PORTRAIT)
    xy = np.column_stack(
        [_rng.uniform(0, 1_000, FIXED_N), _rng.uniform(0, 13_000, FIXED_N)]
    )
    base = slam_bucket_grid["numpy"]
    fn_grid = with_rao(base) if mode == "rao_on" else base
    benchmark.group = "table1 RAO ablation"
    fn = lambda: fn_grid(xy, raster, _KERNEL, 100.0)
    _times[(mode, "portrait", PORTRAIT[1])] = run_cell(benchmark, fn)


@pytest.mark.parametrize("engine", ["python", "numpy"])
def test_engine_ablation(benchmark, engine):
    raster = Raster(_REGION, 64, 48)
    xy = _POINTS[FIXED_N]
    benchmark.group = "table1 engine ablation"
    fn = lambda: slam_bucket_grid[engine](xy, raster, _KERNEL, _BANDWIDTH)
    _times[(f"engine_{engine}", "n", FIXED_N)] = run_cell(benchmark, fn)


if __name__ == "__main__":
    from _common import pytest_script_main

    raise SystemExit(pytest_script_main(__file__))
