"""Paper Figure 16: exploratory operations — zooming (a, b) and panning (c, d).

Protocol, following Section 4.2 exactly:

* datasets Seattle and Los Angeles, restricted by a time-based filter to one
  year of events (the paper uses calendar 2019; our synthetic clock spans
  four years and we take the second);
* fixed resolution per frame;
* zooming: the city MBR scaled by ratios 1 / 0.75 / 0.5 / 0.25 around its
  center — smaller ratio = denser pixels = more work for every method except
  SCAN;
* panning: five random half-size rectangles inside the MBR; the reported
  time is the mean frame time over the five viewports.

The headline claim reproduced here: SLAM_BUCKET^(RAO) renders every
exploratory frame fastest, in near-real-time, which the competitors cannot.
"""

from __future__ import annotations

import time

import pytest

from _common import emit_json, grid_fn, run_cell, skip_if_over_budget, write_report
from repro.bench.harness import TIMEOUT, format_series
from repro.bench.workloads import ZOOM_RATIOS, base_resolution
from repro.core.kernels import get_kernel
from repro.viz.explore import random_pan_regions
from repro.viz.region import Raster, Region

FIG_METHODS = ["scan", "rqs_kd", "zorder", "quad", "slam_bucket_rao"]
FIG_DATASETS = ["seattle", "los_angeles"]

YEAR_SECONDS = 365.25 * 24 * 3600.0

_zoom_cells: dict[tuple[str, str, float], float] = {}
_pan_cells: dict[tuple[str, str], float] = {}
_STARTED = time.perf_counter()


@pytest.fixture(scope="session")
def year_filtered(datasets):
    """Second synthetic year of events, as the paper filters to 2019."""
    return {
        name: datasets[name].filter_time(YEAR_SECONDS, 2 * YEAR_SECONDS)
        for name in FIG_DATASETS
    }


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not (_zoom_cells or _pan_cells):
        return
    sections = []
    for dataset in FIG_DATASETS:
        series = {
            m: [_zoom_cells.get((m, dataset, r), TIMEOUT) for r in ZOOM_RATIOS]
            for m in FIG_METHODS
        }
        sections.append(
            format_series(
                "zoom ratio",
                list(ZOOM_RATIOS),
                series,
                title=f"Figure 16 zoom ({dataset}): time (s) per frame",
            )
        )
    for dataset in FIG_DATASETS:
        series = {
            m: [_pan_cells.get((m, dataset), TIMEOUT)] for m in FIG_METHODS
        }
        sections.append(
            format_series(
                "",
                ["mean over 5 pans"],
                series,
                title=f"Figure 16 pan ({dataset}): time (s) per frame",
            )
        )
    write_report("fig16_explore", "\n\n".join(sections))
    cells = {("zoom", m, d, r): v for (m, d, r), v in _zoom_cells.items()}
    cells.update({("pan", m, d, "mean5"): v for (m, d), v in _pan_cells.items()})
    emit_json(
        "fig16_explore",
        cells,
        title="Figure 16: exploratory zoom/pan frame time (s)",
        key_fields=["operation", "method", "dataset", "parameter"],
        started=_STARTED,
    )


@pytest.mark.parametrize("ratio", ZOOM_RATIOS, ids=lambda r: f"zoom{r}")
@pytest.mark.parametrize("dataset_name", FIG_DATASETS)
@pytest.mark.parametrize("method", FIG_METHODS)
def test_fig16_zoom(benchmark, year_filtered, bandwidths, method, dataset_name, ratio):
    points = year_filtered[dataset_name]
    size = base_resolution()
    skip_if_over_budget(method, size[0], size[1], len(points))
    region = Region.from_points(points.xy).scaled(ratio)
    raster = Raster(region, *size)
    benchmark.group = f"fig16 zoom {dataset_name}"
    fn = grid_fn(
        method,
        points.xy,
        raster,
        get_kernel("epanechnikov"),
        bandwidths[dataset_name],
    )
    _zoom_cells[(method, dataset_name, ratio)] = run_cell(benchmark, fn)


@pytest.mark.parametrize("dataset_name", FIG_DATASETS)
@pytest.mark.parametrize("method", FIG_METHODS)
def test_fig16_pan(benchmark, year_filtered, bandwidths, method, dataset_name):
    points = year_filtered[dataset_name]
    size = base_resolution()
    skip_if_over_budget(method, size[0], size[1], len(points))
    base = Region.from_points(points.xy)
    regions = random_pan_regions(base, count=5, size_ratio=0.5, seed=16)
    kernel = get_kernel("epanechnikov")
    bandwidth = bandwidths[dataset_name]
    calls = [
        grid_fn(method, points.xy, Raster(region, *size), kernel, bandwidth)
        for region in regions
    ]

    def all_pans():
        for call in calls:
            call()

    benchmark.group = f"fig16 pan {dataset_name}"
    total = run_cell(benchmark, all_pans)
    _pan_cells[(method, dataset_name)] = total / len(regions)


if __name__ == "__main__":
    from _common import pytest_script_main

    raise SystemExit(pytest_script_main(__file__))
