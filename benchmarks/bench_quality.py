"""Quality-ladder shootout: latency vs measured error per serving tier.

Times one full frame through each tier of the serving ladder
(:mod:`repro.serve.quality`) — ``exact``, ``pyramid:<k>``,
``coreset:<m>`` — on the clustered benchmark workload, and measures each
degraded frame's relative L-infinity error against the exact render.
This is the operator-facing trade-off behind ``docs/quality.md``: what a
request pays (latency) and loses (accuracy) at every rung the server can
degrade to under load.

Shared indexes (the y-sorted envelope index and the Z-order permutation)
are prebuilt outside the timed region, mirroring the serving path where
both are cached once per ingest generation.

The headline acceptance cell is the cheapest configured tier vs ``exact``
at 1280x960, n = 100k, which should reach >= 10x — the floor that makes
degrade-don't-503 worthwhile.

Knobs (environment variables, all optional):

``REPRO_BENCH_QUALITY_SIZE``
    Frame size as ``WxH`` (default ``1280x960``).
``REPRO_BENCH_QUALITY_N``
    Point count (default ``100000``).
``REPRO_BENCH_QUALITY_TIERS``
    Comma-separated tier names (default
    ``exact,pyramid:1,pyramid:2,coreset:4096,coreset:1024``).
``REPRO_BENCH_QUALITY_BANDWIDTH``
    Bandwidth in world units (default ``200``).
``REPRO_BENCH_QUALITY_REPEATS``
    Timing repeats per cell; the minimum is reported (default ``2``).

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_quality.py -q -s

or script mode (no pytest)::

    PYTHONPATH=src python benchmarks/bench_quality.py --json out/
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from _common import emit_json, write_report
from repro.bench.harness import format_table
from repro.bench.metrics import relative_linf
from repro.core.api import compute_kdv
from repro.core.envelope import YSortedIndex
from repro.index.zorder_curve import zorder_argsort
from repro.serve.quality import coreset_grid, parse_tier, pyramid_grid
from repro.viz.region import Region

WORLD = Region(0.0, 0.0, 10_000.0, 7_500.0)

_cells: dict[tuple[str, str, int], float] = {}
_errors: dict[str, float] = {}
_STARTED = time.perf_counter()


def _size() -> tuple[int, int]:
    raw = os.environ.get("REPRO_BENCH_QUALITY_SIZE", "1280x960")
    width, _, height = raw.partition("x")
    return int(width), int(height)


def _n_points() -> int:
    return int(os.environ.get("REPRO_BENCH_QUALITY_N", "100000"))


def _tiers() -> tuple[str, ...]:
    raw = os.environ.get(
        "REPRO_BENCH_QUALITY_TIERS",
        "exact,pyramid:1,pyramid:2,coreset:4096,coreset:1024",
    )
    return tuple(name.strip() for name in raw.split(",") if name.strip())


def _bandwidth() -> float:
    return float(os.environ.get("REPRO_BENCH_QUALITY_BANDWIDTH", "200"))


def _repeats() -> int:
    return max(1, int(os.environ.get("REPRO_BENCH_QUALITY_REPEATS", "2")))


def build_workload(n: int):
    """Clustered points over the paper-shaped region, shared indexes
    prebuilt (the serving path caches both per ingest generation)."""
    rng = np.random.default_rng(20220613)
    centers = rng.uniform((0.0, 0.0), (10_000.0, 7_500.0), (32, 2))
    xy = centers[rng.integers(0, 32, n)] + rng.normal(0.0, 400.0, (n, 2))
    return xy, YSortedIndex(xy), zorder_argsort(xy)


def render_tier(tier_name: str, xy, ysorted, order) -> np.ndarray:
    """One full frame through one serving tier."""
    tier = parse_tier(tier_name)
    size = _size()
    bandwidth = _bandwidth()
    if tier.kind == "exact":
        return compute_kdv(
            xy, region=WORLD, size=size, bandwidth=bandwidth,
            normalization="none", ysorted=ysorted,
        ).grid
    if tier.kind == "pyramid":
        return pyramid_grid(
            xy, WORLD, size, level=tier.param, bandwidth=bandwidth,
        )
    return coreset_grid(
        xy, WORLD, size, sample_size=tier.param, bandwidth=bandwidth,
        order=order,
    )


def timed_cell(tier_name: str, xy, ysorted, order) -> tuple[float, np.ndarray]:
    """(min wall seconds, frame) for one tier."""
    best, frame = float("inf"), None
    for _ in range(_repeats()):
        t0 = time.perf_counter()
        frame = render_tier(tier_name, xy, ysorted, order)
        best = min(best, time.perf_counter() - t0)
    return best, frame


def _resolution() -> str:
    width, height = _size()
    return f"{width}x{height}"


def _report_meta() -> dict:
    width, height = _size()
    n = _n_points()
    meta = {
        "resolution": [width, height],
        "n": n,
        "bandwidth": _bandwidth(),
        "repeats": _repeats(),
        "rel_linf": dict(_errors),
    }
    exact_t = _cells.get(("exact", _resolution(), n))
    if exact_t:
        meta["speedup_vs_exact"] = {
            tier: exact_t / seconds
            for (tier, _res, _n), seconds in _cells.items()
        }
        cheapest = min(_cells, key=_cells.get)
        meta["headline_cell"] = {
            "tier": cheapest[0],
            "speedup_vs_exact": exact_t / _cells[cheapest],
            "rel_linf": _errors.get(cheapest[0], 0.0),
        }
    return meta


def _title() -> str:
    width, height = _size()
    return (
        f"Quality-ladder latency vs error ({width}x{height}, "
        f"n={_n_points():,}, b={_bandwidth():g}, min of {_repeats()})"
    )


def _emit_reports() -> None:
    if not _cells:
        return
    n = _n_points()
    exact_t = _cells.get(("exact", _resolution(), n))
    headers = ["tier", "seconds", "vs exact", "rel_linf"]
    rows = []
    for tier in _tiers():
        seconds = _cells.get((tier, _resolution(), n))
        if seconds is None:
            continue
        rel = f"{exact_t / seconds:.1f}x" if exact_t else "-"
        err = _errors.get(tier)
        rows.append([
            tier, f"{seconds:.3f}", rel,
            "0" if tier == "exact" else (f"{err:.4f}" if err is not None else "-"),
        ])
    write_report("quality", format_table(headers, rows, title=_title()))
    emit_json(
        "quality",
        _cells,
        title=_title(),
        key_fields=["tier", "resolution", "n"],
        meta=_report_meta(),
        started=_STARTED,
    )


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    _emit_reports()


@pytest.fixture(scope="module")
def workload():
    xy, ysorted, order = build_workload(_n_points())
    exact_t, exact = timed_cell("exact", xy, ysorted, order)
    _cells[("exact", _resolution(), _n_points())] = exact_t
    return xy, ysorted, order, exact


@pytest.mark.parametrize("tier", [t for t in _tiers() if t != "exact"])
def test_tier_cell(benchmark, workload, tier):
    xy, ysorted, order, exact = workload
    result = {}

    def call():
        result["cell"] = timed_cell(tier, xy, ysorted, order)

    benchmark.pedantic(call, rounds=1, iterations=1, warmup_rounds=0)
    seconds, frame = result["cell"]
    _cells[(tier, _resolution(), _n_points())] = seconds
    _errors[tier] = relative_linf(frame, exact)


def main(argv: "list[str] | None" = None) -> int:
    """Script mode: run the tier grid directly (no pytest) and write
    ``BENCH_quality.json``::

        PYTHONPATH=src python benchmarks/bench_quality.py --json out/
    """
    import argparse

    parser = argparse.ArgumentParser(description=main.__doc__)
    parser.add_argument(
        "--json",
        metavar="DIR",
        default=None,
        help="output directory for BENCH_quality.json (default: benchmarks/out)",
    )
    ns = parser.parse_args(argv)
    if ns.json:
        os.environ["REPRO_BENCH_JSON"] = ns.json

    n = _n_points()
    xy, ysorted, order = build_workload(n)
    exact = None
    tiers = _tiers()
    if "exact" not in tiers:
        tiers = ("exact", *tiers)
    for tier in tiers:
        seconds, frame = timed_cell(tier, xy, ysorted, order)
        _cells[(tier, _resolution(), n)] = seconds
        if tier == "exact":
            exact = frame
        elif exact is not None:
            _errors[tier] = relative_linf(frame, exact)
        err = _errors.get(tier)
        print(f"{tier:14s} {seconds:7.3f}s"
              + (f"  rel_linf={err:.4f}" if err is not None else ""))
    _emit_reports()
    headline = _report_meta().get("headline_cell")
    if headline:
        print(f"\ncheapest tier {headline['tier']}: "
              f"{headline['speedup_vs_exact']:.1f}x vs exact "
              f"(rel_linf {headline['rel_linf']:.4f})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
