"""Accuracy/efficiency trade-off of the approximate methods vs exact SLAM.

Not a numbered paper artifact, but the quantitative backbone of the paper's
introduction: approximate methods (Z-order sampling, aKDE) buy speed with
error, while SLAM gets exactness *and* the lowest time.  Each row reports a
method configuration's wall time alongside its relative L-infinity error,
hotspot-overlap Jaccard, and peak displacement against the exact grid.
"""

from __future__ import annotations

import time

import pytest

from _common import emit_json, grid_fn, run_cell, write_report
from repro.bench.harness import format_table
from repro.bench.metrics import hotspot_jaccard, peak_displacement, relative_linf
from repro.bench.workloads import base_resolution, bench_raster
from repro.core.kernels import get_kernel

_DATASET = "new_york"

CONFIGS = [
    ("zorder", {"sample_size": 100}),
    ("zorder", {"sample_size": 1_000}),
    ("zorder", {"sample_size": 10_000}),
    ("akde", {"tolerance": 1e-1}),
    ("akde", {"tolerance": 1e-2}),
    ("akde", {"tolerance": 1e-3}),
    ("akde_dual", {"tolerance": 1e-2}),
    ("binned_fft", {"linear_binning": True}),
    ("binned_fft", {"linear_binning": False}),
    ("slam_bucket_rao", {}),
]

_rows: list[list] = []
_exact_holder: dict = {}
_STARTED = time.perf_counter()


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _rows:
        return
    write_report(
        "accuracy_tradeoff",
        format_table(
            ["config", "seconds", "rel Linf err", "hotspot Jaccard", "peak shift (px)"],
            _rows,
            title=f"Accuracy vs time ({_DATASET}, Epanechnikov, default bandwidth)",
        ),
    )
    report_cells = {}
    extras = {}
    for config, seconds, linf, jaccard, shift in _rows:
        report_cells[(config,)] = seconds
        extras[config] = {
            "relative_linf": float(linf),
            "hotspot_jaccard": float(jaccard),
            "peak_displacement_px": float(shift),
        }
    emit_json(
        "accuracy_tradeoff",
        report_cells,
        title=f"Accuracy vs time ({_DATASET})",
        key_fields=["config"],
        meta={"accuracy": extras, "dataset": _DATASET},
        started=_STARTED,
    )


def _config_id(cfg):
    method, kwargs = cfg
    suffix = ",".join(f"{k}={v}" for k, v in kwargs.items())
    return f"{method}({suffix})" if suffix else method


@pytest.mark.parametrize("config", CONFIGS, ids=_config_id)
def test_accuracy_tradeoff(benchmark, datasets, bandwidths, config):
    method, kwargs = config
    points = datasets[_DATASET]
    raster = bench_raster(points, base_resolution())
    kernel = get_kernel("epanechnikov")
    bandwidth = bandwidths[_DATASET]

    if "exact" not in _exact_holder:
        _exact_holder["exact"] = grid_fn(
            "slam_bucket_rao", points.xy, raster, kernel, bandwidth
        )()
    exact = _exact_holder["exact"]

    if "sample_size" in kwargs:
        # zorder_grid rejects sample_size > n; at small REPRO_BENCH_SCALE the
        # larger configured samples degenerate to the full (exact) dataset
        kwargs = {**kwargs, "sample_size": min(kwargs["sample_size"], len(points.xy))}
    fn = grid_fn(method, points.xy, raster, kernel, bandwidth, **kwargs)
    benchmark.group = "accuracy tradeoff"
    seconds = run_cell(benchmark, fn)
    grid = fn()
    _rows.append(
        [
            _config_id(config),
            seconds,
            relative_linf(grid, exact),
            hotspot_jaccard(grid, exact),
            peak_displacement(grid, exact),
        ]
    )


if __name__ == "__main__":
    from _common import pytest_script_main

    raise SystemExit(pytest_script_main(__file__))
