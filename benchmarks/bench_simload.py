"""Capacity planning by deterministic simulation (``repro.simload``).

Runs an open-loop load sweep of one simulated scenario against the real
in-process :class:`repro.serve.TileService` on a virtual clock: the same
seeded workload is replayed at stepped offered-load levels, and every
latency is derived from the scenario's cost model rather than the wall
clock — so the whole sweep finishes in seconds of real time, produces
byte-identical numbers on any host, and still exercises the service's real
coalescing/backpressure/degradation logic (see ``docs/simload.md``).

Per offered level the report records offered vs. achieved rps, p50/p99
virtual latency, cache hit rate, coalesce rate, the shed (503/504)
fraction, per-quality-tier serve counts, and window tick stats; the meta
block carries the capacity knee — the highest offered rate whose shed
fraction stays at or below 1%.

Knobs (environment variables, all optional):

``REPRO_BENCH_SIMLOAD_SCENARIO``  scenario name (default ``default``)
``REPRO_BENCH_SIMLOAD_SEED``      workload seed (default 7)
``REPRO_BENCH_SIMLOAD_DURATION``  virtual seconds per level (scenario's own
                                  duration when unset)

Run with::

    PYTHONPATH=src python benchmarks/bench_simload.py --json out/
"""

from __future__ import annotations

import dataclasses
import os

from repro.simload import get_scenario, sweep

_FACTORS = (0.25, 0.5, 1.0, 2.0, 4.0)
_SHED_THRESHOLD = 0.01

#: per-level metric-block fields mirrored into report cells
_CELL_FIELDS = (
    "offered_rps",
    "achieved_rps",
    "shed_fraction",
    "shed_503",
    "shed_504",
    "latency_p50_s",
    "latency_p99_s",
    "cache_hit_rate",
    "coalesce_rate",
    "renders",
    "window_ticks",
)


def run_simload_bench(
    scenario_name: str, seed: int, duration_s: "float | None" = None
) -> dict:
    """One sweep; returns the summary dict ``repro.simload.sweep`` built."""
    scenario = get_scenario(scenario_name)
    if duration_s is not None:
        scenario = dataclasses.replace(scenario, duration_s=duration_s)
    return sweep(
        scenario, seed=seed, factors=_FACTORS, shed_threshold=_SHED_THRESHOLD
    )


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    from _common import json_dir, write_report
    from repro.bench.report import BenchReport

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="output directory for BENCH_simload.json "
                             "(default: benchmarks/out)")
    parser.add_argument("--scenario",
                        default=os.environ.get(
                            "REPRO_BENCH_SIMLOAD_SCENARIO", "default"))
    parser.add_argument("--seed", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_SIMLOAD_SEED", "7")))
    parser.add_argument("--duration", type=float,
                        default=(
                            float(os.environ["REPRO_BENCH_SIMLOAD_DURATION"])
                            if "REPRO_BENCH_SIMLOAD_DURATION" in os.environ
                            else None
                        ),
                        help="virtual seconds per level (default: the "
                             "scenario's own duration)")
    ns = parser.parse_args(argv)
    if ns.json:
        os.environ["REPRO_BENCH_JSON"] = ns.json

    summary = run_simload_bench(ns.scenario, ns.seed, ns.duration)
    title = (
        f"Simulated capacity sweep: scenario={ns.scenario} seed={ns.seed}, "
        f"offered x{_FACTORS} (virtual time)"
    )
    lines = [title, "-" * len(title),
             f"{'offered':>9s} {'achieved':>9s} {'shed':>8s} "
             f"{'p50 s':>8s} {'p99 s':>8s} {'hit':>7s}"]
    for rate, block in summary["levels"]:
        lines.append(
            f"{rate:9.2f} {block['achieved_rps']:9.2f} "
            f"{block['shed_fraction']:8.4f} {block['latency_p50_s']:8.3f} "
            f"{block['latency_p99_s']:8.3f} {block['cache_hit_rate']:7.3f}"
        )
    knee = summary["knee"]
    lines.append(
        "knee: none — every level shed above threshold"
        if knee is None
        else f"knee: max sustainable {knee['max_sustainable_qps']:g} qps "
             f"(shed <= {_SHED_THRESHOLD:g}, next level sheds "
             f"{knee.get('shed_fraction_beyond', 0.0):.4f})"
    )
    write_report("simload", "\n".join(lines))

    report = BenchReport(
        "simload", title=title, unit="mixed",
        key_fields=["offered_rps", "metric"],
    )
    report.meta.update(
        scenario=ns.scenario,
        seed=ns.seed,
        factors=list(_FACTORS),
        shed_threshold=_SHED_THRESHOLD,
        knee=knee,
        virtual_time=True,
    )
    for rate, block in summary["levels"]:
        for field in _CELL_FIELDS:
            report.add_cell((f"{rate:g}", field), float(block[field]))
        for tier, count in block["tiers"].items():
            report.add_cell((f"{rate:g}", f"tier:{tier}"), float(count))
    path = report.write(json_dir())
    print(f"\n[bench report: {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
