"""Paper Figure 19: uniform & quartic kernels, time vs dataset size (LA & SF).

Companion to Figure 18 along the dataset-size axis: SLAM_BUCKET^(RAO)
achieves one-to-two-order-of-magnitude speedups over the competitors at
every sample fraction for both kernels.
"""

from __future__ import annotations

import time

import pytest

from _common import emit_json, grid_fn, run_cell, skip_if_over_budget, write_report
from repro.bench.harness import TIMEOUT, format_series
from repro.bench.workloads import SIZE_FRACTIONS, base_resolution, bench_raster
from repro.core.kernels import get_kernel
from repro.data.sampling import sample_without_replacement

FIG_METHODS = ["scan", "zorder", "quad", "slam_bucket_rao"]
FIG_DATASETS = ["los_angeles", "san_francisco"]
FIG_KERNELS = ["uniform", "quartic"]

_cells: dict[tuple[str, str, str, float], float] = {}
_STARTED = time.perf_counter()


@pytest.fixture(scope="session")
def samples(datasets):
    return {
        (name, fraction): sample_without_replacement(
            datasets[name], fraction, seed=0
        )
        for name in FIG_DATASETS
        for fraction in SIZE_FRACTIONS
    }


@pytest.fixture(scope="module", autouse=True)
def _report():
    yield
    if not _cells:
        return
    sections = []
    for kernel_name in FIG_KERNELS:
        for dataset in FIG_DATASETS:
            series = {
                m: [
                    _cells.get((m, dataset, kernel_name, f), TIMEOUT)
                    for f in SIZE_FRACTIONS
                ]
                for m in FIG_METHODS
            }
            sections.append(
                format_series(
                    "fraction",
                    [f"{int(f * 100)}%" for f in SIZE_FRACTIONS],
                    series,
                    title=(
                        f"Figure 19 ({dataset}, {kernel_name} kernel): "
                        "time (s) vs dataset size"
                    ),
                )
            )
    write_report("fig19_kernels_datasize", "\n\n".join(sections))
    emit_json(
        "fig19_kernels_datasize",
        _cells,
        title="Figure 19: time (s) vs dataset size, uniform & quartic kernels",
        key_fields=["method", "dataset", "kernel", "fraction"],
        started=_STARTED,
    )


@pytest.mark.parametrize("fraction", SIZE_FRACTIONS, ids=lambda f: f"{int(f*100)}pct")
@pytest.mark.parametrize("kernel_name", FIG_KERNELS)
@pytest.mark.parametrize("dataset_name", FIG_DATASETS)
@pytest.mark.parametrize("method", FIG_METHODS)
def test_fig19(
    benchmark, samples, bandwidths, method, dataset_name, kernel_name, fraction
):
    points = samples[(dataset_name, fraction)]
    size = base_resolution()
    skip_if_over_budget(method, size[0], size[1], len(points))
    raster = bench_raster(points, size)
    benchmark.group = f"fig19 {dataset_name} {kernel_name}"
    fn = grid_fn(
        method,
        points.xy,
        raster,
        get_kernel(kernel_name),
        bandwidths[dataset_name],
    )
    _cells[(method, dataset_name, kernel_name, fraction)] = run_cell(benchmark, fn)


if __name__ == "__main__":
    from _common import pytest_script_main

    raise SystemExit(pytest_script_main(__file__))
