"""Tile-serving throughput/latency under concurrent clients.

Drives :class:`repro.serve.TileService` in-process (no sockets, so the
numbers measure the service, not the TCP stack) with a pool of client
threads replaying a pan/zoom-shaped request mix: tile popularity is skewed
the way map traffic is, most requests land on a hot neighborhood, the tail
wanders.  Reports offered vs. achieved throughput (open-loop honesty: the
rate clients asked for and the rate of successful answers are different
numbers once the service sheds), p50/p99 latency, the single-flight
coalescing ratio, and the cache hit rate, and writes the machine-readable
``BENCH_serving.json`` through :class:`repro.bench.report.BenchReport`.

Knobs (environment variables, all optional):

``REPRO_BENCH_SERVE_N``         dataset size (default 20_000 points)
``REPRO_BENCH_SERVE_REQUESTS``  total requests (default 2_000)
``REPRO_BENCH_SERVE_CLIENTS``   concurrent client threads (default 16)
``REPRO_BENCH_SERVE_TILE``      tile resolution in pixels (default 128)
``REPRO_BENCH_SERVE_SEED``      request-mix RNG seed (default 99)

Run with::

    PYTHONPATH=src python benchmarks/bench_serving.py --json out/
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.obs import Recorder
from repro.serve import ServiceOverloaded, ServiceTimeout, TileService

MAX_ZOOM = 3  # 1 + 4 + 16 + 64 = 85 distinct tiles


def _knob(name: str, default: int) -> int:
    return int(os.environ.get(name, str(default)))


def _build_points(n: int) -> np.ndarray:
    rng = np.random.default_rng(20220613)
    centers = rng.uniform((0.0, 0.0), (10_000.0, 10_000.0), (24, 2))
    assignments = rng.integers(0, len(centers), n)
    return centers[assignments] + rng.normal(0.0, 350.0, (n, 2))


def _request_mix(requests: int, seed: int = 99) -> list[tuple[int, int, int]]:
    """A skewed (zoom, tx, ty) sequence: hot tiles dominate, as on real maps."""
    rng = np.random.default_rng(seed)
    keys: list[tuple[int, int, int]] = []
    for _ in range(requests):
        zoom = int(rng.choice([0, 1, 2, 2, 3, 3, 3]))
        per_axis = 1 << zoom
        if rng.random() < 0.7:  # the hot neighborhood: low tile indices
            tx = int(rng.integers(0, max(per_axis // 2, 1)))
            ty = int(rng.integers(0, max(per_axis // 2, 1)))
        else:
            tx = int(rng.integers(0, per_axis))
            ty = int(rng.integers(0, per_axis))
        keys.append((zoom, tx, ty))
    return keys


def run_serving_bench(
    n_points: int,
    requests: int,
    clients: int,
    tile_size: int,
    workers: int = 4,
    cache_tiles: int = 64,
    seed: int = 99,
) -> dict:
    """Run the workload; returns the metric dict the report cells mirror."""
    recorder = Recorder()
    service = TileService(
        _build_points(n_points),
        tile_size=tile_size,
        bandwidth=400.0,
        max_zoom=MAX_ZOOM,
        workers=workers,
        queue_limit=max(4 * workers, 16),
        cache_tiles=cache_tiles,
        recorder=recorder,
    )
    mix = _request_mix(requests, seed=seed)
    latencies: list[float] = []
    outcomes = {"ok": 0, "overload": 0, "deadline": 0}

    def client(keys: list[tuple[int, int, int]]) -> list[float]:
        times = []
        for key in keys:
            start = time.perf_counter()
            try:
                service.get_tile(*key)
                outcomes["ok"] += 1  # GIL-atomic int bump
            except ServiceOverloaded:
                outcomes["overload"] += 1
                continue
            except ServiceTimeout:
                outcomes["deadline"] += 1
                continue
            times.append(time.perf_counter() - start)
        return times

    shards = [mix[i::clients] for i in range(clients)]
    wall_start = time.perf_counter()
    with ThreadPoolExecutor(max_workers=clients) as pool:
        for result in pool.map(client, shards):
            latencies.extend(result)
    wall = time.perf_counter() - wall_start
    service.close()

    lat_ms = np.sort(np.array(latencies)) * 1e3
    leaders = recorder.counter_value("serve.coalesce.leaders")
    joined = recorder.counter_value("serve.coalesce.joined")
    hits = recorder.counter_value("tiles.cache.hits")
    misses = recorder.counter_value("tiles.cache.misses")
    return {
        "metrics": {
            "requests": float(requests),
            "completed": float(outcomes["ok"]),
            "rejected_overload": float(outcomes["overload"]),
            "rejected_deadline": float(outcomes["deadline"]),
            # open-loop honesty: the rate the clients pushed vs. the rate of
            # successful answers — one number hides shedding
            "offered_rps": requests / wall if wall > 0 else 0.0,
            "achieved_rps": outcomes["ok"] / wall if wall > 0 else 0.0,
            "latency_p50_ms": float(np.percentile(lat_ms, 50)) if len(lat_ms) else 0.0,
            "latency_p99_ms": float(np.percentile(lat_ms, 99)) if len(lat_ms) else 0.0,
            "latency_mean_ms": float(lat_ms.mean()) if len(lat_ms) else 0.0,
            "coalescing_ratio": joined / (joined + leaders) if joined + leaders else 0.0,
            "cache_hit_rate": hits / (hits + misses) if hits + misses else 0.0,
            "renders": float(recorder.timer("tiles.render").calls),
            "wall_s": wall,
        },
        "recorder": recorder,
    }


def main(argv: "list[str] | None" = None) -> int:
    import argparse

    from _common import json_dir, write_report
    from repro.bench.report import BenchReport

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--json", metavar="DIR", default=None,
                        help="output directory for BENCH_serving.json "
                             "(default: benchmarks/out)")
    parser.add_argument("--points", type=int,
                        default=_knob("REPRO_BENCH_SERVE_N", 20_000))
    parser.add_argument("--requests", type=int,
                        default=_knob("REPRO_BENCH_SERVE_REQUESTS", 2_000))
    parser.add_argument("--clients", type=int,
                        default=_knob("REPRO_BENCH_SERVE_CLIENTS", 16))
    parser.add_argument("--tile-size", type=int,
                        default=_knob("REPRO_BENCH_SERVE_TILE", 128))
    parser.add_argument("--workers", type=int, default=4,
                        help="render pool threads (default 4)")
    parser.add_argument("--seed", type=int,
                        default=_knob("REPRO_BENCH_SERVE_SEED", 99),
                        help="request-mix RNG seed (default 99)")
    ns = parser.parse_args(argv)
    if ns.json:
        os.environ["REPRO_BENCH_JSON"] = ns.json

    outcome = run_serving_bench(
        ns.points, ns.requests, ns.clients, ns.tile_size, workers=ns.workers,
        seed=ns.seed,
    )
    metrics = outcome["metrics"]
    title = (
        f"Tile serving: {ns.requests} requests from {ns.clients} clients, "
        f"{ns.points:,} points, {ns.tile_size}px tiles, {ns.workers} workers"
    )
    lines = [title, "-" * len(title)]
    for name, value in metrics.items():
        lines.append(f"{name:20s} {value:12.3f}")
    write_report("serving", "\n".join(lines))

    report = BenchReport("serving", title=title, unit="mixed", key_fields=["metric"])
    report.meta.update(
        n_points=ns.points,
        requests=ns.requests,
        clients=ns.clients,
        tile_size=ns.tile_size,
        workers=ns.workers,
        seed=ns.seed,
        max_zoom=MAX_ZOOM,
    )
    for name, value in metrics.items():
        report.add_cell((name,), value)
    report.attach_recorder(outcome["recorder"])
    path = report.write(json_dir())
    print(f"\n[bench report: {path}]")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
