"""Traffic accident hotspot analysis (the paper's Figure 1 scenario).

Run:  python examples/traffic_hotspots.py

Uses the New York traffic-accident stand-in dataset to:

1. render city-wide and zoomed hotspot maps (Upper/Lower-Manhattan style
   sub-regions),
2. show how the bandwidth controls smoothing (the Figure 15 sweep),
3. compare the three exact kernels (uniform / Epanechnikov / quartic) on the
   same data — different smoothness, same hotspot locations.
"""

import numpy as np

from repro import Region, compute_kdv, load_dataset, scaled_bandwidth
from repro.viz.image import ascii_preview


def top_hotspot_coords(result, count: int = 3) -> list[tuple[float, float]]:
    """World coordinates of the densest pixels (a blackspot shortlist)."""
    grid = result.grid
    flat = np.argsort(grid.ravel())[::-1][:count]
    ys, xs = np.unravel_index(flat, grid.shape)
    raster = result.raster
    return [
        (
            raster.region.xmin + (x + 0.5) * raster.gx,
            raster.region.ymin + (y + 0.5) * raster.gy,
        )
        for x, y in zip(xs, ys)
    ]


def main() -> None:
    points = load_dataset("new_york", scale=0.01)  # ~15k accidents
    print(f"dataset: {points.name}, n = {len(points):,}")

    # -- 1. city-wide map and two zoomed districts ---------------------------
    city = compute_kdv(points, size=(240, 180))
    print("\ncity-wide accident density:")
    print(ascii_preview(city.grid_image(), width=64, height=16))

    base = Region.from_points(points.xy)
    districts = {
        "uptown (north-east quarter)": Region(
            base.center[0], base.center[1], base.xmax, base.ymax
        ),
        "downtown (south-west quarter)": Region(
            base.xmin, base.ymin, base.center[0], base.center[1]
        ),
    }
    for name, region in districts.items():
        district = compute_kdv(
            points, region=region, size=(240, 180), bandwidth=city.bandwidth
        )
        coords = top_hotspot_coords(district)
        print(f"\n{name}: top accident blackspots at")
        for cx, cy in coords:
            print(f"   ({cx:,.0f} m, {cy:,.0f} m)")

    # -- 2. bandwidth sweep ---------------------------------------------------
    print("\nbandwidth controls smoothing (fraction of pixels above half-max):")
    for ratio in (0.25, 1.0, 4.0):
        b = scaled_bandwidth(points.xy, ratio)
        res = compute_kdv(points, size=(160, 120), bandwidth=b)
        frac = float((res.grid > res.max_density() / 2).mean())
        print(f"   {ratio:>5.2f}x Scott (b = {b:7.1f} m): {frac:6.2%}")

    # -- 3. kernel comparison -------------------------------------------------
    print("\nkernels agree on where the hotspots are:")
    peaks = {}
    for kernel in ("uniform", "epanechnikov", "quartic"):
        res = compute_kdv(points, size=(160, 120), kernel=kernel)
        py, px = np.unravel_index(np.argmax(res.grid), res.grid.shape)
        peaks[kernel] = (int(py), int(px))
        print(f"   {kernel:13s} peak pixel at {peaks[kernel]}")
    spread = max(
        abs(a - b)
        for (ay, ax), (by, bx) in zip(peaks.values(), list(peaks.values())[1:])
        for a, b in ((ay, by), (ax, bx))
    )
    print(f"   peak locations within {spread} pixels of each other")


if __name__ == "__main__":
    main()
