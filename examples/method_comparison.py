"""Compare all ten KDV methods of the paper's Table 6 on one dataset.

Run:  python examples/method_comparison.py

Times every registered method on the Los Angeles stand-in at a laptop-scale
resolution, verifies the exact methods agree bit-for-bit-ish, and reports the
approximation error of the non-exact ones — a miniature of the paper's
Table 7 plus an accuracy column the paper argues qualitatively.
"""

import numpy as np

from repro import compute_kdv, load_dataset, method_names, scott_bandwidth
from repro.bench.harness import format_table, time_call


def main() -> None:
    points = load_dataset("los_angeles", scale=0.005)  # ~6.3k events
    bandwidth = scott_bandwidth(points.xy)
    size = (160, 120)
    print(
        f"dataset: {points.name}, n = {len(points):,}, "
        f"resolution {size[0]}x{size[1]}, b = {bandwidth:,.0f} m\n"
    )

    results = {}
    rows = []
    for method in method_names():
        seconds, res = time_call(
            lambda m=method: compute_kdv(
                points, size=size, bandwidth=bandwidth, method=m
            )
        )
        results[method] = res
        rows.append([method, seconds, "exact" if res.exact else "approx"])

    reference = results["scan"].grid
    for row in rows:
        grid = results[row[0]].grid
        max_err = float(np.abs(grid - reference).max())
        rel = max_err / reference.max() if reference.max() else 0.0
        row.append(f"{rel:.2e}")

    print(format_table(
        ["method", "seconds", "kind", "max rel err vs SCAN"],
        rows,
        title="All KDV methods, Epanechnikov kernel (Table 6/7 miniature)",
    ))

    slam = next(r for r in rows if r[0] == "slam_bucket_rao")
    scan = next(r for r in rows if r[0] == "scan")
    print(f"\nSLAM_BUCKET^(RAO) speedup over SCAN: {scan[1] / slam[1]:.1f}x")
    exact_errs = [float(r[3]) for r in rows if r[2] == "exact"]
    assert max(exact_errs) < 1e-8, "exact methods must agree"
    print("all exact methods agree with SCAN to < 1e-8 relative error")


if __name__ == "__main__":
    main()
