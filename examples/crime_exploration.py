"""Interactive-style crime hotspot exploration (the paper's Figure 2 loop).

Run:  python examples/crime_exploration.py

Criminologists iterate: look at the whole city, zoom into a precinct, filter
to one crime type, filter to one year, adjust the bandwidth — each step is a
fresh KDV.  This example drives an :class:`ExplorationSession` through that
loop on the Seattle stand-in dataset and prints the per-frame latency the
paper's Figure 16 experiments measure, demonstrating that SLAM keeps every
frame interactive.
"""

from repro import ExplorationSession, Region, load_dataset, random_pan_regions

YEAR_SECONDS = 365.25 * 24 * 3600.0


def show(title: str, result, session: ExplorationSession) -> None:
    frame = session.frames[-1]
    print(
        f"{title:42s} n={frame.n_points:>7,}  "
        f"peak={result.max_density():.3e}  {frame.seconds * 1000:7.1f} ms"
    )


def main() -> None:
    points = load_dataset("seattle", scale=0.02)  # ~17k crime events
    session = ExplorationSession(
        points,
        size=(320, 240),
        method="slam_bucket_rao",
        kernel="epanechnikov",
    )
    print(f"exploring {points.name}: n = {len(points):,}, "
          f"b = {session.bandwidth:.1f} m (Scott)\n")

    show("full city", session.render(), session)

    # zoom ladder, as in Figure 16a
    for ratio in (0.75, 0.5, 0.25):
        show(f"zoom to {ratio:.2f} of the city MBR", session.zoom(ratio), session)

    # pan around at half size, as in Figure 16c
    session.reset_view()
    base = Region.from_points(points.xy)
    for i, region in enumerate(random_pan_regions(base, count=3, seed=4)):
        show(f"pan to random half-size viewport #{i + 1}",
             session.pan_to(region), session)

    # attribute-based filtering: one crime category (e.g. robbery)
    session.reset_view()
    show("filter: category 0 only", session.filter_category(0), session)

    # time-based filtering: second year of the data
    show(
        "filter: events during year 2",
        session.filter_time(YEAR_SECONDS, 2 * YEAR_SECONDS),
        session,
    )
    session.clear_filters()

    # bandwidth selection
    show("bandwidth halved", session.set_bandwidth(session.bandwidth / 2), session)
    show("bandwidth doubled", session.set_bandwidth(session.bandwidth * 4), session)

    summary = session.latency_summary()
    print(
        f"\n{summary['frames']} frames, per-frame latency "
        f"min {summary['min'] * 1000:.1f} ms / "
        f"mean {summary['mean'] * 1000:.1f} ms / "
        f"max {summary['max'] * 1000:.1f} ms"
    )
    print("every frame was computed exactly (no sampling, no approximation)")


if __name__ == "__main__":
    main()
