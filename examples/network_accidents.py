"""Network KDV: accident blackspots measured along the road network.

Run:  python examples/network_accidents.py

Planar KDV (the paper's main subject) measures Euclidean distance, but
traffic accidents live *on roads*: two crash sites 10 m apart across a river
or a block of buildings are unrelated.  Network KDV (the paper's future-work
item [20]) replaces Euclidean with shortest-path distance.  This example:

1. builds a synthetic street grid with some blocks removed (a river/park);
2. scatters accidents clustered around two intersections;
3. computes NKDV and prints the top blackspot road segments;
4. contrasts with planar KDV to show the leakage network distance avoids.
"""

import numpy as np

from repro import Region, compute_kdv
from repro.network import compute_nkdv, street_grid
from repro.viz.image import ascii_preview, write_ppm


def main() -> None:
    rng = np.random.default_rng(7)
    net = street_grid(20, 15, spacing=120.0, removal_fraction=0.12, seed=5)
    print(f"street network: {net.num_nodes} intersections, "
          f"{net.num_edges} segments, {net.total_length() / 1000:.1f} km of road")

    # accidents: two hot intersections plus background noise, all snapped
    hot_a = np.array([6 * 120.0, 7 * 120.0])
    hot_b = np.array([14 * 120.0, 4 * 120.0])
    accidents = np.vstack([
        hot_a + rng.normal(0, 90.0, (220, 2)),
        hot_b + rng.normal(0, 70.0, (160, 2)),
        rng.uniform((0, 0), (19 * 120.0, 14 * 120.0), (400, 2)),
    ])
    print(f"accidents: {len(accidents)}")

    result = compute_nkdv(
        net, accidents, lixel_length=30.0, kernel="epanechnikov", bandwidth=300.0
    )
    print(f"lixels evaluated: {len(result):,} "
          f"(30 m network resolution), peak density {result.max_density():.2f}")

    # top blackspot segments
    top = np.argsort(result.density)[::-1][:5]
    print("\ntop 5 blackspot lixels (network hotspots):")
    centers = result.lixels.center_points()
    for lix in top:
        cx, cy = centers[lix]
        print(f"  density {result.density[lix]:6.2f} at ({cx:7.1f}, {cy:7.1f}) m")

    # sanity: the top blackspot should be near one of the planted hotspots
    cx, cy = centers[top[0]]
    d = min(np.hypot(cx - hot_a[0], cy - hot_a[1]),
            np.hypot(cx - hot_b[0], cy - hot_b[1]))
    print(f"  -> {d:.0f} m from the nearest planted hotspot")

    # network vs planar: render both
    img = result.rasterize((96, 72))
    print("\nnetwork KDV (density exists only on roads):")
    print(ascii_preview(img[::-1], width=72, height=18))

    planar = compute_kdv(
        accidents,
        region=Region(0, 0, 19 * 120.0, 14 * 120.0),
        size=(96, 72),
        bandwidth=300.0,
        normalization="none",
    )
    print("planar KDV of the same events (density bleeds off-road):")
    print(ascii_preview(planar.grid_image(), width=72, height=18))

    frac_on_road = (img > 0).mean()
    frac_planar = (planar.grid > 0).mean()
    print(f"pixels with density: network {frac_on_road:.0%} vs planar {frac_planar:.0%}")

    write_ppm("network_blackspots.ppm", result.to_image((960, 720)))
    print("\nwrote network_blackspots.ppm")


if __name__ == "__main__":
    main()
