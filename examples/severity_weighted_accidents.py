"""Severity-weighted accident blackspots, multi-bandwidth, and progressive rendering.

Run:  python examples/severity_weighted_accidents.py

Transportation agencies rank road segments by accident *severity*, not just
counts: a fatal crash should weigh more than a fender-bender.  This example
shows three library extensions working together on the New York stand-in:

1. **weighted KDV** — per-event severity weights shift the top blackspot;
2. **multi-bandwidth batches** — one preprocessing pass, several smoothing
   scales (micro vs macro blackspots);
3. **progressive rendering** — exact coarse previews while the full
   resolution computes.
"""

import time

import numpy as np

from repro import compute_kdv, load_dataset
from repro.extensions import compute_multiband, progressive_kdv


def main() -> None:
    points = load_dataset("new_york", scale=0.01)
    rng = np.random.default_rng(99)
    # severity: 1 = property damage, 2 = injury, 5 = serious, 20 = fatal.
    # Crashes away from the congested center happen at highway speeds, so
    # the severe-outcome probability grows with distance from downtown —
    # the classic reason severity-weighted blackspots differ from count ones.
    center = points.xy.mean(axis=0)
    dist = np.linalg.norm(points.xy - center, axis=1)
    speed_factor = dist / dist.max()  # 0 downtown .. 1 at the city edge
    severity = np.empty(len(points))
    for i, f in enumerate(speed_factor):
        p_severe = 0.02 + 0.25 * f
        severity[i] = rng.choice(
            [1.0, 2.0, 5.0, 20.0],
            p=[0.75 - p_severe, 0.20, 0.05, p_severe],
        )
    print(f"dataset: {points.name}, n = {len(points):,}, "
          f"total severity mass = {severity.sum():,.0f}")

    # -- 1. counts vs severity ------------------------------------------------
    by_count = compute_kdv(points, size=(160, 120), normalization="none")
    by_severity = compute_kdv(
        points, size=(160, 120), weights=severity, normalization="none",
        bandwidth=by_count.bandwidth,
    )
    peak_count = np.unravel_index(np.argmax(by_count.grid), by_count.grid.shape)
    peak_sev = np.unravel_index(np.argmax(by_severity.grid), by_severity.grid.shape)
    print(f"\npeak pixel by count:    {tuple(int(v) for v in peak_count)}")
    print(f"peak pixel by severity: {tuple(int(v) for v in peak_sev)}")
    overlap = (
        by_count.hotspot_pixels(0.99) & by_severity.hotspot_pixels(0.99)
    ).sum() / max(by_count.hotspot_pixels(0.99).sum(), 1)
    print(f"top-1% hotspot overlap between the two rankings: {overlap:.0%}")

    # -- 2. multi-bandwidth exploration ---------------------------------------
    bands = [by_count.bandwidth * r for r in (0.25, 1.0, 4.0)]
    start = time.perf_counter()
    results = compute_multiband(points, bands, size=(160, 120))
    batched = time.perf_counter() - start
    print(f"\n3 bandwidths in one batch: {batched:.3f}s "
          "(shared y-sort across bandwidths)")
    for res in results:
        hot = int(res.hotspot_pixels(0.99).sum())
        print(f"  b = {res.bandwidth:8,.0f} m -> {hot:4d} hotspot pixels "
              f"({'micro' if res.bandwidth < bands[1] else 'macro' if res.bandwidth > bands[1] else 'default'} scale)")

    # -- 3. progressive rendering ---------------------------------------------
    print("\nprogressive rendering of the severity map at 640x480:")
    t0 = time.perf_counter()
    for level in progressive_kdv(
        points, size=(640, 480), levels=4,
        weights=severity, bandwidth=by_count.bandwidth,
    ):
        elapsed = time.perf_counter() - t0
        print(f"  {level.raster.width:4d}x{level.raster.height:<4d} exact preview "
              f"after {elapsed * 1000:7.1f} ms")
    print("every preview is an exact KDV at its own resolution")


if __name__ == "__main__":
    main()
