"""Quickstart: generate a city-scale dataset and render its hotspot map.

Run:  python examples/quickstart.py

Generates the Seattle stand-in dataset, computes an exact KDV with the
paper's best method (SLAM_BUCKET with resolution-aware optimization), prints
an ASCII preview of the hotspot map, and writes a PPM heat map next to this
script.
"""

from pathlib import Path

from repro import compute_kdv, load_dataset, scott_bandwidth
from repro.viz.image import ascii_preview


def main() -> None:
    # ~8.6k events drawn from the seeded Seattle generator (scale=1.0 would
    # reproduce the paper's full 862,873-point dataset).
    points = load_dataset("seattle", scale=0.01)
    bandwidth = scott_bandwidth(points.xy)
    print(f"dataset: {points.name}, n = {len(points):,}")
    print(f"Scott's-rule bandwidth: {bandwidth:.1f} m")

    result = compute_kdv(
        points,
        size=(320, 240),            # the paper's smallest benchmark resolution
        kernel="epanechnikov",      # the paper's default kernel
        bandwidth=bandwidth,
        method="slam_bucket_rao",   # O(min(X,Y) * (max(X,Y) + n)), exact
    )

    print(f"\ncomputed {result.shape[1]}x{result.shape[0]} exact KDV "
          f"with {result.method}")
    print(f"peak density: {result.max_density():.3e}")
    hotspots = result.hotspot_pixels(quantile=0.99)
    print(f"hotspot pixels (top 1% of density): {int(hotspots.sum())}")

    print("\nhotspot map preview (darker = denser):")
    print(ascii_preview(result.grid_image(), width=72, height=22))

    out = Path(__file__).with_name("quickstart_heatmap.ppm")
    result.save_ppm(str(out))
    print(f"\nwrote {out}")


if __name__ == "__main__":
    main()
