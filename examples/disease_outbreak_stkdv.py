"""Disease outbreak detection with spatio-temporal KDV and the K-function.

Run:  python examples/disease_outbreak_stkdv.py

Epidemiologists use KDV to find disease clusters (paper Section 1).  A single
static map hides *when* an outbreak happened, so this example:

1. simulates two years of background cases plus a three-month outbreak
   cluster in one neighborhood;
2. renders a spatio-temporal KDV (``repro.extensions.temporal``) and finds
   the frame where hotspot intensity peaks — the outbreak window;
3. confirms the spatial clustering statistically with Ripley's K against a
   Monte-Carlo CSR envelope (``repro.extensions.kfunction``).
"""

import numpy as np

from repro import PointSet, Region
from repro.extensions import compute_stkdv, csr_envelope, k_function

DAY = 24 * 3600.0
MONTH = 30 * DAY


def simulate_cases(seed: int = 42) -> PointSet:
    """Two years of cases over a 20x20 km city + an outbreak in month 14."""
    rng = np.random.default_rng(seed)
    n_background = 4000
    background_xy = rng.uniform(0.0, 20_000.0, (n_background, 2))
    background_t = rng.uniform(0.0, 24 * MONTH, n_background)

    n_outbreak = 900
    outbreak_center = np.array([6_000.0, 14_000.0])
    outbreak_xy = outbreak_center + rng.normal(0.0, 600.0, (n_outbreak, 2))
    outbreak_t = rng.uniform(14 * MONTH, 17 * MONTH, n_outbreak)

    xy = np.vstack([background_xy, outbreak_xy])
    t = np.concatenate([background_t, outbreak_t])
    return PointSet(np.clip(xy, 0, 20_000), t=t, name="simulated_cases")


def main() -> None:
    cases = simulate_cases()
    print(f"simulated {len(cases):,} cases over 24 months")

    # -- 1. spatio-temporal KDV: one frame per month --------------------------
    frame_times = np.arange(24) * MONTH + MONTH / 2
    st = compute_stkdv(
        cases,
        times=frame_times,
        temporal_kernel="epanechnikov",
        temporal_bandwidth=1.5 * MONTH,
        size=(160, 160),
        bandwidth=800.0,
    )
    peaks = [frame.max_density() for frame in st.frames]
    peak_month = st.peak_frame()
    print("\nper-month peak density (* marks the detected outbreak window):")
    top = max(peaks)
    for month, value in enumerate(peaks):
        bar = "#" * int(40 * value / top)
        marker = " *" if abs(month - peak_month) <= 1 else ""
        print(f"  month {month:2d}  {bar}{marker}")
    print(f"\noutbreak detected in month {peak_month} "
          f"(simulated: months 14-16)")
    assert 13 <= peak_month <= 17, "detection should land in the outbreak window"

    # where: the hotspot pixels of the peak frame
    peak_frame = st.frames[peak_month]
    mask = peak_frame.hotspot_pixels(quantile=0.999)
    ys, xs = np.nonzero(mask)
    raster = peak_frame.raster
    cx = raster.region.xmin + (xs.mean() + 0.5) * raster.gx
    cy = raster.region.ymin + (ys.mean() + 0.5) * raster.gy
    print(f"hotspot centroid: ({cx:,.0f} m, {cy:,.0f} m) "
          f"(simulated outbreak at (6,000 m, 14,000 m))")

    # -- 2. statistical confirmation via Ripley's K ---------------------------
    region = Region(0.0, 0.0, 20_000.0, 20_000.0)
    outbreak_window = cases.filter_time(14 * MONTH, 17 * MONTH)
    radii = np.linspace(200.0, 2_000.0, 6)
    k_observed = k_function(outbreak_window, radii, region=region)
    lower, upper = csr_envelope(
        len(outbreak_window), radii, region, simulations=19, seed=1
    )
    print("\nRipley's K for the outbreak window vs a 19-simulation CSR envelope:")
    print(f"  {'r (m)':>8s} {'K observed':>14s} {'CSR upper':>14s}  verdict")
    for r, k, hi in zip(radii, k_observed, upper):
        verdict = "CLUSTERED" if k > hi else "consistent with CSR"
        print(f"  {r:8.0f} {k:14.3e} {hi:14.3e}  {verdict}")
    assert np.all(k_observed[:3] > upper[:3]), "outbreak must test as clustered"
    print("\nclustering confirmed at sub-kilometer scales")


if __name__ == "__main__":
    main()
