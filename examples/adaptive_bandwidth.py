"""Adaptive (variable-bandwidth) KDV: sharp downtowns, smooth suburbs.

Run:  python examples/adaptive_bandwidth.py

A single global bandwidth cannot serve a city whose event density spans two
orders of magnitude: Scott's rule smears the downtown into one blob while
leaving the suburbs speckled.  Adaptive KDE gives each event its own
bandwidth (distance to its k-th neighbor), and the library evaluates it
*exactly* with the generalized sweep (``repro.extensions.adaptive``).

This example contrasts the two on the San Francisco stand-in (the densest
dataset) and shows the adaptive map resolving distinct sub-hotspots that the
fixed map merges.
"""

import numpy as np

from repro import compute_kdv, load_dataset
from repro.analysis import extract_hotspots
from repro.extensions.adaptive import compute_adaptive_kdv, knn_bandwidths
from repro.viz.image import ascii_preview


def main() -> None:
    points = load_dataset("san_francisco", scale=0.002)  # ~8.7k calls
    print(f"dataset: {points.name}, n = {len(points):,}")

    bandwidths = knn_bandwidths(points.xy, k=25)
    print(
        "per-point kNN bandwidths: "
        f"p5 = {np.percentile(bandwidths, 5):,.0f} m, "
        f"median = {np.median(bandwidths):,.0f} m, "
        f"p95 = {np.percentile(bandwidths, 95):,.0f} m "
        f"({np.percentile(bandwidths, 95) / np.percentile(bandwidths, 5):.0f}x spread)"
    )

    fixed = compute_kdv(points, size=(192, 192), normalization="density")
    adaptive = compute_adaptive_kdv(
        points, size=(192, 192), bandwidths=bandwidths, normalization="density"
    )
    print(f"\nfixed Scott bandwidth: {fixed.bandwidth:,.0f} m everywhere")
    print(f"adaptive: each event its own bandwidth (median {adaptive.bandwidth:,.0f} m)")

    spots_fixed = extract_hotspots(fixed, quantile=0.98, min_pixels=3)
    spots_adaptive = extract_hotspots(adaptive, quantile=0.98, min_pixels=3)
    print(f"\ndistinct hotspots found: fixed {len(spots_fixed)}, "
          f"adaptive {len(spots_adaptive)}")
    print(f"peak density: fixed {fixed.max_density():.3e}, "
          f"adaptive {adaptive.max_density():.3e} "
          f"({adaptive.max_density() / fixed.max_density():.1f}x sharper)")

    print("\nfixed-bandwidth map:")
    print(ascii_preview(fixed.grid_image(), width=64, height=16))
    print("adaptive-bandwidth map (same data, same color scale rules):")
    print(ascii_preview(adaptive.grid_image(), width=64, height=16))

    assert adaptive.max_density() > fixed.max_density()
    print("adaptive resolves the dense core more sharply — exactly, "
          "via the generalized sweep decomposition")


if __name__ == "__main__":
    main()
