"""Real-time hotspot monitoring with incremental KDV.

Run:  python examples/live_monitoring.py

The paper's conclusion plans "the real-time KDV system, based on SLAM".
This example simulates an operations-center feed: events arrive in ticks, a
24-hour sliding window is maintained, and the hotspot map updates after every
tick by computing the KDV *of the tick only* (density is additive), never of
the full history.  A mid-stream incident (a sudden localized burst) appears
on the map within one tick and decays as the window slides past it.
"""

import time

import numpy as np

from repro import Region
from repro.extensions.streaming import StreamingKDV

HOUR = 3600.0
REGION = Region(0.0, 0.0, 20_000.0, 16_000.0)
INCIDENT_XY = np.array([15_000.0, 4_000.0])
INCIDENT_HOURS = range(18, 22)


def tick_events(rng: np.random.Generator, hour: int) -> np.ndarray:
    """One hour of events: city-wide background + the incident burst."""
    background = rng.uniform((0.0, 0.0), (20_000.0, 16_000.0), (120, 2))
    if hour in INCIDENT_HOURS:
        burst = INCIDENT_XY + rng.normal(0.0, 400.0, (300, 2))
        return np.vstack([background, burst])
    return background


def incident_cell(engine: StreamingKDV) -> float:
    """Density at the incident location, as a multiple of the city median."""
    raster = engine.raster
    ix = int((INCIDENT_XY[0] - REGION.xmin) / raster.gx)
    iy = int((INCIDENT_XY[1] - REGION.ymin) / raster.gy)
    grid = engine.grid
    med = np.median(grid[grid > 0]) if (grid > 0).any() else 0.0
    return grid[iy, ix] / med if med > 0 else 0.0


def main() -> None:
    rng = np.random.default_rng(2024)
    engine = StreamingKDV(
        REGION, size=(320, 240), bandwidth=900.0, method="slam_bucket_rao"
    )
    window_hours = 24

    print("hour  live events  tick ms  incident-cell/median  status")
    alerts: list[int] = []
    for hour in range(48):
        events = tick_events(rng, hour)
        start = time.perf_counter()
        engine.insert(events, t=np.full(len(events), hour * HOUR))
        engine.expire_before((hour - window_hours) * HOUR)
        tick_ms = (time.perf_counter() - start) * 1000.0

        ratio = incident_cell(engine)
        alert = ratio > 10.0
        if alert:
            alerts.append(hour)
        if hour % 4 == 0 or alert or hour in (min(INCIDENT_HOURS) - 1,):
            status = "ALERT: hotspot at incident site" if alert else ""
            print(f"{hour:4d}  {len(engine):11,}  {tick_ms:7.1f}  "
                  f"{ratio:20.1f}  {status}")

    print(f"\nincident simulated during hours {list(INCIDENT_HOURS)}")
    print(f"alerts raised during hours {alerts[0]}..{alerts[-1]}")
    assert alerts[0] == min(INCIDENT_HOURS), "alert should fire on the first burst tick"
    assert alerts[-1] <= max(INCIDENT_HOURS) + window_hours, "alert must decay with the window"

    drift = engine.drift()
    print(f"\nafter 48 ticks of churn, grid drift vs full recompute: {drift:.2e}")
    print("(the engine never recomputed the full window; each tick cost "
          "one small-batch sweep)")


if __name__ == "__main__":
    main()
