"""Command-line interface: ``python -m repro <command>``.

Subcommands
-----------
``compute``
    Compute a KDV from a CSV dataset (or a built-in synthetic city) and
    write a heat-map image plus an optional ASCII preview.
``datasets``
    List the built-in synthetic datasets and their Table-5 scales.
``methods``
    List the registered KDV methods with complexity and exactness.
``generate``
    Generate a synthetic city dataset and save it as CSV.
``hotspots``
    Extract discrete hotspots (location, area, peak) from a dataset.
``stkdv``
    Render a spatio-temporal KDV frame sequence to numbered PPM files.
``nkdv``
    Network KDV over a synthetic street grid, rendered to PPM.
``bench``
    Run one benchmark module from ``benchmarks/`` and write its text table
    plus the machine-readable ``BENCH_<name>.json`` report.
``serve``
    Run the concurrent KDV tile server (``repro.serve``) over a CSV or
    built-in dataset: ``GET /tiles/{z}/{tx}/{ty}[.npy|.png]``,
    ``POST /ingest``, ``GET /healthz``, ``GET /metricz``.
``dist-worker``
    Run one distributed-rendering worker process (``repro.dist``): binds a
    TCP port, prints a machine-readable ready line, and serves shard
    computations until stopped.
``dist``
    Render a KDV across a pool of distributed workers — connect to running
    ``dist-worker`` processes (``--connect``) and/or spawn local ones
    (``--spawn``), then compute with ``backend="dist"`` and report the
    distributed counters.
``simload``
    Replay a deterministic simulated workload (``repro.simload``) against
    an in-process tile service on a virtual clock: run one scenario and
    print its metric block, or ``--sweep`` stepped offered-load levels to
    find the max-sustainable-QPS knee.

Examples
--------
::

    python -m repro datasets
    python -m repro generate seattle --scale 0.01 -o seattle.csv
    python -m repro compute seattle.csv -o hotspots.ppm --size 640x480
    python -m repro compute --dataset new_york --scale 0.005 --kernel quartic \
        --method slam_bucket_rao --preview
    python -m repro compute --dataset seattle --stats
    python -m repro bench table7_default --json benchmarks/out
    python -m repro serve --dataset seattle --port 8711 --workers 4
    python -m repro dist-worker --port 8801
    python -m repro dist --dataset seattle --connect 127.0.0.1:8801 --stats
    python -m repro dist --dataset seattle --spawn 2 --shards 8 -o out.ppm
    python -m repro simload --list
    python -m repro simload --scenario flashcrowd --seed 7 --json out/
    python -m repro simload --scenario default --sweep --json out/
"""

from __future__ import annotations

import argparse
import sys
import time

from . import __version__
from .core.api import METHODS, PARALLEL_METHODS, compute_kdv, method_names
from .core.parallel import BACKENDS
from .data.datasets import DATASETS, dataset_names, full_size, load_dataset
from .data.io import load_csv, save_csv
from .viz.image import ascii_preview

__all__ = ["main", "build_parser"]

_COMPLEXITY = {
    "scan": "O(XYn)",
    "rqs_kd": "O(XYn)",
    "rqs_ball": "O(XYn)",
    "rqs_rtree": "O(XYn)",
    "zorder": "O(XYm), m = sample size",
    "akde": "O(XYn) worst case",
    "akde_dual": "O((XY + n) polylog) typical",
    "binned_fft": "O(n + XY log XY), binning error",
    "quad": "O(XYn) worst case",
    "slam_sort": "O(Y(X + n log n))",
    "slam_bucket": "O(Y(X + n))",
    "slam_sort_rao": "O(min(X,Y)(max(X,Y) + n log n))",
    "slam_bucket_rao": "O(min(X,Y)(max(X,Y) + n))",
}


def _parse_workers(text: str) -> "int | str":
    if text == "auto":
        return "auto"
    try:
        workers = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"workers must be a positive integer or 'auto', got {text!r}"
        ) from None
    if workers < 1:
        raise argparse.ArgumentTypeError(
            f"workers must be a positive integer or 'auto', got {text!r}"
        )
    return workers


def _parse_bandwidth(text: str) -> "float | str | None":
    """A numeric bandwidth in meters, a selector name (``scott``,
    ``silverman``, ``lcv``), or ``None`` when the text is neither."""
    from .viz.bandwidth import BANDWIDTH_SELECTORS

    if text in BANDWIDTH_SELECTORS:
        return text
    try:
        return float(text)
    except ValueError:
        return None


def _bandwidth_or_error(text: str) -> "float | str | None":
    """Parse a ``--bandwidth`` value, printing the CLI error on failure."""
    from .viz.bandwidth import BANDWIDTH_SELECTORS

    bandwidth = _parse_bandwidth(text)
    if bandwidth is None:
        print(
            f"error: bad bandwidth {text!r}; use meters or one of "
            f"{sorted(BANDWIDTH_SELECTORS)}",
            file=sys.stderr,
        )
    return bandwidth


def _parse_size(text: str) -> tuple[int, int]:
    try:
        w, h = text.lower().split("x")
        size = (int(w), int(h))
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"size must look like 1280x960, got {text!r}"
        ) from None
    if size[0] < 1 or size[1] < 1:
        raise argparse.ArgumentTypeError("size must be at least 1x1")
    return size


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="SLAM: efficient sweep line algorithms for KDV (SIGMOD 2022)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_compute = sub.add_parser("compute", help="compute a KDV heat map")
    p_compute.add_argument("csv", nargs="?", help="input CSV with x,y[,t][,category]")
    p_compute.add_argument(
        "--dataset", choices=dataset_names(), help="use a built-in synthetic dataset"
    )
    p_compute.add_argument("--scale", type=float, default=0.01,
                           help="built-in dataset scale (default 0.01)")
    p_compute.add_argument("-o", "--output", default="kdv.ppm",
                           help="output PPM path (default kdv.ppm)")
    p_compute.add_argument("--size", type=_parse_size, default=(640, 480),
                           help="resolution XxY (default 640x480)")
    p_compute.add_argument("--kernel", default="epanechnikov",
                           choices=("uniform", "epanechnikov", "quartic"))
    p_compute.add_argument("--bandwidth", default="scott",
                           help="bandwidth in meters, or a selector: "
                                "scott (default), silverman, lcv")
    p_compute.add_argument("--method", default="slam_bucket_rao",
                           choices=method_names())
    # "native" stays in the choices even on a checkout without the compiled
    # extension: selecting it then raises the unknown-engine error naming
    # the engines that ARE available (tested by tests/test_native.py).
    p_compute.add_argument("--engine", default="numpy",
                           choices=("python", "numpy", "numpy_batch",
                                    "native"),
                           help="SLAM row engine: python (pseudocode), numpy "
                                "(per-row, default), numpy_batch "
                                "(block-vectorized), or native (fused C "
                                "loop + OpenMP; fastest, needs the compiled "
                                "extension -- see docs/native.md)")
    p_compute.add_argument("--workers", type=_parse_workers, default=1,
                           help="row-sweep workers for SLAM methods: a count "
                                "or 'auto' (default 1, serial)")
    p_compute.add_argument("--backend", default=None, choices=BACKENDS,
                           help="parallel backend for SLAM methods: process "
                                "(default), thread, or dist (distributed "
                                "worker pool; see --dist-workers)")
    p_compute.add_argument("--dist-workers", default=None, metavar="ADDRS",
                           help="comma-separated host:port worker addresses "
                                "for --backend dist (default: the "
                                "REPRO_DIST_WORKERS environment variable, "
                                "else in-process shards)")
    p_compute.add_argument("--colormap", default="heat",
                           choices=("heat", "viridis", "gray"))
    p_compute.add_argument("--preview", action="store_true",
                           help="print an ASCII preview to stdout")
    p_compute.add_argument("--stats", action="store_true",
                           help="collect per-phase timings and counters "
                                "(repro.obs recorder) and print the summary")

    sub.add_parser("datasets", help="list built-in synthetic datasets")
    sub.add_parser("methods", help="list KDV methods")

    p_gen = sub.add_parser("generate", help="generate a synthetic dataset CSV")
    p_gen.add_argument("dataset", choices=dataset_names())
    p_gen.add_argument("--scale", type=float, default=0.01)
    p_gen.add_argument("--seed", type=int, default=None)
    p_gen.add_argument("-o", "--output", required=True, help="output CSV path")

    p_hot = sub.add_parser("hotspots", help="extract discrete hotspots")
    p_hot.add_argument("csv", nargs="?", help="input CSV with x,y columns")
    p_hot.add_argument("--dataset", choices=dataset_names())
    p_hot.add_argument("--scale", type=float, default=0.01)
    p_hot.add_argument("--size", type=_parse_size, default=(320, 240))
    p_hot.add_argument("--bandwidth", default="scott",
                       help="bandwidth in meters, or a selector: "
                            "scott (default), silverman, lcv")
    p_hot.add_argument("--quantile", type=float, default=0.99,
                       help="density quantile defining hotspots (default 0.99)")
    p_hot.add_argument("--top", type=int, default=10,
                       help="print at most this many hotspots")

    p_st = sub.add_parser("stkdv", help="spatio-temporal KDV frame sequence")
    p_st.add_argument("csv", nargs="?", help="input CSV with x,y,t columns")
    p_st.add_argument("--dataset", choices=dataset_names())
    p_st.add_argument("--scale", type=float, default=0.01)
    p_st.add_argument("--frames", type=int, default=12)
    p_st.add_argument("--size", type=_parse_size, default=(320, 240))
    p_st.add_argument("--temporal-kernel", default="epanechnikov",
                      choices=("box", "triangular", "epanechnikov"))
    p_st.add_argument("-o", "--output-prefix", default="stkdv",
                      help="frames are written as <prefix>_0000.ppm ...")

    p_net = sub.add_parser("nkdv", help="network KDV on a synthetic street grid")
    p_net.add_argument("csv", nargs="?", help="input CSV with x,y columns")
    p_net.add_argument("--dataset", choices=dataset_names())
    p_net.add_argument("--scale", type=float, default=0.005)
    p_net.add_argument("--grid", type=_parse_size, default=(20, 15),
                       help="street grid intersections as CxR (default 20x15)")
    p_net.add_argument("--lixel", type=float, default=30.0,
                       help="lixel length in meters (default 30)")
    p_net.add_argument("--bandwidth", type=float, default=400.0,
                       help="network-distance bandwidth in meters")
    p_net.add_argument("-o", "--output", default="nkdv.ppm")

    p_serve = sub.add_parser(
        "serve", help="run the concurrent KDV tile server (repro.serve)"
    )
    p_serve.add_argument("csv", nargs="?", help="input CSV with x,y[,t] columns")
    p_serve.add_argument("--dataset", choices=dataset_names(),
                         help="use a built-in synthetic dataset")
    p_serve.add_argument("--scale", type=float, default=0.01,
                         help="built-in dataset scale (default 0.01)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8711,
                         help="TCP port (default 8711; 0 picks a free port)")
    p_serve.add_argument("--tile-size", type=int, default=256,
                         help="tile resolution in pixels (default 256)")
    p_serve.add_argument("--kernel", default="epanechnikov",
                         choices=("uniform", "epanechnikov", "quartic"))
    p_serve.add_argument("--bandwidth", default="scott",
                         help="bandwidth in meters, or a selector: "
                              "scott (default), silverman, lcv")
    p_serve.add_argument("--method", default="slam_bucket_rao",
                         choices=method_names())
    p_serve.add_argument("--max-zoom", type=int, default=8,
                         help="deepest zoom level served (default 8)")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="render pool threads (default 2)")
    p_serve.add_argument("--queue-limit", type=int, default=None,
                         help="max in-flight renders before 503 "
                              "(default 4x workers)")
    p_serve.add_argument("--deadline", type=float, default=None,
                         help="per-request render deadline in seconds "
                              "(504 when exceeded; default: wait)")
    p_serve.add_argument("--cache-tiles", type=int, default=256,
                         help="tile cache capacity (default 256)")
    p_serve.add_argument("--cache-ttl", type=float, default=None,
                         help="tile cache TTL in seconds (default: no expiry)")
    p_serve.add_argument("--window", type=float, default=None, metavar="SECONDS",
                         help="pre-warm a sliding time window of this many "
                              "seconds (requires timestamped events; tiles "
                              "over it via ?window=SECONDS)")
    p_serve.add_argument("--tick-s", type=float, default=None, metavar="SECONDS",
                         help="advance the sliding windows at this cadence, "
                              "piggybacked on request traffic (default: "
                              "explicit POST /tick only)")
    p_serve.add_argument("--quality-policy", choices=("off", "degrade"),
                         default="off",
                         help="off (default): exact tiles only, shed load "
                              "with 503 when the queue fills; degrade: step "
                              "down the pyramid/coreset quality ladder "
                              "before any 503 (tiles carry X-KDV-Quality / "
                              "X-KDV-Error-Bound headers)")
    p_serve.add_argument("--max-error", type=float, default=None,
                         metavar="EPS",
                         help="server-side cap on the advertised error "
                              "bound of served tiers (requires "
                              "--quality-policy degrade; requests may "
                              "tighten it per call via ?max_error=)")
    p_serve.add_argument("--render-delay", type=float, default=None,
                         metavar="SECONDS",
                         help="inject a fixed delay into every exact tile "
                              "render (fault injection for smoke tests: "
                              "saturates the pool deterministically)")
    p_serve.add_argument("--allow-shutdown", action="store_true",
                         help="enable POST /shutdown (for smoke tests/CI)")
    p_serve.add_argument("--verbose", action="store_true",
                         help="log each HTTP request to stderr")

    p_serve.add_argument("--dist-workers", default=None, metavar="ADDRS",
                         help="comma-separated host:port addresses of "
                              "dist-worker processes; cold-tile renders fan "
                              "out to this pool (repro.dist coordinator)")

    p_worker = sub.add_parser(
        "dist-worker", help="run one distributed-rendering worker (repro.dist)"
    )
    p_worker.add_argument("--host", default="127.0.0.1",
                          help="interface to bind (default 127.0.0.1)")
    p_worker.add_argument("--port", type=int, default=0,
                          help="TCP port (default 0: OS-assigned, reported "
                               "on the ready line)")
    p_worker.add_argument("--heartbeat", type=float, default=0.5,
                          help="heartbeat interval while computing, seconds "
                               "(default 0.5; 0 disables)")
    p_worker.add_argument("--delay-s", type=float, default=0.0,
                          help="artificial pre-compute delay per shard "
                               "(testing knob for fault injection)")
    p_worker.add_argument("--slow-factor", type=float, default=1.0,
                          help="throttle compute to 1/N of native speed "
                               "(testing knob: models a slow machine for "
                               "work-stealing experiments; default 1.0)")
    p_worker.add_argument("--verbose", action="store_true",
                          help="log connections and shards to stderr")

    p_dist = sub.add_parser(
        "dist", help="render a KDV across a distributed worker pool"
    )
    p_dist.add_argument("csv", nargs="?", help="input CSV with x,y columns")
    p_dist.add_argument("--dataset", choices=dataset_names(),
                        help="use a built-in synthetic dataset")
    p_dist.add_argument("--scale", type=float, default=0.01,
                        help="built-in dataset scale (default 0.01)")
    p_dist.add_argument("--connect", default=None, metavar="ADDRS",
                        help="comma-separated host:port addresses of running "
                             "dist-worker processes")
    p_dist.add_argument("--spawn", type=int, default=0, metavar="N",
                        help="spawn N local worker processes for this render "
                             "(shut down afterwards)")
    p_dist.add_argument("--shards", type=int, default=None,
                        help="shard count (default: 2 per connected worker)")
    p_dist.add_argument("--deadline", type=float, default=None,
                        help="per-shard deadline in seconds (straggler "
                             "detection; default: wait)")
    p_dist.add_argument("--balance", default="cost",
                        choices=("cost", "points", "rows"),
                        help="shard balance mode (default cost: the "
                             "calibrated allocate-then-refine planner; see "
                             "docs/scheduling.md)")
    p_dist.add_argument("--no-steal", action="store_true",
                        help="disable coordinator-side work stealing")
    p_dist.add_argument("--steal-factor", type=float, default=3.0,
                        help="steal when a shard's elapsed exceeds its "
                             "prediction by this factor (default 3.0)")
    p_dist.add_argument("--sched-state", default=None, metavar="PATH",
                        help="JSON file to warm-start the shard cost model "
                             "from and persist calibration back to")
    p_dist.add_argument("-o", "--output", default="kdv.ppm",
                        help="output PPM path (default kdv.ppm)")
    p_dist.add_argument("--size", type=_parse_size, default=(640, 480),
                        help="resolution XxY (default 640x480)")
    p_dist.add_argument("--kernel", default="epanechnikov",
                        choices=("uniform", "epanechnikov", "quartic"))
    p_dist.add_argument("--bandwidth", default="scott",
                        help="bandwidth in meters, or a selector: "
                             "scott (default), silverman, lcv")
    p_dist.add_argument("--method", default="slam_bucket_rao",
                        choices=PARALLEL_METHODS,
                        help="SLAM method (the distributable ones)")
    p_dist.add_argument("--engine", default="numpy",
                        choices=("python", "numpy", "numpy_batch", "native"))
    p_dist.add_argument("--colormap", default="heat",
                        choices=("heat", "viridis", "gray"))
    p_dist.add_argument("--stats", action="store_true",
                        help="print the merged distributed counters and "
                             "phase timings")

    p_sim = sub.add_parser(
        "simload",
        help="replay a deterministic simulated workload (repro.simload)",
    )
    p_sim.add_argument("--scenario", default="default",
                       help="scenario name (see --list; default: default)")
    p_sim.add_argument("--seed", type=int, default=0,
                       help="workload seed; one (scenario, seed) pair "
                            "reproduces byte-for-byte (default 0)")
    p_sim.add_argument("--duration", type=float, default=None,
                       metavar="SECONDS",
                       help="override the scenario's virtual duration")
    p_sim.add_argument("--rate", type=float, default=None, metavar="RPS",
                       help="override the scenario's base offered rate "
                            "(requests per virtual second)")
    p_sim.add_argument("--sweep", action="store_true",
                       help="run stepped offered-load levels instead of one "
                            "run and report the max-sustainable-QPS knee")
    p_sim.add_argument("--json", metavar="DIR", default=None,
                       help="write the run's trace + metric block (or the "
                            "sweep summary) as deterministic JSON into DIR")
    p_sim.add_argument("--trace", action="store_true",
                       help="print the canonical per-request trace lines")
    p_sim.add_argument("--list", action="store_true",
                       help="list available scenarios and exit")

    p_bench = sub.add_parser(
        "bench", help="run one benchmark module and write its reports"
    )
    p_bench.add_argument(
        "name",
        nargs="?",
        help="benchmark name, e.g. table7_default or bench_fig13_resolution.py "
             "(omit with --list)",
    )
    p_bench.add_argument("--json", metavar="DIR", default=None,
                         help="directory for the BENCH_<name>.json report "
                              "(default: benchmarks/out)")
    p_bench.add_argument("--list", action="store_true",
                         help="list available benchmark modules and exit")
    p_bench.add_argument("bench_args", nargs=argparse.REMAINDER,
                         help="extra arguments forwarded to the benchmark "
                              "(precede with --)")
    return parser


def _cmd_compute(args: argparse.Namespace) -> int:
    if bool(args.csv) == bool(args.dataset):
        print("error: provide either a CSV path or --dataset (not both)",
              file=sys.stderr)
        return 2
    if args.dataset:
        points = load_dataset(args.dataset, scale=args.scale)
    else:
        points = load_csv(args.csv)
    if len(points) == 0:
        print("error: dataset is empty", file=sys.stderr)
        return 2
    bandwidth = _bandwidth_or_error(args.bandwidth)
    if bandwidth is None:
        return 2

    extra: dict = {}
    if args.backend is not None:
        if args.method not in PARALLEL_METHODS:
            print(f"error: --backend applies to the SLAM methods "
                  f"{PARALLEL_METHODS}, not {args.method!r}", file=sys.stderr)
            return 2
        extra["backend"] = args.backend
        if args.backend == "dist" and args.dist_workers:
            from .dist import Coordinator

            extra["coordinator"] = Coordinator(args.dist_workers)
    elif args.dist_workers:
        print("error: --dist-workers requires --backend dist", file=sys.stderr)
        return 2

    start = time.perf_counter()
    try:
        result = compute_kdv(
            points,
            size=args.size,
            kernel=args.kernel,
            bandwidth=bandwidth,
            method=args.method,
            engine=args.engine,
            workers=args.workers,
            collect_stats=args.stats,
            **extra,
        )
    except ValueError as exc:
        if "unknown engine" not in str(exc):
            raise
        # e.g. --engine native on a checkout without the compiled extension:
        # the message names the engines that ARE registered.
        print(f"error: {exc}", file=sys.stderr)
        if args.engine == "native":
            print(
                "hint: the native engine needs the compiled extension; "
                "build it with `python setup.py build_ext --inplace` "
                "(see docs/native.md)",
                file=sys.stderr,
            )
        return 2
    elapsed = time.perf_counter() - start
    coordinator = extra.get("coordinator")
    if coordinator is not None:
        coordinator.close()
    result.save_ppm(args.output, colormap=args.colormap)
    print(
        f"n={len(points):,}  {args.size[0]}x{args.size[1]}  "
        f"kernel={result.kernel}  b={result.bandwidth:,.1f}  "
        f"method={result.method}  {elapsed:.3f}s"
    )
    if result.stats is not None:
        s = result.stats
        print(
            f"sweep: {s.orientation}, {s.workers} worker(s) [{s.backend}], "
            f"{s.blocks} block(s), {s.rows_per_sec:,.0f} rows/s"
        )
    if result.recorder is not None:
        print(result.recorder.summary())
    print(f"wrote {args.output}")
    if args.preview:
        print(ascii_preview(result.grid_image()))
    return 0


def _cmd_datasets(_args: argparse.Namespace) -> int:
    print(f"{'name':15s} {'full size':>12s}  category")
    for name in dataset_names():
        model, _n, _seed = DATASETS[name]
        kind = {"seattle": "crime events", "los_angeles": "crime events",
                "new_york": "traffic accidents", "san_francisco": "311 calls"}[name]
        print(f"{name:15s} {full_size(name):>12,}  {kind}")
    return 0


def _cmd_methods(_args: argparse.Namespace) -> int:
    print(f"{'method':17s} {'exact':6s} complexity")
    for name in method_names():
        _fn, exact = METHODS[name]
        print(f"{name:17s} {'yes' if exact else 'no':6s} {_COMPLEXITY[name]}")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    points = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    save_csv(points, args.output)
    print(f"wrote {len(points):,} events to {args.output}")
    return 0


def _load_points(args: argparse.Namespace):
    """Shared CSV-or-builtin dataset resolution; returns points or None."""
    if bool(args.csv) == bool(args.dataset):
        print("error: provide either a CSV path or --dataset (not both)",
              file=sys.stderr)
        return None
    points = (
        load_dataset(args.dataset, scale=args.scale)
        if args.dataset
        else load_csv(args.csv)
    )
    if len(points) == 0:
        print("error: dataset is empty", file=sys.stderr)
        return None
    return points


def _cmd_hotspots(args: argparse.Namespace) -> int:
    from .analysis import extract_hotspots

    points = _load_points(args)
    if points is None:
        return 2
    bandwidth = _bandwidth_or_error(args.bandwidth)
    if bandwidth is None:
        return 2
    result = compute_kdv(points, size=args.size, bandwidth=bandwidth)
    spots = extract_hotspots(result, quantile=args.quantile)
    print(f"n={len(points):,}  b={result.bandwidth:,.1f}  "
          f"{len(spots)} hotspot(s) at quantile {args.quantile}")
    print(f"{'rank':>4s} {'peak density':>14s} {'pixels':>7s} "
          f"{'area (km^2)':>12s}  peak at (m)")
    for rank, spot in enumerate(spots[: args.top], start=1):
        px, py = spot.peak_xy
        print(f"{rank:4d} {spot.peak_density:14.4e} {spot.pixel_area:7d} "
              f"{spot.world_area / 1e6:12.4f}  ({px:,.0f}, {py:,.0f})")
    return 0


def _cmd_stkdv(args: argparse.Namespace) -> int:
    from .extensions.temporal import compute_stkdv

    points = _load_points(args)
    if points is None:
        return 2
    if points.t is None:
        print("error: dataset has no 't' column (timestamps required)",
              file=sys.stderr)
        return 2
    start = time.perf_counter()
    st = compute_stkdv(
        points,
        times=args.frames,
        temporal_kernel=args.temporal_kernel,
        size=args.size,
    )
    paths = st.save_ppm_sequence(args.output_prefix)
    elapsed = time.perf_counter() - start
    print(f"n={len(points):,}  {args.frames} frames  "
          f"b_t={st.temporal_bandwidth:,.0f}s  {elapsed:.3f}s total")
    print(f"wrote {paths[0]} .. {paths[-1]}")
    print(f"peak activity in frame {st.peak_frame()}")
    return 0


def _cmd_nkdv(args: argparse.Namespace) -> int:
    from .network import compute_nkdv, street_grid
    from .viz.image import write_ppm

    points = _load_points(args)
    if points is None:
        return 2
    # fit a street grid over the data's extent
    xmin, ymin, xmax, ymax = points.bounds()
    cols, rows = args.grid
    spacing = max((xmax - xmin) / max(cols - 1, 1), (ymax - ymin) / max(rows - 1, 1))
    spacing = max(spacing, 1.0)
    network = street_grid(cols, rows, spacing=spacing, origin=(xmin, ymin))
    start = time.perf_counter()
    result = compute_nkdv(
        network, points, lixel_length=args.lixel, bandwidth=args.bandwidth
    )
    elapsed = time.perf_counter() - start
    write_ppm(args.output, result.to_image((960, 720)))
    print(f"n={len(points):,}  {network.num_edges} road segments  "
          f"{len(result):,} lixels  b={args.bandwidth:,.0f} m  {elapsed:.3f}s")
    print(f"wrote {args.output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import TileService, start_server
    from .viz.bandwidth import resolve_bandwidth

    points = _load_points(args)
    if points is None:
        return 2
    bandwidth = _bandwidth_or_error(args.bandwidth)
    if bandwidth is None:
        return 2
    # the service wants a resolved number (one fixed bandwidth per layer)
    bandwidth = resolve_bandwidth(bandwidth, points.xy)
    quality = None
    if args.quality_policy == "degrade":
        from .serve import QualityPolicy

        quality = QualityPolicy(default_max_error=args.max_error)
        print("quality ladder: "
              + " -> ".join(quality.describe()["ladder"])
              + (f" (max_error={args.max_error:g})"
                 if args.max_error is not None else ""),
              flush=True)
    elif args.max_error is not None:
        print("error: --max-error requires --quality-policy degrade",
              file=sys.stderr)
        return 2
    render_fn = None
    if args.render_delay is not None:
        if args.dist_workers:
            print("error: --render-delay and --dist-workers are mutually "
                  "exclusive", file=sys.stderr)
            return 2
        import time as _time

        from .viz.tiles import render_tile as _render_tile

        delay_s = float(args.render_delay)

        def render_fn(points, scheme, *tile, **kwargs):
            _time.sleep(delay_s)
            return _render_tile(points, scheme, *tile, **kwargs)

    coordinator = None
    if args.dist_workers:
        from .dist import Coordinator

        coordinator = Coordinator(args.dist_workers)
        alive = coordinator.connect()
        print(f"distributed rendering: {alive} worker(s) reachable "
              f"of {args.dist_workers}", flush=True)
    try:
        service = TileService(
            points,
            tile_size=args.tile_size,
            bandwidth=bandwidth,
            kernel=args.kernel,
            method=args.method,
            max_zoom=args.max_zoom,
            workers=args.workers,
            queue_limit=args.queue_limit,
            deadline_s=args.deadline,
            cache_tiles=args.cache_tiles,
            cache_ttl_s=args.cache_ttl,
            window_s=args.window,
            tick_s=args.tick_s,
            quality=quality,
            render_fn=render_fn,
            coordinator=coordinator,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    server = start_server(
        service,
        host=args.host,
        port=args.port,
        allow_shutdown=args.allow_shutdown,
        quiet=not args.verbose,
        background=True,
    )
    print(
        f"serving {len(points):,} events at {server.url}  "
        f"(b={bandwidth:,.1f} m, {args.tile_size}px tiles, "
        f"method={args.method}, {args.workers} worker(s))",
        flush=True,
    )
    if args.window is not None:
        print(
            f"sliding window: {args.window:g}s "
            f"(?window={args.window:g} on tile requests"
            + (f", auto-tick every {args.tick_s:g}s" if args.tick_s else "")
            + ")",
            flush=True,
        )
    print(
        f"endpoints: {server.url}/tiles/{{z}}/{{tx}}/{{ty}}[.npy|.png]  "
        f"/ingest  /tick  /healthz  /metricz — Ctrl-C to stop",
        flush=True,
    )
    try:
        # park until the accept loop ends (Ctrl-C here, or POST /shutdown)
        while server._serve_thread is not None and server._serve_thread.is_alive():
            server._serve_thread.join(timeout=0.5)
    except KeyboardInterrupt:
        print("\nshutting down (draining in-flight renders)...", flush=True)
    server.shutdown_gracefully()
    if coordinator is not None:
        coordinator.close()
    print("server stopped", flush=True)
    return 0


def _cmd_dist_worker(args: argparse.Namespace) -> int:
    from .dist.worker import WorkerServer, format_ready_line

    server = WorkerServer(
        host=args.host,
        port=args.port,
        heartbeat_s=args.heartbeat,
        delay_s=args.delay_s,
        slow_factor=args.slow_factor,
        verbose=args.verbose,
    )
    # Machine-readable ready line first: launchers block on it to learn the
    # OS-assigned port (see repro.dist.launch).
    print(format_ready_line(server.host, server.port), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.stop()
    print(f"worker stopped after {server.tasks_done} shard(s)", flush=True)
    return 0


def _cmd_dist(args: argparse.Namespace) -> int:
    from .dist import Coordinator, launch_local_workers, parse_worker_addrs

    points = _load_points(args)
    if points is None:
        return 2
    bandwidth = _bandwidth_or_error(args.bandwidth)
    if bandwidth is None:
        return 2
    addrs: list = []
    if args.connect:
        try:
            addrs.extend(parse_worker_addrs(args.connect))
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    pool = None
    try:
        if args.spawn > 0:
            pool = launch_local_workers(args.spawn)
            addrs.extend(pool.addrs)
        coordinator = Coordinator(
            addrs,
            deadline_s=args.deadline,
            shards=args.shards,
            balance=args.balance,
            steal=not args.no_steal,
            steal_factor=args.steal_factor,
            sched_state=args.sched_state,
        )
        alive = coordinator.connect()
        print(f"{alive}/{len(addrs)} worker(s) reachable"
              + ("" if alive else "; rendering in-process"), flush=True)
        start = time.perf_counter()
        result = compute_kdv(
            points,
            size=args.size,
            kernel=args.kernel,
            bandwidth=bandwidth,
            method=args.method,
            engine=args.engine,
            backend="dist",
            coordinator=coordinator,
            collect_stats=True,
        )
        elapsed = time.perf_counter() - start
        result.save_ppm(args.output, colormap=args.colormap)
        snap = result.recorder.snapshot()
        shards = snap["counters"].get("dist.shards", 0)
        print(
            f"n={len(points):,}  {args.size[0]}x{args.size[1]}  "
            f"kernel={result.kernel}  b={result.bandwidth:,.1f}  "
            f"method={result.method}  {shards} shard(s)  {elapsed:.3f}s"
        )
        if args.stats:
            print(result.recorder.summary())
            if coordinator.last_report is not None:
                print(coordinator.last_report.describe())
        print(f"wrote {args.output}")
        if pool is not None:
            coordinator.shutdown_workers()
        coordinator.close()
        return 0
    finally:
        if pool is not None:
            pool.shutdown()


def _cmd_simload(args: argparse.Namespace) -> int:
    import dataclasses
    import json
    from pathlib import Path

    from .simload import get_scenario, list_scenarios, run_scenario, sweep

    if args.list:
        print(f"{'scenario':12s} {'duration':>9s} {'base rps':>9s}  description")
        for sc in list_scenarios():
            print(f"{sc.name:12s} {sc.duration_s:8.0f}s {sc.arrivals.rate:9.1f}"
                  f"  {sc.description}")
        return 0
    try:
        scenario = get_scenario(args.scenario)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.duration is not None:
        scenario = dataclasses.replace(scenario, duration_s=args.duration)
    if args.rate is not None:
        scenario = scenario.at_rate(args.rate)

    out_dir = None
    if args.json:
        out_dir = Path(args.json)
        out_dir.mkdir(parents=True, exist_ok=True)

    if args.sweep:
        summary = sweep(scenario, seed=args.seed)
        print(f"scenario={scenario.name} seed={args.seed} "
              f"(sweep, virtual time only)")
        print(f"{'offered':>9s} {'achieved':>9s} {'shed':>8s} "
              f"{'p50':>8s} {'p99':>8s} {'hit rate':>9s}")
        for rate, block in summary["levels"]:
            print(f"{rate:9.2f} {block['achieved_rps']:9.2f} "
                  f"{block['shed_fraction']:8.4f} "
                  f"{block['latency_p50_s']:8.3f} {block['latency_p99_s']:8.3f} "
                  f"{block['cache_hit_rate']:9.3f}")
        knee = summary["knee"]
        if knee is None:
            print("knee: none — every level shed above the threshold")
        else:
            print(f"knee: max sustainable {knee['max_sustainable_qps']:g} qps "
                  f"(shed <= {knee['shed_threshold']:g})")
        if out_dir is not None:
            path = out_dir / f"simload_sweep_{scenario.name}.json"
            path.write_text(json.dumps(summary, sort_keys=True, indent=2) + "\n")
            print(f"wrote {path}")
        return 0

    result = run_scenario(scenario, seed=args.seed)
    m = result.metrics
    print(f"scenario={scenario.name} seed={args.seed} "
          f"requests={m['requests']} events={result.events_processed} "
          f"(virtual time only)")
    print(f"offered {m['offered_rps']:g} rps, achieved {m['achieved_rps']:g} "
          f"rps, shed {m['shed_fraction']:.4f} "
          f"(503: {m['shed_503']}, 504: {m['shed_504']})")
    print(f"latency p50 {m['latency_p50_s']:.3f}s  p99 {m['latency_p99_s']:.3f}s"
          f"  cache hit rate {m['cache_hit_rate']:.3f}"
          f"  coalesce rate {m['coalesce_rate']:.3f}")
    print(f"tiers: {m['tiers']}  renders: {m['renders']}  "
          f"window ticks: {m['window_ticks']}")
    print(f"trace digest: {result.digest}")
    if args.trace:
        for line in result.trace:
            print(line)
    if out_dir is not None:
        path = out_dir / f"simload_{scenario.name}_seed{args.seed}.json"
        payload = {
            "scenario": scenario.name,
            "seed": args.seed,
            "digest": result.digest,
            "metrics": m,
            "trace": result.trace,
        }
        path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
        print(f"wrote {path}")
    return 0


def _benchmarks_dir():
    """Locate the repository's ``benchmarks/`` directory (source checkouts
    only — the modules are not shipped inside the package)."""
    from pathlib import Path

    candidate = Path(__file__).resolve().parent.parent.parent / "benchmarks"
    return candidate if candidate.is_dir() else None


def _cmd_bench(args: argparse.Namespace) -> int:
    import os
    import runpy

    bench_dir = _benchmarks_dir()
    if bench_dir is None:
        print("error: benchmarks/ directory not found (requires a source "
              "checkout)", file=sys.stderr)
        return 2
    names = sorted(
        p.stem.removeprefix("bench_") for p in bench_dir.glob("bench_*.py")
    )
    if args.list or not args.name:
        for name in names:
            print(name)
        return 0 if args.list else 2
    name = args.name.removeprefix("bench_").removesuffix(".py")
    script = bench_dir / f"bench_{name}.py"
    if not script.is_file():
        print(f"error: unknown benchmark {args.name!r}; available: "
              f"{', '.join(names)}", file=sys.stderr)
        return 2
    # argparse's REMAINDER grabs everything after the name, including our own
    # --json when it follows the positional; the bench modules accept the
    # same flag, so forwarding verbatim (minus bare `--` separators) works
    # for both orderings.
    extra = [token for token in args.bench_args if token != "--"]
    if args.json:
        os.environ["REPRO_BENCH_JSON"] = args.json
    # Hand over to the module's own __main__ (argparse inside); sys.path gets
    # the benchmarks dir so the modules' `from _common import ...` resolves.
    old_argv = sys.argv
    sys.path.insert(0, str(bench_dir))
    try:
        sys.argv = [str(script)] + extra
        try:
            runpy.run_path(str(script), run_name="__main__")
        except SystemExit as exc:
            return int(exc.code or 0)
        return 0
    finally:
        sys.argv = old_argv
        sys.path.remove(str(bench_dir))


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "compute": _cmd_compute,
        "datasets": _cmd_datasets,
        "methods": _cmd_methods,
        "generate": _cmd_generate,
        "hotspots": _cmd_hotspots,
        "stkdv": _cmd_stkdv,
        "nkdv": _cmd_nkdv,
        "serve": _cmd_serve,
        "dist-worker": _cmd_dist_worker,
        "dist": _cmd_dist,
        "simload": _cmd_simload,
        "bench": _cmd_bench,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
