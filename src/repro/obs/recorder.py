"""Lightweight observability primitives: counters, phase timers, trace spans.

The paper's evaluation is entirely wall-clock driven (Tables 1/7,
Figures 13-19), and the per-phase structure of a SLAM sweep — index build,
envelope update, endpoint ordering, prefix sweep — determines *where* the
time goes.  Following the instrumentation discipline of Saule et al.
(*Parallel Space-Time Kernel Density Estimation*), whose scaling analysis
hinges on per-phase timing, this module provides the recording substrate the
rest of the stack threads through.

Design constraints, in order:

1. **The un-instrumented hot path pays ~nothing.**  Every instrumented call
   site branches on ``recorder is None`` (or :data:`NULL_RECORDER`, whose
   ``enabled`` flag is ``False``) before touching a clock.  The no-op
   recorder returns cached singletons from every accessor, so even code that
   holds a :class:`NullRecorder` allocates nothing per call.
2. **Thread- and process-safe aggregation.**  A :class:`Recorder` guards its
   state with a lock, and :meth:`Recorder.merge` folds in the
   :meth:`Recorder.snapshot` of another recorder — the mechanism the parallel
   sweep uses to combine per-block recorders from worker threads or
   processes into one dump whose counters equal the serial counts exactly.
3. **Machine-readable.**  :meth:`Recorder.snapshot` returns a plain
   JSON-able dict with a versioned ``schema`` tag; benchmark reports embed
   it verbatim (see :mod:`repro.bench.report`).

Vocabulary
----------
counter
    A named monotonically increasing integer (``sweep.rows``,
    ``tiles.cache.hits``).
gauge
    A named last-written value (``serve.queue_depth``, ``serve.cache_size``)
    for quantities that go up *and* down; merging keeps the donor's reading.
phase timer
    A named ``(total_seconds, calls)`` accumulator for code regions entered
    many times (per pixel row) where recording every instance would cost
    more than the region itself.
span
    A nestable context manager recording one timed region as an event with
    its depth and start offset — the right tool for the handful of
    coarse-grained phases per computation (``index_build``, ``sweep``).
    Span exits also feed the phase timer of the same name, so phase totals
    are complete whichever primitive a call site used.
"""

from __future__ import annotations

import threading
from time import perf_counter

__all__ = [
    "RECORDER_SCHEMA",
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Counter",
    "Gauge",
    "PhaseTimer",
    "Span",
    "active",
    "format_summary",
]

#: Versioned tag embedded in every snapshot so downstream consumers (bench
#: reports, CI validation) can detect incompatible dumps.
RECORDER_SCHEMA = "repro.obs.recorder/1"


class Counter:
    """A named monotonic counter owned by a :class:`Recorder`."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._value = 0
        self._lock = lock

    def add(self, n: int = 1) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A named last-value instrument owned by a :class:`Recorder`.

    Unlike a :class:`Counter`, a gauge moves in both directions — it reports
    the most recently written value (a queue depth, a cache size), not an
    accumulation.
    """

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._value: "int | float" = 0
        self._lock = lock

    def set(self, value: "int | float") -> None:
        with self._lock:
            self._value = value

    @property
    def value(self) -> "int | float":
        return self._value


class PhaseTimer:
    """Accumulates total seconds and call count for one named phase."""

    __slots__ = ("name", "_total", "_calls", "_lock")

    def __init__(self, name: str, lock: threading.Lock):
        self.name = name
        self._total = 0.0
        self._calls = 0
        self._lock = lock

    def add(self, seconds: float, calls: int = 1) -> None:
        with self._lock:
            self._total += seconds
            self._calls += calls

    @property
    def total_seconds(self) -> float:
        return self._total

    @property
    def calls(self) -> int:
        return self._calls


class Span:
    """One nestable timed region; created via :meth:`Recorder.span`."""

    __slots__ = ("recorder", "name", "depth", "start", "elapsed")

    def __init__(self, recorder: "Recorder", name: str):
        self.recorder = recorder
        self.name = name
        self.depth = 0
        self.start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Span":
        self.depth = self.recorder._enter_span()
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.elapsed = perf_counter() - self.start
        self.recorder._exit_span(self)
        return False


class Recorder:
    """Thread-safe sink for counters, phase timers, and trace spans.

    One recorder describes one logical computation (one ``compute_kdv``
    call, one benchmark cell).  Worker threads/processes use private
    recorders whose snapshots the parent :meth:`merge`\\ s, so no lock ever
    crosses a process boundary.
    """

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._timers: dict[str, PhaseTimer] = {}
        self._spans: list[dict] = []
        self._epoch = perf_counter()
        self._local = threading.local()

    # -- counters ----------------------------------------------------------

    def counter(self, name: str) -> Counter:
        """The named counter, created on first use."""
        try:
            return self._counters[name]
        except KeyError:
            with self._lock:
                return self._counters.setdefault(name, Counter(name, self._lock))

    def count(self, name: str, n: int = 1) -> None:
        """Shorthand for ``recorder.counter(name).add(n)``."""
        self.counter(name).add(n)

    def counter_value(self, name: str) -> int:
        c = self._counters.get(name)
        return 0 if c is None else c.value

    # -- gauges ------------------------------------------------------------

    def gauge(self, name: str) -> Gauge:
        """The named gauge, created on first use."""
        try:
            return self._gauges[name]
        except KeyError:
            with self._lock:
                return self._gauges.setdefault(name, Gauge(name, self._lock))

    def set_gauge(self, name: str, value: "int | float") -> None:
        """Shorthand for ``recorder.gauge(name).set(value)``."""
        self.gauge(name).set(value)

    def gauge_value(self, name: str) -> "int | float":
        g = self._gauges.get(name)
        return 0 if g is None else g.value

    # -- phase timers ------------------------------------------------------

    def timer(self, name: str) -> PhaseTimer:
        """The named phase timer, created on first use."""
        try:
            return self._timers[name]
        except KeyError:
            with self._lock:
                return self._timers.setdefault(name, PhaseTimer(name, self._lock))

    def phase_seconds(self, name: str) -> float:
        t = self._timers.get(name)
        return 0.0 if t is None else t.total_seconds

    # -- spans -------------------------------------------------------------

    def span(self, name: str) -> Span:
        """A nestable timed region: ``with recorder.span("index_build"):``."""
        return Span(self, name)

    def _enter_span(self) -> int:
        depth = getattr(self._local, "depth", 0)
        self._local.depth = depth + 1
        return depth

    def _exit_span(self, span: Span) -> None:
        self._local.depth = max(getattr(self._local, "depth", 1) - 1, 0)
        with self._lock:
            self._spans.append(
                {
                    "name": span.name,
                    "depth": span.depth,
                    "start_s": span.start - self._epoch,
                    "elapsed_s": span.elapsed,
                }
            )
        # keep phase totals complete whichever primitive the call site used
        self.timer(span.name).add(span.elapsed)

    # -- aggregation -------------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-able dump of everything recorded so far."""
        with self._lock:
            return {
                "schema": RECORDER_SCHEMA,
                "counters": {n: c.value for n, c in self._counters.items()},
                "gauges": {n: g.value for n, g in self._gauges.items()},
                "phases": {
                    n: {"total_s": t.total_seconds, "calls": t.calls}
                    for n, t in self._timers.items()
                },
                "spans": list(self._spans),
            }

    def merge(self, other: "Recorder | dict") -> None:
        """Fold another recorder (or its snapshot) into this one.

        Counters and phase totals add; spans append (their start offsets are
        relative to the *donor's* epoch, so merged spans describe durations,
        not a shared timeline).  This is how per-block worker recorders
        combine: merged counters equal the serial sweep's counts exactly.
        """
        snap = other.snapshot() if isinstance(other, Recorder) else other
        for name, value in snap.get("counters", {}).items():
            self.counter(name).add(value)
        # gauges are last-value instruments: the donor's reading wins
        for name, value in snap.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, phase in snap.get("phases", {}).items():
            self.timer(name).add(phase["total_s"], phase["calls"])
        spans = snap.get("spans", [])
        if spans:
            with self._lock:
                self._spans.extend(dict(s) for s in spans)

    def summary(self) -> str:
        """Human-readable phase/counter breakdown (the CLI ``--stats`` view)."""
        return format_summary(self.snapshot())


class _NullSpan:
    """Shared no-op span; ``__exit__`` takes explicit args so entering and
    leaving the context allocates nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


class _NullCounter:
    __slots__ = ()
    name = ""
    value = 0

    def add(self, n: int = 1) -> None:
        return None


class _NullGauge:
    __slots__ = ()
    name = ""
    value = 0

    def set(self, value) -> None:
        return None


class _NullTimer:
    __slots__ = ()
    name = ""
    total_seconds = 0.0
    calls = 0

    def add(self, seconds: float, calls: int = 1) -> None:
        return None


_NULL_SPAN = _NullSpan()
_NULL_COUNTER = _NullCounter()
_NULL_GAUGE = _NullGauge()
_NULL_TIMER = _NullTimer()


class NullRecorder:
    """The do-nothing recorder: every accessor returns a cached singleton,
    so hot paths holding one perform zero allocations and zero clock reads.

    Instrumented call sites check ``recorder.enabled`` (or ``is None``) and
    skip timing entirely, so passing :data:`NULL_RECORDER` is exactly as
    cheap as passing ``None``.
    """

    enabled = False

    def counter(self, name: str) -> _NullCounter:
        return _NULL_COUNTER

    def count(self, name: str, n: int = 1) -> None:
        return None

    def counter_value(self, name: str) -> int:
        return 0

    def gauge(self, name: str) -> _NullGauge:
        return _NULL_GAUGE

    def set_gauge(self, name: str, value) -> None:
        return None

    def gauge_value(self, name: str) -> int:
        return 0

    def timer(self, name: str) -> _NullTimer:
        return _NULL_TIMER

    def phase_seconds(self, name: str) -> float:
        return 0.0

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def snapshot(self) -> dict:
        return {
            "schema": RECORDER_SCHEMA,
            "counters": {},
            "gauges": {},
            "phases": {},
            "spans": [],
        }

    def merge(self, other) -> None:
        return None

    def summary(self) -> str:
        return "(recording disabled)"


#: Shared no-op instance; safe to pass anywhere a recorder is accepted.
NULL_RECORDER = NullRecorder()


def active(recorder: "Recorder | NullRecorder | None") -> "Recorder | None":
    """Normalize an optional recorder argument to ``Recorder`` or ``None``.

    Call sites branch on the result once, keeping the disabled path free of
    attribute lookups inside loops.
    """
    if recorder is None or not recorder.enabled:
        return None
    return recorder


def format_summary(snapshot: dict) -> str:
    """Render a snapshot as an aligned phase/counter breakdown.

    Phases print by descending total time with their share of the largest
    phase; counters print alphabetically.  Works on merged dumps too.
    """
    lines: list[str] = []
    phases = snapshot.get("phases", {})
    if phases:
        lines.append("phase breakdown:")
        total = sum(p["total_s"] for p in phases.values()) or 1.0
        width = max(len(n) for n in phases)
        ordered = sorted(phases.items(), key=lambda kv: -kv[1]["total_s"])
        for name, p in ordered:
            lines.append(
                f"  {name:<{width}}  {p['total_s']:9.4f}s"
                f"  {100.0 * p['total_s'] / total:5.1f}%"
                f"  ({p['calls']:,} call{'s' if p['calls'] != 1 else ''})"
            )
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("counters:")
        width = max(len(n) for n in counters)
        for name in sorted(counters):
            lines.append(f"  {name:<{width}}  {counters[name]:,}")
    gauges = snapshot.get("gauges", {})
    if gauges:
        lines.append("gauges:")
        width = max(len(n) for n in gauges)
        for name in sorted(gauges):
            lines.append(f"  {name:<{width}}  {gauges[name]:,}")
    if not lines:
        return "(nothing recorded)"
    return "\n".join(lines)
