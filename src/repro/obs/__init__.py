"""Observability: monotonic counters, phase timers, and trace spans.

The instrumentation layer behind ``compute_kdv(..., collect_stats=True)``,
the CLI's ``--stats`` flag, and the recorder dumps embedded in
``BENCH_*.json`` benchmark reports.  See ``docs/observability.md`` for the
API tour and how to read per-phase sweep timings.
"""

from .recorder import (
    NULL_RECORDER,
    RECORDER_SCHEMA,
    Counter,
    Gauge,
    NullRecorder,
    PhaseTimer,
    Recorder,
    Span,
    active,
    format_summary,
)

__all__ = [
    "Recorder",
    "NullRecorder",
    "NULL_RECORDER",
    "Counter",
    "Gauge",
    "PhaseTimer",
    "Span",
    "active",
    "format_summary",
    "RECORDER_SCHEMA",
]
