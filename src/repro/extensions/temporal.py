"""Spatio-temporal KDV (STKDV) — the paper's future-work direction.

The paper's conclusion plans to extend SLAM to "other types of KDV (e.g.
STKDV [18])".  Spatio-temporal KDV renders a *sequence* of density frames:
for each output timestamp ``T_j``, the density at pixel ``q`` is

    F(q, T_j) = sum_p  K_t(T_j, p.t) * K_s(q, p.xy)

with a 1-D temporal kernel ``K_t`` (bandwidth ``b_t``) and a 2-D spatial
kernel ``K_s`` (bandwidth ``b_s``).  The separable product means each frame
is exactly a *weighted* spatial KDV with weights ``w_p = K_t(T_j, p.t)`` —
so every frame runs through the exact SLAM machinery at SLAM's complexity,
and the temporal dimension adds only:

* a one-time sort of the events by time (the temporal analog of the
  envelope's y-sorted index);
* per frame, a binary-searched slice of the events inside the temporal
  support ``|T_j - p.t| <= b_t`` (for the finite-support temporal kernels),
  so far-away events never enter the spatial sweep.

Temporal kernels provided: ``box`` (uniform window), ``triangular``, and
``epanechnikov`` (all finite support), plus ``gaussian`` (infinite support;
every event enters every frame — supported but slower).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.api import compute_kdv
from ..core.result import KDVResult
from ..data.points import PointSet
from ..viz.region import Region

__all__ = ["temporal_kernels", "compute_stkdv", "STKDVResult"]


def _box(dt: np.ndarray, bt: float) -> np.ndarray:
    return np.where(np.abs(dt) <= bt, 1.0, 0.0)


def _triangular(dt: np.ndarray, bt: float) -> np.ndarray:
    return np.maximum(0.0, 1.0 - np.abs(dt) / bt)


def _epanechnikov(dt: np.ndarray, bt: float) -> np.ndarray:
    u = dt / bt
    return np.where(np.abs(u) <= 1.0, 1.0 - u * u, 0.0)


def _gaussian(dt: np.ndarray, bt: float) -> np.ndarray:
    return np.exp(-(dt * dt) / (2.0 * bt * bt))


#: name -> (kernel function of (dt, bt), finite support?)
temporal_kernels: dict[str, tuple[Callable[[np.ndarray, float], np.ndarray], bool]] = {
    "box": (_box, True),
    "triangular": (_triangular, True),
    "epanechnikov": (_epanechnikov, True),
    "gaussian": (_gaussian, False),
}


@dataclass(frozen=True)
class STKDVResult:
    """A spatio-temporal KDV: one exact spatial frame per output time."""

    #: frame timestamps, shape (T,)
    times: np.ndarray
    #: per-frame results (each frame is an ordinary :class:`KDVResult`)
    frames: list[KDVResult]
    temporal_kernel: str
    temporal_bandwidth: float

    def __len__(self) -> int:
        return len(self.frames)

    def grids(self) -> np.ndarray:
        """All frames stacked into a ``(T, Y, X)`` array."""
        return np.stack([f.grid for f in self.frames])

    def peak_frame(self) -> int:
        """Index of the frame with the highest peak density — when the
        hotspot activity peaks."""
        return int(np.argmax([f.max_density() for f in self.frames]))

    def save_ppm_sequence(self, prefix: str, colormap: str = "heat") -> list[str]:
        """Write every frame as ``{prefix}_{index:04d}.ppm``; returns paths.

        A shared color scale (the global max) keeps frames comparable.
        """
        from ..viz.colormap import COLORMAPS, apply_colormap
        from ..viz.image import write_ppm

        if colormap not in COLORMAPS:
            raise ValueError(f"unknown colormap {colormap!r}")
        global_max = max((f.max_density() for f in self.frames), default=0.0)
        paths = []
        for i, frame in enumerate(self.frames):
            scaled = (
                frame.grid_image() / global_max if global_max > 0 else frame.grid_image()
            )
            path = f"{prefix}_{i:04d}.ppm"
            write_ppm(path, apply_colormap(scaled, colormap))
            paths.append(path)
        return paths


def compute_stkdv(
    points: PointSet,
    times: "np.ndarray | int" = 12,
    temporal_kernel: str = "epanechnikov",
    temporal_bandwidth: float | None = None,
    region: Region | None = None,
    size: tuple[int, int] = (320, 240),
    kernel: str = "epanechnikov",
    bandwidth: "float | str" = "scott",
    method: str = "slam_bucket_rao",
    normalization: str = "none",
) -> STKDVResult:
    """Compute a spatio-temporal KDV frame sequence.

    Parameters
    ----------
    points:
        Dataset with timestamps (``points.t`` must be set).  Pre-existing
        point weights multiply the temporal weights.
    times:
        Either explicit frame timestamps or a frame count (evenly spaced
        over the dataset's time range).
    temporal_kernel:
        One of :data:`temporal_kernels`.
    temporal_bandwidth:
        Temporal smoothing scale ``b_t`` in the same units as ``points.t``;
        defaults to (time range) / 8.
    region, size, kernel, bandwidth, method, normalization:
        Forwarded to :func:`repro.core.api.compute_kdv` per frame.  The
        default ``normalization="none"`` keeps frames on a common absolute
        scale so they are comparable over time.

    Returns
    -------
    :class:`STKDVResult`
    """
    if points.t is None:
        raise ValueError("compute_stkdv requires timestamps (points.t)")
    if len(points) == 0:
        raise ValueError("compute_stkdv requires a non-empty dataset")
    try:
        kt_fn, finite = temporal_kernels[temporal_kernel]
    except KeyError:
        raise ValueError(
            f"unknown temporal kernel {temporal_kernel!r}; "
            f"available: {sorted(temporal_kernels)}"
        ) from None

    t = points.t
    t_min, t_max = float(t.min()), float(t.max())
    if isinstance(times, (int, np.integer)):
        if times < 1:
            raise ValueError("frame count must be >= 1")
        frame_times = np.linspace(t_min, t_max, int(times))
    else:
        frame_times = np.asarray(times, dtype=np.float64)
        if frame_times.ndim != 1 or len(frame_times) == 0:
            raise ValueError("times must be a non-empty 1-D array or an int")

    if temporal_bandwidth is None:
        span = t_max - t_min
        temporal_bandwidth = span / 8.0 if span > 0 else 1.0
    if temporal_bandwidth <= 0:
        raise ValueError("temporal_bandwidth must be positive")

    # Fix the region and spatial bandwidth across frames so the sequence is
    # spatially consistent.  Selector strings ("scott", "silverman", "lcv")
    # resolve against the full dataset once, not per frame.
    if region is None:
        region = Region.from_points(points.xy)
    from ..viz.bandwidth import resolve_bandwidth

    bandwidth = resolve_bandwidth(bandwidth, points.xy)

    # temporal analog of the y-sorted envelope index
    order = np.argsort(t, kind="stable")
    t_sorted = t[order]

    frames: list[KDVResult] = []
    for T in frame_times:
        if finite:
            lo = int(np.searchsorted(t_sorted, T - temporal_bandwidth, side="left"))
            hi = int(np.searchsorted(t_sorted, T + temporal_bandwidth, side="right"))
            active_idx = order[lo:hi]
        else:
            active_idx = order
        if len(active_idx) == 0:
            # no events in the temporal window: an explicitly zero frame
            zero = compute_kdv(
                np.empty((0, 2)),
                region=region,
                size=size,
                kernel=kernel,
                bandwidth=float(bandwidth),
                method=method,
                normalization="none",
            )
            frames.append(zero)
            continue
        active = points.select(active_idx)
        temporal_weights = kt_fn(active.t - T, temporal_bandwidth)
        if active.w is not None:
            temporal_weights = temporal_weights * active.w
        frames.append(
            compute_kdv(
                active.xy,
                region=region,
                size=size,
                kernel=kernel,
                bandwidth=float(bandwidth),
                method=method,
                weights=temporal_weights,
                normalization=normalization,
            )
        )
    return STKDVResult(
        times=frame_times,
        frames=frames,
        temporal_kernel=temporal_kernel,
        temporal_bandwidth=float(temporal_bandwidth),
    )
