"""Progressive (coarse-to-fine) KDV rendering.

Interactive tools want a frame on screen immediately; SLAM's complexity is
linear in the number of sweep rows, so a quarter-resolution preview costs a
quarter of a full frame.  :func:`progressive_kdv` renders a ladder of
resolutions ending at the requested one — every level is an *exact* KDV at
its own resolution, so previews never show artifacts beyond coarseness, and
the final level is exactly what :func:`repro.core.api.compute_kdv` returns.

The generator yields levels as they complete, letting a UI draw each one
(upsampled via :func:`upsample_preview`) while the next computes.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..core.api import compute_kdv
from ..core.result import KDVResult
from ..viz.region import Region

__all__ = ["progressive_kdv", "upsample_preview"]


def progressive_kdv(
    points,
    region: Region | None = None,
    size: tuple[int, int] = (1280, 960),
    levels: int = 4,
    **kdv_kwargs,
) -> Iterator[KDVResult]:
    """Yield exact KDVs at resolutions doubling up to ``size``.

    Parameters
    ----------
    levels:
        Number of rungs including the final one; level ``i`` (0-based) runs
        at ``size / 2^(levels-1-i)`` (clamped to at least 1 pixel per axis).
    kdv_kwargs:
        Everything else :func:`compute_kdv` accepts (kernel, bandwidth,
        method, ...).  A ``"scott"`` bandwidth is resolved once up front so
        every level smooths identically.

    Yields
    ------
    :class:`KDVResult` per level, coarsest first; the last one is the
    full-resolution result.
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    width, height = size
    if width < 1 or height < 1:
        raise ValueError("size must be at least 1x1")

    # resolve data-dependent defaults once so all levels agree
    from ..data.points import PointSet

    xy = points.xy if isinstance(points, PointSet) else np.asarray(points, float)
    if region is None:
        region = Region.from_points(xy)
    if kdv_kwargs.get("bandwidth", "scott") == "scott":
        from ..viz.bandwidth import scott_bandwidth

        kdv_kwargs["bandwidth"] = scott_bandwidth(xy)

    for level in range(levels):
        shrink = 2 ** (levels - 1 - level)
        level_size = (max(1, width // shrink), max(1, height // shrink))
        yield compute_kdv(points, region=region, size=level_size, **kdv_kwargs)


def upsample_preview(result: KDVResult, size: tuple[int, int]) -> np.ndarray:
    """Nearest-neighbor upsample of a coarse level's grid to ``size``.

    Returns a ``(size[1], size[0])`` array suitable for display while finer
    levels are still computing.
    """
    width, height = size
    if width < 1 or height < 1:
        raise ValueError("size must be at least 1x1")
    grid = result.grid
    rows = (np.arange(height) * grid.shape[0] // height).clip(0, grid.shape[0] - 1)
    cols = (np.arange(width) * grid.shape[1] // width).clip(0, grid.shape[1] - 1)
    return grid[rows[:, None], cols[None, :]]
