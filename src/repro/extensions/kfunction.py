"""Ripley's K and L functions — the paper's other future-work GIS operation.

The K-function is the classic second-order statistic for point patterns:

    K(r) = |A| / (n (n - 1)) * sum_i sum_{j != i} 1[dist(p_i, p_j) <= r]

where ``|A|`` is the study-region area.  Under complete spatial randomness
(CSR, a homogeneous Poisson process), ``K(r) = pi r^2``; values above that
indicate clustering at scale ``r`` — the aggregate counterpart of the
hotspots KDV shows visually.  ``L(r) = sqrt(K(r) / pi)`` linearizes it so
CSR is the diagonal ``L(r) = r``.

Implementation notes
--------------------
* Pair counting uses the same from-scratch kd-tree as the baselines: one
  radius query of ``r_max`` per point, then a vectorized histogram of the
  neighbor distances over the radii grid — O(n (log n + k)) for k average
  neighbors, not O(n^2).
* Edge correction: points near the region boundary are missing neighbors
  outside it, biasing K downward.  ``correction="border"`` implements the
  standard border (buffer) correction: only points at least ``r`` from the
  boundary act as *centers* for radius ``r``.  ``correction="none"`` returns
  the raw (biased) estimate.
* :func:`csr_envelope` Monte-Carlos CSR simulations in the same region to
  give the acceptance band K-function analyses are judged against.
"""

from __future__ import annotations

import numpy as np

from ..data.points import PointSet
from ..index.kdtree import KDTree
from ..viz.region import Region

__all__ = [
    "k_function",
    "l_function",
    "csr_envelope",
    "pair_correlation",
    "cross_k_function",
]

_CORRECTIONS = ("none", "border")


def _as_xy(points: "PointSet | np.ndarray") -> np.ndarray:
    if isinstance(points, PointSet):
        return points.xy
    xy = np.asarray(points, dtype=np.float64)
    if xy.ndim != 2 or xy.shape[1] != 2:
        raise ValueError(f"expected (n, 2) coordinates, got shape {xy.shape}")
    return xy


def _border_distances(xy: np.ndarray, region: Region) -> np.ndarray:
    """Distance of each point to the nearest region edge."""
    return np.minimum.reduce(
        [
            xy[:, 0] - region.xmin,
            region.xmax - xy[:, 0],
            xy[:, 1] - region.ymin,
            region.ymax - xy[:, 1],
        ]
    )


def k_function(
    points: "PointSet | np.ndarray",
    radii: np.ndarray,
    region: Region | None = None,
    correction: str = "border",
    leaf_size: int = 32,
) -> np.ndarray:
    """Estimate Ripley's K at each radius.

    Parameters
    ----------
    points:
        The point pattern (at least 2 points).
    radii:
        Increasing positive radii to evaluate, shape (R,).
    region:
        Study region; defaults to the pattern's MBR.
    correction:
        ``"border"`` (default) or ``"none"``.

    Returns
    -------
    ``(R,)`` array of K estimates.
    """
    xy = _as_xy(points)
    n = len(xy)
    if n < 2:
        raise ValueError("K-function needs at least 2 points")
    radii = np.asarray(radii, dtype=np.float64)
    if radii.ndim != 1 or len(radii) == 0:
        raise ValueError("radii must be a non-empty 1-D array")
    if np.any(radii <= 0) or np.any(np.diff(radii) <= 0):
        raise ValueError("radii must be positive and strictly increasing")
    if correction not in _CORRECTIONS:
        raise ValueError(
            f"unknown correction {correction!r}; available: {_CORRECTIONS}"
        )
    if region is None:
        region = Region.from_points(xy)
    area = region.width * region.height
    r_max = float(radii[-1])

    tree = KDTree(xy, leaf_size=leaf_size)
    # cumulative neighbor counts per radius, summed over eligible centers
    pair_counts = np.zeros(len(radii), dtype=np.float64)
    center_counts = np.zeros(len(radii), dtype=np.float64)
    border = _border_distances(xy, region)

    for i in range(n):
        neighbors = tree.query_radius(float(xy[i, 0]), float(xy[i, 1]), r_max)
        neighbors = neighbors[neighbors != i]
        if len(neighbors):
            d = np.sqrt(((xy[neighbors] - xy[i]) ** 2).sum(axis=1))
            counts = np.searchsorted(np.sort(d), radii, side="right")
        else:
            counts = np.zeros(len(radii))
        if correction == "border":
            eligible = border[i] >= radii  # center valid only for r <= border
            pair_counts += np.where(eligible, counts, 0.0)
            center_counts += eligible
        else:
            pair_counts += counts
            center_counts += 1.0

    # Each center sees n-1 potential neighbors, so the unbiased intensity of
    # "other points" is (n - 1) / |A|; this yields the standard
    # |A| / (n (n-1)) pair normalization in the uncorrected case.
    intensity = (n - 1) / area
    with np.errstate(invalid="ignore", divide="ignore"):
        k = pair_counts / (center_counts * intensity)
    # radii with no eligible centers are undefined -> NaN
    k[center_counts == 0] = np.nan
    return k


def l_function(
    points: "PointSet | np.ndarray",
    radii: np.ndarray,
    region: Region | None = None,
    correction: str = "border",
) -> np.ndarray:
    """Ripley's L: ``L(r) = sqrt(K(r) / pi)``; CSR gives ``L(r) = r``."""
    k = k_function(points, radii, region=region, correction=correction)
    return np.sqrt(k / np.pi)


def csr_envelope(
    n: int,
    radii: np.ndarray,
    region: Region,
    simulations: int = 99,
    quantile: float = 0.025,
    seed: int = 0,
    correction: str = "border",
) -> tuple[np.ndarray, np.ndarray]:
    """Monte-Carlo CSR envelope for K.

    Simulates ``simulations`` uniform patterns of ``n`` points in ``region``
    and returns per-radius (lower, upper) quantiles of their K estimates.
    An observed K outside the envelope rejects CSR at roughly the
    corresponding level.
    """
    if n < 2:
        raise ValueError("need n >= 2")
    if simulations < 1:
        raise ValueError("need at least one simulation")
    if not 0.0 < quantile < 0.5:
        raise ValueError("quantile must be in (0, 0.5)")
    rng = np.random.default_rng(seed)
    radii = np.asarray(radii, dtype=np.float64)
    ks = np.empty((simulations, len(radii)))
    for s in range(simulations):
        xy = np.column_stack(
            [
                rng.uniform(region.xmin, region.xmax, n),
                rng.uniform(region.ymin, region.ymax, n),
            ]
        )
        ks[s] = k_function(xy, radii, region=region, correction=correction)
    lower = np.nanquantile(ks, quantile, axis=0)
    upper = np.nanquantile(ks, 1.0 - quantile, axis=0)
    return lower, upper


def pair_correlation(
    points: "PointSet | np.ndarray",
    radii: np.ndarray,
    region: Region | None = None,
    correction: str = "border",
) -> np.ndarray:
    """The pair correlation function ``g(r) = K'(r) / (2 pi r)``.

    K accumulates pairs *up to* r; g isolates the pair intensity *at* r, so
    it pinpoints the characteristic clustering scale (g > 1 = clustering at
    exactly that distance, g < 1 = inhibition).  Estimated by central finite
    differences of the K estimate over the given radii grid.
    """
    radii = np.asarray(radii, dtype=np.float64)
    if len(radii) < 3:
        raise ValueError("pair_correlation needs at least 3 radii")
    k = k_function(points, radii, region=region, correction=correction)
    dk = np.gradient(k, radii)
    with np.errstate(invalid="ignore", divide="ignore"):
        return dk / (2.0 * np.pi * radii)


def cross_k_function(
    points_a: "PointSet | np.ndarray",
    points_b: "PointSet | np.ndarray",
    radii: np.ndarray,
    region: Region | None = None,
    correction: str = "border",
    leaf_size: int = 32,
) -> np.ndarray:
    """Cross-type Ripley's K between two point patterns.

    ``K_ab(r) = |A| / (n_a * n_b) * sum_{i in A} #{j in B : d_ij <= r}`` —
    the expected number of type-B events within r of a type-A event, divided
    by B's intensity.  Under independence ``K_ab(r) = pi r^2``; larger values
    mean the types co-locate (e.g. robberies around bars), smaller values
    mean they avoid each other.

    Border correction restricts type-A *centers* to those at least ``r``
    from the region boundary, exactly as in :func:`k_function`.
    """
    xy_a = _as_xy(points_a)
    xy_b = _as_xy(points_b)
    if len(xy_a) < 1 or len(xy_b) < 1:
        raise ValueError("cross-K needs at least one point of each type")
    radii = np.asarray(radii, dtype=np.float64)
    if radii.ndim != 1 or len(radii) == 0:
        raise ValueError("radii must be a non-empty 1-D array")
    if np.any(radii <= 0) or np.any(np.diff(radii) <= 0):
        raise ValueError("radii must be positive and strictly increasing")
    if correction not in _CORRECTIONS:
        raise ValueError(
            f"unknown correction {correction!r}; available: {_CORRECTIONS}"
        )
    if region is None:
        region = Region.from_points(np.vstack([xy_a, xy_b]))
    area = region.width * region.height
    r_max = float(radii[-1])

    tree_b = KDTree(xy_b, leaf_size=leaf_size)
    pair_counts = np.zeros(len(radii), dtype=np.float64)
    center_counts = np.zeros(len(radii), dtype=np.float64)
    border = _border_distances(xy_a, region)

    for i in range(len(xy_a)):
        neighbors = tree_b.query_radius(float(xy_a[i, 0]), float(xy_a[i, 1]), r_max)
        if len(neighbors):
            d = np.sqrt(((xy_b[neighbors] - xy_a[i]) ** 2).sum(axis=1))
            counts = np.searchsorted(np.sort(d), radii, side="right")
        else:
            counts = np.zeros(len(radii))
        if correction == "border":
            eligible = border[i] >= radii
            pair_counts += np.where(eligible, counts, 0.0)
            center_counts += eligible
        else:
            pair_counts += counts
            center_counts += 1.0

    intensity_b = len(xy_b) / area
    with np.errstate(invalid="ignore", divide="ignore"):
        k = pair_counts / (center_counts * intensity_b)
    k[center_counts == 0] = np.nan
    return k
