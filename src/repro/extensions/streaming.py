"""Incremental (real-time) KDV maintenance.

The paper's conclusion plans "the real-time KDV system, based on SLAM, to
support ... large-scale location datasets".  The enabling observation is that
kernel density is *additive over the dataset*:

    F_{P ∪ D}(q) = F_P(q) + F_D(q)        F_{P \\ D}(q) = F_P(q) - F_D(q)

so a live engine never recomputes the full grid: inserting (deleting) a batch
``D`` adds (subtracts) the KDV *of the batch alone*, computed exactly by SLAM
in O(min(X,Y) (max(X,Y) + |D|)) — for a 100-event tick against a million-point
history, that is ~10,000x less work than recomputation.

:class:`StreamingKDV` maintains the raw-sum grid under inserts and deletes,
with optional sliding-window expiry for time-stamped feeds.  Floating-point
cancellation from long delete histories is bounded by periodic *rebuilds*
(full recomputation) every ``rebuild_every`` delete operations; tests verify
the drift stays at float-epsilon scale regardless.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.api import METHODS
from ..core.kernels import get_kernel
from ..viz.region import Raster, Region

__all__ = ["StreamingKDV"]


class StreamingKDV:
    """Exact KDV maintained under point insertions and deletions.

    Parameters
    ----------
    region, size:
        The fixed viewport of the live display.
    kernel, bandwidth:
        Spatial smoothing parameters (fixed; changing them requires a new
        engine, as in real dashboards where the view is pre-configured).
    method:
        Any *exact* registered method; SLAM_BUCKET^(RAO) by default.
    rebuild_every:
        Full recomputation after this many delete batches, bounding float
        cancellation drift (set ``None`` to disable).
    """

    def __init__(
        self,
        region: Region,
        size: tuple[int, int] = (640, 480),
        kernel: str = "epanechnikov",
        bandwidth: float = 500.0,
        method: str = "slam_bucket_rao",
        rebuild_every: "int | None" = 1000,
    ):
        from ..core.api import EXACT_METHODS

        if method not in EXACT_METHODS:
            raise ValueError(
                f"streaming maintenance requires an exact method, got {method!r}"
            )
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if rebuild_every is not None and rebuild_every < 1:
            raise ValueError("rebuild_every must be >= 1 or None")
        self.raster = Raster(region, *size)
        self.kernel = get_kernel(kernel)
        self.bandwidth = float(bandwidth)
        self.method = method
        self.rebuild_every = rebuild_every
        self._grid_fn = METHODS[method][0]
        self._grid = np.zeros(self.raster.shape, dtype=np.float64)
        # live points kept as a deque of (xy array, t array | None) batches
        self._batches: deque[tuple[np.ndarray, np.ndarray | None]] = deque()
        self._n = 0
        self._deletes_since_rebuild = 0

    # -- state ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def grid(self) -> np.ndarray:
        """The current raw-sum density grid (do not mutate)."""
        return self._grid

    def density(self, normalization: str = "count") -> np.ndarray:
        """The grid under the requested normalization."""
        if normalization == "none" or self._n == 0:
            return self._grid.copy()
        if normalization == "count":
            return self._grid / self._n
        raise ValueError(f"unknown normalization {normalization!r}")

    def points(self) -> np.ndarray:
        """All live points, shape (n, 2)."""
        if not self._batches:
            return np.empty((0, 2))
        return np.concatenate([b[0] for b in self._batches])

    def affected_tiles(self, scheme, zoom: int, batch: np.ndarray) -> set:
        """Tile keys at ``zoom`` that inserting/deleting ``batch`` can change.

        A finite-support kernel reaches at most one bandwidth from each
        event, so only tiles intersecting the batch MBR inflated by
        ``self.bandwidth`` are affected — the targeted-invalidation set a
        tile cache must drop (everything else is provably byte-identical).
        Delegates to :func:`repro.serve.invalidate.affected_tiles`.
        """
        from ..serve.invalidate import affected_tiles

        return affected_tiles(scheme, zoom, batch, self.bandwidth)

    # -- updates ----------------------------------------------------------------

    def _delta(self, xy: np.ndarray) -> np.ndarray:
        return self._grid_fn(xy, self.raster, self.kernel, self.bandwidth)

    def insert(self, xy: np.ndarray, t: np.ndarray | None = None) -> None:
        """Add a batch of events; O(sweep of the batch), not of the history."""
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coordinates, got {xy.shape}")
        if len(xy) == 0:
            return
        if t is not None:
            t = np.asarray(t, dtype=np.float64)
            if t.shape != (len(xy),):
                raise ValueError("t must match the batch length")
        self._grid += self._delta(xy)
        self._batches.append((xy, t))
        self._n += len(xy)

    def expire_before(self, cutoff: float) -> int:
        """Delete whole batches older than ``cutoff`` (sliding window).

        Batches are expired when *all* their events are older than the
        cutoff, so feed events in roughly time order for tight windows.
        Returns the number of points removed.
        """
        removed = 0
        while self._batches:
            xy, t = self._batches[0]
            if t is None or t.max() >= cutoff:
                break
            self._grid -= self._delta(xy)
            self._batches.popleft()
            removed += len(xy)
            self._n -= len(xy)
            self._deletes_since_rebuild += 1
        self._maybe_rebuild()
        return removed

    def delete_oldest(self, batches: int = 1) -> int:
        """Delete the oldest ``batches`` insert batches; returns points removed."""
        removed = 0
        for _ in range(min(batches, len(self._batches))):
            xy, _t = self._batches.popleft()
            self._grid -= self._delta(xy)
            removed += len(xy)
            self._n -= len(xy)
            self._deletes_since_rebuild += 1
        self._maybe_rebuild()
        return removed

    def _maybe_rebuild(self) -> None:
        if (
            self.rebuild_every is not None
            and self._deletes_since_rebuild >= self.rebuild_every
        ):
            self.rebuild()

    def rebuild(self) -> None:
        """Recompute the grid from the live points (drift reset)."""
        pts = self.points()
        self._grid = (
            self._delta(pts) if len(pts) else np.zeros(self.raster.shape, dtype=np.float64)
        )
        self._deletes_since_rebuild = 0

    def drift(self) -> float:
        """Max absolute difference between the maintained grid and a fresh
        recomputation — the float-cancellation error currently carried."""
        pts = self.points()
        fresh = (
            self._delta(pts) if len(pts) else np.zeros(self.raster.shape, dtype=np.float64)
        )
        return float(np.abs(self._grid - fresh).max())
