"""Incremental (real-time) KDV maintenance.

The paper's conclusion plans "the real-time KDV system, based on SLAM, to
support ... large-scale location datasets".  The enabling observation is that
kernel density is *additive over the dataset*:

    F_{P ∪ D}(q) = F_P(q) + F_D(q)        F_{P \\ D}(q) = F_P(q) - F_D(q)

so a live engine never recomputes the full grid: inserting (deleting) a batch
``D`` adds (subtracts) the KDV *of the batch alone*, computed exactly by SLAM
in O(min(X,Y) (max(X,Y) + |D|)) — for a 100-event tick against a million-point
history, that is ~10,000x less work than recomputation.

:class:`StreamingKDV` maintains the raw-sum grid under inserts and deletes,
with optional sliding-window expiry for time-stamped feeds.  Floating-point
cancellation from long delete histories is bounded by periodic *rebuilds*
(full recomputation) every ``rebuild_every`` delete operations; tests verify
the drift stays at float-epsilon scale regardless.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.api import METHODS
from ..core.kernels import get_kernel
from ..viz.region import Raster, Region

__all__ = ["StreamingKDV"]


class StreamingKDV:
    """Exact KDV maintained under point insertions and deletions.

    Parameters
    ----------
    region, size:
        The fixed viewport of the live display.
    kernel, bandwidth:
        Spatial smoothing parameters (fixed; changing them requires a new
        engine, as in real dashboards where the view is pre-configured).
    method:
        Any *exact* registered method; SLAM_BUCKET^(RAO) by default.
    engine:
        Row engine forwarded to the method (``"numpy"`` default;
        ``"numpy_batch"`` is bit-identical and faster for large ticks).
    rebuild_every:
        Full recomputation after this many delete batches, bounding float
        cancellation drift (set ``None`` to disable).
    require_timestamps:
        When ``True``, :meth:`insert` rejects batches without timestamps —
        the right setting whenever :meth:`expire_before` drives a sliding
        window, because untimestamped batches can never expire and would
        otherwise leak points forever.
    """

    def __init__(
        self,
        region: Region,
        size: tuple[int, int] = (640, 480),
        kernel: str = "epanechnikov",
        bandwidth: float = 500.0,
        method: str = "slam_bucket_rao",
        engine: str = "numpy",
        rebuild_every: "int | None" = 1000,
        require_timestamps: bool = False,
    ):
        from ..core.api import EXACT_METHODS

        if method not in EXACT_METHODS:
            raise ValueError(
                f"streaming maintenance requires an exact method, got {method!r}"
            )
        if bandwidth <= 0:
            raise ValueError("bandwidth must be positive")
        if rebuild_every is not None and rebuild_every < 1:
            raise ValueError("rebuild_every must be >= 1 or None")
        self.raster = Raster(region, *size)
        self.kernel = get_kernel(kernel)
        self.bandwidth = float(bandwidth)
        self.method = method
        self.engine = engine
        self.rebuild_every = rebuild_every
        self.require_timestamps = bool(require_timestamps)
        self._grid_fn = METHODS[method][0]
        self._grid = np.zeros(self.raster.shape, dtype=np.float64)
        # live points kept as a deque of (xy array, t array | None) batches
        self._batches: deque[tuple[np.ndarray, np.ndarray | None]] = deque()
        self._n = 0
        self._deletes_since_rebuild = 0
        self._rebuilds = 0
        self._last_rebuild_drift = 0.0
        self._t_max: "float | None" = None

    # -- state ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._n

    @property
    def grid(self) -> np.ndarray:
        """The current raw-sum density grid (do not mutate)."""
        return self._grid

    def density(self, normalization: str = "count") -> np.ndarray:
        """The grid under the requested normalization."""
        if normalization == "none" or self._n == 0:
            return self._grid.copy()
        if normalization == "count":
            return self._grid / self._n
        raise ValueError(f"unknown normalization {normalization!r}")

    def points(self) -> np.ndarray:
        """All live points, shape (n, 2)."""
        if not self._batches:
            return np.empty((0, 2))
        return np.concatenate([b[0] for b in self._batches])

    def batches(self) -> list[tuple[np.ndarray, "np.ndarray | None"]]:
        """The live ``(xy, t)`` batches, oldest first (do not mutate).

        This is the replay hook a second maintained view (e.g. a sliding
        window over the same feed) uses to bootstrap from an existing
        engine's history.
        """
        return list(self._batches)

    @property
    def latest_time(self) -> "float | None":
        """The largest timestamp ever ingested (the event-time watermark),
        or ``None`` when no timestamped batch has been inserted."""
        return self._t_max

    @property
    def rebuilds(self) -> int:
        """How many full rebuilds (drift resets) have run."""
        return self._rebuilds

    @property
    def last_rebuild_drift(self) -> float:
        """The float-cancellation drift measured (and reset) by the most
        recent :meth:`rebuild`; ``0.0`` before the first rebuild."""
        return self._last_rebuild_drift

    def affected_tiles(self, scheme, zoom: int, batch: np.ndarray) -> set:
        """Tile keys at ``zoom`` that inserting/deleting ``batch`` can change.

        A finite-support kernel reaches at most one bandwidth from each
        event, so only tiles intersecting the batch MBR inflated by
        ``self.bandwidth`` are affected — the targeted-invalidation set a
        tile cache must drop (everything else is provably byte-identical).
        Delegates to :func:`repro.serve.invalidate.affected_tiles`.
        """
        from ..serve.invalidate import affected_tiles

        return affected_tiles(scheme, zoom, batch, self.bandwidth)

    # -- updates ----------------------------------------------------------------

    def _delta(self, xy: np.ndarray) -> np.ndarray:
        return self._grid_fn(
            xy, self.raster, self.kernel, self.bandwidth, engine=self.engine
        )

    def insert(self, xy: np.ndarray, t: np.ndarray | None = None) -> None:
        """Add a batch of events; O(sweep of the batch), not of the history."""
        xy = np.asarray(xy, dtype=np.float64)
        if xy.ndim != 2 or xy.shape[1] != 2:
            raise ValueError(f"expected (n, 2) coordinates, got {xy.shape}")
        if len(xy) == 0:
            return
        if t is not None:
            t = np.asarray(t, dtype=np.float64)
            if t.shape != (len(xy),):
                raise ValueError("t must match the batch length")
        elif self.require_timestamps:
            raise ValueError(
                "this engine enforces sliding-window expiry "
                "(require_timestamps=True); every insert needs per-event "
                "timestamps, or the batch could never expire"
            )
        self._grid += self._delta(xy)
        self._batches.append((xy, t))
        self._n += len(xy)
        if t is not None and len(t):
            t_max = float(t.max())
            if self._t_max is None or t_max > self._t_max:
                self._t_max = t_max

    def expire_before(
        self, cutoff: float, collect: bool = False
    ) -> "int | tuple[int, list[np.ndarray]]":
        """Delete every timestamped event older than ``cutoff`` (sliding window).

        Expiry is per *event*, not per batch: every live batch is examined,
        fully-expired batches are dropped, and a batch straddling the cutoff
        is split — its old events leave, its young events stay — so the
        retained set is exactly ``{p : p.t >= cutoff}`` however the feed was
        batched.  Untimestamped batches never expire (they carry no evidence
        of age; construct with ``require_timestamps=True`` to keep them out
        entirely).  All expired events are removed by **one** signed grid
        update, so a tick costs one sweep of the expired points, not one
        per batch.

        Returns the number of points removed — an honest count over the
        whole history.  With ``collect=True`` returns ``(removed, batches)``
        where ``batches`` is the list of expired coordinate arrays (what a
        tile cache needs to invalidate exactly the affected tiles).
        """
        expired: list[np.ndarray] = []
        kept: deque[tuple[np.ndarray, np.ndarray | None]] = deque()
        for xy, t in self._batches:
            if t is None or not len(t):
                kept.append((xy, t))
                continue
            old = t < cutoff
            if not old.any():
                kept.append((xy, t))
            elif old.all():
                expired.append(xy)
            else:
                expired.append(xy[old])
                keep = ~old
                kept.append((xy[keep], t[keep]))
        removed = 0
        if expired:
            drop = expired[0] if len(expired) == 1 else np.concatenate(expired)
            self._grid -= self._delta(drop)
            self._batches = kept
            removed = len(drop)
            self._n -= removed
            self._deletes_since_rebuild += 1
            self._maybe_rebuild()
        if collect:
            return removed, expired
        return removed

    def delete_oldest(self, batches: int = 1) -> int:
        """Delete the oldest ``batches`` insert batches; returns points removed."""
        removed = 0
        for _ in range(min(batches, len(self._batches))):
            xy, _t = self._batches.popleft()
            self._grid -= self._delta(xy)
            removed += len(xy)
            self._n -= len(xy)
            self._deletes_since_rebuild += 1
        self._maybe_rebuild()
        return removed

    def _maybe_rebuild(self) -> None:
        if (
            self.rebuild_every is not None
            and self._deletes_since_rebuild >= self.rebuild_every
        ):
            self.rebuild()

    def rebuild(self) -> float:
        """Recompute the grid from the live points (drift reset).

        Returns the drift that was just erased — the max absolute difference
        between the maintained grid and the fresh recomputation (also kept
        on :attr:`last_rebuild_drift`), so callers get the cancellation
        measurement for free from the recomputation they are paying for
        anyway.
        """
        pts = self.points()
        fresh = (
            self._delta(pts) if len(pts) else np.zeros(self.raster.shape, dtype=np.float64)
        )
        drift = float(np.abs(self._grid - fresh).max())
        self._grid = fresh
        self._deletes_since_rebuild = 0
        self._rebuilds += 1
        self._last_rebuild_drift = drift
        return drift

    def drift(self) -> float:
        """Max absolute difference between the maintained grid and a fresh
        recomputation — the float-cancellation error currently carried."""
        pts = self.points()
        fresh = (
            self._delta(pts) if len(pts) else np.zeros(self.raster.shape, dtype=np.float64)
        )
        return float(np.abs(self._grid - fresh).max())
