"""Extensions beyond the paper's core contribution.

The SLAM paper's conclusion lists several future-work directions; this
subpackage implements the ones that build directly on the SLAM machinery:

* :mod:`repro.extensions.temporal` — spatio-temporal KDV (STKDV): a time
  axis added via temporal kernels, rendered as exact per-frame SLAM sweeps
  over time-weighted points.
* :mod:`repro.extensions.kfunction` — Ripley's K and L functions, the other
  classic spatial hotspot statistic the paper plans to support.
* :mod:`repro.extensions.progressive` — progressive (coarse-to-fine) KDV
  rendering for interactive latency budgets.
* :mod:`repro.extensions.multiband` — multi-bandwidth KDV batches that share
  per-dataset preprocessing across bandwidths (bandwidth-exploration support
  in the spirit of the SAFE framework the paper cites).
* :mod:`repro.extensions.streaming` — the "real-time KDV system": exact
  incremental grid maintenance under inserts/deletes/sliding windows.
* :mod:`repro.extensions.adaptive` — adaptive (variable-bandwidth) KDV: the
  aggregate decomposition generalized to per-point bandwidths, still exact.

(The network-KDV future-work item lives in its own subpackage,
:mod:`repro.network`, since it carries a full road-network substrate.)
"""

from .adaptive import adaptive_kdv_grid, compute_adaptive_kdv, knn_bandwidths
from .kfunction import (
    cross_k_function,
    csr_envelope,
    k_function,
    l_function,
    pair_correlation,
)
from .multiband import compute_multiband
from .progressive import progressive_kdv
from .streaming import StreamingKDV
from .temporal import STKDVResult, compute_stkdv, temporal_kernels

__all__ = [
    "compute_stkdv",
    "STKDVResult",
    "temporal_kernels",
    "k_function",
    "l_function",
    "csr_envelope",
    "pair_correlation",
    "cross_k_function",
    "progressive_kdv",
    "compute_multiband",
    "StreamingKDV",
    "compute_adaptive_kdv",
    "adaptive_kdv_grid",
    "knn_bandwidths",
]
