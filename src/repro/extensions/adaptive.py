"""Adaptive (variable-bandwidth) KDV with an exact sweep — novel extension.

Fixed-bandwidth KDE over-smooths dense downtowns and under-smooths sparse
suburbs; adaptive ("balloon"/sample-point) KDE gives every data point its
own bandwidth ``b_i``, classically the distance to its k-th nearest
neighbor.  The paper's Section 3.7 trick — decompose the kernel sum into
aggregates maintained by the sweep — extends to per-point bandwidths:

    sum_i (1 - d_i^2 / b_i^2)                                  (Epanechnikov)
  = |R(q)| - sum_i (||q||^2 - 2 q.p_i + ||p_i||^2) / b_i^2
  = |R(q)| - ||q||^2 * S[1/b^2] + 2 q . S[p/b^2] - S[||p||^2/b^2]

Every aggregate is still a per-point channel value, just scaled by the
point's own ``1/b_i^2`` (and ``1/b_i^4`` for the quartic terms), so the
sweep machinery is unchanged:

* the per-row candidate set uses the *maximum* bandwidth envelope
  ``|k - p.y| <= b_max`` and then filters to each point's own envelope;
* interval endpoints use each point's own half-width
  ``sqrt(b_i^2 - (k - p.y)^2)``;
* pixels evaluate in O(1) from prefix-summed adaptive channels.

Exactness is preserved (tests compare against direct evaluation).  The
complexity becomes ``O(Y (X + m_B log m_B))`` with ``m_B`` the b_max
envelope size — a single far-reaching point degrades rows it touches, which
is the honest price of the balloon estimator.

Numerical note: the quartic channels carry ``(b_max / b_i)^4`` factors, so
extreme bandwidth ratios amplify float cancellation; with ratios up to ~40
the relative error stays near 1e-7 (tested), and the Epanechnikov/uniform
paths stay at ~1e-12.  Clamp pathological pilot bandwidths (e.g. via
``min_bandwidth`` in :func:`knn_bandwidths`) if tighter quartic precision
matters.

Channel layout (``_adaptive_channels``):

    0                  1                          (count)
    1..4               (1, x, y, s) / b^2         (Epanechnikov terms)
    5..14              (1, x, y, s, sx, sy, s^2, x^2, xy, y^2) / b^4
                                                  (quartic terms)

Uniform needs ``1/b`` instead: channel 1 doubles as ``1/b`` storage in the
uniform path (see ``_NUM_CHANNELS``).
"""

from __future__ import annotations

import numpy as np

from ..core.kernels import Kernel, get_kernel
from ..index.kdtree import KDTree
from ..viz.region import Raster, Region

__all__ = ["knn_bandwidths", "adaptive_kdv_grid", "adaptive_scan_grid", "compute_adaptive_kdv"]

_NUM_CHANNELS = {"uniform": 2, "epanechnikov": 5, "quartic": 15}


def knn_bandwidths(
    xy: np.ndarray,
    k: int = 32,
    scale: float = 1.0,
    min_bandwidth: float = 1e-9,
) -> np.ndarray:
    """Per-point bandwidths = ``scale`` × distance to the k-th nearest
    neighbor (the classic adaptive-KDE pilot).

    Implemented with the library's kd-tree via expanding radius queries.
    """
    xy = np.asarray(xy, dtype=np.float64)
    n = len(xy)
    if n < 2:
        raise ValueError("kNN bandwidths need at least 2 points")
    if not 1 <= k < n:
        raise ValueError(f"k must be in [1, n-1], got {k}")
    if scale <= 0:
        raise ValueError("scale must be positive")
    tree = KDTree(xy, leaf_size=32)
    span = float(np.linalg.norm(xy.max(axis=0) - xy.min(axis=0))) or 1.0
    out = np.empty(n)
    for i in range(n):
        radius = span * np.sqrt((k + 1) / n)  # density-based initial guess
        while True:
            neighbors = tree.query_radius(float(xy[i, 0]), float(xy[i, 1]), radius)
            neighbors = neighbors[neighbors != i]
            if len(neighbors) >= k or radius > 2 * span:
                break
            radius *= 2.0
        d = np.sqrt(((xy[neighbors] - xy[i]) ** 2).sum(axis=1))
        out[i] = np.partition(d, k - 1)[k - 1] if len(d) >= k else (d.max() if len(d) else span)
    return np.maximum(out * scale, min_bandwidth)


def _adaptive_channels(u, v, beta, kernel_name: str) -> np.ndarray:
    """Adaptive channel matrix in the b_max-scaled row frame.

    ``(u, v)`` are frame coordinates, ``beta = b_i / b_max``.
    """
    m = len(u)
    nch = _NUM_CHANNELS[kernel_name]
    out = np.empty((m, nch))
    out[:, 0] = 1.0
    if kernel_name == "uniform":
        out[:, 1] = 1.0 / beta
        return out
    inv2 = 1.0 / (beta * beta)
    s = u * u + v * v
    out[:, 1] = inv2
    out[:, 2] = u * inv2
    out[:, 3] = v * inv2
    out[:, 4] = s * inv2
    if kernel_name == "quartic":
        inv4 = inv2 * inv2
        out[:, 5] = inv4
        out[:, 6] = u * inv4
        out[:, 7] = v * inv4
        out[:, 8] = s * inv4
        out[:, 9] = s * u * inv4
        out[:, 10] = s * v * inv4
        out[:, 11] = s * s * inv4
        out[:, 12] = u * u * inv4
        out[:, 13] = u * v * inv4
        out[:, 14] = v * v * inv4
    return out


def _adaptive_combine(qx, agg, kernel_name: str) -> np.ndarray:
    """Recombine adaptive aggregates at pixels ``(qx, 0)`` (frame units)."""
    cnt = agg[..., 0]
    if kernel_name == "uniform":
        return agg[..., 1]  # sum of 1/beta; caller divides by b_max
    q2 = qx * qx
    # sum d^2 / b^2 with d^2 = q2 - 2 qx u + s   (qy = 0 in the row frame)
    sum_d2 = q2 * agg[..., 1] - 2.0 * qx * agg[..., 2] + agg[..., 4]
    if kernel_name == "epanechnikov":
        return cnt - sum_d2
    # quartic: cnt - 2 sum d^2/b^2 + sum d^4/b^4, with
    # d^4 = q2^2 + 4 (qx u)^2 + s^2 + 2 q2 s - 4 q2 (qx u) - 4 (qx u) s
    sum_d4 = (
        q2 * q2 * agg[..., 5]
        + 4.0 * qx * qx * agg[..., 12]
        + agg[..., 11]
        + 2.0 * q2 * agg[..., 8]
        - 4.0 * q2 * qx * agg[..., 6]
        - 4.0 * qx * agg[..., 9]
    )
    return cnt - 2.0 * sum_d2 + sum_d4


def adaptive_kdv_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: "str | Kernel",
    bandwidths: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Exact adaptive KDV by a per-row sweep (sorting variant).

    Returns the raw grid ``sum_i w_i K(dist(q, p_i); b_i)``.
    """
    kernel_obj = get_kernel(kernel)
    if kernel_obj.name not in _NUM_CHANNELS:
        raise ValueError(
            f"kernel {kernel_obj.name!r} is not supported for adaptive KDV "
            "(finite-support kernels of Table 2 only)"
        )
    kernel_name = kernel_obj.name
    xy = np.asarray(xy, dtype=np.float64)
    bandwidths = np.asarray(bandwidths, dtype=np.float64)
    if bandwidths.shape != (len(xy),):
        raise ValueError(
            f"bandwidths must have shape ({len(xy)},), got {bandwidths.shape}"
        )
    if len(xy) and bandwidths.min() <= 0:
        raise ValueError("bandwidths must be positive")
    if weights is not None:
        weights = np.asarray(weights, dtype=np.float64)
        if weights.shape != (len(xy),):
            raise ValueError(f"weights must have shape ({len(xy)},)")

    grid = np.zeros(raster.shape, dtype=np.float64)
    if len(xy) == 0:
        return grid
    b_max = float(bandwidths.max())

    # y-sorted order for b_max envelopes
    order = np.argsort(xy[:, 1], kind="stable")
    ys_sorted = xy[order, 1]
    xy_sorted = xy[order]
    b_sorted = bandwidths[order]
    w_sorted = None if weights is None else weights[order]

    cx = (raster.region.xmin + raster.region.xmax) / 2.0
    xs = (raster.x_centers() - cx) / b_max
    nch = _NUM_CHANNELS[kernel_name]
    zero_row = np.zeros((1, nch))

    for j, k in enumerate(raster.y_centers()):
        lo = int(np.searchsorted(ys_sorted, k - b_max, side="left"))
        hi = int(np.searchsorted(ys_sorted, k + b_max, side="right"))
        if hi <= lo:
            continue
        u = (xy_sorted[lo:hi, 0] - cx) / b_max
        v = (xy_sorted[lo:hi, 1] - k) / b_max
        beta = b_sorted[lo:hi] / b_max
        # each point's own envelope: |k - y_i| <= b_i
        inside = np.abs(v) <= beta
        if not inside.any():
            continue
        u, v, beta = u[inside], v[inside], beta[inside]
        chans = _adaptive_channels(u, v, beta, kernel_name)
        if w_sorted is not None:
            chans = chans * w_sorted[lo:hi][inside][:, None]
        half = np.sqrt(np.maximum(beta * beta - v * v, 0.0))
        lb, ub = u - half, u + half

        order_l = np.argsort(lb, kind="stable")
        prefix_l = np.concatenate([zero_row, np.cumsum(chans[order_l], axis=0)])
        order_u = np.argsort(ub, kind="stable")
        prefix_u = np.concatenate([zero_row, np.cumsum(chans[order_u], axis=0)])
        idx_l = np.searchsorted(lb[order_l], xs, side="right")
        idx_u = np.searchsorted(ub[order_u], xs, side="left")
        agg = prefix_l[idx_l] - prefix_u[idx_u]
        grid[j] = _adaptive_combine(xs, agg, kernel_name)

    if kernel_name == "uniform":
        grid /= b_max  # channel stored 1/beta = b_max/b
    return grid


def adaptive_scan_grid(
    xy: np.ndarray,
    raster: Raster,
    kernel: "str | Kernel",
    bandwidths: np.ndarray,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Direct O(XYn) adaptive evaluation — the correctness reference."""
    kernel_obj = get_kernel(kernel)
    xy = np.asarray(xy, dtype=np.float64)
    bandwidths = np.asarray(bandwidths, dtype=np.float64)
    if bandwidths.shape != (len(xy),):
        raise ValueError(
            f"bandwidths must have shape ({len(xy)},), got {bandwidths.shape}"
        )
    xs = raster.x_centers()
    ys = raster.y_centers()
    grid = np.zeros(raster.shape, dtype=np.float64)
    if len(xy) == 0:
        return grid
    w = np.ones(len(xy)) if weights is None else np.asarray(weights, float)
    for i in range(len(xy)):
        d_sq = (xs[None, :] - xy[i, 0]) ** 2 + (ys[:, None] - xy[i, 1]) ** 2
        grid += w[i] * kernel_obj.evaluate(d_sq, float(bandwidths[i]))
    return grid


def compute_adaptive_kdv(
    points,
    region: Region | None = None,
    size: tuple[int, int] = (640, 480),
    kernel: str = "epanechnikov",
    k_neighbors: int = 32,
    bandwidth_scale: float = 1.0,
    bandwidths: np.ndarray | None = None,
    weights: np.ndarray | None = None,
    normalization: str = "count",
):
    """End-to-end adaptive KDV returning a :class:`~repro.core.result.KDVResult`.

    Bandwidths default to the k-nearest-neighbor pilot
    (:func:`knn_bandwidths`); pass ``bandwidths`` to control them directly.
    The result's ``bandwidth`` field records the *median* per-point value.

    ``normalization="density"`` folds each point's kernel-area normalizer
    (which depends on its own ``b_i``) into its weight, yielding the proper
    sample-point adaptive density estimate ``(1/n) sum_i norm(b_i) K_i`` —
    the form in which adaptive KDE's sharper peaks over dense clusters are
    visible.  ``"count"`` (default) and ``"none"`` keep raw kernel sums.
    """
    from ..core.result import KDVResult
    from ..data.points import PointSet

    if normalization not in ("none", "count", "density"):
        raise ValueError(f"unknown normalization {normalization!r}")
    if isinstance(points, PointSet):
        if weights is None and points.w is not None:
            weights = points.w
        xy = points.xy
    else:
        xy = np.asarray(points, dtype=np.float64)
    if region is None:
        region = Region.from_points(xy)
    raster = Raster(region, *size)
    if bandwidths is None:
        bandwidths = knn_bandwidths(xy, k=k_neighbors, scale=bandwidth_scale)
    bandwidths = np.asarray(bandwidths, dtype=np.float64)

    kernel_obj = get_kernel(kernel)
    effective_weights = weights
    if normalization == "density" and len(xy):
        normalizers = np.array([kernel_obj.normalizer(float(b)) for b in bandwidths])
        effective_weights = (
            normalizers if weights is None else np.asarray(weights, float) * normalizers
        )

    grid = adaptive_kdv_grid(xy, raster, kernel, bandwidths, weights=effective_weights)
    total = float(np.sum(weights)) if weights is not None else float(len(xy))
    if normalization in ("count", "density") and total > 0:
        grid = grid / total
    return KDVResult(
        grid=grid,
        raster=raster,
        kernel=kernel_obj.name,
        bandwidth=float(np.median(bandwidths)) if len(xy) else 0.0,
        method="adaptive_slam_sort",
        normalization=normalization,
        n_points=len(xy),
        exact=True,
    )
