"""Multi-bandwidth KDV batches (bandwidth exploration).

Bandwidth selection is one of the paper's exploratory operations (Figure 2):
analysts render the same data at several smoothing scales to separate micro
from macro hotspots.  The paper cites the SAFE framework [17] for sharing
work across bandwidths; with SLAM the dominant sharable cost is the y-sort
of the dataset, which is identical for every bandwidth.  This module batches
the computation so that sort happens once.

Only the non-RAO sweeps can share the index (RAO may transpose, which needs
the other coordinate's sort — :func:`compute_multiband` builds both sorts at
most once each).
"""

from __future__ import annotations

import numpy as np

from ..core.envelope import YSortedIndex
from ..core.kernels import get_kernel
from ..core.rao import rao_orientation
from ..core.result import KDVResult
from ..core.slam_bucket import slam_bucket_grid
from ..core.slam_sort import slam_sort_grid
from ..data.points import PointSet
from ..viz.region import Raster, Region

__all__ = ["compute_multiband"]

_VARIANTS = {
    "slam_sort": slam_sort_grid,
    "slam_bucket": slam_bucket_grid,
}


def compute_multiband(
    points: "PointSet | np.ndarray",
    bandwidths: "list[float] | np.ndarray",
    region: Region | None = None,
    size: tuple[int, int] = (1280, 960),
    kernel: str = "epanechnikov",
    variant: str = "slam_bucket",
    engine: str = "numpy",
    rao: bool = True,
    normalization: str = "count",
) -> list[KDVResult]:
    """Compute one exact KDV per bandwidth, sharing dataset preprocessing.

    Parameters
    ----------
    bandwidths:
        Positive bandwidth values (any order; results match input order).
    variant:
        ``"slam_bucket"`` (default) or ``"slam_sort"``.
    rao:
        Apply the resolution-aware orientation (shared across bandwidths —
        the raster does not change).

    Returns
    -------
    One :class:`KDVResult` per bandwidth.
    """
    if variant not in _VARIANTS:
        raise ValueError(f"unknown variant {variant!r}; available: {sorted(_VARIANTS)}")
    bandwidths = [float(b) for b in np.asarray(bandwidths, dtype=np.float64).ravel()]
    if not bandwidths:
        raise ValueError("need at least one bandwidth")
    if any(b <= 0 for b in bandwidths):
        raise ValueError("bandwidths must be positive")
    if normalization not in ("none", "count"):
        raise ValueError("normalization must be 'none' or 'count'")

    weights = None
    if isinstance(points, PointSet):
        xy = points.xy
        weights = points.w
    else:
        xy = np.asarray(points, dtype=np.float64)
    if region is None:
        region = Region.from_points(xy)
    raster = Raster(region, *size)
    kernel_obj = get_kernel(kernel)
    grid_fn = _VARIANTS[variant][engine]

    transpose = rao and rao_orientation(raster) == "columns"
    if transpose:
        sweep_xy = xy[:, ::-1]
        sweep_raster = raster.transposed()
    else:
        sweep_xy = xy
        sweep_raster = raster
    # the shared preprocessing: one y-sort for every bandwidth
    ysorted = YSortedIndex(sweep_xy)

    total_mass = float(weights.sum()) if weights is not None else float(len(xy))
    results = []
    for b in bandwidths:
        grid = grid_fn(
            sweep_xy, sweep_raster, kernel_obj, b, ysorted=ysorted, weights=weights
        )
        if transpose:
            grid = np.ascontiguousarray(grid.T)
        if normalization == "count" and total_mass > 0:
            grid = grid / total_mass
        results.append(
            KDVResult(
                grid=grid,
                raster=raster,
                kernel=kernel_obj.name,
                bandwidth=b,
                method=f"{variant}{'_rao' if rao else ''}",
                normalization=normalization,
                n_points=len(xy),
                exact=True,
            )
        )
    return results
