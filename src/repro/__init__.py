"""SLAM: efficient sweep line algorithms for kernel density visualization.

A faithful, self-contained Python reproduction of Chan, U, Choi, Xu,
"SLAM: Efficient Sweep Line Algorithms for Kernel Density Visualization"
(SIGMOD 2022), including the SLAM_SORT / SLAM_BUCKET algorithms, the
resolution-aware optimization (RAO), every baseline of the paper's Table 6
(SCAN, RQS_kd, RQS_ball, Z-order, aKDE, QUAD), synthetic stand-ins for the
four evaluation datasets, and a benchmark harness that regenerates every
table and figure of the evaluation section.

Quickstart::

    from repro import load_dataset, compute_kdv

    points = load_dataset("seattle", scale=0.02)
    result = compute_kdv(points, size=(320, 240))   # SLAM_BUCKET^(RAO)
    print(result.grid.shape, result.max_density())
"""

from .core.api import (
    APPROXIMATE_METHODS,
    EXACT_METHODS,
    METHODS,
    PARALLEL_METHODS,
    compute_kdv,
    method_names,
)
from .core.kernels import (
    KERNELS,
    EpanechnikovKernel,
    GaussianKernel,
    Kernel,
    QuarticKernel,
    UniformKernel,
    get_kernel,
)
from .core.result import KDVResult, SweepStats
from .data.datasets import dataset_names, full_size, load_dataset
from .data.generators import CityModel, generate_city
from .data.io import load_csv, save_csv
from .data.points import PointSet
from .data.projection import LocalEquirectangular, WebMercator
from .viz.bandwidth import (
    lcv_bandwidth,
    scaled_bandwidth,
    scott_bandwidth,
    silverman_bandwidth,
)
from .viz.explore import ExplorationSession, random_pan_regions
from .viz.region import Raster, Region

# subpackages kept importable without a separate import statement
from . import analysis, extensions, network, serve  # noqa: E402  (re-export)

__version__ = "1.0.0"

__all__ = [
    "compute_kdv",
    "method_names",
    "METHODS",
    "EXACT_METHODS",
    "APPROXIMATE_METHODS",
    "PARALLEL_METHODS",
    "KDVResult",
    "SweepStats",
    "Kernel",
    "UniformKernel",
    "EpanechnikovKernel",
    "QuarticKernel",
    "GaussianKernel",
    "KERNELS",
    "get_kernel",
    "PointSet",
    "Region",
    "Raster",
    "CityModel",
    "generate_city",
    "load_dataset",
    "dataset_names",
    "full_size",
    "load_csv",
    "save_csv",
    "scott_bandwidth",
    "scaled_bandwidth",
    "silverman_bandwidth",
    "lcv_bandwidth",
    "LocalEquirectangular",
    "WebMercator",
    "ExplorationSession",
    "random_pan_regions",
    "analysis",
    "extensions",
    "network",
    "serve",
    "__version__",
]
