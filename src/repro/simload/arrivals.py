"""Arrival processes: when do requests land on the service?

Open-loop traffic is a (possibly time-varying) Poisson process.  We draw
arrival instants by *thinning* (Lewis & Shedler): draw candidate points from
a homogeneous Poisson process at the peak rate ``λ_max``, keep each with
probability ``λ(t)/λ_max``.  Thinning is exact for any bounded rate
function and — crucially here — deterministic given the seeded generator.

Three rate shapes cover the scenarios in :mod:`repro.simload.scenarios`:

* ``steady`` — constant offered load.
* ``diurnal`` — a raised sinusoid ``base * (1 + amplitude*sin(...))``
  squeezing a day into ``period_s`` of virtual time.
* ``flash`` — steady base load plus a rectangular spike window during
  which the rate multiplies by ``spike_factor`` (the flash crowd).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["ArrivalSpec", "rate_at", "peak_rate", "arrival_times"]


@dataclass(frozen=True)
class ArrivalSpec:
    """Declarative description of an offered-load curve.

    Parameters
    ----------
    shape:
        ``"steady"``, ``"diurnal"``, or ``"flash"``.
    rate:
        Base offered load in requests per virtual second.
    amplitude:
        Diurnal swing as a fraction of ``rate`` (0..1); ignored otherwise.
    period_s:
        Diurnal period in virtual seconds.
    spike_start_s / spike_end_s:
        Flash-crowd window (virtual seconds from scenario start).
    spike_factor:
        Rate multiplier inside the spike window.
    """

    shape: str = "steady"
    rate: float = 20.0
    amplitude: float = 0.6
    period_s: float = 60.0
    spike_start_s: float = 10.0
    spike_end_s: float = 20.0
    spike_factor: float = 6.0

    def __post_init__(self):
        if self.shape not in ("steady", "diurnal", "flash"):
            raise ValueError(f"unknown arrival shape: {self.shape!r}")
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.shape == "flash" and self.spike_end_s <= self.spike_start_s:
            raise ValueError("flash spike window must have positive length")

    def scaled(self, factor: float) -> "ArrivalSpec":
        """The same curve with base rate multiplied by ``factor`` (used by
        load sweeps to step the offered level)."""
        return ArrivalSpec(
            shape=self.shape,
            rate=self.rate * factor,
            amplitude=self.amplitude,
            period_s=self.period_s,
            spike_start_s=self.spike_start_s,
            spike_end_s=self.spike_end_s,
            spike_factor=self.spike_factor,
        )


def rate_at(spec: ArrivalSpec, t: float) -> float:
    """Instantaneous offered rate λ(t) in requests per virtual second."""
    if spec.shape == "steady":
        return spec.rate
    if spec.shape == "diurnal":
        phase = 2.0 * math.pi * t / spec.period_s
        return spec.rate * (1.0 + spec.amplitude * math.sin(phase))
    # flash
    if spec.spike_start_s <= t < spec.spike_end_s:
        return spec.rate * spec.spike_factor
    return spec.rate


def peak_rate(spec: ArrivalSpec) -> float:
    """An upper bound on λ(t), the thinning envelope."""
    if spec.shape == "steady":
        return spec.rate
    if spec.shape == "diurnal":
        return spec.rate * (1.0 + spec.amplitude)
    return spec.rate * spec.spike_factor


def arrival_times(
    spec: ArrivalSpec, duration_s: float, rng: np.random.Generator
) -> np.ndarray:
    """All arrival instants in ``[0, duration_s)``, sorted ascending.

    Draws exponential gaps at the peak rate and keeps each candidate with
    probability ``λ(t)/λ_max``.  The whole trace is materialised up front so
    the event loop can schedule every request before running — simpler to
    reason about than interleaved lazy draws, and the traces involved are
    small (thousands of floats).
    """
    lam_max = peak_rate(spec)
    times: list[float] = []
    t = 0.0
    while True:
        t += float(rng.exponential(1.0 / lam_max))
        if t >= duration_s:
            break
        if float(rng.random()) * lam_max <= rate_at(spec, t):
            times.append(t)
    return np.asarray(times, dtype=np.float64)
