"""The simulation runner: virtual time outside, real ``TileService`` inside.

The hard problem this module solves is *deterministic saturation*.  The
service's interesting behaviour — coalescing, backpressure, the quality
ladder, 503s — only appears when its render pool is genuinely occupied,
but real thread timing is not reproducible.  The runner squares the circle
with three mechanisms:

* **Gated renders.**  The injected ``render_fn`` computes the real grid
  immediately, then blocks on a per-cache-key gate until the simulator
  releases it at the render's *virtual* completion time.  The service's
  real ``_inflight`` table therefore stays occupied across virtual time,
  and its own admission/degradation/rejection logic runs unmodified.
* **A mirrored virtual pool.**  ``submit_hook`` hands the simulator every
  pool submission (leaders and background refinements) in order; the
  simulator replays them through a virtual executor with the same worker
  count and FIFO discipline, assigning start/completion times from the
  scenario's :class:`~repro.simload.scenarios.CostModel`.  Because both
  pools are FIFO with ``k`` slots, every virtually-running render has
  really started, so releasing its gate can never deadlock.
* **Single-threaded control.**  The simulator thread owns all service
  calls (``request_tile(wait=False)`` never blocks; waiting happens via
  :class:`~repro.serve.PendingTile` at release points), all ingest and
  ticks, and the virtual clock the service reads.  Pool threads only
  compute grids and block on gates — they never mutate shared state until
  released, at a deterministic virtual instant.

Latency is *virtual* throughout: queueing delay in the virtual pool plus
the cost model's constants.  Nothing in a run reads the wall clock, so a
(scenario, seed) pair reproduces byte-for-byte on any host.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..data.points import PointSet
from ..serve import (
    PendingTile,
    QualityPolicy,
    ServiceOverloaded,
    TileService,
)
from ..viz.tiles import TileScheme, render_tile
from .arrivals import arrival_times, rate_at
from .events import EventLoop, SimClock
from .metrics import (
    DEADLINE,
    ERROR,
    OK,
    OVERLOAD,
    RequestRecord,
    find_knee,
    summarize,
    trace_digest,
    trace_lines,
)
from .scenarios import Scenario
from .sessions import SessionWalk

__all__ = ["SimResult", "SimulationRunner", "run_scenario", "sweep"]

#: real-seconds guard on joins so a simulator bug fails fast, never hangs CI
_JOIN_TIMEOUT_S = 120.0


class _GateRegistry:
    """Per-cache-key gates between pool render threads and the simulator.

    Either side may create a key's gate first (``submit`` returns before the
    hook's bookkeeping is visible to the pool thread), so both go through
    get-or-create under one lock.  Single-flight rendering guarantees at
    most one live render per key, which makes the key an unambiguous
    address; entries are discarded only after the render's future is
    joined, so the waiting thread has always passed the gate by then.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._events: "dict[tuple, threading.Event]" = {}

    def _get(self, key: tuple) -> threading.Event:
        with self._lock:
            evt = self._events.get(key)
            if evt is None:
                evt = self._events[key] = threading.Event()
            return evt

    def wait(self, key: tuple) -> None:
        if not self._get(key).wait(timeout=_JOIN_TIMEOUT_S):
            raise RuntimeError(f"render gate for {key} never released")

    def release(self, key: tuple) -> None:
        self._get(key).set()

    def discard(self, key: tuple) -> None:
        with self._lock:
            self._events.pop(key, None)


def _gated_render_fn(registry: _GateRegistry):
    """A ``render_fn`` that computes the true grid, then parks its pool
    thread on the key's gate until the simulator reaches the render's
    virtual completion time."""

    def render(points, scheme, zoom, tx, ty, *, cache_key, **kwargs):
        grid = render_tile(points, scheme, zoom, tx, ty, **kwargs)
        registry.wait(cache_key)
        return grid

    render.wants_cache_key = True  # opt into the service's cache_key seam
    return render


@dataclass
class _RenderJob:
    """One pool submission mirrored into the virtual executor."""

    key: tuple
    future: object
    submit_vt: float
    start_vt: "float | None" = None
    done_vt: "float | None" = None
    waiters: "list[tuple[RequestRecord, PendingTile]]" = field(
        default_factory=list
    )


@dataclass
class SimResult:
    """Everything one run produced."""

    scenario: str
    seed: int
    records: "list[RequestRecord]"
    metrics: dict
    stats: dict
    events_processed: int

    @property
    def trace(self) -> "list[str]":
        return trace_lines(self.records)

    @property
    def digest(self) -> str:
        return trace_digest(self.records)


def _make_dataset(
    scenario: Scenario, rng: np.random.Generator
) -> "tuple[PointSet, TileScheme, float, np.ndarray]":
    """Synthetic clustered events in a unit-ish world, with timestamps.

    Returns the seed point set, its tile scheme, a bandwidth sized to the
    world, and the cluster centers (ingest batches re-use them so live
    events land where the crowd looks).
    """
    centers = rng.uniform(0.2, 0.8, size=(scenario.n_clusters, 2))
    n = scenario.n_points
    which = rng.integers(0, scenario.n_clusters, size=n)
    xy = centers[which] + rng.normal(0.0, 0.06, size=(n, 2))
    xy = np.clip(xy, 0.0, 1.0)
    # seed events carry slightly-past timestamps so a window view starts
    # populated instead of empty
    t = rng.uniform(-1.0, 0.0, size=n)
    t.sort()
    points = PointSet(xy=xy, t=t, name=f"simload-{scenario.name}")
    scheme = TileScheme.for_points(xy)
    bandwidth = 0.08 * scheme.world.width
    return points, scheme, bandwidth, centers


class SimulationRunner:
    """Run one scenario at one seed; see the module docstring for how."""

    def __init__(self, scenario: Scenario, seed: int = 0):
        self.scenario = scenario
        self.seed = int(seed)
        # independent, reproducible streams per concern so e.g. a longer
        # arrival trace cannot perturb the session walk
        ss = np.random.SeedSequence(self.seed)
        s_data, s_arrivals, s_sessions, s_ingest = ss.spawn(4)
        self._rng_data = np.random.default_rng(s_data)
        self._rng_arrivals = np.random.default_rng(s_arrivals)
        self._rng_sessions = np.random.default_rng(s_sessions)
        self._rng_ingest = np.random.default_rng(s_ingest)

        self.clock = SimClock()
        self.loop = EventLoop(self.clock)
        self.records: "list[RequestRecord]" = []
        self._registry = _GateRegistry()
        self._submissions: "deque[tuple[tuple, object]]" = deque()
        self._submissions_lock = threading.Lock()
        self._jobs: "dict[tuple, _RenderJob]" = {}
        self._vqueue: "deque[_RenderJob]" = deque()
        self._slots_free = scenario.workers
        self._offered = 0

        (
            self.points,
            self.scheme,
            self.bandwidth,
            self.centers,
        ) = _make_dataset(scenario, self._rng_data)
        self.walk = SessionWalk(
            scenario.session, self.scheme, self._rng_sessions
        )
        self.service = self._build_service()

    def _build_service(self) -> TileService:
        sc = self.scenario
        quality = None
        if sc.quality:
            quality = QualityPolicy(
                pyramid_levels=(1, 2),
                coreset_sizes=(min(1024, sc.n_points // 2), 256),
                calibration_size=32,
                degraded_ttl_s=3.0,
            )
        return TileService(
            self.points,
            self.scheme,
            tile_size=sc.tile_size,
            bandwidth=self.bandwidth,
            max_zoom=sc.max_zoom,
            workers=sc.workers,
            queue_limit=sc.queue_limit,
            deadline_s=None,  # deadlines are virtual, enforced sim-side
            cache_tiles=sc.cache_tiles,
            cache_ttl_s=sc.cache_ttl_s,
            window_s=sc.window_s,
            tick_s=None,  # ticks are explicit simulator events
            quality=quality,
            clock=self.clock,
            render_fn=_gated_render_fn(self._registry),
            submit_hook=self._on_submit,
        )

    # -- virtual pool -------------------------------------------------------

    def _on_submit(self, key: tuple, future) -> None:
        """The service's ``submit_hook`` (called under its lock).  Only
        records the submission; the simulator thread mirrors it into the
        virtual pool at the next drain point."""
        with self._submissions_lock:
            self._submissions.append((key, future))

    def _drain_submissions(self) -> None:
        """Mirror freshly hooked submissions into the virtual executor.

        Called on the simulator thread right after any service call that
        can submit (a request, a resolved render's refinements), so virtual
        queue order equals real submission order.
        """
        while True:
            with self._submissions_lock:
                if not self._submissions:
                    return
                key, future = self._submissions.popleft()
            job = _RenderJob(key=key, future=future, submit_vt=self.clock.now)
            self._jobs[key] = job
            if self._slots_free > 0:
                self._start_job(job)
            else:
                self._vqueue.append(job)

    def _start_job(self, job: _RenderJob) -> None:
        self._slots_free -= 1
        job.start_vt = self.clock.now
        job.done_vt = job.start_vt + self.scenario.cost.render_s
        self.loop.schedule(job.done_vt, lambda j=job: self._on_render_done(j))

    def _on_render_done(self, job: _RenderJob) -> None:
        """A render's virtual completion: release its gate, join the real
        future, resolve every waiter, then feed the freed slot."""
        self._registry.release(job.key)
        error = None
        try:
            job.future.result(timeout=_JOIN_TIMEOUT_S)
        except Exception as exc:  # pragma: no cover - requires a render bug
            error = exc
        self._registry.discard(job.key)
        self._jobs.pop(job.key, None)
        # refinements submitted during this render's completion hooks are
        # visible now (they run before the future resolves)
        self._drain_submissions()
        for record, pending in job.waiters:
            if error is not None:  # pragma: no cover
                record.outcome, record.tier = ERROR, None
                record.latency_s = job.done_vt - record.t
                continue
            response = pending.resolve(timeout=_JOIN_TIMEOUT_S)
            record.latency_s = job.done_vt - record.t
            deadline = self.scenario.deadline_s
            if deadline is not None and record.latency_s > deadline:
                record.outcome, record.tier = DEADLINE, None
                self.service.recorder.count("serve.rejected.deadline")
            else:
                record.outcome, record.tier = OK, response.tier
        self._slots_free += 1
        while self._slots_free > 0 and self._vqueue:
            self._start_job(self._vqueue.popleft())

    # -- workload events ----------------------------------------------------

    def _in_flash(self) -> bool:
        arr = self.scenario.arrivals
        return arr.shape == "flash" and (
            arr.spike_start_s <= self.clock.now < arr.spike_end_s
        )

    def _on_request(self, seq: int) -> None:
        sc = self.scenario
        zoom, tx, ty = self.walk.next_tile(in_flash=self._in_flash())
        window = None
        if sc.window_request_fraction > 0 and (
            float(self._rng_sessions.random()) < sc.window_request_fraction
        ):
            window = sc.window_s
        record = RequestRecord(
            seq=seq,
            t=self.clock.now,
            zoom=zoom,
            tx=tx,
            ty=ty,
            window=window,
            outcome=ERROR,
            tier=None,
            latency_s=0.0,
        )
        self.records.append(record)
        try:
            answer = self.service.request_tile(
                zoom, tx, ty, window=window, wait=False
            )
        except ServiceOverloaded:
            record.outcome = OVERLOAD
            record.latency_s = sc.cost.hit_s
        except Exception:  # pragma: no cover - requires a service bug
            record.outcome = ERROR
            record.latency_s = sc.cost.hit_s
        else:
            # mirror any leader/refinement submission this request caused
            # before looking its job up
            self._drain_submissions()
            if isinstance(answer, PendingTile):
                job = self._jobs.get(answer.key)
                if job is None:  # pragma: no cover - mirror invariant broken
                    raise RuntimeError(
                        f"no virtual job for in-flight render {answer.key}"
                    )
                job.waiters.append((record, answer))
            else:
                record.outcome = OK
                record.tier = answer.tier
                record.latency_s = (
                    sc.cost.hit_s
                    if answer.tier == "exact"
                    else sc.cost.degraded_s
                )
        self._drain_submissions()

    def _on_ingest(self) -> None:
        spec = self.scenario.ingest
        rng = self._rng_ingest
        n = spec.batch
        n_cluster = int(round(n * spec.cluster_fraction))
        which = rng.integers(0, len(self.centers), size=n_cluster)
        clustered = self.centers[which] + rng.normal(
            0.0, 0.06, size=(n_cluster, 2)
        )
        uniform = rng.uniform(0.0, 1.0, size=(n - n_cluster, 2))
        xy = np.clip(np.vstack([clustered, uniform]), 0.0, 1.0)
        t = np.full(n, self.clock.now)
        self.service.ingest(xy, t=t)
        self._drain_submissions()

    def _on_tick(self) -> None:
        self.service.tick(now=self.clock.now)
        self._drain_submissions()

    # -- run ----------------------------------------------------------------

    def run(self) -> SimResult:
        sc = self.scenario
        arrivals = arrival_times(sc.arrivals, sc.duration_s, self._rng_arrivals)
        self._offered = len(arrivals)
        for seq, t in enumerate(arrivals):
            self.loop.schedule(float(t), lambda s=seq: self._on_request(s))
        if sc.ingest is not None:
            t = sc.ingest.interval_s
            while t < sc.duration_s:
                self.loop.schedule(t, self._on_ingest)
                t += sc.ingest.interval_s
        if sc.tick_s is not None:
            t = sc.tick_s
            while t < sc.duration_s:
                self.loop.schedule(t, self._on_tick)
                t += sc.tick_s

        try:
            # drain completely: late virtual renders schedule their own
            # completion events, and refinement cascades can extend the heap
            while len(self.loop) or self._submissions or self._vqueue:
                self.loop.run()
                self._drain_submissions()
            stats = self.service.stats()
        finally:
            # release any gate a buggy run left parked so close() can join
            for key in list(self._jobs):
                self._registry.release(key)  # pragma: no cover
            self.service.close(drain=True)

        end = max(sc.duration_s, self.clock.now)
        metrics = summarize(
            self.records, stats, duration_s=end, offered=self._offered
        )
        metrics["arrival_peak_rps"] = round(
            max(rate_at(sc.arrivals, t) for t in np.linspace(0, sc.duration_s, 101)),
            4,
        )
        return SimResult(
            scenario=sc.name,
            seed=self.seed,
            records=self.records,
            metrics=metrics,
            stats=stats,
            events_processed=self.loop.processed,
        )


def run_scenario(scenario: Scenario, seed: int = 0) -> SimResult:
    """One-shot convenience: build a runner and run it."""
    return SimulationRunner(scenario, seed=seed).run()


def sweep(
    scenario: Scenario,
    seed: int = 0,
    factors: "tuple[float, ...]" = (0.25, 0.5, 1.0, 2.0, 4.0),
    shed_threshold: float = 0.01,
) -> dict:
    """Open-loop capacity sweep: rerun the scenario at stepped offered
    rates (each level an independent, identically seeded run) and find the
    max-sustainable-QPS knee."""
    levels = []
    for factor in factors:
        rate = scenario.arrivals.rate * factor
        result = run_scenario(scenario.at_rate(rate), seed=seed)
        levels.append((round(rate, 4), result))
    blocks = [(rate, r.metrics) for rate, r in levels]
    return {
        "scenario": scenario.name,
        "seed": seed,
        "levels": blocks,
        "knee": find_knee(blocks, shed_threshold=shed_threshold),
        "shed_threshold": shed_threshold,
    }
