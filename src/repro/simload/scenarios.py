"""Declarative scenario specs: everything a run needs, in one frozen object.

A :class:`Scenario` bundles the four ingredients of a workload —

1. an **arrival process** (:class:`~repro.simload.arrivals.ArrivalSpec`):
   when requests land;
2. a **session model** (:class:`~repro.simload.sessions.SessionSpec`):
   which tiles they ask for;
3. an **ingest model** (:class:`IngestSpec`, optional): the timestamped
   event feed flowing into ``?window=`` views;
4. a **service config + cost model**: how the simulated
   :class:`~repro.serve.TileService` is built and how long its operations
   take in *virtual* seconds.

plus a duration.  Scenarios are frozen dataclasses so a (scenario, seed)
pair fully determines a run — the reproducibility contract the tests pin.

The registry ships four: ``default`` (steady load + quality ladder),
``flashcrowd`` (a hotspot spike that drives degradation and shedding),
``diurnal`` (a sinusoidal day), and ``ingest`` (streaming events + window
views + ticks).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .arrivals import ArrivalSpec
from .sessions import SessionSpec

__all__ = [
    "CostModel",
    "IngestSpec",
    "Scenario",
    "SCENARIOS",
    "get_scenario",
    "list_scenarios",
]


@dataclass(frozen=True)
class CostModel:
    """How long service operations take, in virtual seconds.

    Real wall time is never measured (it would break byte-for-byte
    reproducibility); instead every latency is derived from these
    deterministic constants plus queueing delay in the virtual render pool.

    Parameters
    ----------
    render_s:
        One exact tile render occupying a virtual pool worker.
    degraded_s:
        One synchronous degraded render (pyramid/coreset tier) on the
        request path.
    hit_s:
        A cache hit, an immediate rejection, or any other
        answered-without-rendering response.
    """

    render_s: float = 0.08
    degraded_s: float = 0.012
    hit_s: float = 0.002

    def __post_init__(self):
        if min(self.render_s, self.degraded_s, self.hit_s) <= 0:
            raise ValueError("all virtual costs must be positive")


@dataclass(frozen=True)
class IngestSpec:
    """Steady timestamped event feed (virtual-time batches).

    Every ``interval_s`` of virtual time a batch of ``batch`` events is
    inserted with timestamps equal to the current virtual instant, so
    ``?window=`` views age in simulation time.
    """

    interval_s: float = 2.0
    batch: int = 64
    cluster_fraction: float = 0.7

    def __post_init__(self):
        if self.interval_s <= 0:
            raise ValueError("ingest interval_s must be positive")
        if self.batch < 1:
            raise ValueError("ingest batch must be >= 1")
        if not 0.0 <= self.cluster_fraction <= 1.0:
            raise ValueError("cluster_fraction must be in [0, 1]")


@dataclass(frozen=True)
class Scenario:
    """One complete, reproducible workload description."""

    name: str
    description: str
    duration_s: float = 30.0
    # -- synthetic dataset ------------------------------------------------
    n_points: int = 4000
    n_clusters: int = 3
    # -- service config ---------------------------------------------------
    tile_size: int = 48
    max_zoom: int = 3
    workers: int = 2
    queue_limit: int = 6
    cache_tiles: int = 128
    cache_ttl_s: "float | None" = None
    window_s: "float | None" = None
    tick_s: "float | None" = None
    quality: bool = False
    # -- request deadline (virtual seconds; late answers count as 504) ----
    deadline_s: "float | None" = 1.0
    # -- traffic -----------------------------------------------------------
    arrivals: ArrivalSpec = ArrivalSpec()
    session: SessionSpec = SessionSpec()
    ingest: "IngestSpec | None" = None
    window_request_fraction: float = 0.0
    cost: CostModel = CostModel()

    def __post_init__(self):
        if self.duration_s <= 0:
            raise ValueError("duration_s must be positive")
        if self.n_points < 10:
            raise ValueError("n_points must be >= 10")
        if self.session.max_zoom > self.max_zoom:
            raise ValueError("session max_zoom cannot exceed service max_zoom")
        if not 0.0 <= self.window_request_fraction <= 1.0:
            raise ValueError("window_request_fraction must be in [0, 1]")
        if self.window_request_fraction > 0 and self.window_s is None:
            raise ValueError("window requests need window_s on the scenario")

    def at_rate(self, rate: float) -> "Scenario":
        """This scenario with the arrival base rate replaced (load sweeps
        step the offered level through this)."""
        factor = rate / self.arrivals.rate
        return replace(self, arrivals=self.arrivals.scaled(factor))


SCENARIOS: "dict[str, Scenario]" = {
    s.name: s
    for s in [
        Scenario(
            name="default",
            description=(
                "Steady Zipf + session traffic against a TTL'd cache with "
                "no quality ladder: saturation surfaces as hard 503s and "
                "late-answer 504s, which is what the capacity sweep knees "
                "on."
            ),
            duration_s=30.0,
            quality=False,
            cache_ttl_s=4.0,
            deadline_s=0.8,
            arrivals=ArrivalSpec(shape="steady", rate=20.0),
            session=SessionSpec(max_zoom=3),
            cost=CostModel(render_s=0.25),
        ),
        Scenario(
            name="flashcrowd",
            description=(
                "Steady background load with a 6x spike concentrated on a "
                "hotspot region, quality ladder attached — the spike is "
                "absorbed by degraded tiers instead of 503s."
            ),
            duration_s=30.0,
            quality=True,
            cache_ttl_s=4.0,
            deadline_s=1.0,
            arrivals=ArrivalSpec(
                shape="flash",
                rate=15.0,
                spike_start_s=10.0,
                spike_end_s=18.0,
                spike_factor=6.0,
            ),
            session=SessionSpec(max_zoom=3, hotspot_tiles=3, hotspot_bias=0.9),
            cost=CostModel(render_s=0.25),
        ),
        Scenario(
            name="diurnal",
            description=(
                "A day squeezed into one virtual minute: sinusoidal offered "
                "load over steady session traffic, no quality ladder (hard "
                "503s at the peak)."
            ),
            duration_s=60.0,
            quality=False,
            cache_ttl_s=4.0,
            deadline_s=0.8,
            arrivals=ArrivalSpec(
                shape="diurnal", rate=18.0, amplitude=0.8, period_s=60.0
            ),
            session=SessionSpec(max_zoom=3),
            cost=CostModel(render_s=0.25),
        ),
        Scenario(
            name="ingest",
            description=(
                "Steady requests split between the all-time pyramid and a "
                "sliding window fed by timestamped ingest batches, with "
                "periodic ticks expiring old events."
            ),
            duration_s=30.0,
            quality=False,
            window_s=12.0,
            tick_s=3.0,
            window_request_fraction=0.5,
            ingest=IngestSpec(interval_s=2.0, batch=64),
            arrivals=ArrivalSpec(shape="steady", rate=12.0),
            session=SessionSpec(max_zoom=2),
            cache_ttl_s=20.0,
        ),
    ]
}


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None


def list_scenarios() -> "list[Scenario]":
    return [SCENARIOS[k] for k in sorted(SCENARIOS)]
