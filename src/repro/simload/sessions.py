"""Who asks for which tile: Zipf popularity + zoom/pan session walks.

Map traffic is not uniform over the pyramid.  Two structures dominate:

* **Heavy-tailed tile popularity.**  A few tiles (city centres, landmark
  zooms) absorb most requests.  :class:`TilePopularity` ranks every tile of
  the pyramid by a seeded shuffle and assigns Zipf(``s``) probabilities to
  the ranks; sampling is a binary search over the cumulative distribution.
* **Spatially correlated sessions.**  A user who just looked at a tile next
  looks at a *related* tile — zoom into a child, zoom out to the parent, or
  pan to a neighbour.  :class:`SessionWalk` replays the operation vocabulary
  of :class:`repro.viz.explore.ExplorationSession` (zoom / pan / reset) in
  tile coordinates, starting each session at a Zipf-drawn anchor.

Flash crowds overlay both: during a spike the walk is redirected to a small
hotspot tile set (chosen through
:func:`repro.viz.explore.random_pan_regions` over the world region, so the
hotspot is a contiguous sub-rectangle, not scattered tiles).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..viz.explore import random_pan_regions
from ..viz.tiles import TileScheme

__all__ = ["SessionSpec", "TilePopularity", "SessionWalk"]

TileAddr = "tuple[int, int, int]"


@dataclass(frozen=True)
class SessionSpec:
    """Declarative description of the request mix.

    Parameters
    ----------
    max_zoom:
        Deepest pyramid level requests may touch (kept small in scenarios so
        the distinct-tile universe stays CI-sized).
    zipf_s:
        Zipf exponent for tile popularity (1.0 ≈ classic web-cache skew;
        larger = more concentrated).
    mean_session_len:
        Mean number of requests per exploration session (geometric).
    p_zoom_in / p_zoom_out / p_pan:
        Per-step operation mix; the remainder is ``reset`` (jump to a fresh
        Zipf anchor, ending the spatial run).  Mirrors the zoom / pan /
        reset vocabulary of :class:`repro.viz.explore.ExplorationSession`.
    hotspot_tiles:
        Size of the flash-crowd hotspot set (contiguous tiles at
        ``max_zoom``).
    hotspot_bias:
        Probability that a request lands in the hotspot set *during a flash
        spike* (outside spikes the normal walk applies).
    """

    max_zoom: int = 3
    zipf_s: float = 1.1
    mean_session_len: float = 6.0
    p_zoom_in: float = 0.3
    p_zoom_out: float = 0.15
    p_pan: float = 0.45
    hotspot_tiles: int = 3
    hotspot_bias: float = 0.9

    def __post_init__(self):
        if self.max_zoom < 0:
            raise ValueError("max_zoom must be >= 0")
        if self.zipf_s <= 0:
            raise ValueError("zipf_s must be positive")
        if self.mean_session_len < 1:
            raise ValueError("mean_session_len must be >= 1")
        if min(self.p_zoom_in, self.p_zoom_out, self.p_pan) < 0 or (
            self.p_zoom_in + self.p_zoom_out + self.p_pan
        ) > 1.0:
            raise ValueError("operation probabilities must be a sub-distribution")
        if not 0.0 <= self.hotspot_bias <= 1.0:
            raise ValueError("hotspot_bias must be in [0, 1]")


def _pyramid_tiles(max_zoom: int) -> list[tuple[int, int, int]]:
    tiles = []
    for z in range(max_zoom + 1):
        per_axis = 1 << z
        for ty in range(per_axis):
            for tx in range(per_axis):
                tiles.append((z, tx, ty))
    return tiles


class TilePopularity:
    """Zipf(``s``) popularity over every tile of a pyramid.

    Ranks are assigned by a seeded shuffle of the tile list, so which tile
    is "popular" varies with the seed but is fixed within a run.  Sampling
    is ``searchsorted`` on the precomputed cumulative distribution — O(log
    n) per draw and exactly reproducible.
    """

    def __init__(self, max_zoom: int, s: float, rng: np.random.Generator):
        self.tiles = _pyramid_tiles(max_zoom)
        order = rng.permutation(len(self.tiles))
        self.tiles = [self.tiles[i] for i in order]
        ranks = np.arange(1, len(self.tiles) + 1, dtype=np.float64)
        weights = ranks**-s
        self.probs = weights / weights.sum()
        self._cum = np.cumsum(self.probs)
        self._cum[-1] = 1.0

    def sample(self, rng: np.random.Generator) -> tuple[int, int, int]:
        idx = int(np.searchsorted(self._cum, float(rng.random()), side="right"))
        return self.tiles[min(idx, len(self.tiles) - 1)]


class SessionWalk:
    """Stateful generator of ``(zoom, tx, ty)`` requests.

    Call :meth:`next_tile` once per arrival; pass ``in_flash=True`` while a
    flash-crowd spike is active to bias draws onto the hotspot set.  All
    randomness comes from the injected generator, so the request sequence is
    a pure function of (spec, scheme world, seed).
    """

    def __init__(
        self,
        spec: SessionSpec,
        scheme: TileScheme,
        rng: np.random.Generator,
    ):
        self.spec = spec
        self.scheme = scheme
        self.rng = rng
        self.popularity = TilePopularity(spec.max_zoom, spec.zipf_s, rng)
        self.hotspot = self._pick_hotspot()
        self._current: "tuple[int, int, int] | None" = None
        self._remaining = 0
        self.sessions_started = 0

    def _pick_hotspot(self) -> list[tuple[int, int, int]]:
        """A contiguous run of tiles at max zoom covering a random
        sub-rectangle of the world (the 'stadium' the crowd flashes to)."""
        spec = self.spec
        z = spec.max_zoom
        [region] = random_pan_regions(
            self.scheme.world, count=1, size_ratio=0.5, rng=self.rng
        )
        cx, cy = region.center
        ctx, cty = self.scheme.tile_of_point(z, cx, cy)
        per_axis = self.scheme.tiles_per_axis(z)
        tiles: list[tuple[int, int, int]] = []
        for i in range(spec.hotspot_tiles):
            tx = min(max(ctx + (i % 2), 0), per_axis - 1)
            ty = min(max(cty + (i // 2), 0), per_axis - 1)
            if (z, tx, ty) not in tiles:
                tiles.append((z, tx, ty))
        return tiles

    def _start_session(self) -> tuple[int, int, int]:
        self.sessions_started += 1
        # geometric with the configured mean: p = 1/mean, support {1, 2, ...}
        p = 1.0 / self.spec.mean_session_len
        self._remaining = int(self.rng.geometric(p))
        self._current = self.popularity.sample(self.rng)
        return self._current

    def _step(self) -> tuple[int, int, int]:
        assert self._current is not None
        z, tx, ty = self._current
        spec = self.spec
        u = float(self.rng.random())
        if u < spec.p_zoom_in and z < spec.max_zoom:
            z += 1
            tx = 2 * tx + int(self.rng.integers(0, 2))
            ty = 2 * ty + int(self.rng.integers(0, 2))
        elif u < spec.p_zoom_in + spec.p_zoom_out and z > 0:
            z -= 1
            tx //= 2
            ty //= 2
        elif u < spec.p_zoom_in + spec.p_zoom_out + spec.p_pan:
            axis = int(self.rng.integers(0, 2))
            delta = 1 if self.rng.random() < 0.5 else -1
            per_axis = self.scheme.tiles_per_axis(z)
            if axis == 0:
                tx = min(max(tx + delta, 0), per_axis - 1)
            else:
                ty = min(max(ty + delta, 0), per_axis - 1)
        else:
            # reset: jump to a fresh popular anchor mid-session
            self._current = self.popularity.sample(self.rng)
            return self._current
        self._current = (z, tx, ty)
        return self._current

    def next_tile(self, in_flash: bool = False) -> tuple[int, int, int]:
        if in_flash and float(self.rng.random()) < self.spec.hotspot_bias:
            idx = int(self.rng.integers(0, len(self.hotspot)))
            return self.hotspot[idx]
        if self._current is None or self._remaining <= 0:
            tile = self._start_session()
        else:
            tile = self._step()
        self._remaining -= 1
        return tile
