"""Rolling up a simulated run into serving metrics and a canonical trace.

Two artifacts come out of a run:

* **The trace** — one line per request, in arrival order, carrying the
  virtual timestamp, tile address, outcome, served tier, and virtual
  latency.  Its SHA-256 digest is the reproducibility fingerprint: two runs
  of the same (scenario, seed) must produce byte-identical traces.
* **The metric block** — offered vs. achieved rates, p50/p99 virtual
  latency, cache hit rate, coalesce rate, shed (503/504) fraction,
  per-quality-tier serve counts, and window tick/expiry stats, assembled
  from the request records plus the service's own recorder counters.

The knee finder turns a sweep (metric block per offered-load level) into a
single capacity number: the highest offered rate whose shed fraction stays
at or below the threshold (default 1%).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

import numpy as np

__all__ = [
    "RequestRecord",
    "trace_lines",
    "trace_digest",
    "summarize",
    "find_knee",
]

#: request outcomes, in trace vocabulary
OK = "ok"
OVERLOAD = "overload"  # 503: every admissible tier saturated
DEADLINE = "deadline"  # 504: answered, but after the virtual deadline
ERROR = "error"  # unexpected exception (should never appear in a green run)


@dataclass
class RequestRecord:
    """One simulated request, resolved."""

    seq: int
    t: float  # virtual arrival time
    zoom: int
    tx: int
    ty: int
    window: "float | None"
    outcome: str  # OK / OVERLOAD / DEADLINE / ERROR
    tier: "str | None"  # served tier name, None for rejections
    latency_s: float  # virtual seconds from arrival to answer


def trace_lines(records: "list[RequestRecord]") -> "list[str]":
    """The canonical one-line-per-request trace (arrival order).

    Floats are rounded to microseconds before formatting so the digest
    never depends on float repr jitter across platforms.
    """
    lines = []
    for r in sorted(records, key=lambda r: r.seq):
        lines.append(
            json.dumps(
                {
                    "seq": r.seq,
                    "t": round(r.t, 6),
                    "tile": [r.zoom, r.tx, r.ty],
                    "window": r.window,
                    "outcome": r.outcome,
                    "tier": r.tier,
                    "latency": round(r.latency_s, 6),
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return lines


def trace_digest(records: "list[RequestRecord]") -> str:
    """SHA-256 over the canonical trace — the run's reproducibility
    fingerprint."""
    h = hashlib.sha256()
    for line in trace_lines(records):
        h.update(line.encode())
        h.update(b"\n")
    return h.hexdigest()


def _percentile(values: "list[float]", q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


def summarize(
    records: "list[RequestRecord]",
    stats: dict,
    duration_s: float,
    offered: int,
) -> dict:
    """The metric block for one run.

    ``stats`` is the service's :meth:`~repro.serve.TileService.stats`
    snapshot (recorder counters + cache/window state); ``offered`` is the
    number of arrivals the arrival process generated (every one of which
    became a record), so ``offered_rps`` and ``achieved_rps`` separate
    open-loop honesty from success throughput.
    """
    counters = stats["recorder"].get("counters", {})
    ok = [r for r in records if r.outcome == OK]
    shed = [r for r in records if r.outcome in (OVERLOAD, DEADLINE)]
    errors = [r for r in records if r.outcome == ERROR]
    latencies = [r.latency_s for r in ok]

    hits = int(counters.get("tiles.cache.hits", 0))
    misses = int(counters.get("tiles.cache.misses", 0))
    probes = hits + misses
    requests = len(records)

    tiers: "dict[str, int]" = {}
    for r in ok:
        if r.tier is not None:
            tiers[r.tier] = tiers.get(r.tier, 0) + 1

    window = stats.get("window", {})
    return {
        "requests": requests,
        "offered": offered,
        "duration_s": round(duration_s, 6),
        "offered_rps": round(offered / duration_s, 4),
        "achieved_rps": round(len(ok) / duration_s, 4),
        "ok": len(ok),
        "shed": len(shed),
        "shed_503": sum(1 for r in shed if r.outcome == OVERLOAD),
        "shed_504": sum(1 for r in shed if r.outcome == DEADLINE),
        "errors": len(errors),
        "shed_fraction": round(len(shed) / requests, 6) if requests else 0.0,
        "latency_p50_s": round(_percentile(latencies, 50.0), 6),
        "latency_p99_s": round(_percentile(latencies, 99.0), 6),
        "latency_mean_s": round(
            float(np.mean(latencies)) if latencies else 0.0, 6
        ),
        "cache_hit_rate": round(hits / probes, 6) if probes else 0.0,
        "coalesce_rate": (
            round(int(counters.get("serve.coalesce.joined", 0)) / requests, 6)
            if requests
            else 0.0
        ),
        "renders": int(counters.get("serve.coalesce.leaders", 0)),
        "refined": int(counters.get("quality.refined", 0)),
        "tiers": dict(sorted(tiers.items())),
        "window_ticks": int(window.get("ticks", 0)),
        "window_expired_points": int(window.get("expired_points", 0)),
        "cache_expirations": int(stats.get("cache", {}).get("expirations", 0)),
    }


def find_knee(
    levels: "list[tuple[float, dict]]", shed_threshold: float = 0.01
) -> "dict | None":
    """Max sustainable offered rate from a sweep.

    ``levels`` is ``[(offered_rps_target, metric_block), ...]`` in
    ascending offered order.  The knee is the highest level whose shed
    fraction stays at or below ``shed_threshold``; the answer names both
    sides of the crossing so the report shows where service quality broke.
    Returns ``None`` when even the lowest level sheds too much.
    """
    sustained = None
    first_over = None
    for rate, block in levels:
        if block["shed_fraction"] <= shed_threshold:
            if sustained is None or rate > sustained[0]:
                sustained = (rate, block)
        elif first_over is None:
            first_over = (rate, block)
    if sustained is None:
        return None
    knee = {
        "max_sustainable_qps": sustained[0],
        "shed_threshold": shed_threshold,
        "shed_fraction_at_knee": sustained[1]["shed_fraction"],
        "achieved_rps_at_knee": sustained[1]["achieved_rps"],
    }
    if first_over is not None:
        knee["first_unsustainable_qps"] = first_over[0]
        knee["shed_fraction_beyond"] = first_over[1]["shed_fraction"]
    return knee
