"""Deterministic discrete-event workload simulation for the serving stack.

The serving layer (:mod:`repro.serve`) can render, cache, degrade, window,
and shed — but none of that says what traffic it *sustains*.  This package
answers that with simulation instead of wall-clock load generation: a
seeded, virtual-clocked event loop replays realistic map-service workloads
(Zipf tile popularity, zoom/pan exploration sessions, flash crowds,
timestamped ingest, diurnal load curves) against a real in-process
:class:`~repro.serve.TileService`, producing byte-identical traces and
metrics for a given (scenario, seed) on any host at any speed.

Layout mirrors the pipeline: :mod:`~repro.simload.events` (virtual clock +
event loop) → :mod:`~repro.simload.arrivals` (when requests come) →
:mod:`~repro.simload.sessions` (which tiles they want) →
:mod:`~repro.simload.scenarios` (declarative workload specs) →
:mod:`~repro.simload.runner` (the gated-render simulation itself) →
:mod:`~repro.simload.metrics` (trace digests, latency/shed rollups, and
the capacity knee).  ``repro simload`` on the command line and
``benchmarks/bench_simload.py`` drive it; ``docs/simload.md`` explains the
determinism contract and sweep methodology.
"""

from .arrivals import ArrivalSpec, arrival_times, peak_rate, rate_at
from .events import EventLoop, SimClock
from .metrics import (
    RequestRecord,
    find_knee,
    summarize,
    trace_digest,
    trace_lines,
)
from .scenarios import (
    SCENARIOS,
    CostModel,
    IngestSpec,
    Scenario,
    get_scenario,
    list_scenarios,
)
from .runner import SimResult, SimulationRunner, run_scenario, sweep
from .sessions import SessionSpec, SessionWalk, TilePopularity

__all__ = [
    "ArrivalSpec",
    "arrival_times",
    "peak_rate",
    "rate_at",
    "EventLoop",
    "SimClock",
    "RequestRecord",
    "find_knee",
    "summarize",
    "trace_digest",
    "trace_lines",
    "SCENARIOS",
    "CostModel",
    "IngestSpec",
    "Scenario",
    "get_scenario",
    "list_scenarios",
    "SimResult",
    "SimulationRunner",
    "run_scenario",
    "sweep",
    "SessionSpec",
    "SessionWalk",
    "TilePopularity",
]
