"""Virtual clock and deterministic discrete-event loop.

The simulator never sleeps: time is a number that jumps from one scheduled
event to the next.  Determinism rests on two properties of this module:

* **Total event order.**  The heap orders events by ``(time, seq)`` where
  ``seq`` is the schedule-call counter — two events at the same virtual
  instant fire in the order they were scheduled, which is itself
  deterministic because all scheduling happens on the single simulator
  thread at deterministic points.
* **One readable clock.**  :class:`SimClock` is a plain callable returning
  the current virtual time, injectable everywhere the serving stack accepts
  a ``clock`` (:class:`~repro.serve.TileService`, its
  :class:`~repro.serve.cache.TTLCache`, tick schedules), so TTL expiry and
  window aging happen in simulated seconds, independent of host speed.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

__all__ = ["SimClock", "EventLoop"]


class SimClock:
    """A settable virtual clock, callable like ``time.monotonic``.

    The event loop is the only writer; readers (the tile service, its cache,
    pool threads storing entries) see a monotonically non-decreasing float.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0):
        self._now = float(start)

    def __call__(self) -> float:
        return self._now

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Jump forward to ``t`` (never backwards — events are processed in
        time order, so a regression is a scheduling bug)."""
        if t < self._now:
            raise ValueError(
                f"virtual clock cannot run backwards: {t} < {self._now}"
            )
        self._now = float(t)


class EventLoop:
    """A heap-based discrete-event loop over one :class:`SimClock`.

    Events are ``(time, seq, action)`` triples; :meth:`run` pops them in
    ``(time, seq)`` order, advances the clock to each event's time, and
    invokes the action.  Actions may schedule further events (at or after
    the current instant).
    """

    def __init__(self, clock: "SimClock | None" = None):
        self.clock = clock if clock is not None else SimClock()
        self._heap: list[tuple[float, int, Callable[[], Any]]] = []
        self._seq = 0
        self.processed = 0

    def __len__(self) -> int:
        return len(self._heap)

    def schedule(self, t: float, action: Callable[[], Any]) -> None:
        """Queue ``action`` to fire at virtual time ``t``."""
        if t < self.clock.now:
            raise ValueError(
                f"cannot schedule into the past: {t} < {self.clock.now}"
            )
        heapq.heappush(self._heap, (float(t), self._seq, action))
        self._seq += 1

    def peek_time(self) -> "float | None":
        """The next event's time, or ``None`` when the loop is drained."""
        return self._heap[0][0] if self._heap else None

    def run(self, until: "float | None" = None) -> int:
        """Process events until the heap drains (or, with ``until``, until
        the next event lies strictly beyond it).  Returns how many events
        fired in this call."""
        fired = 0
        while self._heap:
            t = self._heap[0][0]
            if until is not None and t > until:
                break
            t, _seq, action = heapq.heappop(self._heap)
            self.clock.advance_to(t)
            action()
            fired += 1
            self.processed += 1
        return fired
