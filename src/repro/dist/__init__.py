"""Fault-tolerant sharded KDV rendering across worker processes.

The distributed tier of the stack: a :mod:`deterministic shard planner
<repro.dist.plan>`, a :mod:`framed socket protocol <repro.dist.proto>`,
:mod:`worker processes <repro.dist.worker>`, the fault-tolerant
:mod:`coordinator <repro.dist.coordinator>`, the :mod:`cost-model scheduler
<repro.dist.sched>` (refined shard plans, work stealing, capacity weights),
and :mod:`local launch helpers <repro.dist.launch>`.  Reached from the
public API as ``compute_kdv(..., backend="dist")`` and from the CLI as
``repro dist`` / ``repro dist-worker``; ``docs/distributed.md`` and
``docs/scheduling.md`` are the narrative guides.
"""

from .coordinator import (
    Coordinator,
    get_default_coordinator,
    parse_worker_addrs,
    resolve_coordinator,
    set_default_coordinator,
)
from .errors import (
    ConnectionClosed,
    DistError,
    DistTimeout,
    ProtocolError,
    WorkerLaunchError,
)
from .launch import LocalWorker, LocalWorkerPool, launch_local_workers
from .plan import Shard, ShardPlan, plan_shards
from .sched import CostModel, RenderReport, plan_shards_cost
from .worker import WorkerServer, compute_shard, engine_spec, resolve_row_engine

__all__ = [
    "Coordinator",
    "set_default_coordinator",
    "get_default_coordinator",
    "resolve_coordinator",
    "parse_worker_addrs",
    "DistError",
    "ProtocolError",
    "ConnectionClosed",
    "DistTimeout",
    "WorkerLaunchError",
    "LocalWorker",
    "LocalWorkerPool",
    "launch_local_workers",
    "Shard",
    "ShardPlan",
    "plan_shards",
    "CostModel",
    "RenderReport",
    "plan_shards_cost",
    "WorkerServer",
    "compute_shard",
    "engine_spec",
    "resolve_row_engine",
]
