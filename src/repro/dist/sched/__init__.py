"""Cost-model-driven shard scheduling for the distributed backend.

The layer between planning and dispatch (see ``docs/scheduling.md``):

* :class:`CostModel` — online per-engine shard-cost calibration plus
  per-worker capacity weights, persisted as JSON for warm starts;
* :func:`plan_shards_cost` — allocate-then-refine planner that seeds from
  the midpoint split and moves boundary rows while the predicted weighted
  makespan drops (``Coordinator(balance="cost")``);
* :func:`envelope_profile` / :func:`pairs_prefix` — exact per-row envelope
  pair counts, the work proxy everything above prices with;
* :class:`RenderReport` — per-render scheduling outcome
  (``Coordinator.last_report``), including work-steal activity.

Exactness is untouched by any of it: every band the scheduler mints —
refined, re-planned, or stolen mid-render — is a contiguous row range with
its halo, which :mod:`repro.dist.plan` guarantees merges bit-identically.
"""

from .cost import CostModel, engine_key
from .refine import SchedPlan, envelope_profile, pairs_prefix, plan_shards_cost
from .report import RenderReport, ShardRecord

__all__ = [
    "CostModel",
    "engine_key",
    "SchedPlan",
    "envelope_profile",
    "pairs_prefix",
    "plan_shards_cost",
    "RenderReport",
    "ShardRecord",
]
