"""Online per-shard cost model and per-worker capacity weights.

The sweep's work for one row band decomposes into a per-row term (raster
setup, envelope probing) and a per-pair term (every (row, envelope point)
pair contributes one kernel evaluation or bucket update).  So a shard's wall
time is modelled as::

    seconds  ~=  c0  +  c1 * rows  +  c2 * pairs

with one coefficient vector per *engine key* (``numpy`` row engines, the
batched driver, and the native engine have wildly different per-pair costs —
PR 9 made native ~6x cheaper).  ``pairs`` is the band's envelope-pair count
``sum_j |envelope(row_j)|``, computed exactly in O(Y log n) by the planner
(:func:`repro.dist.sched.envelope_profile`) — the same quantity the
``sweep.envelope_points`` counter reports after the fact.

Calibration is online: every completed shard attempt contributes one
``(rows, pairs, seconds)`` sample tagged with its engine and worker.  Until
an engine has enough samples for a least-squares fit, predictions fall back
to a throughput estimate (work units per second, exponentially weighted), so
the very first completed shard of a render already prices the remaining
ones — that is what lets work stealing trigger on a cold coordinator.

Per-worker **capacity** is the worker's observed throughput relative to the
pool median (1.0 = typical, 0.25 = a 4x-throttled straggler).  Before any
sample lands, HELLO-reported CPU counts seed a prior.  Capacities feed the
refinement planner (faster workers get proportionally wider bands) and the
steal trigger (a straggler is "late" relative to pool-normal time, not its
own slow clock).

The model is plain data and persists as JSON (:meth:`CostModel.save` /
:meth:`CostModel.load`), so a coordinator warm-starts from the previous
run's calibration via ``Coordinator(sched_state=...)``.  All methods are
thread-safe; predictions are cheap enough to call from dispatch loops.
"""

from __future__ import annotations

import json
import os
import threading
from collections import deque

import numpy as np

__all__ = ["CostModel", "engine_key"]

#: Samples required before a least-squares fit replaces the throughput
#: fallback for an engine.
MIN_FIT_SAMPLES = 8

#: Ring-buffer size per engine: old samples age out so the model tracks
#: machine load drift instead of averaging over it forever.
MAX_SAMPLES = 256

#: EWMA weight for new throughput observations (workers and engines).
EWMA_ALPHA = 0.3

_SCHEMA = 1


def engine_key(spec: "dict | None") -> str:
    """Collapse an engine spec (``repro.dist.worker.engine_spec``) to a
    calibration pool key.  Distinct keys get distinct coefficient vectors."""
    if not spec:
        return "batch"
    kind = spec.get("kind", "batch")
    if kind == "row":
        return f"row:{spec.get('name', '?')}"
    if kind == "native":
        return f"native@{spec.get('threads') or 0}"
    return str(kind)


def _work_units(rows: float, pairs: float) -> float:
    """Scalar work proxy for throughput bookkeeping: one unit per envelope
    pair plus one per row (a row costs at least its setup)."""
    return float(pairs) + float(rows)


class _EngineFit:
    """Per-engine sample ring plus a lazily refitted linear model."""

    __slots__ = ("samples", "coef", "_dirty", "unit_seconds")

    def __init__(self) -> None:
        self.samples: deque[tuple[float, float, float]] = deque(
            maxlen=MAX_SAMPLES
        )
        self.coef: "np.ndarray | None" = None
        self._dirty = False
        # EWMA of seconds per work unit — the pre-fit fallback.
        self.unit_seconds: "float | None" = None

    def observe(self, rows: float, pairs: float, seconds: float) -> None:
        self.samples.append((rows, pairs, seconds))
        self._dirty = True
        units = _work_units(rows, pairs)
        if units > 0 and seconds > 0:
            per_unit = seconds / units
            if self.unit_seconds is None:
                self.unit_seconds = per_unit
            else:
                self.unit_seconds += EWMA_ALPHA * (
                    per_unit - self.unit_seconds
                )

    def _refit(self) -> None:
        self._dirty = False
        if len(self.samples) < MIN_FIT_SAMPLES:
            self.coef = None
            return
        data = np.asarray(self.samples, dtype=np.float64)
        a = np.column_stack(
            [np.ones(len(data)), data[:, 0], data[:, 1]]
        )
        try:
            coef, *_ = np.linalg.lstsq(a, data[:, 2], rcond=None)
        except np.linalg.LinAlgError:
            self.coef = None
            return
        # Negative marginal costs are fit noise (collinear samples); clamp
        # so predictions stay monotone in band size — refinement needs that.
        self.coef = np.maximum(coef, 0.0)

    def predict(self, rows: float, pairs: float) -> "float | None":
        if self._dirty:
            self._refit()
        if self.coef is not None:
            return float(
                self.coef[0] + self.coef[1] * rows + self.coef[2] * pairs
            )
        if self.unit_seconds is not None:
            return self.unit_seconds * _work_units(rows, pairs)
        return None

    def to_dict(self) -> dict:
        if self._dirty:
            self._refit()
        return {
            "samples": [list(s) for s in self.samples],
            "unit_seconds": self.unit_seconds,
            "coef": None if self.coef is None else [float(c) for c in self.coef],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "_EngineFit":
        fit = cls()
        for row in data.get("samples", []) or []:
            if isinstance(row, (list, tuple)) and len(row) == 3:
                fit.samples.append(tuple(float(v) for v in row))
        unit = data.get("unit_seconds")
        fit.unit_seconds = float(unit) if unit is not None else None
        fit._dirty = bool(fit.samples)
        return fit


class _WorkerStats:
    """Observed throughput (work units / second) for one worker address."""

    __slots__ = ("throughput", "samples", "cpus")

    def __init__(self) -> None:
        self.throughput: "float | None" = None
        self.samples = 0
        self.cpus: "int | None" = None

    def observe(self, units: float, seconds: float) -> None:
        if seconds <= 0 or units <= 0:
            return
        rate = units / seconds
        self.samples += 1
        if self.throughput is None:
            self.throughput = rate
        else:
            self.throughput += EWMA_ALPHA * (rate - self.throughput)

    def to_dict(self) -> dict:
        return {
            "throughput": self.throughput,
            "samples": self.samples,
            "cpus": self.cpus,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "_WorkerStats":
        stats = cls()
        thr = data.get("throughput")
        stats.throughput = float(thr) if thr is not None else None
        stats.samples = int(data.get("samples", 0) or 0)
        cpus = data.get("cpus")
        stats.cpus = int(cpus) if cpus else None
        return stats


class CostModel:
    """Thread-safe, persistable shard-cost and worker-capacity model."""

    def __init__(self, path: "str | None" = None) -> None:
        self._lock = threading.Lock()
        self._engines: dict[str, _EngineFit] = {}
        self._workers: dict[str, _WorkerStats] = {}
        if path is not None:
            self.load(path)

    # -- calibration -----------------------------------------------------

    def hello(self, worker: str, cpus: "int | None") -> None:
        """Record a worker's HELLO-reported specs (capacity prior)."""
        with self._lock:
            stats = self._workers.setdefault(worker, _WorkerStats())
            if cpus:
                stats.cpus = int(cpus)

    def observe(
        self,
        engine: str,
        worker: str,
        rows: float,
        pairs: float,
        seconds: float,
    ) -> None:
        """Feed one completed shard attempt into the model."""
        if rows <= 0 or seconds <= 0:
            return
        with self._lock:
            self._engines.setdefault(engine, _EngineFit()).observe(
                rows, pairs, seconds
            )
            self._workers.setdefault(worker, _WorkerStats()).observe(
                _work_units(rows, pairs), seconds
            )

    # -- prediction ------------------------------------------------------

    def predict_seconds(
        self,
        engine: str,
        rows: float,
        pairs: float,
        worker: "str | None" = None,
    ) -> "float | None":
        """Predicted wall seconds for a band, or ``None`` when the model has
        no samples for the engine yet.  Without ``worker`` the prediction is
        *pool-normal* (a typical worker's time); with one, it is scaled by
        that worker's capacity."""
        with self._lock:
            fit = self._engines.get(engine)
            if fit is None:
                return None
            base = fit.predict(rows, pairs)
            if base is None:
                return None
            if worker is not None:
                base /= self._capacity_locked(worker)
            return max(base, 0.0)

    def row_cost_units(
        self, engine: str, profile: np.ndarray
    ) -> np.ndarray:
        """Relative per-row cost for refinement, from the per-row envelope
        counts ``profile``.  Uses the fitted marginal coefficients when
        available; otherwise each row costs its envelope size plus one (the
        same rows+pairs proxy the throughput fallback prices)."""
        profile = np.asarray(profile, dtype=np.float64)
        with self._lock:
            fit = self._engines.get(engine)
            if fit is not None:
                if fit._dirty:
                    fit._refit()
                if fit.coef is not None and (
                    fit.coef[1] > 0 or fit.coef[2] > 0
                ):
                    return fit.coef[1] + fit.coef[2] * profile
        return profile + 1.0

    # -- capacities ------------------------------------------------------

    def _capacity_locked(self, worker: str) -> float:
        stats = self._workers.get(worker)
        if stats is None:
            return 1.0
        observed = [
            s.throughput
            for s in self._workers.values()
            if s.throughput is not None
        ]
        if stats.throughput is not None and observed:
            median = float(np.median(observed))
            if median > 0:
                return max(stats.throughput / median, 1e-3)
        # No throughput sample yet: fall back to the HELLO cpu-count prior
        # relative to the pool median.
        cpus = [s.cpus for s in self._workers.values() if s.cpus]
        if stats.cpus and cpus:
            median = float(np.median(cpus))
            if median > 0:
                return max(stats.cpus / median, 1e-3)
        return 1.0

    def capacity(self, worker: str) -> float:
        """Relative speed of ``worker`` (pool median = 1.0)."""
        with self._lock:
            return self._capacity_locked(worker)

    def capacities(self, workers: list[str]) -> list[float]:
        with self._lock:
            return [self._capacity_locked(w) for w in workers]

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> dict:
        with self._lock:
            return {
                "schema": _SCHEMA,
                "engines": {
                    k: f.to_dict() for k, f in self._engines.items()
                },
                "workers": {
                    k: s.to_dict() for k, s in self._workers.items()
                },
            }

    def from_dict(self, data: dict) -> None:
        if not isinstance(data, dict) or data.get("schema") != _SCHEMA:
            return
        engines = {
            str(k): _EngineFit.from_dict(v)
            for k, v in (data.get("engines") or {}).items()
            if isinstance(v, dict)
        }
        workers = {
            str(k): _WorkerStats.from_dict(v)
            for k, v in (data.get("workers") or {}).items()
            if isinstance(v, dict)
        }
        with self._lock:
            self._engines = engines
            self._workers = workers

    def save(self, path: str) -> None:
        """Atomically persist calibration state as JSON."""
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=1, sort_keys=True)
        os.replace(tmp, path)

    def load(self, path: str) -> bool:
        """Warm-start from a previous :meth:`save`.  Missing or corrupt
        files are ignored (a cold model is always a valid state)."""
        try:
            with open(path, encoding="utf-8") as fh:
                data = json.load(fh)
        except (OSError, ValueError):
            return False
        self.from_dict(data)
        return True
