"""Per-render scheduling report: what each shard cost, where it ran, and
what the scheduler did about stragglers.

The coordinator assembles one :class:`RenderReport` per render and exposes
it as ``Coordinator.last_report``.  Benches read it to report per-shard
time spread (``balance_ratio``), tail latency (``p99_seconds``), and steal
activity; ``repro dist --stats`` prints its summary.  Entries are plain
data — one :class:`ShardRecord` per completed work unit, including thief
shards minted mid-render by work stealing.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ShardRecord", "RenderReport"]


@dataclass(frozen=True)
class ShardRecord:
    """One completed unit of work (a planned shard or a stolen sub-band)."""

    shard_id: int
    row_start: int
    #: The rows this record actually contributed to the merged grid.
    row_stop: int
    #: Rows the worker computed (>= contributed rows when a stale straggler
    #: result was partially discarded after a steal).
    computed_rows: int
    pairs: float
    worker: str
    elapsed_s: float
    predicted_s: "float | None"
    #: Planned shard id this band was stolen from, or ``None``.
    stolen_from: "int | None" = None

    @property
    def rows(self) -> int:
        return max(self.row_stop - self.row_start, 0)


@dataclass
class RenderReport:
    """Scheduling outcome of one distributed render."""

    balance: str
    planned_shards: int
    refine_moves: int = 0
    steals: int = 0
    steal_rows: int = 0
    discarded_rows: int = 0
    makespan_s: float = 0.0
    records: list[ShardRecord] = field(default_factory=list)

    def shard_seconds(self) -> list[float]:
        return [r.elapsed_s for r in self.records]

    def balance_ratio(self) -> "float | None":
        """Max over mean of per-shard wall seconds: 1.0 is a perfectly
        balanced render, large values mean one straggler set the critical
        path."""
        seconds = self.shard_seconds()
        if not seconds:
            return None
        mean = float(np.mean(seconds))
        return float(np.max(seconds)) / mean if mean > 0 else None

    def p99_seconds(self) -> "float | None":
        seconds = self.shard_seconds()
        if not seconds:
            return None
        return float(np.percentile(seconds, 99))

    def describe(self) -> str:
        lines = [
            f"sched report: balance={self.balance}, "
            f"{self.planned_shards} planned shard(s), "
            f"{len(self.records)} completed unit(s), "
            f"refine_moves={self.refine_moves}, steals={self.steals}"
        ]
        for r in sorted(self.records, key=lambda r: (r.row_start, r.shard_id)):
            origin = (
                f" (stolen from #{r.stolen_from})"
                if r.stolen_from is not None
                else ""
            )
            pred = f"{r.predicted_s:.3f}s" if r.predicted_s is not None else "-"
            lines.append(
                f"  #{r.shard_id}: rows [{r.row_start}, {r.row_stop}) "
                f"on {r.worker} {r.elapsed_s:.3f}s (predicted {pred})"
                f"{origin}"
            )
        ratio = self.balance_ratio()
        if ratio is not None:
            lines.append(
                f"  balance_ratio={ratio:.2f} makespan={self.makespan_s:.3f}s"
                f" discarded_rows={self.discarded_rows}"
            )
        return "\n".join(lines)
