"""Allocate-then-refine shard planning over predicted per-row costs.

The planner prices every pixel row before the render starts: row ``j``'s
envelope holds exactly the points within one bandwidth of its center, and
its count is two binary searches into the y-sorted order
(:func:`envelope_profile`).  The cost model turns those counts into
relative per-row cost units, whose prefix sum makes any band's predicted
cost an O(1) subtraction — which is what lets the refinement loop evaluate
thousands of candidate boundary positions for free.

Planning is allocate-then-refine: **seed** with the midpoint split the
points-balanced planner uses (:func:`repro.dist.plan.midpoint_row_bounds`),
then **refine** by moving boundary rows between adjacent bands while the
predicted weighted makespan drops
(:func:`repro.dist.plan.refine_row_bounds`).  Heterogeneous capacity
weights stretch the target: a band headed for a 2x-faster worker tolerates
2x the predicted cost.  The output is still just a monotone partition of
``range(Y)`` fed through :func:`repro.dist.plan.build_plan`, so the merge
stays bit-identical to serial no matter where the boundaries land.

Everything here is a pure function of its inputs (points, raster, model
state, weights): replanning after a worker death or on another host yields
the same bands.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.envelope import YSortedIndex
from ..plan import ShardPlan, build_plan, midpoint_row_bounds
from .cost import CostModel

__all__ = ["envelope_profile", "pairs_prefix", "plan_shards_cost", "SchedPlan"]


def envelope_profile(
    ysorted: YSortedIndex, y_centers: np.ndarray, bandwidth: float
) -> np.ndarray:
    """Per-row envelope point counts, shape ``(Y,)``.

    ``profile[j]`` is the exact number of dataset points within one
    bandwidth of row ``j``'s center — the row's envelope size, and hence
    its pair count in the sweep.  O(Y log n) total.
    """
    y_centers = np.asarray(y_centers, dtype=np.float64)
    sorted_y = ysorted.sorted_y
    lo = np.searchsorted(sorted_y, y_centers - bandwidth, side="left")
    hi = np.searchsorted(sorted_y, y_centers + bandwidth, side="right")
    return (hi - lo).astype(np.float64)


def pairs_prefix(
    ysorted: YSortedIndex, y_centers: np.ndarray, bandwidth: float
) -> np.ndarray:
    """Cumulative envelope-pair counts: ``prefix[r1] - prefix[r0]`` is the
    exact pair count of row band ``[r0, r1)``.  Shape ``(Y + 1,)``."""
    profile = envelope_profile(ysorted, y_centers, bandwidth)
    out = np.zeros(len(profile) + 1, dtype=np.float64)
    np.cumsum(profile, out=out[1:])
    return out


@dataclass(frozen=True)
class SchedPlan:
    """A cost-balanced :class:`~repro.dist.plan.ShardPlan` plus the pricing
    state the coordinator keeps using during the render (steal decisions,
    calibration samples for arbitrary sub-bands)."""

    plan: ShardPlan
    refine_moves: int
    #: Cumulative envelope pairs per row boundary, shape ``(Y + 1,)``.
    pairs: np.ndarray
    #: Cumulative predicted cost units per row boundary, shape ``(Y + 1,)``.
    cost: np.ndarray
    #: Per-band capacity weights used by refinement (``None`` = homogeneous).
    weights: "tuple[float, ...] | None"

    def band_pairs(self, row_start: int, row_stop: int) -> float:
        if row_stop <= row_start:
            return 0.0
        return float(self.pairs[row_stop] - self.pairs[row_start])

    def band_cost(self, row_start: int, row_stop: int) -> float:
        if row_stop <= row_start:
            return 0.0
        return float(self.cost[row_stop] - self.cost[row_start])


def plan_shards_cost(
    ysorted: YSortedIndex,
    y_centers: np.ndarray,
    bandwidth: float,
    shards: int,
    *,
    model: "CostModel | None" = None,
    engine: str = "batch",
    capacities: "list[float] | None" = None,
    max_passes: int = 8,
) -> SchedPlan:
    """Plan ``shards`` bands minimizing the predicted weighted makespan.

    ``capacities`` lists the relative speeds of the workers the shards will
    land on (any length); bands are weighted by cycling through them from
    fastest to slowest, so with 2 workers x 2 shards each, the two widest
    bands go to the faster worker.  With no model and no capacities this
    degrades gracefully to balancing ``pairs + rows`` — still a far better
    proxy for wall time under skew than point counts alone.

    Shard-count clamping matches :func:`repro.dist.plan.plan_shards`
    exactly (``min(shards, n, Y)``), so swapping balance modes never
    changes how many shards a render reports.
    """
    from ..plan import _validate, refine_row_bounds  # shared validation

    n = len(ysorted)
    height = int(len(y_centers))
    _validate(n, height, bandwidth, shards)
    k = min(int(shards), n, height)
    y_centers = np.asarray(y_centers, dtype=np.float64)

    profile = envelope_profile(ysorted, y_centers, bandwidth)
    if model is not None:
        row_costs = model.row_cost_units(engine, profile)
    else:
        row_costs = profile + 1.0
    cost = np.zeros(height + 1, dtype=np.float64)
    np.cumsum(row_costs, out=cost[1:])
    pairs = np.zeros(height + 1, dtype=np.float64)
    np.cumsum(profile, out=pairs[1:])

    weights: "tuple[float, ...] | None" = None
    if capacities:
        caps = sorted((max(float(c), 1e-3) for c in capacities), reverse=True)
        if any(abs(c - caps[0]) > 1e-9 for c in caps):
            weights = tuple(caps[i % len(caps)] for i in range(k))

    seed = midpoint_row_bounds(ysorted, y_centers, k)
    bounds, moves = refine_row_bounds(
        lambda r0, r1: float(cost[r1] - cost[r0]) if r1 > r0 else 0.0,
        seed,
        weights=list(weights) if weights is not None else None,
        max_passes=max_passes,
    )
    plan = build_plan(ysorted, y_centers, bandwidth, bounds, "cost")
    return SchedPlan(
        plan=plan,
        refine_moves=moves,
        pairs=pairs,
        cost=cost,
        weights=weights,
    )
