"""Spawn and manage local worker processes (tests, CI, ``repro dist --spawn``).

These helpers run ``python -m repro dist-worker --port 0`` as real child
processes — not threads — so fault-injection tests can SIGKILL one and
exercise exactly the failure the coordinator must survive in production.
Each worker prints one machine-readable ready line
(:func:`repro.dist.worker.format_ready_line`) on stdout; the launcher parses
it to learn the OS-assigned port.

:meth:`LocalWorkerPool.shutdown` is deliberately belt-and-braces (SIGTERM,
wait, SIGKILL, reap) because the CI smoke job asserts no orphan processes
survive a run.
"""

from __future__ import annotations

import os
import subprocess
import sys
import threading
import time

from .errors import WorkerLaunchError
from .worker import parse_ready_line

__all__ = ["LocalWorker", "LocalWorkerPool", "launch_local_workers"]


class LocalWorker:
    """One spawned ``repro dist-worker`` child process."""

    def __init__(self, process: subprocess.Popen, host: str, port: int):
        self.process = process
        self.host = host
        self.port = port

    @property
    def addr(self) -> "tuple[str, int]":
        return (self.host, self.port)

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None

    def kill(self) -> None:
        """SIGKILL the worker — the fault-injection hammer."""
        if self.alive():
            self.process.kill()
        self.process.wait()

    def terminate(self) -> None:
        if self.alive():
            self.process.terminate()


class LocalWorkerPool:
    """A set of spawned workers that is guaranteed to be cleaned up."""

    def __init__(self, workers: "list[LocalWorker]"):
        self.workers = workers

    @property
    def addrs(self) -> "list[tuple[str, int]]":
        return [w.addr for w in self.workers]

    def __len__(self) -> int:
        return len(self.workers)

    def __iter__(self):
        return iter(self.workers)

    def __getitem__(self, i: int) -> LocalWorker:
        return self.workers[i]

    def shutdown(self, grace_s: float = 3.0) -> None:
        """Terminate and reap every worker: SIGTERM, wait up to ``grace_s``,
        SIGKILL whatever remains, then ``wait()`` all so nothing is left as a
        zombie for the CI orphan check to find."""
        for w in self.workers:
            w.terminate()
        deadline = time.monotonic() + grace_s
        for w in self.workers:
            remaining = deadline - time.monotonic()
            try:
                w.process.wait(timeout=max(remaining, 0.1))
            except subprocess.TimeoutExpired:
                w.process.kill()
        for w in self.workers:
            w.process.wait()

    def __enter__(self) -> "LocalWorkerPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.shutdown()
        return False


def _read_ready_line(
    proc: subprocess.Popen, timeout_s: float
) -> "tuple[str, int] | None":
    """Read stdout lines until the ready line appears, with a hard timeout
    (a reader thread, because ``readline`` on a pipe cannot be timed out)."""
    result: "list[tuple[str, int] | None]" = [None]

    def reader() -> None:
        while True:
            line = proc.stdout.readline()
            if not line:
                return
            parsed = parse_ready_line(line)
            if parsed is not None:
                result[0] = parsed
                return

    thread = threading.Thread(target=reader, daemon=True)
    thread.start()
    thread.join(timeout_s)
    return result[0]


def launch_local_workers(
    n: int,
    *,
    host: str = "127.0.0.1",
    heartbeat_s: float = 0.25,
    delay_s: float = 0.0,
    slow_factor: float = 1.0,
    startup_timeout_s: float = 20.0,
    python: "str | None" = None,
) -> LocalWorkerPool:
    """Spawn ``n`` local worker processes and wait for all to be ready.

    ``delay_s`` and ``slow_factor`` are fault-injection knobs applied to
    *every* worker in the pool (spawn a second pool to build a
    heterogeneous cluster, as the sched smoke test does).

    Raises :class:`WorkerLaunchError` (after cleaning up any workers that
    did start) if a child dies or fails to print its ready line in time.
    """
    if n < 1:
        raise ValueError(f"need at least one worker, got {n}")
    env = dict(os.environ)
    # Children must import this very package even when it runs from a source
    # tree that is not installed.
    src_root = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (
        src_root if not existing else src_root + os.pathsep + existing
    )
    cmd = [
        python or sys.executable,
        "-m",
        "repro",
        "dist-worker",
        "--host",
        host,
        "--port",
        "0",
        "--heartbeat",
        str(heartbeat_s),
    ]
    if delay_s > 0:
        cmd += ["--delay-s", str(delay_s)]
    if slow_factor > 1.0:
        cmd += ["--slow-factor", str(slow_factor)]
    workers: "list[LocalWorker]" = []
    procs: "list[subprocess.Popen]" = []
    try:
        procs = [
            subprocess.Popen(
                cmd,
                stdout=subprocess.PIPE,
                stderr=subprocess.DEVNULL,
                text=True,
                env=env,
                start_new_session=True,  # isolate from our signal group
            )
            for _ in range(n)
        ]
        for proc in procs:
            ready = _read_ready_line(proc, startup_timeout_s)
            if ready is None:
                raise WorkerLaunchError(
                    f"worker pid {proc.pid} did not become ready within "
                    f"{startup_timeout_s}s (exit code {proc.poll()})"
                )
            workers.append(LocalWorker(proc, ready[0], ready[1]))
        return LocalWorkerPool(workers)
    except BaseException:
        leftovers = [
            LocalWorker(p, host, 0)
            for p in procs
            if all(w.process is not p for w in workers)
        ]
        LocalWorkerPool(workers + leftovers).shutdown(grace_s=1.0)
        raise
