"""Deterministic shard planner for distributed KDV rendering.

Because ``F_P(q) = sum_p w_p K(q, p)`` is additive over any partition of the
point set, a KDV render decomposes exactly across disjoint shards.  This
planner goes one step further and produces a decomposition whose merge is
*bit-identical* to the serial sweep, not merely mathematically equal:

* the **points** are split into K disjoint, contiguous ranges of the
  y-sorted order (each shard *owns* ``sorted_xy[own_start:own_stop]``);
* each shard is assigned the disjoint band of **pixel rows** whose centers
  fall nearest its owned y-range, so the row bands partition ``range(Y)``;
* the payload shipped to a worker is the owned range *inflated by one
  bandwidth on each side* (the ``halo``, still one contiguous y-sorted
  slice) — exactly the points that can influence any pixel of the shard's
  rows, because a finite-support kernel reaches at most ``b``.

A worker therefore computes its rows with *exactly* the same envelope point
sequences, in the same order, as the serial sweep would (the halo slice of a
y-sorted array is itself y-sorted, so rebuilding a
:class:`~repro.core.envelope.YSortedIndex` over it is an identity
permutation), and the coordinator's merge is pure row concatenation — no
floating-point value is ever combined across shards.  That is the exactness
argument in full; ``docs/distributed.md`` spells it out.  Crucially, the
argument only uses the band's *contiguity*: **any** contiguous row band with
its halo is a self-contained unit of work, which is what lets the
cost-model planner (:mod:`repro.dist.sched`) move boundary rows freely and
lets the coordinator split a straggler's band mid-render (work stealing)
without ever risking the merge.

The planner is a pure function of its inputs: same points, raster rows,
bandwidth, and shard count always yield the same plan, on every host.  This
is what makes resubmission after a worker death safe — a re-planned or
re-shipped shard recomputes exactly the same block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.envelope import YSortedIndex

__all__ = [
    "Shard",
    "ShardPlan",
    "plan_shards",
    "build_plan",
    "band_halo",
    "midpoint_row_bounds",
    "refine_row_bounds",
]

#: Valid ``balance`` modes for :func:`plan_shards`.  The coordinator adds a
#: third mode, ``"cost"``, which routes through the cost-model planner in
#: :mod:`repro.dist.sched` (it needs calibration state a pure function
#: cannot carry).
BALANCE_MODES = ("points", "rows")


@dataclass(frozen=True)
class Shard:
    """One unit of distributable work.

    ``row_start:row_stop`` is the disjoint band of pixel rows this shard
    renders; ``own_start:own_stop`` the disjoint y-sorted point range it
    accounts for; ``halo_start:halo_stop`` the contiguous y-sorted slice
    actually shipped (owned range ± one bandwidth, clipped to the dataset).
    """

    shard_id: int
    row_start: int
    row_stop: int
    own_start: int
    own_stop: int
    halo_start: int
    halo_stop: int

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def owned_points(self) -> int:
        return self.own_stop - self.own_start

    @property
    def halo_points(self) -> int:
        return self.halo_stop - self.halo_start


@dataclass(frozen=True)
class ShardPlan:
    """The full deterministic decomposition of one render."""

    shards: tuple[Shard, ...]
    n_points: int
    height: int
    bandwidth: float
    balance: str

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def describe(self) -> str:
        """One line per shard, for logs and ``--stats`` output."""
        lines = [
            f"shard plan: {len(self.shards)} shard(s) over {self.height} rows, "
            f"{self.n_points} points (balance={self.balance})"
        ]
        for s in self.shards:
            lines.append(
                f"  #{s.shard_id}: rows [{s.row_start}, {s.row_stop}) "
                f"owns {s.owned_points} pts, ships {s.halo_points}"
            )
        return "\n".join(lines)


def _near_equal_bounds(total: int, parts: int) -> list[int]:
    """``parts + 1`` monotone boundaries splitting ``range(total)`` into
    near-equal contiguous ranges (same arithmetic as
    :func:`repro.core.parallel.partition_rows`)."""
    base, extra = divmod(total, parts)
    bounds = [0]
    for i in range(parts):
        bounds.append(bounds[-1] + base + (1 if i < extra else 0))
    return bounds


def _validate(n: int, height: int, bandwidth: float, shards: int) -> None:
    if n < 1:
        raise ValueError("cannot plan shards over an empty dataset")
    if height < 1:
        raise ValueError("cannot plan shards over a zero-row raster")
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")


def midpoint_row_bounds(
    ysorted: YSortedIndex, y_centers: np.ndarray, k: int
) -> list[int]:
    """Row boundaries seeded from a near-equal *owned-points* split.

    The owned point ranges are cut into ``k`` near-equal slices of the
    y-sorted order; each internal row boundary is the first row whose center
    lies at or beyond the midpoint between the two boundary points.  This is
    the classic midpoint seed — both the refined ``balance="points"`` mode
    and the cost-model planner (:mod:`repro.dist.sched`) start from it.
    """
    n = len(ysorted)
    height = int(len(y_centers))
    sorted_y = ysorted.sorted_y
    own_bounds = _near_equal_bounds(n, k)
    row_bounds = [0]
    for b_i in own_bounds[1:-1]:
        split_y = 0.5 * (sorted_y[b_i - 1] + sorted_y[b_i])
        r = int(np.searchsorted(y_centers, split_y, side="left"))
        row_bounds.append(min(max(r, row_bounds[-1]), height))
    row_bounds.append(height)
    return row_bounds


def band_halo(
    sorted_y: np.ndarray,
    y_centers: np.ndarray,
    bandwidth: float,
    row_start: int,
    row_stop: int,
) -> tuple[int, int]:
    """The y-sorted halo slice ``[start, stop)`` for one contiguous row band.

    The slice holds every point within one bandwidth of any of the band's
    row centers — the self-containment property the exactness argument (and
    work stealing) rests on.  A rowless band ships nothing.
    """
    if row_stop <= row_start:
        return 0, 0
    lo = int(
        np.searchsorted(sorted_y, y_centers[row_start] - bandwidth, side="left")
    )
    hi = int(
        np.searchsorted(
            sorted_y, y_centers[row_stop - 1] + bandwidth, side="right"
        )
    )
    return lo, hi


def refine_row_bounds(
    band_cost,
    row_bounds: list[int],
    weights=None,
    max_passes: int = 8,
) -> tuple[list[int], int]:
    """Iteratively move boundary rows between adjacent bands while the
    predicted makespan drops (the allocate-then-refine structure).

    ``band_cost(r0, r1)`` must return a nonnegative cost that is monotone in
    band extension (growing a band never lowers its cost) — true for both
    additive per-row costs and haloed point counts.  Each internal boundary
    is re-placed by binary search at the weighted cost crossover of its two
    neighbors, and a move is accepted only when the pair's weighted maximum
    strictly drops, so the loop terminates and the result is a pure function
    of its inputs.  ``weights[i]`` scales band ``i``'s capacity (a band on a
    2x-faster worker tolerates 2x the cost); ``None`` means equal workers.

    Returns ``(bounds, moves)`` where ``moves`` counts accepted boundary
    relocations (the ``dist.sched.refine_moves`` counter).
    """
    k = len(row_bounds) - 1
    bounds = list(row_bounds)
    if k <= 1:
        return bounds, 0
    if weights is None:
        w = [1.0] * k
    else:
        w = [max(float(x), 1e-9) for x in weights]
        if len(w) != k:
            raise ValueError(
                f"need one weight per band: got {len(w)} for {k} bands"
            )
    moves = 0
    for _ in range(max_passes):
        changed = False
        for i in range(1, k):
            lo, hi = bounds[i - 1], bounds[i + 1]
            if hi - lo < 1:
                continue
            wl, wr = w[i - 1], w[i]

            def pair_max(b: int) -> float:
                return max(band_cost(lo, b) / wl, band_cost(b, hi) / wr)

            # Left cost/wl is nondecreasing in b and right cost/wr is
            # nonincreasing, so the weighted max is unimodal: binary-search
            # the smallest b where the left side has caught up, then pick
            # the better of the two bracketing positions.
            a, z = lo, hi
            while a < z:
                m = (a + z) // 2
                if band_cost(lo, m) / wl >= band_cost(m, hi) / wr:
                    z = m
                else:
                    a = m + 1
            candidates = [a] if a - 1 < lo else [a - 1, a]
            best = min(candidates, key=lambda b: (pair_max(b), b))
            if best != bounds[i] and pair_max(best) < pair_max(bounds[i]):
                bounds[i] = best
                moves += 1
                changed = True
        if not changed:
            break
    return bounds, moves


def build_plan(
    ysorted: YSortedIndex,
    y_centers: np.ndarray,
    bandwidth: float,
    row_bounds: list[int],
    balance: str,
) -> ShardPlan:
    """Assemble a :class:`ShardPlan` from final row boundaries.

    Owned point ranges are derived from the row boundaries (points below the
    midpoint of the two adjacent row centers belong to the lower shard) and
    halos from :func:`band_halo`, so any monotone ``row_bounds`` partition of
    ``range(Y)`` yields a valid, exact plan — the property the refinement
    planners rely on.
    """
    n = len(ysorted)
    height = int(len(y_centers))
    sorted_y = ysorted.sorted_y
    k = len(row_bounds) - 1
    own_bounds = [0]
    for r_i in row_bounds[1:-1]:
        if r_i <= 0:
            b = 0
        elif r_i >= height:
            b = n
        else:
            split_y = 0.5 * (y_centers[r_i - 1] + y_centers[r_i])
            b = int(np.searchsorted(sorted_y, split_y, side="left"))
        own_bounds.append(min(max(b, own_bounds[-1]), n))
    own_bounds.append(n)

    shards_out: list[Shard] = []
    for i in range(k):
        row_start, row_stop = row_bounds[i], row_bounds[i + 1]
        if row_stop > row_start:
            halo_start, halo_stop = band_halo(
                sorted_y, y_centers, bandwidth, row_start, row_stop
            )
        else:
            # A rowless shard renders nothing and ships nothing; it exists
            # only so the owned ranges still partition the dataset.
            halo_start = halo_stop = own_bounds[i]
        shards_out.append(
            Shard(
                shard_id=i,
                row_start=row_start,
                row_stop=row_stop,
                own_start=own_bounds[i],
                own_stop=own_bounds[i + 1],
                halo_start=halo_start,
                halo_stop=halo_stop,
            )
        )
    return ShardPlan(
        shards=tuple(shards_out),
        n_points=n,
        height=height,
        bandwidth=float(bandwidth),
        balance=balance,
    )


def plan_shards(
    ysorted: YSortedIndex,
    y_centers: np.ndarray,
    bandwidth: float,
    shards: int,
    balance: str = "points",
) -> ShardPlan:
    """Split one render into ``shards`` deterministic shard descriptions.

    Parameters
    ----------
    ysorted:
        The y-sorted index over the full dataset (n >= 1 points).
    y_centers:
        Ascending pixel-row center y coordinates, shape ``(Y,)`` with
        ``Y >= 1`` (``Raster.y_centers()``).
    bandwidth:
        Kernel bandwidth ``b`` in world units (> 0); sets the halo width.
    shards:
        Requested shard count ``K >= 1``.  Clamped to
        ``min(K, n_points, Y)`` — more shards than points or rows would only
        mint empty work units.
    balance:
        ``"points"`` (default) balances the per-shard *haloed* point counts
        — the points a shard actually computes with, which is what the
        envelope work scales with.  (It used to balance owned counts only,
        which undercounts boundary-heavy shards: a shard whose band sits in
        a dense region ships a much larger halo than it owns.)  The split is
        seeded from the owned-count midpoint boundaries and refined with
        :func:`refine_row_bounds` over the halo counts.  ``"rows"`` makes
        the row bands near-equal instead, which balances the per-pixel term
        when the data is close to uniform.  For balancing by *predicted
        wall time* see the coordinator's ``balance="cost"`` mode
        (:mod:`repro.dist.sched`).

    Returns
    -------
    A :class:`ShardPlan` whose row bands partition ``range(Y)`` exactly and
    whose owned ranges partition ``range(n)`` exactly.  Pure function: the
    same inputs produce the same plan on every call and every host.
    """
    n = len(ysorted)
    height = int(len(y_centers))
    _validate(n, height, bandwidth, shards)
    if balance not in BALANCE_MODES:
        raise ValueError(
            f"unknown balance mode {balance!r}; available: {BALANCE_MODES}"
        )
    k = min(int(shards), n, height)
    y_centers = np.asarray(y_centers, dtype=np.float64)
    sorted_y = ysorted.sorted_y

    if balance == "points":
        row_bounds = midpoint_row_bounds(ysorted, y_centers, k)
        if k > 1:
            # Balance what a shard *ships and computes with* — its haloed
            # point count — not just what it owns.  Per-row halo edges are
            # precomputed once, so each band cost is O(1) and the whole
            # refinement is a handful of binary searches.
            lo = np.searchsorted(sorted_y, y_centers - bandwidth, side="left")
            hi = np.searchsorted(sorted_y, y_centers + bandwidth, side="right")

            def halo_count(r0: int, r1: int) -> float:
                return 0.0 if r1 <= r0 else float(hi[r1 - 1] - lo[r0])

            row_bounds, _ = refine_row_bounds(halo_count, row_bounds)
    else:
        row_bounds = _near_equal_bounds(height, k)

    return build_plan(ysorted, y_centers, bandwidth, row_bounds, balance)
