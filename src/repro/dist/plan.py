"""Deterministic shard planner for distributed KDV rendering.

Because ``F_P(q) = sum_p w_p K(q, p)`` is additive over any partition of the
point set, a KDV render decomposes exactly across disjoint shards.  This
planner goes one step further and produces a decomposition whose merge is
*bit-identical* to the serial sweep, not merely mathematically equal:

* the **points** are split into K disjoint, contiguous ranges of the
  y-sorted order (each shard *owns* ``sorted_xy[own_start:own_stop]``);
* each shard is assigned the disjoint band of **pixel rows** whose centers
  fall nearest its owned y-range, so the row bands partition ``range(Y)``;
* the payload shipped to a worker is the owned range *inflated by one
  bandwidth on each side* (the ``halo``, still one contiguous y-sorted
  slice) — exactly the points that can influence any pixel of the shard's
  rows, because a finite-support kernel reaches at most ``b``.

A worker therefore computes its rows with *exactly* the same envelope point
sequences, in the same order, as the serial sweep would (the halo slice of a
y-sorted array is itself y-sorted, so rebuilding a
:class:`~repro.core.envelope.YSortedIndex` over it is an identity
permutation), and the coordinator's merge is pure row concatenation — no
floating-point value is ever combined across shards.  That is the exactness
argument in full; ``docs/distributed.md`` spells it out.

The planner is a pure function of its inputs: same points, raster rows,
bandwidth, and shard count always yield the same plan, on every host.  This
is what makes resubmission after a worker death safe — a re-planned or
re-shipped shard recomputes exactly the same block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.envelope import YSortedIndex

__all__ = ["Shard", "ShardPlan", "plan_shards"]

#: Valid ``balance`` modes for :func:`plan_shards`.
BALANCE_MODES = ("points", "rows")


@dataclass(frozen=True)
class Shard:
    """One unit of distributable work.

    ``row_start:row_stop`` is the disjoint band of pixel rows this shard
    renders; ``own_start:own_stop`` the disjoint y-sorted point range it
    accounts for; ``halo_start:halo_stop`` the contiguous y-sorted slice
    actually shipped (owned range ± one bandwidth, clipped to the dataset).
    """

    shard_id: int
    row_start: int
    row_stop: int
    own_start: int
    own_stop: int
    halo_start: int
    halo_stop: int

    @property
    def rows(self) -> int:
        return self.row_stop - self.row_start

    @property
    def owned_points(self) -> int:
        return self.own_stop - self.own_start

    @property
    def halo_points(self) -> int:
        return self.halo_stop - self.halo_start


@dataclass(frozen=True)
class ShardPlan:
    """The full deterministic decomposition of one render."""

    shards: tuple[Shard, ...]
    n_points: int
    height: int
    bandwidth: float
    balance: str

    def __len__(self) -> int:
        return len(self.shards)

    def __iter__(self):
        return iter(self.shards)

    def describe(self) -> str:
        """One line per shard, for logs and ``--stats`` output."""
        lines = [
            f"shard plan: {len(self.shards)} shard(s) over {self.height} rows, "
            f"{self.n_points} points (balance={self.balance})"
        ]
        for s in self.shards:
            lines.append(
                f"  #{s.shard_id}: rows [{s.row_start}, {s.row_stop}) "
                f"owns {s.owned_points} pts, ships {s.halo_points}"
            )
        return "\n".join(lines)


def _near_equal_bounds(total: int, parts: int) -> list[int]:
    """``parts + 1`` monotone boundaries splitting ``range(total)`` into
    near-equal contiguous ranges (same arithmetic as
    :func:`repro.core.parallel.partition_rows`)."""
    base, extra = divmod(total, parts)
    bounds = [0]
    for i in range(parts):
        bounds.append(bounds[-1] + base + (1 if i < extra else 0))
    return bounds


def plan_shards(
    ysorted: YSortedIndex,
    y_centers: np.ndarray,
    bandwidth: float,
    shards: int,
    balance: str = "points",
) -> ShardPlan:
    """Split one render into ``shards`` deterministic shard descriptions.

    Parameters
    ----------
    ysorted:
        The y-sorted index over the full dataset (n >= 1 points).
    y_centers:
        Ascending pixel-row center y coordinates, shape ``(Y,)`` with
        ``Y >= 1`` (``Raster.y_centers()``).
    bandwidth:
        Kernel bandwidth ``b`` in world units (> 0); sets the halo width.
    shards:
        Requested shard count ``K >= 1``.  Clamped to
        ``min(K, n_points, Y)`` — more shards than points or rows would only
        mint empty work units.
    balance:
        ``"points"`` (default) makes the owned point ranges near-equal, so
        the per-shard envelope work — the term that scales with data — is
        balanced; ``"rows"`` makes the row bands near-equal instead, which
        balances the per-pixel term when the data is close to uniform.

    Returns
    -------
    A :class:`ShardPlan` whose row bands partition ``range(Y)`` exactly and
    whose owned ranges partition ``range(n)`` exactly.  Pure function: the
    same inputs produce the same plan on every call and every host.
    """
    n = len(ysorted)
    height = int(len(y_centers))
    if n < 1:
        raise ValueError("cannot plan shards over an empty dataset")
    if height < 1:
        raise ValueError("cannot plan shards over a zero-row raster")
    if bandwidth <= 0:
        raise ValueError(f"bandwidth must be positive, got {bandwidth}")
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if balance not in BALANCE_MODES:
        raise ValueError(
            f"unknown balance mode {balance!r}; available: {BALANCE_MODES}"
        )
    k = min(int(shards), n, height)
    y_centers = np.asarray(y_centers, dtype=np.float64)
    sorted_y = ysorted.sorted_y

    if balance == "points":
        own_bounds = _near_equal_bounds(n, k)
        # Row boundary between shard i and i+1: the first row whose center
        # lies at or beyond the midpoint between the two boundary points.
        row_bounds = [0]
        for b_i in own_bounds[1:-1]:
            split_y = 0.5 * (sorted_y[b_i - 1] + sorted_y[b_i])
            r = int(np.searchsorted(y_centers, split_y, side="left"))
            row_bounds.append(min(max(r, row_bounds[-1]), height))
        row_bounds.append(height)
    else:
        row_bounds = _near_equal_bounds(height, k)
        # Owned point boundary between bands: points below the midpoint of
        # the two adjacent row centers belong to the lower shard.
        own_bounds = [0]
        for r_i in row_bounds[1:-1]:
            split_y = 0.5 * (y_centers[r_i - 1] + y_centers[r_i])
            b = int(np.searchsorted(sorted_y, split_y, side="left"))
            own_bounds.append(min(max(b, own_bounds[-1]), n))
        own_bounds.append(n)

    shards_out: list[Shard] = []
    for i in range(k):
        row_start, row_stop = row_bounds[i], row_bounds[i + 1]
        if row_stop > row_start:
            halo_start = int(
                np.searchsorted(
                    sorted_y, y_centers[row_start] - bandwidth, side="left"
                )
            )
            halo_stop = int(
                np.searchsorted(
                    sorted_y, y_centers[row_stop - 1] + bandwidth, side="right"
                )
            )
        else:
            # A rowless shard renders nothing and ships nothing; it exists
            # only so the owned ranges still partition the dataset.
            halo_start = halo_stop = own_bounds[i]
        shards_out.append(
            Shard(
                shard_id=i,
                row_start=row_start,
                row_stop=row_stop,
                own_start=own_bounds[i],
                own_stop=own_bounds[i + 1],
                halo_start=halo_start,
                halo_stop=halo_stop,
            )
        )
    return ShardPlan(
        shards=tuple(shards_out),
        n_points=n,
        height=height,
        bandwidth=float(bandwidth),
        balance=balance,
    )
