"""Length-prefixed framed messages for the coordinator <-> worker link.

The transport is a plain TCP stream; this module gives it record boundaries
and integrity checks.  Every frame is::

    +--------+---------+----------+-------------+----------+---------+
    | magic  | version | msg_type | payload_len | crc32    | payload |
    | 4 B    | u16     | u16      | u32         | u32      | n bytes |
    +--------+---------+----------+-------------+----------+---------+

(big-endian header, :data:`HEADER` = 16 bytes).  The payload is a pickled
Python object — both endpoints are trusted processes of the same codebase
(the same trust model as :mod:`multiprocessing`), and pickle moves NumPy
blocks without copies through protocol 5 buffers.  The CRC-32 of the payload
is verified on receipt, so a torn or corrupted frame surfaces as a
:class:`~repro.dist.errors.ProtocolError` instead of a pickle crash deep in
a worker.

Versioning: the protocol version rides in *every* header, so a mismatched
peer is rejected on the first frame; the explicit :func:`client_handshake` /
:func:`server_handshake` exchange additionally carries the peer's pid,
advertised capabilities, and machine identity (``node``).  v2 added the
``caps``/``node`` fields, which the coordinator uses to negotiate the
zero-copy shared-memory shard transport with co-located workers (see
:mod:`repro.dist.shm`); capability keys are additive, so future transports
slot in without another version bump.  v3 added the CANCEL frame and
progress-bearing heartbeats for coordinator-side work stealing
(``docs/scheduling.md``), plus HELLO ``specs`` (cpu count) feeding the
scheduler's capacity priors.

All send/recv helpers return the byte count they moved, which the
coordinator feeds the ``dist.bytes_tx`` / ``dist.bytes_rx`` counters.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import threading
import zlib

from .errors import ConnectionClosed, ProtocolError

__all__ = [
    "PROTO_VERSION",
    "MAGIC",
    "HEADER",
    "MSG_HELLO",
    "MSG_PING",
    "MSG_PONG",
    "MSG_TASK",
    "MSG_RESULT",
    "MSG_ERROR",
    "MSG_HEARTBEAT",
    "MSG_SHUTDOWN",
    "MSG_BYE",
    "MSG_CANCEL",
    "MSG_NAMES",
    "send_msg",
    "recv_msg",
    "hello_payload",
    "node_id",
    "client_handshake",
    "server_handshake",
]

#: Wire protocol version; bumped on any frame or payload schema change.
#: v2: HELLO carries ``caps`` + ``node``; TASK may carry an ``shm`` descriptor
#: and RESULT may omit ``block`` when the band was written to shared memory.
#: v3: CANCEL frames truncate an in-flight shard at a row boundary (work
#: stealing), heartbeats carry ``rows_done`` progress, RESULT carries the
#: actually-computed ``row_stop``, and HELLO adds ``specs``.
PROTO_VERSION = 3

#: Frame preamble — rejects peers that are not speaking this protocol at all.
MAGIC = b"RKDV"

#: magic(4s) version(u16) msg_type(u16) payload_len(u32) crc32(u32)
HEADER = struct.Struct(">4sHHII")

MSG_HELLO = 1
MSG_PING = 2
MSG_PONG = 3
MSG_TASK = 4
MSG_RESULT = 5
MSG_ERROR = 6
MSG_HEARTBEAT = 7
MSG_SHUTDOWN = 8
MSG_BYE = 9
#: Coordinator -> worker: stop computing shard ``shard_id`` at band-relative
#: row ``row_stop`` (its tail was stolen by an idle worker).  Cooperative —
#: the worker truncates at the next chunk boundary at or after ``row_stop``
#: and replies with a normal, shorter RESULT.  A CANCEL for a shard that is
#: no longer in flight is stale and silently ignored.
MSG_CANCEL = 10

#: For diagnostics and log lines.
MSG_NAMES = {
    MSG_HELLO: "HELLO",
    MSG_PING: "PING",
    MSG_PONG: "PONG",
    MSG_TASK: "TASK",
    MSG_RESULT: "RESULT",
    MSG_ERROR: "ERROR",
    MSG_HEARTBEAT: "HEARTBEAT",
    MSG_SHUTDOWN: "SHUTDOWN",
    MSG_BYE: "BYE",
    MSG_CANCEL: "CANCEL",
}

#: Refuse absurd frames before allocating for them (a corrupted length field
#: must not trigger a multi-gigabyte recv buffer).
MAX_PAYLOAD_BYTES = 1 << 31


def send_msg(
    sock: socket.socket,
    msg_type: int,
    payload: object = None,
    lock: "threading.Lock | None" = None,
) -> int:
    """Send one frame; returns the total bytes written.

    ``lock`` serializes writers that share a socket (a worker's compute
    thread and its heartbeat thread) so frames never interleave.
    """
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    header = HEADER.pack(
        MAGIC, PROTO_VERSION, msg_type, len(body), zlib.crc32(body)
    )
    data = header + body
    if lock is not None:
        with lock:
            sock.sendall(data)
    else:
        sock.sendall(data)
    return len(data)


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise :class:`ConnectionClosed`."""
    chunks: list[bytes] = []
    remaining = n
    while remaining > 0:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection ({n - remaining}/{n} bytes read)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_msg(
    sock: socket.socket, timeout: "float | None" = None
) -> tuple[int, object, int]:
    """Receive one frame; returns ``(msg_type, payload, bytes_read)``.

    ``timeout`` (seconds) bounds the wait for the *first* header byte;
    ``socket.timeout`` propagates to the caller, which owns deadline policy.
    Raises :class:`ProtocolError` on a bad magic, version, or checksum and
    :class:`ConnectionClosed` on EOF.
    """
    sock.settimeout(timeout)
    header = _recv_exact(sock, HEADER.size)
    # The header arrived; the body follows immediately, so the remaining
    # reads get a generous fixed bound rather than the caller's poll slice.
    sock.settimeout(60.0)
    magic, version, msg_type, length, crc = HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(f"bad frame magic {magic!r} (expected {MAGIC!r})")
    if version != PROTO_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks v{version}, "
            f"this process speaks v{PROTO_VERSION}"
        )
    if length > MAX_PAYLOAD_BYTES:
        raise ProtocolError(f"frame payload of {length} bytes exceeds the cap")
    body = _recv_exact(sock, length)
    if zlib.crc32(body) != crc:
        raise ProtocolError(
            f"payload checksum mismatch on {MSG_NAMES.get(msg_type, msg_type)} "
            f"frame ({length} bytes)"
        )
    try:
        payload = pickle.loads(body)
    except Exception as exc:  # pragma: no cover - crc catches corruption first
        raise ProtocolError(f"undecodable payload: {exc}") from exc
    return msg_type, payload, HEADER.size + length


def node_id() -> str:
    """A same-machine identity token for the HELLO handshake.

    Two processes report the same ``node`` iff they can plausibly share a
    ``/dev/shm`` namespace: same hostname and same boot (the boot id guards
    against identically-named hosts/containers).  Shared memory is only
    negotiated between peers whose tokens match.
    """
    boot = ""
    try:  # Linux; other platforms fall back to hostname-only
        with open("/proc/sys/kernel/random/boot_id") as fh:
            boot = fh.read().strip()
    except OSError:
        pass
    return f"{socket.gethostname()}:{boot}"


def hello_payload() -> dict:
    """The handshake payload each side sends."""
    from .shm import SHM_AVAILABLE

    return {
        "proto": PROTO_VERSION,
        "pid": os.getpid(),
        "node": node_id(),
        "caps": {"shm": SHM_AVAILABLE, "steal": True},
        # Static machine specs: the scheduler's capacity prior before any
        # throughput sample lands (repro.dist.sched.CostModel.hello).
        "specs": {"cpus": os.cpu_count()},
    }


def client_handshake(sock: socket.socket, timeout: float = 10.0) -> dict:
    """Coordinator side: send HELLO, await the worker's HELLO.

    Returns the worker's hello payload; raises :class:`ProtocolError` on a
    version mismatch (also enforced per-frame by :func:`recv_msg`).
    """
    send_msg(sock, MSG_HELLO, hello_payload())
    msg_type, payload, _ = recv_msg(sock, timeout=timeout)
    if msg_type != MSG_HELLO:
        raise ProtocolError(
            f"expected HELLO, got {MSG_NAMES.get(msg_type, msg_type)}"
        )
    _check_hello(payload)
    return payload


def server_handshake(sock: socket.socket, timeout: float = 10.0) -> dict:
    """Worker side: await the coordinator's HELLO, reply with ours."""
    msg_type, payload, _ = recv_msg(sock, timeout=timeout)
    if msg_type != MSG_HELLO:
        raise ProtocolError(
            f"expected HELLO, got {MSG_NAMES.get(msg_type, msg_type)}"
        )
    _check_hello(payload)
    send_msg(sock, MSG_HELLO, hello_payload())
    return payload


def _check_hello(payload: object) -> None:
    if not isinstance(payload, dict) or "proto" not in payload:
        raise ProtocolError(f"malformed HELLO payload: {payload!r}")
    if payload["proto"] != PROTO_VERSION:
        raise ProtocolError(
            f"protocol version mismatch: peer speaks v{payload['proto']}, "
            f"this process speaks v{PROTO_VERSION}"
        )
