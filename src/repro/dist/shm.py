"""Zero-copy shared-memory shard transport for co-located worker pools.

The pickle transport ships each shard's halo point slice over TCP and the
computed row band back — ~150 KB each way for even a small tile render.
When coordinator and workers share a machine (same ``node`` token in the
HELLO handshake, see :func:`repro.dist.proto.node_id`), that is pure waste:
both processes can map the same pages.

This module implements the segment layer:

* **Request segment** — the coordinator packs the render's y-sorted point
  array, optional sorted weights, the full ``y_centers`` vector, and
  ``xs_scaled`` into one named ``multiprocessing.shared_memory`` segment,
  *once per render* (the "generation").  Every shard's TASK frame then
  carries only the segment name plus integer offsets (< 1 KB on the wire);
  workers map the segment and slice their halo window zero-copy.
* **Response segment** — one ``height x width`` float64 band buffer.  Each
  worker writes its disjoint row band directly into it and replies with a
  tiny RESULT frame (no ``block``).  The coordinator's output grid *is* a
  view of this segment, so "merge" is a no-op and the only copy is the
  final detach copy.

Ownership and cleanup: segments are strictly coordinator-owned.  The
coordinator creates and unlinks them in a ``try/finally`` around the
render, so a SIGKILL'd worker — or a whole failed render — never leaks a
``/dev/shm`` entry.  Workers *attach* and must therefore never unlink; on
CPython < 3.13 ``SharedMemory`` registers attachments with the
``resource_tracker`` as if they were owned, which both spews "leaked
shared_memory" warnings and lets the tracker unlink segments still in use,
so :func:`attach` immediately unregisters the attachment (the documented
workaround for bpo-39959).  If the coordinator process itself dies
uncleanly, *its* resource tracker still reclaims the segments — exactly the
ownership the registration is meant to express.

Failure model: any worker-side mapping error (segment vanished, truncated,
permissions) is reported back as an ERROR frame flagged ``shm_failed``; the
coordinator then demotes that worker to the pickle transport for the rest
of the pool's life and resubmits the shard, so a broken shm path degrades
to correctness, never to a failed render.  See ``docs/native.md`` for the
negotiation walk-through.
"""

from __future__ import annotations

import secrets

import numpy as np

from .errors import DistError

try:  # pragma: no cover - present on every supported CPython
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "SHM_AVAILABLE",
    "ShmError",
    "RequestSegment",
    "ResponseSegment",
    "attach",
    "detach",
    "map_request",
    "write_band",
]

#: ``True`` when :mod:`multiprocessing.shared_memory` imported; advertised
#: as the ``shm`` capability in the HELLO handshake.
SHM_AVAILABLE = _shared_memory is not None

_FLOAT = np.dtype(np.float64)

#: Names created (and therefore tracker-registered) by THIS process.  An
#: attach to one of our own segments — the in-thread worker servers the
#: tests use — must not unregister it, or the owner's eventual ``unlink``
#: would double-unregister and the tracker process logs a KeyError.
_OWNED: set = set()


class ShmError(DistError):
    """A shared-memory mapping failed (attach, size check, band write).

    Workers report it as an ERROR frame flagged ``shm_failed`` so the
    coordinator can demote them to the pickle transport and resubmit,
    instead of treating the shard as poisoned.
    """


def _untrack(seg) -> None:
    """Unregister an *attached* segment from this process's resource tracker.

    Attaching is not owning: without this, the attaching process's tracker
    would warn about (and eventually unlink) the coordinator's segments.
    CPython 3.13+ has ``track=False`` for the same purpose; this is the
    portable spelling.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker variations across builds
        pass


def attach(name: str):
    """Map an existing segment by name (worker side); never unlinks it."""
    if _shared_memory is None:  # pragma: no cover
        raise ShmError("shared memory is unavailable in this interpreter")
    try:
        seg = _shared_memory.SharedMemory(name=name)
    except (OSError, ValueError) as exc:
        raise ShmError(f"cannot attach shm segment {name!r}: {exc}") from exc
    if seg.name not in _OWNED:
        _untrack(seg)
    return seg


def detach(seg) -> None:
    """Close a mapping without unlinking (both sides; owners unlink too)."""
    if seg is None:
        return
    try:
        seg.close()
    except OSError:  # pragma: no cover - close on a dead mapping
        pass


def _segment_name(prefix: str) -> str:
    # Short + collision-proof; shm names share a flat per-boot namespace.
    return f"{prefix}-{secrets.token_hex(6)}"


class RequestSegment:
    """Coordinator-owned segment holding one render's shared input arrays.

    Layout (all float64, C order, 8-byte aligned by construction)::

        [ sorted_xy (n, 2) | sorted_weights (n)? | y_centers (H) | xs_scaled (W) ]

    The descriptor (:attr:`descr`) travels in each TASK frame; workers
    rebuild the views with :func:`map_request`.
    """

    def __init__(self, sorted_xy, sorted_weights, y_centers, xs_scaled):
        if _shared_memory is None:  # pragma: no cover
            raise DistError("shared memory is unavailable in this interpreter")
        xy = np.ascontiguousarray(sorted_xy, dtype=_FLOAT)
        w = (
            None
            if sorted_weights is None
            else np.ascontiguousarray(sorted_weights, dtype=_FLOAT)
        )
        ys = np.ascontiguousarray(y_centers, dtype=_FLOAT)
        xs = np.ascontiguousarray(xs_scaled, dtype=_FLOAT)
        n = len(xy)
        height = len(ys)
        width = len(xs)
        nbytes = (xy.nbytes + (0 if w is None else w.nbytes)
                  + ys.nbytes + xs.nbytes)
        self.seg = _shared_memory.SharedMemory(
            create=True, size=max(nbytes, 1), name=_segment_name("rkdv-req")
        )
        _OWNED.add(self.seg.name)
        off = 0
        for arr in (xy, w, ys, xs):
            if arr is None:
                continue
            dst = np.ndarray(arr.shape, dtype=_FLOAT,
                             buffer=self.seg.buf, offset=off)
            dst[...] = arr
            off += arr.nbytes
        #: Wire descriptor: everything a worker needs to rebuild the views.
        self.descr = {
            "name": self.seg.name,
            "n": n,
            "weighted": w is not None,
            "height": height,
            "width": width,
        }
        #: Bytes published through shared memory (feeds ``dist.shm_bytes``).
        self.nbytes = off

    def unlink(self) -> None:
        """Release the mapping and remove the segment (owner side)."""
        detach(self.seg)
        _OWNED.discard(self.seg.name)
        try:
            self.seg.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass


def map_request(seg, descr: dict):
    """Rebuild ``(sorted_xy, sorted_weights, y_centers, xs_scaled)`` views
    over an attached request segment (worker side, zero-copy)."""
    n = int(descr["n"])
    height = int(descr["height"])
    width = int(descr["width"])
    weighted = bool(descr["weighted"])
    need = (2 * n + (n if weighted else 0) + height + width) * _FLOAT.itemsize
    if seg.size < need:
        raise ShmError(
            f"shm request segment {descr['name']!r} is {seg.size} bytes; "
            f"descriptor implies {need}"
        )
    off = 0
    xy = np.ndarray((n, 2), dtype=_FLOAT, buffer=seg.buf, offset=off)
    off += xy.nbytes
    w = None
    if weighted:
        w = np.ndarray((n,), dtype=_FLOAT, buffer=seg.buf, offset=off)
        off += w.nbytes
    ys = np.ndarray((height,), dtype=_FLOAT, buffer=seg.buf, offset=off)
    off += ys.nbytes
    xs = np.ndarray((width,), dtype=_FLOAT, buffer=seg.buf, offset=off)
    return xy, w, ys, xs


class ResponseSegment:
    """Coordinator-owned ``height x width`` float64 band buffer.

    The coordinator's render grid is :meth:`grid` — a view straight over the
    segment — so worker band writes *are* the merge.
    """

    def __init__(self, height: int, width: int):
        if _shared_memory is None:  # pragma: no cover
            raise DistError("shared memory is unavailable in this interpreter")
        self.height = int(height)
        self.width = int(width)
        nbytes = self.height * self.width * _FLOAT.itemsize
        self.seg = _shared_memory.SharedMemory(
            create=True, size=max(nbytes, 1), name=_segment_name("rkdv-resp")
        )
        self.name = self.seg.name
        _OWNED.add(self.name)

    def grid(self) -> np.ndarray:
        """The full-grid view (valid until :meth:`unlink`)."""
        return np.ndarray(
            (self.height, self.width), dtype=_FLOAT, buffer=self.seg.buf
        )

    def unlink(self) -> None:
        detach(self.seg)
        _OWNED.discard(self.name)
        try:
            self.seg.unlink()
        except (OSError, FileNotFoundError):  # pragma: no cover - already gone
            pass


def write_band(name: str, descr: dict, row_start: int, block) -> int:
    """Worker side: write a computed row band into the response segment.

    Returns the band's byte count (the worker's ``dist.shm_bytes``
    contribution).  Attach/close per call — bands are written once.
    """
    block = np.ascontiguousarray(block, dtype=_FLOAT)
    height = int(descr["height"])
    width = int(descr["width"])
    if block.ndim != 2 or block.shape[1] != width:
        raise ShmError(
            f"band shape {block.shape} does not match grid width {width}"
        )
    if not (0 <= row_start and row_start + block.shape[0] <= height):
        raise ShmError(
            f"band rows [{row_start}, {row_start + block.shape[0]}) outside "
            f"grid height {height}"
        )
    seg = attach(name)
    try:
        if seg.size < height * width * _FLOAT.itemsize:
            raise ShmError(
                f"shm response segment {name!r} is {seg.size} bytes; grid "
                f"needs {height * width * _FLOAT.itemsize}"
            )
        dst = np.ndarray(
            block.shape,
            dtype=_FLOAT,
            buffer=seg.buf,
            offset=row_start * width * _FLOAT.itemsize,
        )
        dst[...] = block
    finally:
        detach(seg)
    return block.nbytes
