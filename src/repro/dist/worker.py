"""Shard-computing worker process for distributed KDV rendering.

A worker is a small TCP server built on :mod:`repro.dist.proto`: it accepts
one coordinator connection at a time, performs the version handshake, then
loops — receive a TASK frame describing one shard (halo point slice, the row
band's y-centers, sweep configuration), compute the partial grid with the
requested engine via the *same* :func:`repro.core.sweep.sweep_rows` /
:func:`~repro.core.sweep.sweep_rows_batched` drivers the serial sweep uses,
and stream the block back as a RESULT frame.  While a shard is computing, a
side thread emits HEARTBEAT frames carrying ``rows_done`` progress so the
coordinator can tell a slow shard from a dead worker — and price how much
of a straggler's band is still worth stealing.

Compute is *chunked and cancellable*: the band is swept a few rows at a
time (:func:`compute_shard_incremental`), and the receive loop stays live
during compute, so a CANCEL frame can truncate the shard at a row boundary
mid-flight.  The worker then returns a normal, shorter RESULT whose
``row_stop`` reflects what it actually computed; the stolen tail is
recomputed bit-identically elsewhere (see ``docs/scheduling.md``).  Chunk
boundaries never change the numbers — each chunk is the same
``sweep_rows`` call over the same per-row envelopes the serial sweep makes.

:func:`compute_shard` is deliberately a standalone pure function: the
coordinator calls the identical code in-process for graceful degradation
when no workers are reachable, so the local fallback is bit-identical to the
remote path by construction.

Engines cross the wire as small declarative *specs* (:func:`engine_spec` /
:func:`resolve_row_engine`) rather than pickled callables, so a worker only
ever executes code from its own installed package.

Two fault-injection knobs model degraded workers deterministically:
``delay_s`` sleeps before computing each shard (heartbeats still flow),
widening the window in which a worker can be killed or stolen from
"mid-shard"; ``slow_factor`` stretches compute itself by sleeping between
row chunks (a ``slow_factor=4`` worker takes ~4x the wall time but
computes the identical bytes) — the honest way to emulate a throttled
machine for scheduler tests and the CI ``sched-smoke`` job.  The
``ignore_cancel`` knob makes the worker finish a stolen band anyway,
forcing the double-completion race the steal exactness tests cover.
"""

from __future__ import annotations

import os
import socket
import sys
import threading
import time

import numpy as np

from ..core.batch import NumpyBatchEngine
from ..core.envelope import YSortedIndex
from ..core.native import NATIVE_AVAILABLE, NativeEngine
from ..core.kernels import get_kernel
from ..core.slam_bucket import slam_bucket_row_numpy, slam_bucket_row_python
from ..core.slam_sort import slam_sort_row_numpy, slam_sort_row_python
from ..core.sweep import sweep_rows, sweep_rows_batched
from ..obs import Recorder
from . import proto, shm
from .errors import ConnectionClosed, DistError, ProtocolError

__all__ = [
    "ROW_ENGINES",
    "engine_spec",
    "resolve_row_engine",
    "compute_shard",
    "compute_shard_incremental",
    "WorkerServer",
    "format_ready_line",
    "parse_ready_line",
]

#: Wire names for the per-row engines.  Only names in this table (plus the
#: ``numpy_batch`` spec kind) can cross the wire — workers never unpickle
#: callables, so a coordinator cannot make a worker run arbitrary code.
ROW_ENGINES = {
    "slam_sort.python": slam_sort_row_python,
    "slam_sort.numpy": slam_sort_row_numpy,
    "slam_bucket.python": slam_bucket_row_python,
    "slam_bucket.numpy": slam_bucket_row_numpy,
}


def engine_spec(row_engine) -> dict:
    """The wire spec for a sweep engine (reverse of :func:`resolve_row_engine`).

    Row engines are matched by identity against :data:`ROW_ENGINES`;
    :class:`~repro.core.batch.NumpyBatchEngine` instances serialize as a
    ``batch`` spec carrying their chunking knob.
    """
    if isinstance(row_engine, NativeEngine):
        return {"kind": "native", "threads": row_engine.threads}
    if isinstance(row_engine, NumpyBatchEngine):
        return {"kind": "batch", "max_block_bytes": row_engine.max_block_bytes}
    for name, fn in ROW_ENGINES.items():
        if fn is row_engine:
            return {"kind": "row", "name": name}
    raise DistError(
        f"engine {row_engine!r} has no wire name; distributable engines are "
        f"{sorted(ROW_ENGINES)}, numpy_batch, and native"
    )


def resolve_row_engine(spec: dict):
    """Instantiate the engine a wire spec describes."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ProtocolError(f"malformed engine spec: {spec!r}")
    if spec["kind"] == "batch":
        max_block_bytes = spec.get("max_block_bytes")
        if max_block_bytes:
            return NumpyBatchEngine(max_block_bytes)
        return NumpyBatchEngine()
    if spec["kind"] == "native":
        threads = int(spec.get("threads") or 1)
        if NATIVE_AVAILABLE:
            return NativeEngine(threads=threads)
        # Bit-identical fallback: a worker whose checkout has no compiled
        # extension still computes the exact same grid (the native engine's
        # contract is bit-identity with numpy_batch), just slower.
        return NumpyBatchEngine()
    if spec["kind"] == "row":
        try:
            return ROW_ENGINES[spec["name"]]
        except KeyError:
            raise ProtocolError(f"unknown row engine {spec['name']!r}") from None
    raise ProtocolError(f"unknown engine spec kind {spec['kind']!r}")


def compute_shard_incremental(
    task: dict,
    chunk_rows: "int | None" = None,
    progress=None,
    stop_fn=None,
) -> "tuple[np.ndarray, int, dict | None]":
    """Compute one shard's row block a chunk of rows at a time.

    Returns ``(block, rows_computed, snapshot_or_None)`` where ``block``
    holds the first ``rows_computed`` rows of the band.  ``task`` is the
    payload of a TASK frame (see
    :meth:`repro.dist.coordinator.Coordinator.render_sweep` for the schema).
    The halo slice arrives already in ascending-y order, so rebuilding the
    :class:`YSortedIndex` here is an identity permutation — every row's
    envelope slice has exactly the content and order the serial sweep would
    see, which is what makes the merged grid bit-identical.  Chunking only
    changes *when* rows are computed, never *what*: the sweep drivers are
    row-independent, so ``N`` chunked calls concatenate to the single-call
    block byte for byte (and the recorder counters they emit are additive
    over chunks, so snapshots stay serial-equal too).

    ``progress(rows_done)`` is called after each chunk; ``stop_fn()``
    returns the current band-relative truncation target (rows at or beyond
    it are skipped — the cooperative CANCEL path).  With neither, the band
    is computed in one chunk, which is the plain :func:`compute_shard`.

    A shared-memory task (one carrying an ``shm`` descriptor instead of
    inline arrays) is materialized first: the request segment is mapped and
    the halo/geometry arrays become zero-copy views over it for the duration
    of the compute.  The numbers that come out are bit-identical either way
    — the views hold exactly the bytes the pickle path would have shipped.
    """
    descr = task.get("shm")
    if descr is not None:
        seg = shm.attach(descr["req"]["name"])
        try:
            xy, w, ys_all, xs = shm.map_request(seg, descr["req"])
            halo = slice(int(task["halo_start"]), int(task["halo_stop"]))
            rows = slice(int(task["row_start"]), int(task["row_stop"]))
            task = dict(task)
            task["halo_xy"] = xy[halo]
            task["halo_weights"] = None if w is None else w[halo]
            task["y_centers"] = ys_all[rows]
            task["xs_scaled"] = xs
            return compute_shard_incremental(
                task | {"shm": None},
                chunk_rows=chunk_rows,
                progress=progress,
                stop_fn=stop_fn,
            )
        finally:
            shm.detach(seg)
    kernel = get_kernel(task["kernel"])
    engine = resolve_row_engine(task["engine"])
    ysorted = YSortedIndex(np.asarray(task["halo_xy"], dtype=np.float64))
    y_centers = np.asarray(task["y_centers"], dtype=np.float64)
    xs_scaled = np.asarray(task["xs_scaled"], dtype=np.float64)
    recorder = Recorder() if task.get("collect") else None
    driver = (
        sweep_rows_batched if hasattr(engine, "sweep_block") else sweep_rows
    )
    total = len(y_centers)
    step = total if not chunk_rows or chunk_rows <= 0 else int(chunk_rows)
    parts: list[np.ndarray] = []
    done = 0
    while done < total:
        stop = total
        if stop_fn is not None:
            stop = max(done, min(total, int(stop_fn())))
        if done >= stop:
            break
        hi = min(done + step, stop)
        parts.append(
            driver(
                done,
                hi,
                y_centers,
                xs_scaled,
                ysorted,
                float(task["cx"]),
                float(task["bandwidth"]),
                kernel,
                engine,
                sorted_weights=task.get("halo_weights"),
                recorder=recorder,
            )
        )
        done = hi
        if progress is not None:
            progress(done)
    if not parts:
        block = np.zeros((0, len(xs_scaled)), dtype=np.float64)
    elif len(parts) == 1:
        block = parts[0]
    else:
        block = np.concatenate(parts, axis=0)
    if recorder is not None:
        recorder.count("dist.shards_computed", 1)
        return block, done, recorder.snapshot()
    return block, done, None


def compute_shard(task: dict) -> "tuple[np.ndarray, dict | None]":
    """Compute one full shard in a single chunk; returns
    ``(block, snapshot_or_None)``.

    The coordinator calls this identical code in-process for graceful
    degradation when no workers are reachable, so the local fallback is
    bit-identical to the remote path by construction.
    """
    block, _, snapshot = compute_shard_incremental(task)
    return block, snapshot


def format_ready_line(host: str, port: int) -> str:
    """The machine-readable startup line ``repro dist-worker`` prints."""
    return f"REPRO-DIST-WORKER READY {host}:{port} pid={os.getpid()} proto={proto.PROTO_VERSION}"


def parse_ready_line(line: str) -> "tuple[str, int] | None":
    """Parse :func:`format_ready_line` output; ``None`` if it is not one."""
    parts = line.strip().split()
    if len(parts) < 3 or parts[0] != "REPRO-DIST-WORKER" or parts[1] != "READY":
        return None
    host, _, port = parts[2].rpartition(":")
    try:
        return host, int(port)
    except ValueError:
        return None


class _ShardRun:
    """Progress and cancellation state for one in-flight shard.

    ``rows_done`` / ``_stop_row`` are band-relative row counts.  The stop
    row only ever shrinks (CANCELs from repeated steals are monotone), so
    the compute loop's ``stop_fn`` is race-free without holding the lock
    across chunks.
    """

    __slots__ = ("total", "rows_done", "_stop_row", "finished", "_lock", "chunk_t0")

    def __init__(self, total_rows: int) -> None:
        self.total = max(int(total_rows), 0)
        self.rows_done = 0
        self._stop_row = self.total
        self.finished = threading.Event()
        self._lock = threading.Lock()
        self.chunk_t0 = 0.0

    def get_stop(self) -> int:
        with self._lock:
            return self._stop_row

    def truncate(self, row_stop: int) -> None:
        with self._lock:
            self._stop_row = min(self._stop_row, max(int(row_stop), 0))

    def wait_delay(self, delay_s: float, stop: threading.Event) -> None:
        """Interruptible fault-injection nap: a truncate-to-zero (the whole
        band was stolen from a wedged worker) or server stop ends it early."""
        deadline = time.monotonic() + delay_s
        while time.monotonic() < deadline:
            if stop.is_set() or self.get_stop() <= 0:
                return
            time.sleep(min(0.05, max(deadline - time.monotonic(), 0.0)))


class WorkerServer:
    """One worker process's serve loop.

    Serves coordinator connections sequentially (a worker computes one shard
    at a time by design — process-level parallelism comes from running more
    workers).  The loop survives coordinator disconnects: a closed or broken
    connection just returns it to ``accept``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_s: float = 0.5,
        delay_s: float = 0.0,
        slow_factor: float = 1.0,
        chunk_rows: int = 16,
        ignore_cancel: bool = False,
        verbose: bool = False,
    ):
        self.host = host
        self.heartbeat_s = float(heartbeat_s)
        self.delay_s = float(delay_s)
        #: Stretch compute by sleeping ``(slow_factor - 1) x`` each chunk's
        #: wall time between chunks — emulates a throttled machine without
        #: changing a single computed byte.
        self.slow_factor = max(float(slow_factor), 1.0)
        #: Rows per compute chunk: the cancellation (and fault-injection)
        #: granularity.  Chunking never changes the computed bytes.
        self.chunk_rows = max(int(chunk_rows), 1)
        #: Test knob: drop CANCEL frames and finish stolen bands anyway,
        #: forcing the double-completion race the coordinator must resolve
        #: deterministically.
        self.ignore_cancel = bool(ignore_cancel)
        self.verbose = verbose
        self._stop = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(4)
        #: The bound port (the OS picks one when constructed with ``port=0``).
        self.port = self._listener.getsockname()[1]
        #: Shards computed since startup (visible to in-thread tests).
        self.tasks_done = 0

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        """Ask the serve loop to exit; safe to call from any thread."""
        self._stop.set()

    def start_in_thread(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread (test helper)."""
        thread = threading.Thread(
            target=self.serve_forever, name=f"dist-worker:{self.port}", daemon=True
        )
        thread.start()
        return thread

    def _log(self, msg: str) -> None:
        if self.verbose:
            print(f"[dist-worker:{self.port}] {msg}", file=sys.stderr, flush=True)

    # -- serve loop --------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept coordinator connections until :meth:`stop` is called."""
        self._listener.settimeout(0.2)
        try:
            while not self._stop.is_set():
                try:
                    conn, addr = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                try:
                    self._serve_connection(conn, addr)
                finally:
                    try:
                        conn.close()
                    except OSError:
                        pass
        finally:
            try:
                self._listener.close()
            except OSError:
                pass

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            proto.server_handshake(conn)
        except (DistError, OSError) as exc:
            self._log(f"handshake with {addr} failed: {exc}")
            return
        self._log(f"coordinator connected from {addr}")
        send_lock = threading.Lock()
        while not self._stop.is_set():
            try:
                msg_type, payload, _ = proto.recv_msg(conn, timeout=0.5)
            except socket.timeout:
                continue
            except (ConnectionClosed, OSError):
                self._log("coordinator disconnected")
                return
            except ProtocolError as exc:
                self._log(f"protocol error: {exc}")
                return
            if msg_type == proto.MSG_PING:
                proto.send_msg(conn, proto.MSG_PONG, lock=send_lock)
            elif msg_type == proto.MSG_TASK:
                self._handle_task(conn, send_lock, payload)
            elif msg_type == proto.MSG_CANCEL:
                # A CANCEL that arrives between tasks lost its race with our
                # RESULT frame: the shard already completed in full, and the
                # coordinator discards the overlap deterministically.
                self._log(
                    f"stale CANCEL for shard {payload.get('shard_id') if isinstance(payload, dict) else payload!r}"
                )
            elif msg_type == proto.MSG_SHUTDOWN:
                self._log("shutdown requested")
                try:
                    proto.send_msg(conn, proto.MSG_BYE, lock=send_lock)
                except OSError:
                    pass
                self._stop.set()
                return
            elif msg_type == proto.MSG_BYE:
                return
            else:
                self._log(
                    f"ignoring unexpected "
                    f"{proto.MSG_NAMES.get(msg_type, msg_type)} frame"
                )

    def _handle_task(
        self, conn: socket.socket, send_lock: threading.Lock, task: dict
    ) -> None:
        """Compute one shard while keeping the receive loop live.

        The sweep runs on a side thread in ``chunk_rows`` slices; this
        thread keeps servicing frames so a CANCEL can truncate the shard
        mid-compute and PINGs stay answered.  Heartbeats carry ``rows_done``
        so the coordinator can price the remaining work.
        """
        shard_id = task.get("shard_id")
        row_start = int(task.get("row_start") or 0)
        total_rows = int(task.get("row_stop") or 0) - row_start
        run = _ShardRun(total_rows)
        outcome: dict = {}

        def on_progress(rows_done: int) -> None:
            if self.slow_factor > 1.0:
                # Fault injection: stretch each chunk's wall time by the
                # throttle factor without touching the computed bytes.
                elapsed = time.perf_counter() - run.chunk_t0
                self._stop.wait(elapsed * (self.slow_factor - 1.0))
            run.rows_done = rows_done
            run.chunk_t0 = time.perf_counter()

        def compute() -> None:
            try:
                if self.delay_s > 0:
                    # Testing knob: widen the compute window (heartbeats
                    # flow; a truncate-to-zero ends the nap early).
                    run.wait_delay(self.delay_s, self._stop)
                run.chunk_t0 = time.perf_counter()
                block, rows, snapshot = compute_shard_incremental(
                    task,
                    chunk_rows=self.chunk_rows,
                    progress=on_progress,
                    stop_fn=run.get_stop,
                )
                outcome["block"] = block
                outcome["rows"] = rows
                outcome["snapshot"] = snapshot
            except Exception as exc:
                outcome["error"] = exc
            finally:
                run.finished.set()

        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(conn, send_lock, shard_id, run),
            daemon=True,
        )
        heartbeat.start()
        worker = threading.Thread(
            target=compute, name=f"dist-compute:{shard_id}", daemon=True
        )
        worker.start()
        conn_ok = True
        while not run.finished.is_set():
            try:
                # A short poll slice: nothing interrupts a blocked recv when
                # compute finishes, so this bounds the latency between the
                # sweep completing and the RESULT frame hitting the wire.
                msg_type, payload, _ = proto.recv_msg(conn, timeout=0.02)
            except socket.timeout:
                continue
            except (ConnectionClosed, ProtocolError, OSError):
                # Nobody will read this result; stop at the next chunk
                # boundary instead of finishing a band for no one.
                conn_ok = False
                run.truncate(run.rows_done)
                break
            if msg_type == proto.MSG_PING:
                try:
                    proto.send_msg(conn, proto.MSG_PONG, lock=send_lock)
                except OSError:
                    pass
            elif msg_type == proto.MSG_CANCEL and isinstance(payload, dict):
                if payload.get("shard_id") == shard_id and not self.ignore_cancel:
                    target = int(payload.get("row_stop", row_start)) - row_start
                    run.truncate(target)
                    self._log(
                        f"shard {shard_id} truncated at band row "
                        f"{max(target, 0)} (tail stolen)"
                    )
            elif msg_type == proto.MSG_BYE:
                conn_ok = False
                run.truncate(run.rows_done)
                break
            else:
                # SHUTDOWN and anything else waits until the shard returns;
                # the outer serve loop owns those transitions.
                self._log(
                    f"deferring {proto.MSG_NAMES.get(msg_type, msg_type)} "
                    f"frame until shard {shard_id} completes"
                )
        worker.join()
        run.finished.set()
        heartbeat.join()
        if not conn_ok:
            raise ConnectionClosed("coordinator went away mid-shard")
        error = outcome.get("error")
        if error is None:
            block = outcome["block"]
            rows = int(outcome["rows"])
            reply_type = proto.MSG_RESULT
            reply = {
                "shard_id": shard_id,
                "row_start": row_start,
                # What this worker actually computed — shorter than the task
                # band when a CANCEL truncated it.
                "row_stop": row_start + rows,
                "snapshot": outcome["snapshot"],
                "pid": os.getpid(),
            }
            descr = task.get("shm")
            if descr is not None:
                try:
                    # Zero-copy return: the band goes straight into the
                    # response segment; the RESULT frame stays tiny.
                    reply["shm_bytes"] = shm.write_band(
                        descr["resp"], descr["req"], row_start, block
                    )
                    reply["shm"] = True
                except shm.ShmError as exc:
                    error = exc
            else:
                reply["block"] = block
        if error is not None:
            reply_type = proto.MSG_ERROR
            reply = {
                "shard_id": shard_id,
                "error": f"{type(error).__name__}: {error}",
                # Lets the coordinator tell a broken shm mapping (demote to
                # pickle and resubmit) from a poisoned shard (propagate).
                "shm_failed": isinstance(error, shm.ShmError),
            }
            self._log(f"shard {shard_id} failed: {error}")
        try:
            proto.send_msg(conn, reply_type, reply, lock=send_lock)
        except OSError:
            self._log(f"could not return shard {shard_id}; coordinator gone")
            raise ConnectionClosed("coordinator went away mid-result") from None
        if reply_type == proto.MSG_RESULT:
            self.tasks_done += 1
            self._log(
                f"shard {shard_id} done ({rows}/{max(total_rows, 0)} rows)"
            )

    def _heartbeat_loop(
        self,
        conn: socket.socket,
        send_lock: threading.Lock,
        shard_id,
        run: "_ShardRun",
    ) -> None:
        if self.heartbeat_s <= 0:
            return
        while not run.finished.wait(self.heartbeat_s):
            try:
                proto.send_msg(
                    conn,
                    proto.MSG_HEARTBEAT,
                    {"shard_id": shard_id, "rows_done": run.rows_done},
                    lock=send_lock,
                )
            except OSError:
                return
