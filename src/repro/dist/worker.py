"""Shard-computing worker process for distributed KDV rendering.

A worker is a small TCP server built on :mod:`repro.dist.proto`: it accepts
one coordinator connection at a time, performs the version handshake, then
loops — receive a TASK frame describing one shard (halo point slice, the row
band's y-centers, sweep configuration), compute the partial grid with the
requested engine via the *same* :func:`repro.core.sweep.sweep_rows` /
:func:`~repro.core.sweep.sweep_rows_batched` drivers the serial sweep uses,
and stream the block back as a RESULT frame.  While a shard is computing, a
side thread emits HEARTBEAT frames so the coordinator can tell a slow shard
from a dead worker.

:func:`compute_shard` is deliberately a standalone pure function: the
coordinator calls the identical code in-process for graceful degradation
when no workers are reachable, so the local fallback is bit-identical to the
remote path by construction.

Engines cross the wire as small declarative *specs* (:func:`engine_spec` /
:func:`resolve_row_engine`) rather than pickled callables, so a worker only
ever executes code from its own installed package.

The ``delay_s`` knob sleeps before computing each shard (heartbeats still
flow) — a deterministic handle for fault-injection tests and the CI smoke
job to widen the window in which a worker can be killed "mid-shard".
"""

from __future__ import annotations

import os
import socket
import sys
import threading

import numpy as np

from ..core.batch import NumpyBatchEngine
from ..core.envelope import YSortedIndex
from ..core.native import NATIVE_AVAILABLE, NativeEngine
from ..core.kernels import get_kernel
from ..core.slam_bucket import slam_bucket_row_numpy, slam_bucket_row_python
from ..core.slam_sort import slam_sort_row_numpy, slam_sort_row_python
from ..core.sweep import sweep_rows, sweep_rows_batched
from ..obs import Recorder
from . import proto, shm
from .errors import ConnectionClosed, DistError, ProtocolError

__all__ = [
    "ROW_ENGINES",
    "engine_spec",
    "resolve_row_engine",
    "compute_shard",
    "WorkerServer",
    "format_ready_line",
    "parse_ready_line",
]

#: Wire names for the per-row engines.  Only names in this table (plus the
#: ``numpy_batch`` spec kind) can cross the wire — workers never unpickle
#: callables, so a coordinator cannot make a worker run arbitrary code.
ROW_ENGINES = {
    "slam_sort.python": slam_sort_row_python,
    "slam_sort.numpy": slam_sort_row_numpy,
    "slam_bucket.python": slam_bucket_row_python,
    "slam_bucket.numpy": slam_bucket_row_numpy,
}


def engine_spec(row_engine) -> dict:
    """The wire spec for a sweep engine (reverse of :func:`resolve_row_engine`).

    Row engines are matched by identity against :data:`ROW_ENGINES`;
    :class:`~repro.core.batch.NumpyBatchEngine` instances serialize as a
    ``batch`` spec carrying their chunking knob.
    """
    if isinstance(row_engine, NativeEngine):
        return {"kind": "native", "threads": row_engine.threads}
    if isinstance(row_engine, NumpyBatchEngine):
        return {"kind": "batch", "max_block_bytes": row_engine.max_block_bytes}
    for name, fn in ROW_ENGINES.items():
        if fn is row_engine:
            return {"kind": "row", "name": name}
    raise DistError(
        f"engine {row_engine!r} has no wire name; distributable engines are "
        f"{sorted(ROW_ENGINES)}, numpy_batch, and native"
    )


def resolve_row_engine(spec: dict):
    """Instantiate the engine a wire spec describes."""
    if not isinstance(spec, dict) or "kind" not in spec:
        raise ProtocolError(f"malformed engine spec: {spec!r}")
    if spec["kind"] == "batch":
        max_block_bytes = spec.get("max_block_bytes")
        if max_block_bytes:
            return NumpyBatchEngine(max_block_bytes)
        return NumpyBatchEngine()
    if spec["kind"] == "native":
        threads = int(spec.get("threads") or 1)
        if NATIVE_AVAILABLE:
            return NativeEngine(threads=threads)
        # Bit-identical fallback: a worker whose checkout has no compiled
        # extension still computes the exact same grid (the native engine's
        # contract is bit-identity with numpy_batch), just slower.
        return NumpyBatchEngine()
    if spec["kind"] == "row":
        try:
            return ROW_ENGINES[spec["name"]]
        except KeyError:
            raise ProtocolError(f"unknown row engine {spec['name']!r}") from None
    raise ProtocolError(f"unknown engine spec kind {spec['kind']!r}")


def compute_shard(task: dict) -> "tuple[np.ndarray, dict | None]":
    """Compute one shard's row block; returns ``(block, snapshot_or_None)``.

    ``task`` is the payload of a TASK frame (see
    :meth:`repro.dist.coordinator.Coordinator.render_sweep` for the schema).
    The halo slice arrives already in ascending-y order, so rebuilding the
    :class:`YSortedIndex` here is an identity permutation — every row's
    envelope slice has exactly the content and order the serial sweep would
    see, which is what makes the merged grid bit-identical.

    A shared-memory task (one carrying an ``shm`` descriptor instead of
    inline arrays) is materialized first: the request segment is mapped and
    the halo/geometry arrays become zero-copy views over it for the duration
    of the compute.  The numbers that come out are bit-identical either way
    — the views hold exactly the bytes the pickle path would have shipped.
    """
    descr = task.get("shm")
    if descr is not None:
        seg = shm.attach(descr["req"]["name"])
        try:
            xy, w, ys_all, xs = shm.map_request(seg, descr["req"])
            halo = slice(int(task["halo_start"]), int(task["halo_stop"]))
            rows = slice(int(task["row_start"]), int(task["row_stop"]))
            task = dict(task)
            task["halo_xy"] = xy[halo]
            task["halo_weights"] = None if w is None else w[halo]
            task["y_centers"] = ys_all[rows]
            task["xs_scaled"] = xs
            return compute_shard(task | {"shm": None})
        finally:
            shm.detach(seg)
    kernel = get_kernel(task["kernel"])
    engine = resolve_row_engine(task["engine"])
    ysorted = YSortedIndex(np.asarray(task["halo_xy"], dtype=np.float64))
    y_centers = np.asarray(task["y_centers"], dtype=np.float64)
    recorder = Recorder() if task.get("collect") else None
    driver = (
        sweep_rows_batched if hasattr(engine, "sweep_block") else sweep_rows
    )
    block = driver(
        0,
        len(y_centers),
        y_centers,
        np.asarray(task["xs_scaled"], dtype=np.float64),
        ysorted,
        float(task["cx"]),
        float(task["bandwidth"]),
        kernel,
        engine,
        sorted_weights=task.get("halo_weights"),
        recorder=recorder,
    )
    if recorder is not None:
        recorder.count("dist.shards_computed", 1)
        return block, recorder.snapshot()
    return block, None


def format_ready_line(host: str, port: int) -> str:
    """The machine-readable startup line ``repro dist-worker`` prints."""
    return f"REPRO-DIST-WORKER READY {host}:{port} pid={os.getpid()} proto={proto.PROTO_VERSION}"


def parse_ready_line(line: str) -> "tuple[str, int] | None":
    """Parse :func:`format_ready_line` output; ``None`` if it is not one."""
    parts = line.strip().split()
    if len(parts) < 3 or parts[0] != "REPRO-DIST-WORKER" or parts[1] != "READY":
        return None
    host, _, port = parts[2].rpartition(":")
    try:
        return host, int(port)
    except ValueError:
        return None


class WorkerServer:
    """One worker process's serve loop.

    Serves coordinator connections sequentially (a worker computes one shard
    at a time by design — process-level parallelism comes from running more
    workers).  The loop survives coordinator disconnects: a closed or broken
    connection just returns it to ``accept``.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        heartbeat_s: float = 0.5,
        delay_s: float = 0.0,
        verbose: bool = False,
    ):
        self.host = host
        self.heartbeat_s = float(heartbeat_s)
        self.delay_s = float(delay_s)
        self.verbose = verbose
        self._stop = threading.Event()
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, port))
        self._listener.listen(4)
        #: The bound port (the OS picks one when constructed with ``port=0``).
        self.port = self._listener.getsockname()[1]
        #: Shards computed since startup (visible to in-thread tests).
        self.tasks_done = 0

    # -- lifecycle ---------------------------------------------------------

    def stop(self) -> None:
        """Ask the serve loop to exit; safe to call from any thread."""
        self._stop.set()

    def start_in_thread(self) -> threading.Thread:
        """Run :meth:`serve_forever` on a daemon thread (test helper)."""
        thread = threading.Thread(
            target=self.serve_forever, name=f"dist-worker:{self.port}", daemon=True
        )
        thread.start()
        return thread

    def _log(self, msg: str) -> None:
        if self.verbose:
            print(f"[dist-worker:{self.port}] {msg}", file=sys.stderr, flush=True)

    # -- serve loop --------------------------------------------------------

    def serve_forever(self) -> None:
        """Accept coordinator connections until :meth:`stop` is called."""
        self._listener.settimeout(0.2)
        try:
            while not self._stop.is_set():
                try:
                    conn, addr = self._listener.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                try:
                    self._serve_connection(conn, addr)
                finally:
                    try:
                        conn.close()
                    except OSError:
                        pass
        finally:
            try:
                self._listener.close()
            except OSError:
                pass

    def _serve_connection(self, conn: socket.socket, addr) -> None:
        conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            proto.server_handshake(conn)
        except (DistError, OSError) as exc:
            self._log(f"handshake with {addr} failed: {exc}")
            return
        self._log(f"coordinator connected from {addr}")
        send_lock = threading.Lock()
        while not self._stop.is_set():
            try:
                msg_type, payload, _ = proto.recv_msg(conn, timeout=0.5)
            except socket.timeout:
                continue
            except (ConnectionClosed, OSError):
                self._log("coordinator disconnected")
                return
            except ProtocolError as exc:
                self._log(f"protocol error: {exc}")
                return
            if msg_type == proto.MSG_PING:
                proto.send_msg(conn, proto.MSG_PONG, lock=send_lock)
            elif msg_type == proto.MSG_TASK:
                self._handle_task(conn, send_lock, payload)
            elif msg_type == proto.MSG_SHUTDOWN:
                self._log("shutdown requested")
                try:
                    proto.send_msg(conn, proto.MSG_BYE, lock=send_lock)
                except OSError:
                    pass
                self._stop.set()
                return
            elif msg_type == proto.MSG_BYE:
                return
            else:
                self._log(
                    f"ignoring unexpected "
                    f"{proto.MSG_NAMES.get(msg_type, msg_type)} frame"
                )

    def _handle_task(
        self, conn: socket.socket, send_lock: threading.Lock, task: dict
    ) -> None:
        shard_id = task.get("shard_id")
        done = threading.Event()
        heartbeat = threading.Thread(
            target=self._heartbeat_loop,
            args=(conn, send_lock, shard_id, done),
            daemon=True,
        )
        heartbeat.start()
        try:
            if self.delay_s > 0:
                # Testing knob: widen the compute window (heartbeats flow).
                done.wait(self.delay_s)
            block, snapshot = compute_shard(task)
            reply_type = proto.MSG_RESULT
            reply = {
                "shard_id": shard_id,
                "row_start": task.get("row_start"),
                "row_stop": task.get("row_stop"),
                "snapshot": snapshot,
                "pid": os.getpid(),
            }
            descr = task.get("shm")
            if descr is not None:
                # Zero-copy return: the band goes straight into the
                # response segment; the RESULT frame stays tiny.
                reply["shm_bytes"] = shm.write_band(
                    descr["resp"], descr["req"], int(task["row_start"]), block
                )
                reply["shm"] = True
            else:
                reply["block"] = block
        except Exception as exc:
            reply_type = proto.MSG_ERROR
            reply = {
                "shard_id": shard_id,
                "error": f"{type(exc).__name__}: {exc}",
                # Lets the coordinator tell a broken shm mapping (demote to
                # pickle and resubmit) from a poisoned shard (propagate).
                "shm_failed": isinstance(exc, shm.ShmError),
            }
            self._log(f"shard {shard_id} failed: {exc}")
        finally:
            done.set()
            heartbeat.join()
        try:
            proto.send_msg(conn, reply_type, reply, lock=send_lock)
        except OSError:
            self._log(f"could not return shard {shard_id}; coordinator gone")
            raise ConnectionClosed("coordinator went away mid-result") from None
        if reply_type == proto.MSG_RESULT:
            self.tasks_done += 1
            self._log(f"shard {shard_id} done ({block.shape[0]} rows)")

    def _heartbeat_loop(
        self,
        conn: socket.socket,
        send_lock: threading.Lock,
        shard_id,
        done: threading.Event,
    ) -> None:
        if self.heartbeat_s <= 0:
            return
        while not done.wait(self.heartbeat_s):
            try:
                proto.send_msg(
                    conn,
                    proto.MSG_HEARTBEAT,
                    {"shard_id": shard_id},
                    lock=send_lock,
                )
            except OSError:
                return
