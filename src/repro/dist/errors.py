"""Typed error hierarchy for the distributed rendering subsystem.

Kept in a leaf module so every layer (wire protocol, worker, coordinator,
launch helpers) can raise and catch the same types without import cycles.
"""

from __future__ import annotations

__all__ = [
    "DistError",
    "ProtocolError",
    "ConnectionClosed",
    "DistTimeout",
    "WorkerLaunchError",
]


class DistError(RuntimeError):
    """Base class for every distributed-rendering failure."""


class ProtocolError(DistError):
    """A malformed, corrupted, or version-incompatible wire frame."""


class ConnectionClosed(DistError):
    """The peer closed the connection (EOF mid-frame or between frames).

    The coordinator treats this as a worker death and resubmits the shard;
    a worker treats it as the coordinator going away and returns to its
    accept loop.
    """


class DistTimeout(DistError, TimeoutError):
    """A shard's per-attempt ``deadline_s`` expired and the retry budget is
    exhausted.  Subclasses :class:`TimeoutError` so generic timeout handling
    catches it too."""


class WorkerLaunchError(DistError):
    """A locally spawned worker process failed to come up in time."""
