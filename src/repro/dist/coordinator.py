"""Coordinator: dispatches shard plans to a worker pool and merges results.

The coordinator owns the fault-tolerance policy; the workers stay dumb:

* **Deterministic merge.**  Shard results are written into the output grid
  at their planned row band, so the assembled grid is a pure row
  concatenation — bit-identical to the serial sweep for every shard count
  and every arrival order (see :mod:`repro.dist.plan` for the argument).
* **Worker deaths.**  A connection that breaks mid-shard (EOF, reset,
  protocol corruption) marks that worker dead and resubmits the shard to a
  survivor.  Deaths do not consume the retry budget — a shard can migrate
  across any number of dying workers as long as somebody (ultimately the
  coordinator itself) remains to run it.
* **Stragglers.**  Each dispatch attempt gets ``deadline_s`` of wall clock,
  measured from the last sign of life (result, heartbeat); a worker that
  heartbeats is slow, not dead.  An expired attempt is retried elsewhere
  with exponential backoff, up to ``max_retries`` times; exhaustion raises
  :class:`~repro.dist.errors.DistTimeout` rather than hanging the render.
* **Graceful degradation.**  When no workers are reachable — or every one
  of them dies mid-render — remaining shards are computed in-process with
  the same :func:`~repro.dist.worker.compute_shard` code path, so a
  coordinator with an empty worker list is just a sharded serial sweep.

Observability: each render merges per-shard worker recorders plus the
coordinator's own counters (``dist.shards``, ``dist.retries``,
``dist.worker_deaths``, ``dist.bytes_rx``/``tx``, ``dist.shm_bytes``,
``dist.shm_demotions``, ``dist.local_shards``,
``dist.heartbeats``) and phase timers (``dist.plan``, ``dist.dispatch``,
``dist.merge``) into the recorder handed to :meth:`Coordinator.render_sweep`
and the coordinator's own long-lived recorder (the one ``/metricz`` sees).
"""

from __future__ import annotations

import os
import socket
import threading
import time

import numpy as np

from ..obs import Recorder, active
from . import proto, shm
from .errors import ConnectionClosed, DistError, DistTimeout, ProtocolError
from .plan import ShardPlan, plan_shards
from .worker import compute_shard

__all__ = [
    "Coordinator",
    "WorkerAddress",
    "parse_worker_addrs",
    "set_default_coordinator",
    "get_default_coordinator",
    "resolve_coordinator",
]

#: Environment variable listing worker addresses (``host:port,host:port``)
#: that ``backend="dist"`` uses when no coordinator is passed explicitly.
WORKERS_ENV = "REPRO_DIST_WORKERS"


def parse_worker_addrs(spec: str) -> "list[tuple[str, int]]":
    """Parse ``"host:port,host:port"`` (whitespace tolerated) into pairs."""
    addrs: list[tuple[str, int]] = []
    for item in spec.replace(",", " ").split():
        host, _, port = item.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"bad worker address {item!r}; expected host:port"
            )
        addrs.append((host, int(port)))
    return addrs


class WorkerAddress:
    """One configured worker endpoint and its connection state."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = int(port)
        self.sock: "socket.socket | None" = None
        self.hello: "dict | None" = None
        #: Set when a send/recv on this worker failed; cleared on reconnect.
        self.dead = False
        #: Checked out by a dispatcher thread (one in-flight shard per worker).
        self.busy = False
        #: Cleared when a runtime shm failure demotes this worker to pickle.
        self.shm_ok = True

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.dead else ("up" if self.sock else "down")
        return f"WorkerAddress({self.addr}, {state})"


class Coordinator:
    """Renders shard plans across a pool of worker processes.

    Parameters
    ----------
    workers:
        ``(host, port)`` pairs, ``"host:port"`` strings, or a single
        comma-separated string.  May be empty: every shard then runs
        in-process (the graceful-degradation path, and the cheapest way to
        get a sharded render for tests).
    deadline_s:
        Per-attempt wall-clock budget for one shard, measured from the last
        sign of life from its worker (heartbeats reset it).  ``None``
        (default) disables straggler detection.
    max_retries:
        How many *timed-out* attempts a shard may burn before
        :class:`DistTimeout`.  Worker deaths do not consume this budget.
    backoff_base_s / backoff_max_s:
        Exponential backoff between retry attempts:
        ``min(base * 2**attempt, max)``.
    shards:
        Default shard count for renders that do not specify one; ``None``
        means one shard per connected worker (times ``shards_per_worker``),
        or 1 when running locally.
    shards_per_worker:
        Over-decomposition factor: more shards than workers lets survivors
        absorb a dead worker's load in smaller pieces.
    balance:
        Shard planner balance mode (``"points"`` or ``"rows"``).
    connect_timeout_s:
        TCP connect + handshake budget per worker.
    shm:
        Allow the zero-copy shared-memory shard transport (default on).
        It only actually engages per worker when the HELLO handshake shows
        the worker is shm-capable *and* on this machine (same ``node``
        token); remote or incapable workers keep the pickle transport, and
        a worker whose mapping fails at runtime is demoted to pickle for
        the life of the pool.  See :mod:`repro.dist.shm`.
    recorder:
        Long-lived recorder accumulating across renders (e.g. the tile
        service's).  Each render *also* gets its counters merged into the
        per-call recorder passed to :meth:`render_sweep`.

    Thread safety: multiple threads may call :meth:`render_sweep`
    concurrently (the tile service's render pool does); workers are checked
    out under a condition variable so one shard is in flight per worker.
    """

    def __init__(
        self,
        workers=(),
        *,
        deadline_s: "float | None" = None,
        max_retries: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 1.0,
        shards: "int | None" = None,
        shards_per_worker: int = 2,
        balance: str = "points",
        connect_timeout_s: float = 5.0,
        shm: bool = True,
        recorder: "Recorder | None" = None,
    ):
        if isinstance(workers, str):
            workers = parse_worker_addrs(workers)
        self._workers: list[WorkerAddress] = []
        for w in workers:
            if isinstance(w, str):
                (pair,) = parse_worker_addrs(w)
                self._workers.append(WorkerAddress(*pair))
            else:
                host, port = w
                self._workers.append(WorkerAddress(host, port))
        self.deadline_s = deadline_s
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.default_shards = shards
        self.shards_per_worker = int(shards_per_worker)
        self.balance = balance
        self.connect_timeout_s = float(connect_timeout_s)
        self.use_shm = bool(shm)
        self._node = proto.node_id()
        self.recorder = recorder if recorder is not None else Recorder()
        self._cond = threading.Condition()
        self._closed = False

    # -- connection management --------------------------------------------

    def _connect_one(self, worker: WorkerAddress) -> bool:
        """(Re)establish one worker connection; returns success."""
        if worker.sock is not None and not worker.dead:
            return True
        if worker.sock is not None:
            try:
                worker.sock.close()
            except OSError:
                pass
            worker.sock = None
        try:
            sock = socket.create_connection(
                (worker.host, worker.port), timeout=self.connect_timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            worker.hello = proto.client_handshake(
                sock, timeout=self.connect_timeout_s
            )
        except (OSError, DistError):
            return False
        worker.sock = sock
        worker.dead = False
        return True

    def connect(self) -> int:
        """Connect (or reconnect) every configured worker; returns the number
        alive.  Called automatically at the start of each render."""
        with self._cond:
            alive = 0
            for worker in self._workers:
                if worker.busy:
                    alive += 1  # in use by another render; known-alive
                elif self._connect_one(worker):
                    alive += 1
            return alive

    def num_alive(self) -> int:
        with self._cond:
            return sum(
                1 for w in self._workers if w.sock is not None and not w.dead
            )

    def _checkout(self) -> "WorkerAddress | None":
        """Grab an idle live worker, or ``None`` when none can ever come:
        blocks only while busy workers might free up."""
        with self._cond:
            while True:
                for worker in self._workers:
                    if worker.sock is not None and not worker.dead and not worker.busy:
                        worker.busy = True
                        return worker
                if not any(
                    w.busy for w in self._workers
                ):  # nobody to wait for
                    return None
                self._cond.wait(timeout=0.1)

    def _checkin(self, worker: WorkerAddress, dead: bool = False) -> None:
        with self._cond:
            worker.busy = False
            if dead:
                worker.dead = True
                if worker.sock is not None:
                    try:
                        worker.sock.close()
                    except OSError:
                        pass
                    worker.sock = None
            self._cond.notify_all()

    def close(self) -> None:
        """Politely shut down worker connections (not the workers themselves
        — they return to their accept loops) and release every socket."""
        with self._cond:
            self._closed = True
            for worker in self._workers:
                if worker.sock is not None:
                    try:
                        proto.send_msg(worker.sock, proto.MSG_BYE)
                    except OSError:
                        pass
                    try:
                        worker.sock.close()
                    except OSError:
                        pass
                    worker.sock = None

    def shutdown_workers(self) -> None:
        """Ask every connected worker process to exit (used by ``repro dist``
        over workers it spawned itself)."""
        with self._cond:
            for worker in self._workers:
                if worker.sock is None or worker.dead:
                    continue
                try:
                    proto.send_msg(worker.sock, proto.MSG_SHUTDOWN)
                    proto.recv_msg(worker.sock, timeout=2.0)
                except (OSError, DistError):
                    pass
                try:
                    worker.sock.close()
                except OSError:
                    pass
                worker.sock = None

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- rendering ---------------------------------------------------------

    def render_sweep(
        self,
        *,
        ysorted,
        y_centers: np.ndarray,
        xs_scaled: np.ndarray,
        cx: float,
        bandwidth: float,
        kernel,
        engine: dict,
        sorted_weights: "np.ndarray | None" = None,
        shards: "int | None" = None,
        collect: bool = False,
    ) -> "tuple[int, np.ndarray, list[dict]]":
        """Render one sweep across the pool; the distributed twin of the
        ``run_blocks`` call inside :func:`repro.core.sweep.sweep_kdv`.

        All geometry arguments are exactly the precomputed state ``sweep_kdv``
        holds at dispatch time; ``engine`` is a wire spec from
        :func:`repro.dist.worker.engine_spec`.  Returns ``(num_shards,
        unscaled_grid, snapshots)`` where ``snapshots`` (populated when
        ``collect``) are per-shard recorder dumps for the caller to merge —
        mirroring ``run_blocks``'s ``(num_blocks, grid, aux)`` contract.

        Raises :class:`DistTimeout` when a shard exhausts its retry budget on
        expired deadlines, and :class:`DistError` if the render cannot
        complete at all.
        """
        if self._closed:
            raise DistError("coordinator is closed")
        render_rec = Recorder()
        t_plan = time.perf_counter()
        if shards is None:
            shards = self.default_shards
        if shards is None:
            alive = self.connect()
            shards = max(alive * self.shards_per_worker, 1)
        else:
            self.connect()
        plan = plan_shards(
            ysorted, y_centers, bandwidth, shards, balance=self.balance
        )
        render_rec.timer("dist.plan").add(time.perf_counter() - t_plan)
        render_rec.count("dist.shards", len(plan))

        # Transport selection: the shared-memory segments are created once
        # per render (the "generation"), and only when some connected worker
        # can actually map them — a pickle-only pool pays nothing.
        req_seg = resp_seg = None
        if self.use_shm and shm.SHM_AVAILABLE:
            with self._cond:
                any_shm = any(
                    w.sock is not None and not w.dead and self._worker_shm_ok(w)
                    for w in self._workers
                )
            if any_shm:
                req_seg = shm.RequestSegment(
                    ysorted.sorted_xy, sorted_weights, y_centers, xs_scaled
                )
                resp_seg = shm.ResponseSegment(plan.height, len(xs_scaled))
                render_rec.count("dist.shm_bytes", req_seg.nbytes)

        try:
            # With shm, the output grid IS the response segment: worker band
            # writes are the merge, and local/pickle shards write into the
            # same view below.
            grid = (
                resp_seg.grid()
                if resp_seg is not None
                else np.empty((plan.height, len(xs_scaled)), dtype=np.float64)
            )
            snapshots: "list[dict]" = [None] * len(plan)
            errors: "list[BaseException]" = []
            errors_lock = threading.Lock()

            def make_task(shard) -> dict:
                halo = slice(shard.halo_start, shard.halo_stop)
                return {
                    "shard_id": shard.shard_id,
                    "row_start": shard.row_start,
                    "row_stop": shard.row_stop,
                    "halo_xy": ysorted.sorted_xy[halo],
                    "halo_weights": None
                    if sorted_weights is None
                    else sorted_weights[halo],
                    "y_centers": y_centers[shard.row_start : shard.row_stop],
                    "xs_scaled": xs_scaled,
                    "cx": cx,
                    "bandwidth": bandwidth,
                    "kernel": kernel.name if hasattr(kernel, "name") else str(kernel),
                    "engine": engine,
                    "collect": collect,
                }

            def make_task_shm(shard) -> dict:
                # Same schema minus the arrays: names + integer offsets only,
                # so the TASK frame stays under a kilobyte.
                return {
                    "shard_id": shard.shard_id,
                    "row_start": shard.row_start,
                    "row_stop": shard.row_stop,
                    "halo_start": shard.halo_start,
                    "halo_stop": shard.halo_stop,
                    "cx": cx,
                    "bandwidth": bandwidth,
                    "kernel": kernel.name if hasattr(kernel, "name") else str(kernel),
                    "engine": engine,
                    "collect": collect,
                    "shm": {"req": req_seg.descr, "resp": resp_seg.name},
                }

            def run_shard(shard) -> None:
                try:
                    block, snapshot = self._run_shard(
                        shard,
                        make_task,
                        make_task_shm if resp_seg is not None else None,
                        render_rec,
                    )
                except BaseException as exc:
                    with errors_lock:
                        errors.append(exc)
                    return
                # Disjoint row bands: concurrent writers never overlap.  A
                # ``None`` block means the worker already wrote its band into
                # the response segment.
                if block is not None:
                    grid[shard.row_start : shard.row_stop] = block
                if snapshot is not None:
                    snapshots[shard.shard_id] = snapshot

            with render_rec.span("dist.dispatch"):
                work = [s for s in plan if s.rows > 0]
                if len(work) <= 1 or self.num_alive() == 0:
                    # Nothing to overlap: run shards inline (covers the
                    # worker-less coordinator and the single-shard plan).
                    for shard in work:
                        run_shard(shard)
                        if errors:
                            break
                else:
                    threads = [
                        threading.Thread(
                            target=run_shard,
                            name=f"dist-shard-{shard.shard_id}",
                            args=(shard,),
                            daemon=True,
                        )
                        for shard in work
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join()
            if errors:
                raise errors[0]

            with render_rec.span("dist.merge"):
                # The blocks were written straight into their row bands above,
                # so the merge phase is just this (timed) validation that every
                # band got filled — kept as a span so merge overhead is
                # measurable.
                covered = sum(s.rows for s in plan)
                if covered != plan.height:
                    raise DistError(
                        f"shard plan covers {covered}/{plan.height} rows"
                    )
                if resp_seg is not None:
                    # Detach copy: the segment is unlinked below, so the
                    # caller gets ordinary process-private memory.
                    grid = np.array(grid)
        finally:
            # Segments are strictly coordinator-owned: unlink on every exit,
            # so neither a failed render nor a SIGKILL'd worker leaks a
            # /dev/shm entry.
            if req_seg is not None:
                req_seg.unlink()
            if resp_seg is not None:
                resp_seg.unlink()

        self.recorder.merge(render_rec)
        out_snapshots = [s for s in snapshots if s is not None]
        out_snapshots.append(render_rec.snapshot())
        return len(plan), grid, out_snapshots

    # -- per-shard dispatch ------------------------------------------------

    def _worker_shm_ok(self, worker: WorkerAddress) -> bool:
        """Can this worker take shared-memory tasks?  Requires the HELLO
        capability, the same machine (``node`` token), and no prior runtime
        demotion."""
        hello = worker.hello or {}
        caps = hello.get("caps") or {}
        return (
            worker.shm_ok
            and bool(caps.get("shm"))
            and hello.get("node") == self._node
        )

    def _run_shard(
        self, shard, make_task, make_task_shm, render_rec: Recorder
    ) -> "tuple[np.ndarray | None, dict | None]":
        """Run one shard to completion: try workers, retry on death or
        deadline, fall back to in-process compute when the pool is gone.

        The transport is picked per checkout: an shm-capable worker gets the
        offsets-only task, everyone else (and the in-process fallback, which
        has the arrays already) gets the pickle task.  Returns ``(None,
        snapshot)`` when the band was delivered through the response segment.
        """
        timeouts = 0
        attempt = 0
        while True:
            worker = self._checkout()
            if worker is None:
                render_rec.count("dist.local_shards", 1)
                return compute_shard(make_task(shard))
            use_shm = make_task_shm is not None and self._worker_shm_ok(worker)
            task = make_task_shm(shard) if use_shm else make_task(shard)
            try:
                block, snapshot = self._run_on(worker, task, render_rec)
            except _ShmFailed:
                # The worker could not map the segments (stale namespace,
                # permissions, ...): demote it to pickle for the life of the
                # pool and resubmit — degrade the transport, not the render.
                worker.shm_ok = False
                render_rec.count("dist.shm_demotions", 1)
                render_rec.count("dist.retries", 1)
                self._checkin(worker)
                continue
            except _WorkerDied:
                render_rec.count("dist.worker_deaths", 1)
                render_rec.count("dist.retries", 1)
                self._checkin(worker, dead=True)
                attempt += 1
                continue  # deaths never exhaust the budget; the pool shrinks
            except _AttemptTimedOut:
                # The worker may still be computing the stale shard; its
                # eventual result would desynchronize the stream, so the
                # connection is abandoned like a death (the worker process
                # itself survives and will accept a fresh connection).
                render_rec.count("dist.retries", 1)
                self._checkin(worker, dead=True)
                timeouts += 1
                attempt += 1
                if timeouts > self.max_retries:
                    raise DistTimeout(
                        f"shard {task['shard_id']} timed out "
                        f"{timeouts}x (deadline_s={self.deadline_s}, "
                        f"max_retries={self.max_retries})"
                    ) from None
                time.sleep(
                    min(
                        self.backoff_base_s * (2.0 ** (attempt - 1)),
                        self.backoff_max_s,
                    )
                )
                continue
            except BaseException:
                # Task-level failure (the worker is healthy; the shard is
                # poisoned, e.g. an unknown engine spec): release the worker
                # before propagating.
                self._checkin(worker)
                raise
            else:
                self._checkin(worker)
                return block, snapshot

    def _run_on(
        self, worker: WorkerAddress, task: dict, render_rec: Recorder
    ) -> "tuple[np.ndarray, dict | None]":
        """One dispatch attempt on one worker; raises the private control-flow
        exceptions on death or deadline expiry."""
        sock = worker.sock
        try:
            render_rec.count("dist.bytes_tx", proto.send_msg(sock, proto.MSG_TASK, task))
        except OSError:
            raise _WorkerDied() from None
        last_alive = time.monotonic()
        while True:
            if self.deadline_s is not None:
                remaining = self.deadline_s - (time.monotonic() - last_alive)
                if remaining <= 0:
                    raise _AttemptTimedOut()
                slice_s = min(0.2, remaining)
            else:
                slice_s = 0.5
            try:
                msg_type, payload, nbytes = proto.recv_msg(sock, timeout=slice_s)
            except socket.timeout:
                continue
            except (ConnectionClosed, ProtocolError, OSError):
                raise _WorkerDied() from None
            render_rec.count("dist.bytes_rx", nbytes)
            if msg_type == proto.MSG_HEARTBEAT:
                render_rec.count("dist.heartbeats", 1)
                last_alive = time.monotonic()
            elif msg_type == proto.MSG_RESULT:
                if payload.get("shard_id") != task["shard_id"]:
                    # A stale result from a previous (timed-out) dispatch on
                    # a reused connection — cannot happen because timed-out
                    # connections are abandoned, so treat it as corruption.
                    raise _WorkerDied()
                if payload.get("shm"):
                    # The band is already in the response segment.
                    render_rec.count(
                        "dist.shm_bytes", int(payload.get("shm_bytes") or 0)
                    )
                    return None, payload.get("snapshot")
                return payload["block"], payload.get("snapshot")
            elif msg_type == proto.MSG_ERROR:
                if payload.get("shm_failed"):
                    raise _ShmFailed()
                raise DistError(
                    f"worker {worker.addr} failed shard "
                    f"{payload.get('shard_id')}: {payload.get('error')}"
                )
            # other frame types (PONG from an earlier probe) are ignored


class _WorkerDied(Exception):
    """Private control flow: the connection broke during an attempt."""


class _ShmFailed(Exception):
    """Private control flow: the worker could not map the shm segments."""


class _AttemptTimedOut(Exception):
    """Private control flow: one attempt exceeded ``deadline_s``."""


# -- default-coordinator resolution ---------------------------------------

_default_lock = threading.Lock()
_default: "Coordinator | None" = None
_env_coordinator: "Coordinator | None" = None
_env_value: "str | None" = None


def set_default_coordinator(coordinator: "Coordinator | None") -> None:
    """Install the coordinator ``backend="dist"`` uses when none is passed."""
    global _default
    with _default_lock:
        _default = coordinator


def get_default_coordinator() -> "Coordinator | None":
    with _default_lock:
        return _default


def resolve_coordinator(
    coordinator: "Coordinator | None" = None,
) -> Coordinator:
    """The coordinator a ``backend="dist"`` compute should use.

    Resolution order: the explicit argument, then the process default
    (:func:`set_default_coordinator`), then a coordinator built from the
    ``REPRO_DIST_WORKERS`` environment variable (cached per value), then a
    fresh worker-less coordinator — so ``backend="dist"`` always works,
    degrading to sharded in-process compute when no pool is configured.
    """
    global _env_coordinator, _env_value
    if coordinator is not None:
        return coordinator
    with _default_lock:
        if _default is not None:
            return _default
        env = os.environ.get(WORKERS_ENV)
        if env:
            if _env_coordinator is None or env != _env_value:
                _env_coordinator = Coordinator(parse_worker_addrs(env))
                _env_value = env
            return _env_coordinator
        return Coordinator()
