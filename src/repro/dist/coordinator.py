"""Coordinator: dispatches shard plans to a worker pool and merges results.

The coordinator owns the fault-tolerance and scheduling policy; the workers
stay dumb:

* **Deterministic merge.**  Shard results are written into the output grid
  at their planned row band, so the assembled grid is a pure row
  concatenation — bit-identical to the serial sweep for every shard count
  and every arrival order (see :mod:`repro.dist.plan` for the argument).
* **Worker deaths.**  A connection that breaks mid-shard (EOF, reset,
  protocol corruption) marks that worker dead and resubmits the shard to a
  survivor.  Deaths do not consume the retry budget — a shard can migrate
  across any number of dying workers as long as somebody (ultimately the
  coordinator itself) remains to run it.
* **Stragglers.**  Each dispatch attempt gets ``deadline_s`` of wall clock,
  measured from the last sign of life (result, heartbeat); a worker that
  heartbeats is slow, not dead.  An expired attempt is retried elsewhere
  with exponential backoff, up to ``max_retries`` times; exhaustion raises
  :class:`~repro.dist.errors.DistTimeout` rather than hanging the render.
* **Cost-balanced planning.**  The default ``balance="cost"`` mode routes
  through :mod:`repro.dist.sched`: per-row envelope counts are priced by an
  online-calibrated cost model (warm-started from ``sched_state`` when
  given) and shard boundaries are refined until the predicted weighted
  makespan stops dropping, with per-worker capacity weights learned from
  observed throughput (``docs/scheduling.md``).
* **Work stealing.**  A shard whose elapsed time exceeds its pool-normal
  prediction by ``steal_factor`` donates the unstarted half of its band to
  an idle worker: the straggler gets a CANCEL frame truncating it at the
  steal row, a thief shard is minted for the tail, and — because any
  contiguous row band plus its halo is self-contained — the merge stays
  bit-identical.  If the straggler finishes the stolen rows anyway (the
  double-completion race), its overlap is discarded deterministically: the
  thief always owns the stolen rows.
* **Graceful degradation.**  When no workers are reachable — or every one
  of them dies mid-render — remaining shards are computed in-process with
  the same :func:`~repro.dist.worker.compute_shard` code path, so a
  coordinator with an empty worker list is just a sharded serial sweep.

Observability: each render merges per-shard worker recorders plus the
coordinator's own counters (``dist.shards``, ``dist.retries``,
``dist.worker_deaths``, ``dist.bytes_rx``/``tx``, ``dist.shm_bytes``,
``dist.shm_demotions``, ``dist.local_shards``, ``dist.heartbeats``,
``dist.steals``, ``dist.steal_rows``, ``dist.cancels``,
``dist.steal_discarded_rows``, ``dist.sched.refine_moves``) and phase
timers (``dist.plan``, ``dist.dispatch``, ``dist.merge``) into the recorder
handed to :meth:`Coordinator.render_sweep` and the coordinator's own
long-lived recorder (the one ``/metricz`` sees).  The scheduling outcome of
the most recent render — per-shard times, predictions, steal activity — is
kept on :attr:`Coordinator.last_report`.
"""

from __future__ import annotations

import os
import socket
import threading
import time

import numpy as np

from ..obs import Recorder, active
from . import proto, shm
from .errors import ConnectionClosed, DistError, DistTimeout, ProtocolError
from .plan import ShardPlan, band_halo, plan_shards
from .sched import (
    CostModel,
    RenderReport,
    ShardRecord,
    engine_key,
    pairs_prefix,
    plan_shards_cost,
)
from .worker import compute_shard

__all__ = [
    "Coordinator",
    "WorkerAddress",
    "parse_worker_addrs",
    "set_default_coordinator",
    "get_default_coordinator",
    "resolve_coordinator",
]

#: Environment variable listing worker addresses (``host:port,host:port``)
#: that ``backend="dist"`` uses when no coordinator is passed explicitly.
WORKERS_ENV = "REPRO_DIST_WORKERS"

#: Balance modes the coordinator accepts: the two pure planner modes from
#: :mod:`repro.dist.plan` plus the cost-model mode from
#: :mod:`repro.dist.sched`.
COORD_BALANCE_MODES = ("cost", "points", "rows")


def parse_worker_addrs(spec: str) -> "list[tuple[str, int]]":
    """Parse ``"host:port,host:port"`` (whitespace tolerated) into pairs."""
    addrs: list[tuple[str, int]] = []
    for item in spec.replace(",", " ").split():
        host, _, port = item.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"bad worker address {item!r}; expected host:port"
            )
        addrs.append((host, int(port)))
    return addrs


class WorkerAddress:
    """One configured worker endpoint and its connection state."""

    def __init__(self, host: str, port: int):
        self.host = host
        self.port = int(port)
        self.sock: "socket.socket | None" = None
        self.hello: "dict | None" = None
        #: Set when a send/recv on this worker failed; cleared on reconnect.
        self.dead = False
        #: Checked out by a dispatcher thread (one in-flight shard per worker).
        self.busy = False
        #: Cleared when a runtime shm failure demotes this worker to pickle.
        self.shm_ok = True

    @property
    def addr(self) -> str:
        return f"{self.host}:{self.port}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.dead else ("up" if self.sock else "down")
        return f"WorkerAddress({self.addr}, {state})"


class _ShardJob:
    """Mutable scheduling state for one unit of work during a render.

    ``stop`` is the job's current exclusive end row; work stealing shrinks
    it (never grows it), and only the job's own dispatch thread mutates it,
    so readers just need the lock for a consistent snapshot.  Thief jobs
    minted by steals carry ``depth=1`` and are never stolen from again.
    """

    __slots__ = (
        "shard_id",
        "row_start",
        "stop",
        "depth",
        "steals",
        "stolen_from",
        "lock",
        "thieves",
        "thief_errors",
    )

    def __init__(
        self,
        shard_id: int,
        row_start: int,
        row_stop: int,
        depth: int = 0,
        stolen_from: "int | None" = None,
    ):
        self.shard_id = shard_id
        self.row_start = row_start
        self.stop = row_stop
        self.depth = depth
        self.steals = 0
        self.stolen_from = stolen_from
        self.lock = threading.Lock()
        self.thieves: list[threading.Thread] = []
        self.thief_errors: list[BaseException] = []

    def current_stop(self) -> int:
        with self.lock:
            return self.stop


class _RenderState:
    """Shared per-render context: the output grid, task builders, pricing
    state, and the thread-safe result collections."""

    def __init__(
        self,
        grid: np.ndarray,
        pairs: np.ndarray,
        ekey: str,
        model: CostModel,
        make_task,
        make_task_shm,
        rec: Recorder,
        next_shard_id: int,
    ):
        self.grid = grid
        self.pairs = pairs
        self.ekey = ekey
        self.model = model
        self.make_task = make_task
        self.make_task_shm = make_task_shm
        self.rec = rec
        self.lock = threading.Lock()
        self.snapshots: list[dict] = []
        self.records: list[ShardRecord] = []
        self._next_shard_id = next_shard_id

    def new_shard_id(self) -> int:
        with self.lock:
            sid = self._next_shard_id
            self._next_shard_id += 1
            return sid

    def band_pairs(self, row_start: int, row_stop: int) -> float:
        if row_stop <= row_start:
            return 0.0
        return float(self.pairs[row_stop] - self.pairs[row_start])

    def predict(self, row_start: int, row_stop: int) -> "float | None":
        """Pool-normal predicted seconds for a band (``None`` pre-calibration)."""
        return self.model.predict_seconds(
            self.ekey,
            row_stop - row_start,
            self.band_pairs(row_start, row_stop),
        )

    def add_snapshot(self, snapshot: dict) -> None:
        with self.lock:
            self.snapshots.append(snapshot)

    def add_record(self, record: ShardRecord) -> None:
        with self.lock:
            self.records.append(record)


class Coordinator:
    """Renders shard plans across a pool of worker processes.

    Parameters
    ----------
    workers:
        ``(host, port)`` pairs, ``"host:port"`` strings, or a single
        comma-separated string.  May be empty: every shard then runs
        in-process (the graceful-degradation path, and the cheapest way to
        get a sharded render for tests).
    deadline_s:
        Per-attempt wall-clock budget for one shard, measured from the last
        sign of life from its worker (heartbeats reset it).  ``None``
        (default) disables straggler detection.
    max_retries:
        How many *timed-out* attempts a shard may burn before
        :class:`DistTimeout`.  Worker deaths do not consume this budget.
    backoff_base_s / backoff_max_s:
        Exponential backoff between retry attempts:
        ``min(base * 2**attempt, max)``.
    shards:
        Default shard count for renders that do not specify one; ``None``
        means one shard per connected worker (times ``shards_per_worker``),
        or 1 when running locally.
    shards_per_worker:
        Over-decomposition factor: more shards than workers lets survivors
        absorb a dead worker's load in smaller pieces.
    balance:
        Shard planner balance mode: ``"cost"`` (default; the cost-model
        allocate-then-refine planner from :mod:`repro.dist.sched`),
        ``"points"``, or ``"rows"`` (the pure geometric modes from
        :mod:`repro.dist.plan`).
    steal / steal_factor / steal_min_s / min_steal_rows /
    max_steals_per_shard:
        Work stealing: when a shard's elapsed time exceeds
        ``steal_factor`` times its pool-normal prediction (and at least
        ``steal_min_s`` — renders faster than that never steal), an idle
        worker claims the unstarted half of the band (at least
        ``min_steal_rows`` rows; a shard donates at most
        ``max_steals_per_shard`` times).  See ``docs/scheduling.md``.
    cost_model / sched_state:
        The shared :class:`~repro.dist.sched.CostModel` (one is created if
        not given).  ``sched_state`` names a JSON file to warm-start it
        from; :meth:`close` persists the calibration back to it.
    connect_timeout_s:
        TCP connect + handshake budget per worker.
    shm:
        Allow the zero-copy shared-memory shard transport (default on).
        It only actually engages per worker when the HELLO handshake shows
        the worker is shm-capable *and* on this machine (same ``node``
        token); remote or incapable workers keep the pickle transport, and
        a worker whose mapping fails at runtime is demoted to pickle for
        the life of the pool.  See :mod:`repro.dist.shm`.
    recorder:
        Long-lived recorder accumulating across renders (e.g. the tile
        service's).  Each render *also* gets its counters merged into the
        per-call recorder passed to :meth:`render_sweep`.

    Thread safety: multiple threads may call :meth:`render_sweep`
    concurrently (the tile service's render pool does); workers are checked
    out under a condition variable so one shard is in flight per worker.
    """

    def __init__(
        self,
        workers=(),
        *,
        deadline_s: "float | None" = None,
        max_retries: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 1.0,
        shards: "int | None" = None,
        shards_per_worker: int = 2,
        balance: str = "cost",
        steal: bool = True,
        steal_factor: float = 3.0,
        steal_min_s: float = 0.5,
        min_steal_rows: int = 8,
        max_steals_per_shard: int = 4,
        cost_model: "CostModel | None" = None,
        sched_state: "str | None" = None,
        connect_timeout_s: float = 5.0,
        shm: bool = True,
        recorder: "Recorder | None" = None,
    ):
        if isinstance(workers, str):
            workers = parse_worker_addrs(workers)
        self._workers: list[WorkerAddress] = []
        for w in workers:
            if isinstance(w, str):
                (pair,) = parse_worker_addrs(w)
                self._workers.append(WorkerAddress(*pair))
            else:
                host, port = w
                self._workers.append(WorkerAddress(host, port))
        self.deadline_s = deadline_s
        self.max_retries = int(max_retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.default_shards = shards
        self.shards_per_worker = int(shards_per_worker)
        if balance not in COORD_BALANCE_MODES:
            raise ValueError(
                f"unknown balance mode {balance!r}; "
                f"available: {COORD_BALANCE_MODES}"
            )
        self.balance = balance
        self.steal = bool(steal)
        self.steal_factor = float(steal_factor)
        self.steal_min_s = float(steal_min_s)
        self.min_steal_rows = max(int(min_steal_rows), 1)
        self.max_steals_per_shard = int(max_steals_per_shard)
        self.sched_state = sched_state
        self.cost_model = cost_model if cost_model is not None else CostModel()
        if sched_state:
            self.cost_model.load(sched_state)
        self.connect_timeout_s = float(connect_timeout_s)
        self.use_shm = bool(shm)
        self._node = proto.node_id()
        self.recorder = recorder if recorder is not None else Recorder()
        #: Scheduling outcome of the most recent completed render.
        self.last_report: "RenderReport | None" = None
        self._cond = threading.Condition()
        self._closed = False

    # -- connection management --------------------------------------------

    def _connect_one(self, worker: WorkerAddress) -> bool:
        """(Re)establish one worker connection; returns success."""
        if worker.sock is not None and not worker.dead:
            return True
        if worker.sock is not None:
            try:
                worker.sock.close()
            except OSError:
                pass
            worker.sock = None
        try:
            sock = socket.create_connection(
                (worker.host, worker.port), timeout=self.connect_timeout_s
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            worker.hello = proto.client_handshake(
                sock, timeout=self.connect_timeout_s
            )
        except (OSError, DistError):
            return False
        worker.sock = sock
        worker.dead = False
        specs = (worker.hello or {}).get("specs") or {}
        self.cost_model.hello(worker.addr, specs.get("cpus"))
        return True

    def connect(self) -> int:
        """Connect (or reconnect) every configured worker; returns the number
        alive.  Called automatically at the start of each render."""
        with self._cond:
            alive = 0
            for worker in self._workers:
                if worker.busy:
                    alive += 1  # in use by another render; known-alive
                elif self._connect_one(worker):
                    alive += 1
            return alive

    def num_alive(self) -> int:
        with self._cond:
            return sum(
                1 for w in self._workers if w.sock is not None and not w.dead
            )

    def _alive_addrs(self) -> list[str]:
        with self._cond:
            return [
                w.addr
                for w in self._workers
                if w.sock is not None and not w.dead
            ]

    def _checkout(self) -> "WorkerAddress | None":
        """Grab an idle live worker, or ``None`` when none can ever come:
        blocks only while busy workers might free up.  When several workers
        are idle, the highest-capacity one wins, so big bands land on fast
        machines first."""
        with self._cond:
            while True:
                idle = [
                    w
                    for w in self._workers
                    if w.sock is not None and not w.dead and not w.busy
                ]
                if idle:
                    if len(idle) > 1:
                        caps = self.cost_model.capacities(
                            [w.addr for w in idle]
                        )
                        worker = idle[
                            max(range(len(idle)), key=lambda i: caps[i])
                        ]
                    else:
                        worker = idle[0]
                    worker.busy = True
                    return worker
                if not any(
                    w.busy for w in self._workers
                ):  # nobody to wait for
                    return None
                self._cond.wait(timeout=0.1)

    def _any_idle(self) -> bool:
        with self._cond:
            return any(
                w.sock is not None and not w.dead and not w.busy
                for w in self._workers
            )

    def _checkin(self, worker: WorkerAddress, dead: bool = False) -> None:
        with self._cond:
            worker.busy = False
            if dead:
                worker.dead = True
                if worker.sock is not None:
                    try:
                        worker.sock.close()
                    except OSError:
                        pass
                    worker.sock = None
            self._cond.notify_all()

    def close(self) -> None:
        """Politely shut down worker connections (not the workers themselves
        — they return to their accept loops), release every socket, and
        persist the cost-model calibration when ``sched_state`` is set."""
        with self._cond:
            self._closed = True
            for worker in self._workers:
                if worker.sock is not None:
                    try:
                        proto.send_msg(worker.sock, proto.MSG_BYE)
                    except OSError:
                        pass
                    try:
                        worker.sock.close()
                    except OSError:
                        pass
                    worker.sock = None
        if self.sched_state:
            try:
                self.cost_model.save(self.sched_state)
            except OSError:
                pass

    def shutdown_workers(self) -> None:
        """Ask every connected worker process to exit (used by ``repro dist``
        over workers it spawned itself)."""
        with self._cond:
            for worker in self._workers:
                if worker.sock is None or worker.dead:
                    continue
                try:
                    proto.send_msg(worker.sock, proto.MSG_SHUTDOWN)
                    proto.recv_msg(worker.sock, timeout=2.0)
                except (OSError, DistError):
                    pass
                try:
                    worker.sock.close()
                except OSError:
                    pass
                worker.sock = None

    def __enter__(self) -> "Coordinator":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- rendering ---------------------------------------------------------

    def render_sweep(
        self,
        *,
        ysorted,
        y_centers: np.ndarray,
        xs_scaled: np.ndarray,
        cx: float,
        bandwidth: float,
        kernel,
        engine: dict,
        sorted_weights: "np.ndarray | None" = None,
        shards: "int | None" = None,
        collect: bool = False,
    ) -> "tuple[int, np.ndarray, list[dict]]":
        """Render one sweep across the pool; the distributed twin of the
        ``run_blocks`` call inside :func:`repro.core.sweep.sweep_kdv`.

        All geometry arguments are exactly the precomputed state ``sweep_kdv``
        holds at dispatch time; ``engine`` is a wire spec from
        :func:`repro.dist.worker.engine_spec`.  Returns ``(num_shards,
        unscaled_grid, snapshots)`` where ``snapshots`` (populated when
        ``collect``) are per-shard recorder dumps for the caller to merge —
        mirroring ``run_blocks``'s ``(num_blocks, grid, aux)`` contract.

        Raises :class:`DistTimeout` when a shard exhausts its retry budget on
        expired deadlines, and :class:`DistError` if the render cannot
        complete at all.
        """
        if self._closed:
            raise DistError("coordinator is closed")
        render_rec = Recorder()
        t_plan = time.perf_counter()
        if shards is None:
            shards = self.default_shards
        if shards is None:
            alive = self.connect()
            shards = max(alive * self.shards_per_worker, 1)
        else:
            self.connect()
        ekey = engine_key(engine)
        refine_moves = 0
        if self.balance == "cost":
            alive_addrs = self._alive_addrs()
            capacities = (
                self.cost_model.capacities(alive_addrs)
                if alive_addrs
                else None
            )
            sp = plan_shards_cost(
                ysorted,
                y_centers,
                bandwidth,
                shards,
                model=self.cost_model,
                engine=ekey,
                capacities=capacities,
            )
            plan = sp.plan
            pairs = sp.pairs
            refine_moves = sp.refine_moves
            if refine_moves:
                render_rec.count("dist.sched.refine_moves", refine_moves)
        else:
            plan = plan_shards(
                ysorted, y_centers, bandwidth, shards, balance=self.balance
            )
            # The pair prefix prices arbitrary sub-bands for calibration and
            # steal decisions, whichever planner produced the plan.
            pairs = pairs_prefix(ysorted, y_centers, bandwidth)
        render_rec.timer("dist.plan").add(time.perf_counter() - t_plan)
        render_rec.count("dist.shards", len(plan))

        # Transport selection: the shared-memory segments are created once
        # per render (the "generation"), and only when some connected worker
        # can actually map them — a pickle-only pool pays nothing.
        req_seg = resp_seg = None
        if self.use_shm and shm.SHM_AVAILABLE:
            with self._cond:
                any_shm = any(
                    w.sock is not None and not w.dead and self._worker_shm_ok(w)
                    for w in self._workers
                )
            if any_shm:
                req_seg = shm.RequestSegment(
                    ysorted.sorted_xy, sorted_weights, y_centers, xs_scaled
                )
                resp_seg = shm.ResponseSegment(plan.height, len(xs_scaled))
                render_rec.count("dist.shm_bytes", req_seg.nbytes)

        t_dispatch = time.perf_counter()
        try:
            # With shm, the output grid IS the response segment: worker band
            # writes are the merge, and local/pickle shards write into the
            # same view below.
            grid = (
                resp_seg.grid()
                if resp_seg is not None
                else np.empty((plan.height, len(xs_scaled)), dtype=np.float64)
            )
            kernel_name = (
                kernel.name if hasattr(kernel, "name") else str(kernel)
            )
            sorted_y = ysorted.sorted_y

            def make_task(shard_id: int, row_start: int, row_stop: int) -> dict:
                # The halo is recomputed from the *current* band bounds, so
                # stolen sub-bands and steal-truncated resubmissions ship
                # exactly the points their rows need.
                h0, h1 = band_halo(
                    sorted_y, y_centers, bandwidth, row_start, row_stop
                )
                halo = slice(h0, h1)
                return {
                    "shard_id": shard_id,
                    "row_start": row_start,
                    "row_stop": row_stop,
                    "halo_xy": ysorted.sorted_xy[halo],
                    "halo_weights": None
                    if sorted_weights is None
                    else sorted_weights[halo],
                    "y_centers": y_centers[row_start:row_stop],
                    "xs_scaled": xs_scaled,
                    "cx": cx,
                    "bandwidth": bandwidth,
                    "kernel": kernel_name,
                    "engine": engine,
                    "collect": collect,
                }

            make_task_shm = None
            if resp_seg is not None:
                req_descr = req_seg.descr
                resp_name = resp_seg.name

                def make_task_shm(
                    shard_id: int, row_start: int, row_stop: int
                ) -> dict:
                    # Same schema minus the arrays: names + integer offsets
                    # only, so the TASK frame stays under a kilobyte.
                    h0, h1 = band_halo(
                        sorted_y, y_centers, bandwidth, row_start, row_stop
                    )
                    return {
                        "shard_id": shard_id,
                        "row_start": row_start,
                        "row_stop": row_stop,
                        "halo_start": h0,
                        "halo_stop": h1,
                        "cx": cx,
                        "bandwidth": bandwidth,
                        "kernel": kernel_name,
                        "engine": engine,
                        "collect": collect,
                        "shm": {"req": req_descr, "resp": resp_name},
                    }

            state = _RenderState(
                grid,
                pairs,
                ekey,
                self.cost_model,
                make_task,
                make_task_shm,
                render_rec,
                next_shard_id=len(plan),
            )
            errors: "list[BaseException]" = []
            errors_lock = threading.Lock()

            work = [s for s in plan if s.rows > 0]
            # Widest predicted band first: the longest-processing-time order
            # pairs expensive bands with the fastest idle workers at
            # dispatch (the capacity-aware _checkout picks them).
            work.sort(
                key=lambda s: -state.band_pairs(s.row_start, s.row_stop)
            )
            jobs = [
                _ShardJob(s.shard_id, s.row_start, s.row_stop) for s in work
            ]

            def run_job(job: _ShardJob) -> None:
                try:
                    self._run_shard(job, state)
                except BaseException as exc:
                    with errors_lock:
                        errors.append(exc)

            with render_rec.span("dist.dispatch"):
                if len(jobs) <= 1 or self.num_alive() == 0:
                    # Nothing to overlap: run shards inline (covers the
                    # worker-less coordinator and the single-shard plan).
                    for job in jobs:
                        run_job(job)
                        if errors:
                            break
                else:
                    threads = [
                        threading.Thread(
                            target=run_job,
                            name=f"dist-shard-{job.shard_id}",
                            args=(job,),
                            daemon=True,
                        )
                        for job in jobs
                    ]
                    for t in threads:
                        t.start()
                    for t in threads:
                        t.join()
            if errors:
                raise errors[0]

            with render_rec.span("dist.merge"):
                # The blocks were written straight into their row bands above,
                # so the merge phase is just this (timed) validation that every
                # band got filled — kept as a span so merge overhead is
                # measurable.
                covered = sum(s.rows for s in plan)
                if covered != plan.height:
                    raise DistError(
                        f"shard plan covers {covered}/{plan.height} rows"
                    )
                if resp_seg is not None:
                    # Detach copy: the segment is unlinked below, so the
                    # caller gets ordinary process-private memory.
                    grid = np.array(grid)
        finally:
            # Segments are strictly coordinator-owned: unlink on every exit,
            # so neither a failed render nor a SIGKILL'd worker leaks a
            # /dev/shm entry.
            if req_seg is not None:
                req_seg.unlink()
            if resp_seg is not None:
                resp_seg.unlink()

        counters = render_rec.snapshot().get("counters", {})
        self.last_report = RenderReport(
            balance=self.balance,
            planned_shards=len(plan),
            refine_moves=refine_moves,
            steals=int(counters.get("dist.steals", 0)),
            steal_rows=int(counters.get("dist.steal_rows", 0)),
            discarded_rows=int(counters.get("dist.steal_discarded_rows", 0)),
            makespan_s=time.perf_counter() - t_dispatch,
            records=list(state.records),
        )
        self.recorder.merge(render_rec)
        out_snapshots = list(state.snapshots)
        out_snapshots.append(render_rec.snapshot())
        return len(plan), grid, out_snapshots

    # -- per-shard dispatch ------------------------------------------------

    def _worker_shm_ok(self, worker: WorkerAddress) -> bool:
        """Can this worker take shared-memory tasks?  Requires the HELLO
        capability, the same machine (``node`` token), and no prior runtime
        demotion."""
        hello = worker.hello or {}
        caps = hello.get("caps") or {}
        return (
            worker.shm_ok
            and bool(caps.get("shm"))
            and hello.get("node") == self._node
        )

    def _run_shard(self, job: _ShardJob, state: _RenderState) -> None:
        """Run one job (and any thieves it spawns) to completion."""
        try:
            self._run_shard_primary(job, state)
        finally:
            # Thieves write their own disjoint rows; join them so the render
            # never returns with a band still being filled.
            for thief in job.thieves:
                thief.join()
        if job.thief_errors:
            raise job.thief_errors[0]

    def _run_shard_primary(self, job: _ShardJob, state: _RenderState) -> None:
        """Run one job's own band to completion: try workers, retry on death
        or deadline, fall back to in-process compute when the pool is gone.

        The transport is picked per checkout: an shm-capable worker gets the
        offsets-only task, everyone else (and the in-process fallback, which
        has the arrays already) gets the pickle task.  The band may shrink
        between attempts — steals move its tail to a thief job — so bounds
        are re-read each pass.
        """
        render_rec = state.rec
        timeouts = 0
        attempt = 0
        while True:
            r0 = job.row_start
            r1 = job.current_stop()
            if r1 <= r0:
                return  # the whole band was stolen away; nothing left to run
            predicted = state.predict(r0, r1)
            worker = self._checkout()
            if worker is None:
                render_rec.count("dist.local_shards", 1)
                t0 = time.perf_counter()
                block, snapshot = compute_shard(
                    state.make_task(job.shard_id, r0, r1)
                )
                elapsed = time.perf_counter() - t0
                self._finish_attempt(
                    job, state, "local", r0, r1, block, snapshot,
                    elapsed, predicted,
                )
                return
            use_shm = state.make_task_shm is not None and self._worker_shm_ok(
                worker
            )
            builder = state.make_task_shm if use_shm else state.make_task
            task = builder(job.shard_id, r0, r1)
            t0 = time.perf_counter()
            try:
                block, snapshot, result_stop = self._run_on(
                    worker, task, job, state
                )
            except _ShmFailed:
                # The worker could not map the segments (stale namespace,
                # permissions, ...): demote it to pickle for the life of the
                # pool and resubmit — degrade the transport, not the render.
                worker.shm_ok = False
                render_rec.count("dist.shm_demotions", 1)
                render_rec.count("dist.retries", 1)
                self._checkin(worker)
                continue
            except _WorkerDied:
                render_rec.count("dist.worker_deaths", 1)
                render_rec.count("dist.retries", 1)
                self._checkin(worker, dead=True)
                attempt += 1
                continue  # deaths never exhaust the budget; the pool shrinks
            except _AttemptTimedOut:
                # The worker may still be computing the stale shard; its
                # eventual result would desynchronize the stream, so the
                # connection is abandoned like a death (the worker process
                # itself survives and will accept a fresh connection).
                render_rec.count("dist.retries", 1)
                self._checkin(worker, dead=True)
                timeouts += 1
                attempt += 1
                if timeouts > self.max_retries:
                    raise DistTimeout(
                        f"shard {task['shard_id']} timed out "
                        f"{timeouts}x (deadline_s={self.deadline_s}, "
                        f"max_retries={self.max_retries})"
                    ) from None
                time.sleep(
                    min(
                        self.backoff_base_s * (2.0 ** (attempt - 1)),
                        self.backoff_max_s,
                    )
                )
                continue
            except BaseException:
                # Task-level failure (the worker is healthy; the shard is
                # poisoned, e.g. an unknown engine spec): release the worker
                # before propagating.
                self._checkin(worker)
                raise
            else:
                elapsed = time.perf_counter() - t0
                self._checkin(worker)
                self._finish_attempt(
                    job, state, worker.addr, r0, result_stop, block,
                    snapshot, elapsed, predicted,
                )
                return

    def _finish_attempt(
        self,
        job: _ShardJob,
        state: _RenderState,
        worker_key: str,
        row_start: int,
        result_stop: int,
        block: "np.ndarray | None",
        snapshot: "dict | None",
        elapsed: float,
        predicted: "float | None",
    ) -> None:
        """Commit one successful attempt: write the rows this job still owns
        (steals may have shrunk it since dispatch — the thief always wins
        the overlap), feed the calibration, and record the outcome."""
        final_stop = job.current_stop()
        use_stop = min(result_stop, final_stop)
        if block is not None and use_stop > row_start:
            state.grid[row_start:use_stop] = block[: use_stop - row_start]
        if result_stop > use_stop:
            # Double-completion race: the straggler outran its CANCEL and
            # computed rows a thief owns.  Both computed identical bytes
            # (same rows, same halo contract), and the thief's copy is the
            # one merged — the discard is deterministic by construction.
            state.rec.count("dist.steal_discarded_rows", result_stop - use_stop)
        if result_stop > row_start:
            state.model.observe(
                state.ekey,
                worker_key,
                result_stop - row_start,
                state.band_pairs(row_start, result_stop),
                elapsed,
            )
        state.add_record(
            ShardRecord(
                shard_id=job.shard_id,
                row_start=row_start,
                row_stop=use_stop,
                computed_rows=max(result_stop - row_start, 0),
                pairs=state.band_pairs(row_start, result_stop),
                worker=worker_key,
                elapsed_s=elapsed,
                predicted_s=predicted,
                stolen_from=job.stolen_from,
            )
        )
        if snapshot is not None:
            state.add_snapshot(snapshot)

    # -- work stealing -----------------------------------------------------

    def _maybe_steal(
        self,
        sock: socket.socket,
        task: dict,
        job: _ShardJob,
        state: _RenderState,
        rows_done: int,
        elapsed: float,
    ) -> None:
        """Evaluate the steal trigger for an in-flight shard; fires at most
        one steal per call.

        A steal requires: stealing enabled, a primary (depth-0) job under
        its donation cap, at least ``steal_min_s`` on the clock, a
        calibrated prediction exceeded ``steal_factor`` times *pool-normal*
        (so a slow worker is late by the pool's standards, not its own), an
        idle worker to do the stealing, and a worthwhile tail.  The stolen
        tail is the unstarted half of the remaining band — except for a
        repeat steal from a shard that has made zero progress (a wedged or
        napping worker), which donates everything left.
        """
        if (
            not self.steal
            or job.depth >= 1
            or job.steals >= self.max_steals_per_shard
            or elapsed < self.steal_min_s
        ):
            return
        stop = job.current_stop()
        started = job.row_start + rows_done
        remaining = stop - started
        if remaining <= 0:
            return
        predicted = state.predict(job.row_start, stop)
        if predicted is None:
            return
        if elapsed <= self.steal_factor * max(predicted, 1e-6):
            return
        if not self._any_idle():
            return
        if rows_done == 0 and job.steals >= 1:
            steal_rows = remaining  # wedged straggler: take everything left
        else:
            steal_rows = remaining // 2
            if steal_rows < self.min_steal_rows:
                return
        steal_start = stop - steal_rows
        with job.lock:
            job.stop = steal_start
            job.steals += 1
        try:
            state.rec.count(
                "dist.bytes_tx",
                proto.send_msg(
                    sock,
                    proto.MSG_CANCEL,
                    {"shard_id": task["shard_id"], "row_stop": steal_start},
                ),
            )
            state.rec.count("dist.cancels", 1)
        except OSError:
            # The straggler is probably dead; the recv loop will notice.
            # The steal stands either way — the thief owns the tail now.
            pass
        state.rec.count("dist.steals", 1)
        state.rec.count("dist.steal_rows", stop - steal_start)
        self._spawn_thief(job, state, steal_start, stop)

    def _spawn_thief(
        self,
        victim: _ShardJob,
        state: _RenderState,
        row_start: int,
        row_stop: int,
    ) -> None:
        """Mint a thief job for a stolen tail and dispatch it concurrently.
        The victim's dispatch thread joins it before returning."""
        thief = _ShardJob(
            state.new_shard_id(),
            row_start,
            row_stop,
            depth=victim.depth + 1,
            stolen_from=victim.shard_id,
        )

        def run() -> None:
            try:
                self._run_shard(thief, state)
            except BaseException as exc:
                victim.thief_errors.append(exc)

        t = threading.Thread(
            target=run, name=f"dist-steal-{thief.shard_id}", daemon=True
        )
        victim.thieves.append(t)
        t.start()

    def _run_on(
        self,
        worker: WorkerAddress,
        task: dict,
        job: _ShardJob,
        state: _RenderState,
    ) -> "tuple[np.ndarray | None, dict | None, int]":
        """One dispatch attempt on one worker; raises the private control-flow
        exceptions on death or deadline expiry.  Returns ``(block, snapshot,
        result_stop)`` where ``result_stop`` is the exclusive end row the
        worker actually computed (shorter than the task band when a CANCEL
        truncated it)."""
        render_rec = state.rec
        sock = worker.sock
        try:
            render_rec.count(
                "dist.bytes_tx", proto.send_msg(sock, proto.MSG_TASK, task)
            )
        except OSError:
            raise _WorkerDied() from None
        dispatched = time.monotonic()
        last_alive = dispatched
        rows_done = 0
        while True:
            if self.deadline_s is not None:
                remaining = self.deadline_s - (time.monotonic() - last_alive)
                if remaining <= 0:
                    raise _AttemptTimedOut()
                slice_s = min(0.2, remaining)
            else:
                slice_s = 0.5
            try:
                msg_type, payload, nbytes = proto.recv_msg(sock, timeout=slice_s)
            except socket.timeout:
                self._maybe_steal(
                    sock, task, job, state, rows_done,
                    time.monotonic() - dispatched,
                )
                continue
            except (ConnectionClosed, ProtocolError, OSError):
                raise _WorkerDied() from None
            render_rec.count("dist.bytes_rx", nbytes)
            if msg_type == proto.MSG_HEARTBEAT:
                render_rec.count("dist.heartbeats", 1)
                last_alive = time.monotonic()
                if (
                    isinstance(payload, dict)
                    and payload.get("shard_id") == task["shard_id"]
                ):
                    rows_done = max(
                        rows_done, int(payload.get("rows_done") or 0)
                    )
                self._maybe_steal(
                    sock, task, job, state, rows_done,
                    time.monotonic() - dispatched,
                )
            elif msg_type == proto.MSG_RESULT:
                if payload.get("shard_id") != task["shard_id"]:
                    # A stale result from a previous (timed-out) dispatch on
                    # a reused connection — cannot happen because timed-out
                    # connections are abandoned, so treat it as corruption.
                    raise _WorkerDied()
                result_stop = int(payload.get("row_stop", task["row_stop"]))
                if payload.get("shm"):
                    # The band is already in the response segment.
                    render_rec.count(
                        "dist.shm_bytes", int(payload.get("shm_bytes") or 0)
                    )
                    return None, payload.get("snapshot"), result_stop
                return payload["block"], payload.get("snapshot"), result_stop
            elif msg_type == proto.MSG_ERROR:
                if payload.get("shm_failed"):
                    raise _ShmFailed()
                raise DistError(
                    f"worker {worker.addr} failed shard "
                    f"{payload.get('shard_id')}: {payload.get('error')}"
                )
            # other frame types (PONG from an earlier probe) are ignored


class _WorkerDied(Exception):
    """Private control flow: the connection broke during an attempt."""


class _ShmFailed(Exception):
    """Private control flow: the worker could not map the shm segments."""


class _AttemptTimedOut(Exception):
    """Private control flow: one attempt exceeded ``deadline_s``."""


# -- default-coordinator resolution ---------------------------------------

_default_lock = threading.Lock()
_default: "Coordinator | None" = None
_env_coordinator: "Coordinator | None" = None
_env_value: "str | None" = None


def set_default_coordinator(coordinator: "Coordinator | None") -> None:
    """Install the coordinator ``backend="dist"`` uses when none is passed."""
    global _default
    with _default_lock:
        _default = coordinator


def get_default_coordinator() -> "Coordinator | None":
    with _default_lock:
        return _default


def resolve_coordinator(
    coordinator: "Coordinator | None" = None,
) -> Coordinator:
    """The coordinator a ``backend="dist"`` compute should use.

    Resolution order: the explicit argument, then the process default
    (:func:`set_default_coordinator`), then a coordinator built from the
    ``REPRO_DIST_WORKERS`` environment variable (cached per value), then a
    fresh worker-less coordinator — so ``backend="dist"`` always works,
    degrading to sharded in-process compute when no pool is configured.
    """
    global _env_coordinator, _env_value
    if coordinator is not None:
        return coordinator
    with _default_lock:
        if _default is not None:
            return _default
        env = os.environ.get(WORKERS_ENV)
        if env:
            if _env_coordinator is None or env != _env_value:
                _env_coordinator = Coordinator(parse_worker_addrs(env))
                _env_value = env
            return _env_coordinator
        return Coordinator()
