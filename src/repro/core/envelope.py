"""Envelope point sets (paper Definition 1).

For a pixel row at y-coordinate ``k``, the envelope point set

    E(k) = { p in P : |k - p.y| <= b }

contains every point that can contribute to *any* pixel of that row, because a
point farther than ``b`` from the row in y alone is farther than ``b`` from
every pixel of the row.

Two extraction strategies are provided:

* :func:`envelope_scan` — the paper's Lemma 1 strategy: a full O(n) scan.
  This is what the complexity analysis assumes.
* :class:`YSortedIndex` — points pre-sorted by y once (O(n log n) overall);
  each row's envelope is then a contiguous slice found by binary search in
  O(log n + |E(k)|).  Strictly faster in practice, identical output up to
  point order.  DESIGN.md lists this as an ablation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["envelope_scan", "YSortedIndex"]


def envelope_scan(xy: np.ndarray, k: float, bandwidth: float) -> np.ndarray:
    """Return E(k) row indices by a full scan of the dataset (Lemma 1).

    Parameters
    ----------
    xy:
        ``(n, 2)`` point coordinates.
    k:
        The row's y coordinate.
    bandwidth:
        The kernel bandwidth ``b``.

    Returns
    -------
    Integer index array into ``xy`` selecting the envelope points, in
    dataset order.
    """
    xy = np.asarray(xy, dtype=np.float64)
    mask = np.abs(k - xy[:, 1]) <= bandwidth
    return np.nonzero(mask)[0]


class YSortedIndex:
    """Points sorted by y coordinate for fast envelope slicing.

    Build once per dataset (per KDV invocation); reuse across all ``Y`` rows.
    """

    def __init__(self, xy: np.ndarray):
        xy = np.asarray(xy, dtype=np.float64)
        #: the original-order coordinates the index was built over
        self.xy = xy
        order = np.argsort(xy[:, 1], kind="stable")
        #: points re-ordered by ascending y, shape (n, 2)
        self.sorted_xy = xy[order]
        #: the ascending y view used for the binary searches
        self.sorted_y = self.sorted_xy[:, 1]
        #: original dataset index of each sorted position
        self.order = order
        self._transposed: "YSortedIndex | None" = None

    def __len__(self) -> int:
        return len(self.sorted_xy)

    def transposed(self) -> "YSortedIndex":
        """The index over the coordinate-swapped points, built lazily and
        cached.

        RAO column sweeps run the row sweep on the transposed problem
        (:func:`repro.core.rao.with_rao`), which sorts by the *other*
        coordinate; caching the twin here means a caller-supplied index
        still saves the O(n log n) re-sort in that orientation.  The twin is
        built from the original-order coordinates (not the sorted ones) so
        its stable argsort breaks ties exactly as a fresh
        ``YSortedIndex(xy[:, ::-1])`` would, and it back-links to this index
        so ``idx.transposed().transposed() is idx``.
        """
        if self._transposed is None:
            self._transposed = YSortedIndex(self.xy[:, ::-1])
            self._transposed._transposed = self
        return self._transposed

    def envelope_slice(self, k: float, bandwidth: float) -> slice:
        """The contiguous slice of :attr:`sorted_xy` that forms ``E(k)``."""
        lo = int(np.searchsorted(self.sorted_y, k - bandwidth, side="left"))
        hi = int(np.searchsorted(self.sorted_y, k + bandwidth, side="right"))
        return slice(lo, hi)

    def envelope_points(self, k: float, bandwidth: float) -> np.ndarray:
        """``E(k)`` as an ``(m, 2)`` coordinate array (a view, not a copy)."""
        return self.sorted_xy[self.envelope_slice(k, bandwidth)]

    def envelope_indices(self, k: float, bandwidth: float) -> np.ndarray:
        """``E(k)`` as original-dataset indices (for parity with
        :func:`envelope_scan` in tests)."""
        return self.order[self.envelope_slice(k, bandwidth)]
